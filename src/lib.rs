//! # COSMA — co-simulation and co-synthesis of mixed hardware/software systems
//!
//! A Rust reproduction of *"A Unified Model for Co-simulation and
//! Co-synthesis of Mixed Hardware/Software Systems"* (C. A. Valderrama,
//! A. Changuel, P. V. Raghavan, M. Abid, T. Ben Ismail, A. A. Jerraya —
//! DATE 1995).
//!
//! A system is described once — software modules (C style), hardware
//! modules (VHDL style) and **communication units** whose access
//! procedures exist in multiple *views* — and that single description
//! drives both joint simulation and mapping onto real target
//! architectures.
//!
//! This facade re-exports the whole toolchain:
//!
//! | crate | role |
//! |---|---|
//! | [`core`] | the unified IR: FSMs, modules, systems, communication units, multi-view rendering |
//! | [`sim`] | VHDL-semantics discrete-event kernel + VCD |
//! | [`comm`] | the communication-unit library (handshake, mailboxes, shared memory...) |
//! | [`cfront`] / [`vhdl`] | C and VHDL subset front-ends |
//! | [`cosim`] | the co-simulation backplane |
//! | [`synth`] | interface/hardware/software synthesis |
//! | [`isa`] | the MC16 processor (assembler + ISS) |
//! | [`board`] | target platforms: PC-AT + FPGA board, software-only IPC |
//! | [`motor`] | the Adaptive Motor Controller case study |
//!
//! ## Quickstart
//!
//! Run the paper's case study through co-simulation:
//!
//! ```
//! use cosma::motor::{build_cosim, MotorConfig};
//! use cosma::cosim::CosimConfig;
//! use cosma::sim::Duration;
//!
//! let cfg = MotorConfig { segments: 2, ..MotorConfig::default() };
//! let mut sys = build_cosim(&cfg, CosimConfig::default())?;
//! sys.run_to_completion(Duration::from_us(100), 100)?;
//! assert_eq!(sys.motor.borrow().position(), cfg.total_distance());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See `examples/` for the full flows (co-simulation, co-synthesis,
//! multi-platform retargeting) and `crates/bench/src/bin/` for the
//! experiment harnesses regenerating each of the paper's figures.

#![warn(missing_docs)]

pub use cosma_board as board;
pub use cosma_cfront as cfront;
pub use cosma_comm as comm;
pub use cosma_core as core;
pub use cosma_cosim as cosim;
pub use cosma_isa as isa;
pub use cosma_motor as motor;
pub use cosma_sim as sim;
pub use cosma_synth as synth;
pub use cosma_vhdl as vhdl;
