//! Multi-platform retargeting (the paper's third problem): the *same*
//! producer/consumer module descriptions are mapped onto three targets by
//! swapping only the communication units / views:
//!
//! 1. VHDL-style co-simulation over the FSM handshake unit,
//! 2. the software-only platform over a native OS FIFO (UNIX IPC view),
//! 3. the PC-AT + FPGA board (producer compiled to MC16, consumer
//!    synthesized to the fabric).
//!
//! Run with: `cargo run --example multi_platform`

use cosma::board::{Board, BoardConfig, IpcPlatform};
use cosma::comm::{handshake_unit, FifoChannel, StandaloneUnit};
use cosma::core::{Expr, Module, ModuleBuilder, ModuleKind, ServiceCall, Stmt, Type, Value};
use cosma::cosim::{Cosim, CosimConfig};
use cosma::sim::Duration;
use cosma::synth::{compile_sw, flatten_module, synthesize_hw, Encoding, IoMap};
use std::collections::HashMap;

const VALUES: [i64; 4] = [11, 22, 33, 44];

fn producer() -> Module {
    let mut p = ModuleBuilder::new("producer", ModuleKind::Software);
    let done = p.var("D", Type::Bool, Value::Bool(false));
    let i = p.var("I", Type::INT16, Value::Int(0));
    let b = p.binding("chan", "hs");
    let put = p.state("PUT");
    let end = p.state("END");
    // Values form an arithmetic progression: 11 + 11*i.
    p.actions(
        put,
        vec![Stmt::Call(ServiceCall {
            binding: b,
            service: "put".into(),
            args: vec![Expr::int(11).add(Expr::var(i).mul(Expr::int(11)))],
            done: Some(done),
            result: None,
        })],
    );
    p.transition_with(
        put,
        Some(Expr::var(done).and(Expr::var(i).ge(Expr::int(VALUES.len() as i64 - 1)))),
        vec![],
        end,
    );
    p.transition_with(
        put,
        Some(Expr::var(done)),
        vec![Stmt::assign(i, Expr::var(i).add(Expr::int(1)))],
        put,
    );
    p.transition(end, None, end);
    p.initial(put);
    p.build().expect("producer is well-formed")
}

fn consumer() -> Module {
    let mut c = ModuleBuilder::new("consumer", ModuleKind::Hardware);
    let done = c.var("D", Type::Bool, Value::Bool(false));
    let got = c.var("GOT", Type::INT16, Value::Int(0));
    let sum = c.var("SUM", Type::INT16, Value::Int(0));
    let n = c.var("N", Type::INT16, Value::Int(0));
    let b = c.binding("chan", "hs");
    let get = c.state("GET");
    let end = c.state("END");
    c.actions(
        get,
        vec![Stmt::Call(ServiceCall {
            binding: b,
            service: "get".into(),
            args: vec![],
            done: Some(done),
            result: Some(got),
        })],
    );
    c.transition_with(
        get,
        Some(Expr::var(done).and(Expr::var(n).ge(Expr::int(VALUES.len() as i64 - 1)))),
        vec![Stmt::assign(sum, Expr::var(sum).add(Expr::var(got)))],
        end,
    );
    c.transition_with(
        get,
        Some(Expr::var(done)),
        vec![
            Stmt::assign(sum, Expr::var(sum).add(Expr::var(got))),
            Stmt::assign(n, Expr::var(n).add(Expr::int(1))),
        ],
        get,
    );
    c.transition(end, None, end);
    c.initial(get);
    c.build().expect("consumer is well-formed")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let expected: i64 = VALUES.iter().sum();
    println!("expected SUM on every platform: {expected}\n");

    // --- platform 1: co-simulation over the FSM handshake unit -----------
    let mut cosim = Cosim::new(CosimConfig::default());
    let link = cosim.add_fsm_unit("chan", handshake_unit("hs", Type::INT16));
    cosim.add_module(&producer(), &[("chan", link)])?;
    let cid = cosim.add_module(&consumer(), &[("chan", link)])?;
    cosim.run_for(Duration::from_us(60))?;
    let sum1 = cosim.module_var(cid, "SUM").expect("SUM exists");
    println!("platform 1 (co-simulation, handshake unit): SUM = {sum1}");

    // --- platform 2: software-only over UNIX-IPC-style FIFO ---------------
    let mut ipc = IpcPlatform::new();
    let fifo = ipc.add_unit(StandaloneUnit::from_native(Box::new(FifoChannel::new(
        "pipe", 4,
    ))));
    ipc.add_module(&producer(), &[("chan", fifo)])?;
    let cid2 = ipc.add_module(&consumer(), &[("chan", fifo)])?;
    ipc.run(60)?;
    let sum2 = ipc.module_var(cid2, "SUM").expect("SUM exists");
    println!("platform 2 (software-only, OS FIFO):        SUM = {sum2}");

    // --- platform 3: co-synthesis onto the PC-AT + FPGA board -------------
    let mut units = HashMap::new();
    units.insert("chan".to_string(), handshake_unit("hs", Type::INT16));
    let prod_flat = flatten_module(&producer(), &units)?;
    let io = IoMap::for_module(0x300, &prod_flat);
    let prog = compile_sw(&prod_flat, &io)?;
    let cons_flat = flatten_module(&consumer(), &units)?;
    let (cons_nl, report) = synthesize_hw(&cons_flat, Encoding::Binary)?;
    let ctrl = cosma::synth::controller_module(&handshake_unit("hs", Type::INT16), "chan")?;
    let (ctrl_nl, _) = synthesize_hw(&ctrl, Encoding::Binary)?;

    let mut board = Board::new(BoardConfig::default());
    let cpu = board.add_cpu("producer", &prog).unwrap();
    board.place_netlist(&cons_nl);
    board.place_netlist(&ctrl_nl);
    board.run_for_ns(3_000_000)?;
    // The consumer's SUM lives in a fabric register.
    let sum3 = board
        .fabric()
        .reg_value("consumer", "SUM")
        .map(|w| i64::from(w as u16 as i16))
        .expect("fabric register exists");
    println!("platform 3 (PC-AT + FPGA board):            SUM = {sum3}");
    println!("           consumer hardware: {report}");
    println!(
        "           producer software: {} words, {} cpu cycles",
        prog.image.len_words(),
        board.cpu_cycles(cpu)
    );

    assert_eq!(sum1, Value::Int(expected));
    assert_eq!(sum2, Value::Int(expected));
    assert_eq!(sum3, expected);
    println!("\nall three platforms agree — same description, three architectures");
    Ok(())
}
