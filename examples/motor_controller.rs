//! The Adaptive Motor Controller case study under co-simulation
//! (Figures 4–7): the software Distribution subsystem feeds position
//! bundles to the hardware Speed Control subsystem, which drives the
//! motor plant through pulse handshakes. Prints the per-segment
//! convergence table and writes a VCD of the run.
//!
//! Run with: `cargo run --example motor_controller`

use cosma::cosim::CosimConfig;
use cosma::motor::{build_cosim, MotorConfig};
use cosma::sim::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = MotorConfig::default();
    println!(
        "trajectory: {} segments x {} counts = {} total",
        cfg.segments,
        cfg.segment_len,
        cfg.total_distance()
    );

    let mut sys = build_cosim(&cfg, CosimConfig::default())?;
    sys.cosim.sim_mut().record_vcd();

    let done = sys.run_to_completion(Duration::from_us(100), 200)?;
    println!("distribution finished: {done}");
    println!("motor position: {}", sys.motor.borrow().position());
    println!(
        "motor stats: {} steps over {} ticks ({} moving)",
        sys.motor.borrow().total_steps(),
        sys.motor.borrow().ticks(),
        sys.motor.borrow().moving_ticks()
    );

    println!("\nsegment log (trace):");
    let log = sys.cosim.trace_log();
    let sent: Vec<i64> = log
        .with_label("send_pos")
        .map(|e| e.values[0].as_int().unwrap())
        .collect();
    let states: Vec<i64> = log
        .with_label("motor_state")
        .map(|e| e.values[0].as_int().unwrap())
        .collect();
    println!("  {:>8} {:>12} {:>12}", "segment", "target", "reached");
    for (k, (t, r)) in sent.iter().zip(&states).enumerate() {
        println!("  {:>8} {:>12} {:>12}", k + 1, t, r);
    }
    println!(
        "pulse batches consumed by the motor: {}",
        log.with_label("pulse").count()
    );

    println!("\nmodule states at the end:");
    for (name, id) in [
        ("distribution", sys.distribution),
        ("position", sys.position),
        ("core", sys.core),
        ("timer", sys.timer),
    ] {
        let st = sys.cosim.module_status(id);
        println!(
            "  {name:<13} {:<12} ({} activations)",
            st.state, st.activations
        );
    }

    let kstats = sys.cosim.sim().stats();
    println!(
        "\nkernel: {} process runs, {} events, {} deltas, {} instants",
        kstats.process_runs, kstats.events, kstats.deltas, kstats.instants
    );

    if let Some(vcd) = sys.cosim.sim_mut().take_vcd() {
        let path = std::env::temp_dir().join("cosma_motor.vcd");
        std::fs::write(&path, &vcd)?;
        println!("VCD written to {} ({} bytes)", path.display(), vcd.len());
    }
    Ok(())
}
