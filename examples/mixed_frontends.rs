//! Mixed C + VHDL input (the paper's actual starting point): a software
//! module written in the C subset and a hardware entity written in the
//! VHDL subset are parsed, elaborated into the unified IR, and
//! co-simulated against each other through a handshake unit.
//!
//! Run with: `cargo run --example mixed_frontends`

use cosma::cfront;
use cosma::comm::handshake_unit;
use cosma::core::{ModuleKind, Type};
use cosma::cosim::{Cosim, CosimConfig};
use cosma::sim::Duration;
use cosma::vhdl;

/// Software side, in C: sends three samples through `put`.
const C_SRC: &str = r#"
typedef enum { Start, PutCall, Bump, Finished } ST;
ST NextState = Start;
int SAMPLE = 0;
int SENT = 0;

int SENDER()
{
    switch (NextState) {
    case Start:   { SAMPLE = 5; NextState = PutCall; } break;
    case PutCall: { if (put(SAMPLE)) { NextState = Bump; } } break;
    case Bump:
    {
        SENT = SENT + 1;
        SAMPLE = SAMPLE * 2;
        if (SENT < 3) { NextState = PutCall; }
        else          { NextState = Finished; }
    } break;
    case Finished: { } break;
    default: { NextState = Start; }
    }
    return 1;
}
"#;

/// Hardware side, in VHDL: accumulates received samples into TOTAL.
const VHDL_SRC: &str = r#"
entity RECEIVER is
  port ( TOTAL : out integer );
end entity;

architecture fsm of RECEIVER is
  signal ACC : integer := 0;
begin
  SINK : process
    variable V : integer := 0;
  begin
    get;
    if GET_DONE then
      V := GET_RESULT;
      ACC <= ACC + V;
      TOTAL <= ACC + V;
    end if;
    wait for CYCLE;
  end process;
end architecture;
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- front-ends -------------------------------------------------------
    let sender = cfront::compile_module(
        C_SRC,
        "SENDER",
        ModuleKind::Software,
        &cfront::ElabOptions {
            bindings: vec![cfront::ServiceBinding::new("iface", "hs", &["put"])],
        },
    )?;
    println!(
        "C front-end: module `{}` with {} states",
        sender.name(),
        sender.fsm().state_count()
    );

    let hw = vhdl::compile_entity(
        VHDL_SRC,
        "RECEIVER",
        &vhdl::ElabOptions {
            bindings: vec![vhdl::ServiceBinding::new("iface", "hs", &["GET"])],
        },
    )?;
    println!(
        "VHDL front-end: entity `{}` with {} process(es), {} net(s)",
        hw.name,
        hw.modules.len(),
        hw.nets.len()
    );

    // --- co-simulation ------------------------------------------------------
    let mut cosim = Cosim::new(CosimConfig::default());
    let link = cosim.add_fsm_unit("link", handshake_unit("hs", Type::INT16));
    let sender_id = cosim.add_module(&sender, &[("iface", link)])?;

    // Realize the entity's nets as kernel signals shared by its processes.
    let nets: Vec<_> = hw
        .nets
        .iter()
        .map(|n| {
            cosim
                .sim_mut()
                .add_signal(format!("RECEIVER.{}", n.name), n.ty.clone(), n.init.clone())
        })
        .collect();
    for m in &hw.modules {
        cosim.add_module_with_ports(m, &[("iface", link)], nets.clone())?;
    }

    cosim.run_for(Duration::from_us(40))?;

    let sig = cosim
        .sim()
        .find_signal("RECEIVER.TOTAL")
        .expect("net exists");
    println!("\nsender state: {}", cosim.module_status(sender_id).state);
    println!("receiver TOTAL = {:?}", cosim.sim().value(sig));
    println!("(expected 5 + 10 + 20 = 35)");

    let stats = cosim.unit_stats("link").expect("unit exists");
    println!(
        "link saw {} put / {} get completions",
        stats.services["put"].completions, stats.services["get"].completions
    );
    Ok(())
}
