//! The complete Figure 1 flow on the motor controller: the *same* system
//! description is co-simulated (validation) and then co-synthesized onto
//! the PC-AT + FPGA prototype (Figure 8), and the two runs are compared
//! event-for-event — the unified-model coherence property.
//!
//! Run with: `cargo run --example cosynthesis_flow`

use cosma::board::BoardConfig;
use cosma::cosim::CosimConfig;
use cosma::motor::{build_board, build_cosim, MotorConfig};
use cosma::sim::Duration;
use cosma::synth::Encoding;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = MotorConfig::default();

    // --- step 1: co-simulation (functional validation) -------------------
    println!("[1/3] co-simulation...");
    let mut cs = build_cosim(&cfg, CosimConfig::default())?;
    let ok = cs.run_to_completion(Duration::from_us(100), 200)?;
    println!(
        "      finished: {ok}, motor at {}",
        cs.motor.borrow().position()
    );

    // --- step 2: co-synthesis --------------------------------------------
    println!("[2/3] co-synthesis to the PC-AT + FPGA board...");
    let mut bs = build_board(&cfg, BoardConfig::default(), Encoding::Binary)?;
    println!(
        "      software: {} image words, {} I/O ports at {:#05x}",
        bs.program.image.len_words(),
        bs.program.io.entries().len(),
        bs.program.io.base()
    );
    for r in &bs.reports {
        println!("      hardware: {r}");
    }
    let total: u64 = bs.reports.iter().map(|r| r.tech.clbs).sum();
    println!("      total FPGA usage: ~{total} CLBs (XC4000-class)");

    let ok = bs.run_to_completion(1_000_000, 400)?;
    println!(
        "      board run finished: {ok}, motor at {}",
        bs.motor.borrow().position()
    );
    println!(
        "      cpu: {} cycles, bus: {:?}",
        bs.board.cpu_cycles(bs.cpu),
        bs.board.bus_stats(bs.cpu)
    );

    // --- step 3: coherence check ------------------------------------------
    println!("[3/3] coherence (co-simulation vs co-synthesis traces)...");
    let mut all_match = true;
    for label in ["send_pos", "motor_state", "pulse", "done"] {
        let a = cs.cosim.trace_log().filtered(|e| e.label == label);
        let b = bs.board.trace_log().filtered(|e| e.label == label);
        let cmp = a.compare(&b);
        println!(
            "      {label:<12} {:>4} vs {:>4} events: {} (match rate {:.0}%)",
            cmp.left_len,
            cmp.right_len,
            if cmp.is_match() { "MATCH" } else { "DIVERGE" },
            cmp.match_rate() * 100.0
        );
        all_match &= cmp.is_match();
    }
    println!("coherence: {}", if all_match { "PASS" } else { "FAIL" });
    Ok(())
}
