//! Quickstart: one description, simulated and rendered in every view.
//!
//! Builds the paper's Figure 2 scenario — a Host and a Server joined by a
//! communication unit offering `put`/`get` — co-simulates the exchange,
//! and prints the Figure 3 views of the `put` access procedure.
//!
//! Run with: `cargo run --example quickstart`

use cosma::comm::handshake_unit;
use cosma::core::{Expr, ModuleBuilder, ModuleKind, ServiceCall, Stmt, SwTarget, Type, Value};
use cosma::cosim::{Cosim, CosimConfig};
use cosma::sim::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- the communication unit (Figure 2) -----------------------------
    let link = handshake_unit("hs", Type::INT16);

    // --- the HOST: sends 3 values through put ---------------------------
    let mut host = ModuleBuilder::new("host", ModuleKind::Software);
    let done = host.var("D", Type::Bool, Value::Bool(false));
    let i = host.var("I", Type::INT16, Value::Int(0));
    let b = host.binding("iface", "hs");
    let put = host.state("PUT");
    let end = host.state("END");
    host.actions(
        put,
        vec![Stmt::Call(ServiceCall {
            binding: b,
            service: "put".into(),
            args: vec![Expr::int(100).add(Expr::var(i))],
            done: Some(done),
            result: None,
        })],
    );
    host.transition_with(
        put,
        Some(Expr::var(done).and(Expr::var(i).ge(Expr::int(2)))),
        vec![],
        end,
    );
    host.transition_with(
        put,
        Some(Expr::var(done)),
        vec![Stmt::assign(i, Expr::var(i).add(Expr::int(1)))],
        put,
    );
    host.transition(end, None, end);
    host.initial(put);
    let host = host.build()?;

    // --- the SERVER: receives and accumulates ---------------------------
    let mut server = ModuleBuilder::new("server", ModuleKind::Hardware);
    let sdone = server.var("D", Type::Bool, Value::Bool(false));
    let got = server.var("GOT", Type::INT16, Value::Int(0));
    let sum = server.var("SUM", Type::INT16, Value::Int(0));
    let sb = server.binding("iface", "hs");
    let get = server.state("GET");
    server.actions(
        get,
        vec![Stmt::Call(ServiceCall {
            binding: sb,
            service: "get".into(),
            args: vec![],
            done: Some(sdone),
            result: Some(got),
        })],
    );
    server.transition_with(
        get,
        Some(Expr::var(sdone)),
        vec![
            Stmt::assign(sum, Expr::var(sum).add(Expr::var(got))),
            Stmt::Trace("recv".into(), vec![Expr::var(got)]),
        ],
        get,
    );
    server.initial(get);
    let server = server.build()?;

    // --- co-simulate -----------------------------------------------------
    let mut cosim = Cosim::new(CosimConfig::default());
    let unit = cosim.add_fsm_unit("link", link.clone());
    cosim.add_module(&host, &[("iface", unit)])?;
    let server_id = cosim.add_module(&server, &[("iface", unit)])?;
    cosim.run_for(Duration::from_us(30))?;

    println!("== co-simulation ==");
    println!("server SUM = {:?}", cosim.module_var(server_id, "SUM"));
    for e in cosim.trace_log().entries() {
        println!(
            "  trace @{}fs {}: {} {:?}",
            e.at, e.source, e.label, e.values
        );
    }
    let stats = cosim.unit_stats("link").expect("unit exists");
    println!(
        "link: {} put completions, {} get completions, {} controller steps",
        stats.services["put"].completions,
        stats.services["get"].completions,
        stats.controller_steps
    );

    // --- the multi-view library (Figure 3) -------------------------------
    let views = cosma::core::render_service_views(
        &link,
        link.service("put").expect("put exists"),
        &SwTarget::ALL,
    );
    println!(
        "\n== SW simulation view of put (Fig. 3b) ==\n{}",
        views.sw_sim
    );
    println!(
        "== SW synthesis view for the PC-AT bus (Fig. 3a) ==\n{}",
        views.sw_synth[&SwTarget::PcAtBus]
    );
    println!("== HW view (Fig. 3c) ==\n{}", views.hw_vhdl);
    Ok(())
}
