//! Integration: the multiprocessor target (the paper's closing remark —
//! "the target architecture may be a complex multiprocessor
//! architecture") and failure-injection checks.

use cosma::board::{Board, BoardConfig};
use cosma::comm::handshake_unit;
use cosma::core::{Expr, Module, ModuleBuilder, ModuleKind, ServiceCall, Stmt, Type, Value};
use cosma::synth::{compile_sw, controller_module, flatten_module, synthesize_hw, Encoding, IoMap};
use std::collections::HashMap;

fn producer(name: &str, binding_unit: &str, base: i64, n: i64) -> Module {
    let mut p = ModuleBuilder::new(name, ModuleKind::Software);
    let done = p.var("D", Type::Bool, Value::Bool(false));
    let i = p.var("I", Type::INT16, Value::Int(0));
    let b = p.binding(binding_unit, "hs");
    let put = p.state("PUT");
    let end = p.state("END");
    p.actions(
        put,
        vec![Stmt::Call(ServiceCall {
            binding: b,
            service: "put".into(),
            args: vec![Expr::int(base).add(Expr::var(i))],
            done: Some(done),
            result: None,
        })],
    );
    p.transition_with(
        put,
        Some(Expr::var(done).and(Expr::var(i).ge(Expr::int(n - 1)))),
        vec![],
        end,
    );
    p.transition_with(
        put,
        Some(Expr::var(done)),
        vec![Stmt::assign(i, Expr::var(i).add(Expr::int(1)))],
        put,
    );
    p.transition(end, None, end);
    p.initial(put);
    p.build().expect("well-formed")
}

fn consumer(name: &str, binding_unit: &str, n: i64) -> Module {
    let mut c = ModuleBuilder::new(name, ModuleKind::Hardware);
    let done = c.var("D", Type::Bool, Value::Bool(false));
    let got = c.var("GOT", Type::INT16, Value::Int(0));
    let sum = c.var("SUM", Type::INT16, Value::Int(0));
    let cnt = c.var("N", Type::INT16, Value::Int(0));
    let b = c.binding(binding_unit, "hs");
    let get = c.state("GET");
    let end = c.state("END");
    c.actions(
        get,
        vec![Stmt::Call(ServiceCall {
            binding: b,
            service: "get".into(),
            args: vec![],
            done: Some(done),
            result: Some(got),
        })],
    );
    c.transition_with(
        get,
        Some(Expr::var(done).and(Expr::var(cnt).ge(Expr::int(n - 1)))),
        vec![Stmt::assign(sum, Expr::var(sum).add(Expr::var(got)))],
        end,
    );
    c.transition_with(
        get,
        Some(Expr::var(done)),
        vec![
            Stmt::assign(sum, Expr::var(sum).add(Expr::var(got))),
            Stmt::assign(cnt, Expr::var(cnt).add(Expr::int(1))),
        ],
        get,
    );
    c.transition(end, None, end);
    c.initial(get);
    c.build().expect("well-formed")
}

/// Two CPUs, each feeding its own hardware consumer through its own
/// handshake unit, all on one board — the multiprocessor architecture the
/// paper's conclusion mentions.
#[test]
fn dual_processor_board() {
    let hs = handshake_unit("hs", Type::INT16);
    let mut units_a = HashMap::new();
    units_a.insert("chan_a".to_string(), hs.clone());
    let mut units_b = HashMap::new();
    units_b.insert("chan_b".to_string(), hs.clone());

    let pa = flatten_module(&producer("prod_a", "chan_a", 100, 3), &units_a).expect("flattens");
    let pb = flatten_module(&producer("prod_b", "chan_b", 500, 4), &units_b).expect("flattens");
    // Distinct bus windows per CPU-side unit.
    let prog_a = compile_sw(&pa, &IoMap::for_module(0x300, &pa)).expect("compiles");
    let prog_b = compile_sw(&pb, &IoMap::for_module(0x340, &pb)).expect("compiles");

    let ca = flatten_module(&consumer("cons_a", "chan_a", 3), &units_a).expect("flattens");
    let cb = flatten_module(&consumer("cons_b", "chan_b", 4), &units_b).expect("flattens");
    let (nl_ca, _) = synthesize_hw(&ca, Encoding::Binary).expect("synthesizes");
    let (nl_cb, _) = synthesize_hw(&cb, Encoding::OneHot).expect("synthesizes");
    let (nl_ctrl_a, _) = synthesize_hw(
        &controller_module(&hs, "chan_a").expect("ctrl"),
        Encoding::Binary,
    )
    .expect("synthesizes");
    let (nl_ctrl_b, _) = synthesize_hw(
        &controller_module(&hs, "chan_b").expect("ctrl"),
        Encoding::Binary,
    )
    .expect("synthesizes");

    let mut board = Board::new(BoardConfig::default());
    board.add_cpu("cpu_a", &prog_a).unwrap();
    board.add_cpu("cpu_b", &prog_b).unwrap();
    for nl in [&nl_ca, &nl_cb, &nl_ctrl_a, &nl_ctrl_b] {
        board.place_netlist(nl);
    }
    board.run_for_ns(5_000_000).expect("runs");

    let sum_a = board
        .fabric()
        .reg_value("cons_a", "SUM")
        .map(|w| w as u16 as i16 as i64);
    let sum_b = board
        .fabric()
        .reg_value("cons_b", "SUM")
        .map(|w| w as u16 as i16 as i64);
    assert_eq!(sum_a, Some(100 + 101 + 102));
    assert_eq!(sum_b, Some(500 + 501 + 502 + 503));
    assert_eq!(
        board.fabric().conflicts,
        0,
        "independent channels never conflict"
    );
}

/// Failure injection: a bus-wait-state storm slows the software but the
/// protocols still deliver everything (speed-mismatch robustness at the
/// system level).
#[test]
fn wait_state_storm_does_not_break_protocols() {
    let hs = handshake_unit("hs", Type::INT16);
    let mut units = HashMap::new();
    units.insert("chan".to_string(), hs.clone());
    let p = flatten_module(&producer("prod", "chan", 10, 4), &units).expect("flattens");
    let prog = compile_sw(&p, &IoMap::for_module(0x300, &p)).expect("compiles");
    let c = flatten_module(&consumer("cons", "chan", 4), &units).expect("flattens");
    let (nl_c, _) = synthesize_hw(&c, Encoding::Binary).expect("synthesizes");
    let (nl_ctrl, _) = synthesize_hw(
        &controller_module(&hs, "chan").expect("ctrl"),
        Encoding::Binary,
    )
    .expect("synthesizes");

    // 60 wait cycles per transfer: every bus access costs ~4 us.
    let cfg = BoardConfig {
        bus_wait_cycles: 60,
        ..BoardConfig::default()
    };
    let mut board = Board::new(cfg);
    board.add_cpu("prod", &prog).unwrap();
    board.place_netlist(&nl_c);
    board.place_netlist(&nl_ctrl);
    board.run_for_ns(30_000_000).expect("runs");
    let sum = board
        .fabric()
        .reg_value("cons", "SUM")
        .map(|w| w as u16 as i16 as i64);
    assert_eq!(sum, Some(10 + 11 + 12 + 13));
}

/// Failure injection: unmapped bus accesses are counted, not fatal.
#[test]
fn unmapped_bus_access_is_observable() {
    // A program poking an address outside its map.
    let mut b = ModuleBuilder::new("stray", ModuleKind::Software);
    let p = b.port("KNOWN", cosma::core::PortDir::Out, Type::INT16);
    let s = b.state("S");
    let e = b.state("E");
    b.actions(s, vec![Stmt::drive(p, Expr::int(1))]);
    b.transition(s, None, e);
    b.transition(e, None, e);
    b.initial(s);
    let m = b.build().expect("well-formed");
    let mut io = IoMap::new(0x300);
    io.add("KNOWN");
    let mut prog = compile_sw(&m, &io).expect("compiles");
    // Append a stray OUT by hand-editing the assembly and reassembling.
    let patched = prog
        .asm
        .replace("OUT 0x0300, r0", "OUT 0x0300, r0\n        OUT 0x0999, r0");
    assert_ne!(patched, prog.asm, "patch applied");
    prog.image = cosma::isa::assemble(&patched).expect("assembles");
    let mut board = Board::new(BoardConfig::default());
    let cpu = board.add_cpu("stray", &prog).unwrap();
    board
        .run_for_ns(100_000)
        .expect("runs despite stray access");
    assert!(board.bus_stats(cpu).unmapped > 0);
    assert_eq!(
        board.bank().read_named("KNOWN"),
        Some(1),
        "mapped traffic unaffected"
    );
}

/// X-propagation in the kernel: an uninitialized (X) control signal makes
/// a guard unknown, and the co-simulation reports it as an error instead
/// of silently picking a branch.
#[test]
fn unknown_control_is_reported_not_guessed() {
    use cosma::cosim::{Cosim, CosimConfig, CosimError};
    use cosma::sim::Duration;
    let mut b = ModuleBuilder::new("xprop", ModuleKind::Hardware);
    let sel = b.port("SEL", cosma::core::PortDir::In, Type::Bit);
    let s = b.state("S");
    // Guard is the raw bit: truthiness of 'X' is undefined.
    b.transition(s, Some(Expr::port(sel)), s);
    b.initial(s);
    let m = b.build().expect("well-formed");
    let mut cosim = Cosim::new(CosimConfig::default());
    cosim.add_module(&m, &[]).expect("added");
    let sig = cosim.sim().find_signal("xprop.SEL").expect("signal exists");
    cosim.sim_mut().poke(sig, Value::Bit(cosma::core::Bit::X));
    let err = cosim.run_for(Duration::from_us(1)).unwrap_err();
    assert!(matches!(err, CosimError::Runtime(_)));
    assert!(err.to_string().contains("X/Z"), "{err}");
}

/// Whole-System co-synthesis: build a validated System once, synthesize
/// it in one call, install it on a board, and watch the unchanged
/// behaviour — the complete Figure 1 bottom path as a single API flow.
#[test]
fn system_level_synthesis_runs_on_the_board() {
    use cosma::core::SystemBuilder;
    use cosma::synth::synthesize_system;

    let mut sb = SystemBuilder::new("pc_demo");
    let pm = sb.module(producer("producer", "chan", 30, 3));
    let cm = sb.module(consumer("consumer", "chan", 3));
    let u = sb.unit("chan", handshake_unit("hs", Type::INT16));
    sb.bind(pm, "chan", u).expect("bind producer");
    sb.bind(cm, "chan", u).expect("bind consumer");
    let sys = sb.build().expect("system validates");

    let synth = synthesize_system(&sys, 0x300, Encoding::Binary).expect("synthesizes");
    assert_eq!(synth.programs.len(), 1);
    assert_eq!(synth.netlists.len(), 2, "consumer + controller");

    let mut board = Board::new(BoardConfig::default());
    let cpus = board.install_synthesis(&synth).unwrap();
    assert_eq!(cpus.len(), 1);
    board.run_for_ns(4_000_000).expect("runs");
    let sum = board
        .fabric()
        .reg_value("consumer", "SUM")
        .map(|w| w as u16 as i16 as i64);
    assert_eq!(sum, Some(30 + 31 + 32));

    // And the same System object co-simulates unchanged (coherence at the
    // System API level).
    use cosma::cosim::{Cosim, CosimConfig};
    use cosma::sim::Duration;
    let mut cosim = Cosim::new(CosimConfig::default());
    let ids = cosim.add_system(&sys).expect("assembles");
    cosim.run_for(Duration::from_us(60)).expect("runs");
    assert_eq!(
        cosim.module_var(ids[1], "SUM"),
        Some(Value::Int(30 + 31 + 32))
    );
}
