//! Steady-state allocation regression gate (behind the test-only
//! `count-allocs` feature): a counting global allocator pins a *warm*
//! trace-heavy pipeline in the speculative regime to **zero** heap
//! allocations per cycle.
//!
//! The scenario is chosen to cross every pooled hot path at once:
//!
//! * trace-heavy (`ScenarioSpec::trace`): every module records a trace
//!   entry per activation, so nothing parks and the columnar log's
//!   segment pool and spill recycling are exercised each cycle;
//! * speculative (`Parallelism::Threads(1)` + `step_fanout_min: 1`):
//!   the two-phase step/commit driver runs with scratch arenas and
//!   work-stealing chunks on the kernel thread alone — no worker
//!   channel traffic to muddy the count;
//! * adjacent relays share links, so commit-phase divergences occur and
//!   the pooled fallback re-execution path is measured too.
//!
//! Run with: `cargo test --features count-allocs --test alloc`
#![cfg(feature = "count-allocs")]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use cosma::cosim::scenario::{build_scenario, DomainsSpec, LinkKind, ScenarioSpec, Topology};
use cosma::cosim::{BusTiming, Parallelism, SchedulingConfig};
use cosma::sim::Duration;

/// Counts every heap acquisition (alloc, zeroed alloc, realloc) while
/// delegating to the system allocator. Deallocations are not counted:
/// the gate is about *acquiring* memory in the steady state.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// The counting allocator is process-global, so gate tests must not
/// overlap: each takes this lock for its warm-up + window.
static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn warm_trace_heavy_speculative_cycles_do_not_allocate() {
    let _serial = GATE.lock().unwrap();
    // A Ring keeps every module stepping for the whole run: the driver
    // circulates values_per_link tokens (far more than the run needs),
    // the relays forward forever, and tracing keeps everyone unparked.
    let spec = ScenarioSpec {
        units: 8,
        topology: Topology::Ring,
        values_per_link: 1_000_000,
        link: LinkKind::Batched {
            max_batch: 8,
            capacity: 32,
            timing: BusTiming::LengthOnly,
        },
        scheduling: SchedulingConfig {
            parallelism: Parallelism::Threads(1),
            step_fanout_min: 1,
            ..SchedulingConfig::sharded()
        },
        trace: true,
        ..ScenarioSpec::default()
    };
    let mut s = build_scenario(&spec).expect("scenario builds");
    // Spill the trace log so recording runs in bounded memory: full
    // segments are encoded to the sink and their shells recycled, so a
    // warm log never grows.
    s.cosim
        .trace_handle()
        .borrow_mut()
        .set_spill(Box::new(std::io::sink()));
    // Warm-up: grow every pool to its working set — scratch shells,
    // effects arenas, kernel queues, trace segments, interner.
    s.cosim
        .run_for(Duration::from_us(60))
        .expect("warm-up runs");
    assert!(
        s.cosim.trace_handle().borrow().spilled() > 0,
        "warm-up must already spill trace segments (trace-heavy regime)"
    );
    let before = allocs();
    s.cosim.run_for(Duration::from_us(60)).expect("window runs");
    let grew = allocs() - before;
    assert_eq!(
        grew, 0,
        "warm steady-state cycles must not allocate, saw {grew} allocations"
    );
}

#[test]
fn warm_streaming_payload_beats_do_not_allocate() {
    let _serial = GATE.lock().unwrap();
    // A Ring of batched PayloadBeats links: every transaction that wins
    // arbitration burst-schedules its remaining DATA/B_VALID beats as a
    // drive train, so the warm window continuously exercises the timer
    // wheel's bulk-insert shells, slot-vector recycling and the
    // `take_due` compaction swap alongside the streaming link pumps.
    // The warm-up is long enough for every level-0 and level-1 slot the
    // traffic touches to have been occupied (and its vector retained)
    // at least once.
    let spec = ScenarioSpec {
        units: 8,
        topology: Topology::Ring,
        values_per_link: 1_000_000,
        link: LinkKind::Batched {
            max_batch: 8,
            capacity: 32,
            timing: BusTiming::PayloadBeats,
        },
        scheduling: SchedulingConfig::sharded(),
        trace: false,
        ..ScenarioSpec::default()
    };
    let mut s = build_scenario(&spec).expect("scenario builds");
    s.cosim
        .run_for(Duration::from_us(100))
        .expect("warm-up runs");
    let stats = s.cosim.sim().stats();
    assert!(
        stats.bulk_inserts > 0,
        "payload-beat bursts must bulk-insert into the wheel: {stats:?}"
    );
    let before = allocs();
    s.cosim.run_for(Duration::from_us(60)).expect("window runs");
    let grew = allocs() - before;
    assert_eq!(
        grew, 0,
        "warm streaming payload-beat cycles must not allocate, saw {grew} allocations"
    );
}

#[test]
fn warm_multi_rate_ring_cycles_do_not_allocate() {
    let _serial = GATE.lock().unwrap();
    // A multi-rate Ring: the first link and the modules touching it run
    // in a quarter-rate clock domain, so the warm window exercises the
    // per-domain clock generators, the domain-keyed shard park/demand
    // accounting, and cross-rate link pumps — none of which may
    // allocate once the pools are warm.
    let spec = ScenarioSpec {
        units: 8,
        topology: Topology::Ring,
        values_per_link: 1_000_000,
        link: LinkKind::Batched {
            max_batch: 8,
            capacity: 32,
            timing: BusTiming::LengthOnly,
        },
        scheduling: SchedulingConfig::sharded(),
        trace: true,
        domains: DomainsSpec {
            ratio: (4, 1),
            slow_links: 1,
        },
        ..ScenarioSpec::default()
    };
    let mut s = build_scenario(&spec).expect("scenario builds");
    s.cosim
        .trace_handle()
        .borrow_mut()
        .set_spill(Box::new(std::io::sink()));
    assert!(s.cosim.domain_count() > 1, "second clock domain installed");
    s.cosim
        .run_for(Duration::from_us(100))
        .expect("warm-up runs");
    let before = allocs();
    s.cosim.run_for(Duration::from_us(60)).expect("window runs");
    let grew = allocs() - before;
    assert_eq!(
        grew, 0,
        "warm multi-rate ring cycles must not allocate, saw {grew} allocations"
    );
}
