//! Integration: the coherence property — co-simulation and co-synthesis
//! of the same description produce the same event sequences.

use cosma::board::BoardConfig;
use cosma::cosim::CosimConfig;
use cosma::motor::{build_board, build_cosim, MotorConfig};
use cosma::sim::Duration;
use cosma::synth::Encoding;

fn small_cfg() -> MotorConfig {
    MotorConfig {
        segments: 3,
        segment_len: 15,
        ..MotorConfig::default()
    }
}

#[test]
fn motor_system_coherent_across_flows() {
    let cfg = small_cfg();
    let mut cs = build_cosim(&cfg, CosimConfig::default()).expect("cosim assembles");
    assert!(
        cs.run_to_completion(Duration::from_us(100), 200)
            .expect("cosim runs"),
        "co-simulation completes"
    );
    let mut bs =
        build_board(&cfg, BoardConfig::default(), Encoding::Binary).expect("board assembles");
    assert!(
        bs.run_to_completion(1_000_000, 400).expect("board runs"),
        "board completes"
    );

    assert_eq!(cs.motor.borrow().position(), cfg.total_distance());
    assert_eq!(bs.motor.borrow().position(), cfg.total_distance());

    // Event-for-event trace equality per label.
    for label in ["send_pos", "motor_state", "pulse", "done"] {
        let a = cs.cosim.trace_log().filtered(|e| e.label == label);
        let b = bs.board.trace_log().filtered(|e| e.label == label);
        let cmp = a.compare(&b);
        assert!(cmp.is_match(), "label {label}: {cmp}");
        assert!(!a.is_empty(), "label {label} must have events");
    }
}

#[test]
fn coherence_holds_for_every_encoding() {
    // The hardware state encoding is an implementation choice; behaviour
    // must not depend on it.
    let cfg = MotorConfig {
        segments: 2,
        segment_len: 10,
        ..MotorConfig::default()
    };
    let mut reference: Option<Vec<i64>> = None;
    for enc in Encoding::ALL {
        let mut bs = build_board(&cfg, BoardConfig::default(), enc).expect("assembles");
        assert!(
            bs.run_to_completion(1_000_000, 400).expect("runs"),
            "completes under {enc}"
        );
        let pulses: Vec<i64> = bs
            .board
            .trace_log()
            .with_label("pulse")
            .map(|e| e.values[0].as_int().unwrap())
            .collect();
        match &reference {
            None => reference = Some(pulses),
            Some(r) => assert_eq!(r, &pulses, "encoding {enc} changed behaviour"),
        }
    }
}

#[test]
fn cosim_timing_change_preserves_events() {
    // Slowing the SW activation clock must not change the event sequence
    // (only its timing) — the protocols synchronize, not the clocks.
    let cfg = small_cfg();
    let mut fast = build_cosim(&cfg, CosimConfig::default()).expect("assembles");
    assert!(fast
        .run_to_completion(Duration::from_us(100), 300)
        .expect("runs"));
    let slow_cfg = CosimConfig {
        sw_cycle: Duration::from_ns(700),
        ..CosimConfig::default()
    };
    let mut slow = build_cosim(&cfg, slow_cfg).expect("assembles");
    assert!(slow
        .run_to_completion(Duration::from_us(100), 300)
        .expect("runs"));
    for label in ["send_pos", "motor_state", "done"] {
        let a = fast.cosim.trace_log().filtered(|e| e.label == label);
        let b = slow.cosim.trace_log().filtered(|e| e.label == label);
        assert!(
            a.compare(&b).is_match(),
            "label {label} diverged under clock change"
        );
    }
}

#[test]
fn back_annotation_improves_timing_prediction() {
    use cosma::cosim::{back_annotate, timing_error};
    let cfg = small_cfg();
    let labels = ["send_pos", "motor_state", "pulse"];
    let nominal = CosimConfig::default();
    let mut cs = build_cosim(&cfg, nominal).expect("assembles");
    assert!(cs
        .run_to_completion(Duration::from_us(100), 300)
        .expect("runs"));
    let mut bs = build_board(&cfg, BoardConfig::default(), Encoding::Binary).expect("assembles");
    assert!(bs.run_to_completion(1_000_000, 600).expect("runs"));
    let board_log = bs.board.trace_log();

    let before = timing_error(&cs.cosim.trace_log(), &board_log, &labels).expect("events exist");
    // Iterate the annotation to a fixed point.
    let mut sw_cycle = nominal.sw_cycle;
    let mut last_log = cs.cosim.trace_log();
    for _ in 0..8 {
        let Some(ann) = back_annotate(&last_log, &board_log, &labels, sw_cycle) else {
            break;
        };
        if (ann.scale - 1.0).abs() < 0.02 {
            break;
        }
        sw_cycle = ann.annotated_sw_cycle;
        let mut rerun = build_cosim(
            &cfg,
            CosimConfig {
                sw_cycle,
                ..nominal
            },
        )
        .expect("assembles");
        assert!(rerun
            .run_to_completion(Duration::from_us(500), 600)
            .expect("runs"));
        last_log = rerun.cosim.trace_log();
    }
    let after = timing_error(&last_log, &board_log, &labels).expect("events exist");
    assert!(
        after < before / 5.0,
        "annotation should cut the timing error substantially: {before:.3} -> {after:.3}"
    );
    // Functionality unchanged by annotation.
    for label in labels {
        let a = board_log.filtered(|e| e.label == label);
        let b = last_log.filtered(|e| e.label == label);
        assert!(
            a.compare(&b).is_match(),
            "label {label} diverged under annotation"
        );
    }
}

#[test]
fn synthesized_netlists_emit_structural_vhdl() {
    use cosma::synth::netlist_to_vhdl;
    let cfg = small_cfg();
    let bs = build_board(&cfg, BoardConfig::default(), Encoding::Binary).expect("assembles");
    // Re-synthesize the units to get their netlists for emission.
    let mut units = std::collections::HashMap::new();
    units.insert("swhw".to_string(), cosma::motor::swhw_link_unit());
    units.insert("mlink".to_string(), cosma::motor::motor_link_unit());
    for module in [
        cosma::motor::position_module(&cfg),
        cosma::motor::core_module(),
        cosma::motor::timer_module(&cfg),
    ] {
        let flat = cosma::synth::flatten_module(&module, &units).expect("flattens");
        let (nl, _) = cosma::synth::synthesize_hw(&flat, Encoding::Binary).expect("synthesizes");
        let vhdl = netlist_to_vhdl(&nl);
        assert!(vhdl.contains("entity "), "entity present");
        assert!(
            vhdl.contains("rising_edge(CLK)"),
            "clocked registers present"
        );
        assert!(vhdl.lines().count() > 50, "non-trivial structural body");
    }
    drop(bs);
}
