//! Integration: the synthesized artifacts (RTL netlists, MC16 programs)
//! are behaviourally equivalent to the interpreted FSMs they came from.

use cosma::core::{
    Expr, FsmExec, MapEnv, Module, ModuleBuilder, ModuleKind, PortDir, Stmt, Type, Value,
};
use cosma::motor::{core_module, motor_link_unit, MotorConfig};
use cosma::synth::{compile_sw, flatten_module, synthesize_hw, Encoding, IoMap};
use std::collections::HashMap;

/// Steps a module through the interpreter and a synthesized netlist with
/// identical inputs, checking every variable every cycle.
fn assert_netlist_equiv(module: &Module, inputs: &[Vec<Value>], cycles: usize, enc: Encoding) {
    let (nl, _) = synthesize_hw(module, enc).expect("synthesizes");
    let mut sim = nl.simulator();
    let mut env = MapEnv::new();
    for p in module.ports() {
        env.add_port(p.ty().clone(), p.ty().default_value());
    }
    for v in module.vars() {
        env.add_var(v.ty().clone(), v.init().clone());
    }
    let mut exec = FsmExec::new(module.fsm());
    for cyc in 0..cycles {
        let cycle_inputs = &inputs[cyc % inputs.len()];
        for (pi, v) in cycle_inputs.iter().enumerate() {
            env.set_port(cosma::core::ids::PortId::new(pi as u32), v.clone());
        }
        exec.step(module.fsm(), &mut env)
            .expect("interpreter steps");
        let words: Vec<u64> = cycle_inputs
            .iter()
            .zip(module.ports())
            .map(|(v, p)| v.to_bus_word(p.ty().bit_width()))
            .collect();
        sim.step(&words);
        for (vi, var) in module.vars().iter().enumerate() {
            let reg = nl.find_reg(var.name()).expect("register exists");
            let expected = env
                .var(cosma::core::ids::VarId::new(vi as u32))
                .to_bus_word(var.ty().bit_width());
            assert_eq!(
                sim.reg_value(reg),
                expected,
                "cycle {cyc}, module {}, var {} under {enc}",
                module.name(),
                var.name()
            );
        }
    }
}

#[test]
fn flattened_core_module_netlist_matches_interpreter() {
    // The motor's Core unit flattened over the motor_link unit: its ports
    // become [SC_TARGET, SC_RESIDUAL, SC_SAMPLED, mlink wires...]; we
    // drive the readable ones with a deterministic pattern.
    let mut units = HashMap::new();
    units.insert("mlink".to_string(), motor_link_unit());
    let flat = flatten_module(&core_module(), &units).expect("flattens");

    // Build an input pattern per port: targets vary, sampled pos ramps.
    let mut patterns: Vec<Vec<Value>> = vec![];
    for k in 0..8i64 {
        let mut row = vec![];
        for p in flat.ports() {
            let v = match p.name() {
                "SC_TARGET" => Value::Int(40 + k),
                "mlink_SAMPLED_POS" => Value::Int(3 * k),
                _ => p.ty().default_value(),
            };
            row.push(v);
        }
        patterns.push(row);
    }
    for enc in Encoding::ALL {
        assert_netlist_equiv(&flat, &patterns, 32, enc);
    }
}

#[test]
fn arithmetic_module_netlist_matches_interpreter() {
    // A module exercising the full expression repertoire over an input.
    let mut b = ModuleBuilder::new("alu", ModuleKind::Hardware);
    let x = b.port("X", PortDir::In, Type::INT16);
    let y = b.port("Y", PortDir::In, Type::INT16);
    let sum = b.var("SUM", Type::INT16, Value::Int(0));
    let prod = b.var("PROD", Type::INT16, Value::Int(0));
    let cmp = b.var("CMP", Type::Bool, Value::Bool(false));
    let acc = b.var("ACC", Type::INT16, Value::Int(0));
    let s = b.state("S");
    b.actions(
        s,
        vec![
            Stmt::assign(sum, Expr::port(x).add(Expr::port(y))),
            Stmt::assign(prod, Expr::port(x).mul(Expr::port(y))),
            Stmt::assign(cmp, Expr::port(x).lt(Expr::port(y))),
            Stmt::if_else(
                Expr::var(cmp),
                vec![Stmt::assign(acc, Expr::var(acc).add(Expr::int(1)))],
                vec![Stmt::assign(acc, Expr::var(acc).sub(Expr::int(2)))],
            ),
        ],
    );
    b.transition(s, None, s);
    b.initial(s);
    let m = b.build().unwrap();

    let patterns: Vec<Vec<Value>> = vec![
        vec![Value::Int(5), Value::Int(9)],
        vec![Value::Int(-3), Value::Int(3)],
        vec![Value::Int(1000), Value::Int(-1000)],
        vec![Value::Int(0), Value::Int(0)],
        vec![Value::Int(-32768), Value::Int(32767)],
    ];
    for enc in Encoding::ALL {
        assert_netlist_equiv(&m, &patterns, 25, enc);
    }
}

#[test]
fn mc16_program_matches_interpreter_for_pure_compute() {
    // A computational module with no ports: run N activations on the
    // interpreter and let the MC16 run freely, then compare variables
    // after it stabilizes at the END state.
    let mut b = ModuleBuilder::new("fib", ModuleKind::Software);
    let a = b.var("A", Type::INT16, Value::Int(0));
    let bb = b.var("B", Type::INT16, Value::Int(1));
    let t = b.var("T", Type::INT16, Value::Int(0));
    let n = b.var("N", Type::INT16, Value::Int(0));
    let run = b.state("RUN");
    let end = b.state("END");
    b.actions(
        run,
        vec![
            Stmt::assign(t, Expr::var(a).add(Expr::var(bb))),
            Stmt::assign(a, Expr::var(bb)),
            Stmt::assign(bb, Expr::var(t)),
            Stmt::assign(n, Expr::var(n).add(Expr::int(1))),
        ],
    );
    b.transition(run, Some(Expr::var(n).ge(Expr::int(15))), end);
    b.transition(run, None, run);
    b.transition(end, None, end);
    b.initial(run);
    let m = b.build().unwrap();

    // Interpreter reference.
    let mut env = MapEnv::new();
    for v in m.vars() {
        env.add_var(v.ty().clone(), v.init().clone());
    }
    let mut exec = FsmExec::new(m.fsm());
    for _ in 0..40 {
        exec.step(m.fsm(), &mut env).unwrap();
    }

    // MC16 run.
    let prog = compile_sw(&m, &IoMap::new(0x300)).expect("compiles");
    let mut cpu = cosma::isa::Cpu::new();
    cpu.load_image(&prog.image);
    let mut bus = cosma::isa::NullBus;
    cpu.run(&mut bus, 200_000).expect("runs");
    for (name, vid) in [("A", a), ("B", bb), ("N", n)] {
        let expect = env.var(vid).to_bus_word(16) as u16;
        assert_eq!(cpu.mem(prog.var_addrs[name]), expect, "var {name}");
    }
}

#[test]
fn synthesis_reports_are_plausible() {
    let cfg = MotorConfig::default();
    let mut units = HashMap::new();
    units.insert("mlink".to_string(), motor_link_unit());
    units.insert("swhw".to_string(), cosma::motor::swhw_link_unit());
    for module in [
        cosma::motor::position_module(&cfg),
        core_module(),
        cosma::motor::timer_module(&cfg),
    ] {
        let flat = flatten_module(&module, &units).expect("flattens");
        let (nl, report) = synthesize_hw(&flat, Encoding::Binary).expect("synthesizes");
        assert!(report.tech.luts > 0, "{}", report);
        assert!(report.tech.ffs > 0, "{}", report);
        assert!(report.tech.fmax_mhz > 1.0, "{}", report);
        assert!(nl.node_count() > 10);
        // The paper's prototype ran the bus at 10 MHz; the synthesized
        // fabric must comfortably close timing at that clock.
        assert!(
            report.tech.fmax_mhz > 10.0,
            "too slow for the 10 MHz fabric: {report}"
        );
    }
}
