//! Integration: mixed C + VHDL input through the front-ends into a joint
//! co-simulation — the paper's actual starting point (Figure 1's top).

use cosma::cfront;
use cosma::comm::handshake_unit;
use cosma::core::{ModuleKind, Type, Value};
use cosma::cosim::{Cosim, CosimConfig};
use cosma::sim::Duration;
use cosma::vhdl;

const C_SENDER: &str = r#"
typedef enum { Start, PutCall, Bump, Finished } ST;
ST NextState = Start;
int SAMPLE = 0;
int SENT = 0;

int SENDER()
{
    switch (NextState) {
    case Start:   { SAMPLE = 7; NextState = PutCall; } break;
    case PutCall: { if (put(SAMPLE)) { NextState = Bump; } } break;
    case Bump:
    {
        SENT = SENT + 1;
        SAMPLE = SAMPLE + 10;
        if (SENT < 5) { NextState = PutCall; }
        else          { NextState = Finished; }
    } break;
    case Finished: { } break;
    default: { NextState = Start; }
    }
    return 1;
}
"#;

const VHDL_RECEIVER: &str = r#"
entity RECEIVER is
  port ( TOTAL : out integer; COUNT : out integer );
end entity;

architecture fsm of RECEIVER is
  signal ACC : integer := 0;
  signal N : integer := 0;
begin
  SINK : process
    variable V : integer := 0;
  begin
    get;
    if GET_DONE then
      V := GET_RESULT;
      ACC <= ACC + V;
      TOTAL <= ACC + V;
      N <= N + 1;
      COUNT <= N + 1;
    end if;
    wait for CYCLE;
  end process;
end architecture;
"#;

#[test]
fn c_and_vhdl_cosimulate_through_a_unit() {
    let sender = cfront::compile_module(
        C_SENDER,
        "SENDER",
        ModuleKind::Software,
        &cfront::ElabOptions {
            bindings: vec![cfront::ServiceBinding::new("iface", "hs", &["put"])],
        },
    )
    .expect("C module elaborates");
    assert_eq!(sender.kind(), ModuleKind::Software);

    let hw = vhdl::compile_entity(
        VHDL_RECEIVER,
        "RECEIVER",
        &vhdl::ElabOptions {
            bindings: vec![vhdl::ServiceBinding::new("iface", "hs", &["GET"])],
        },
    )
    .expect("VHDL entity elaborates");
    assert_eq!(hw.modules.len(), 1);

    let mut cosim = Cosim::new(CosimConfig::default());
    let link = cosim.add_fsm_unit("link", handshake_unit("hs", Type::INT16));
    let sender_id = cosim
        .add_module(&sender, &[("iface", link)])
        .expect("sender added");
    let nets: Vec<_> = hw
        .nets
        .iter()
        .map(|n| {
            cosim
                .sim_mut()
                .add_signal(format!("RECEIVER.{}", n.name), n.ty.clone(), n.init.clone())
        })
        .collect();
    for m in &hw.modules {
        cosim
            .add_module_with_ports(m, &[("iface", link)], nets.clone())
            .expect("receiver added");
    }
    cosim
        .run_for(Duration::from_us(60))
        .expect("co-simulation runs");

    // 7 + 17 + 27 + 37 + 47 = 135.
    let total = cosim
        .sim()
        .value(cosim.sim().find_signal("RECEIVER.TOTAL").unwrap());
    assert_eq!(total, &Value::Int(135));
    let count = cosim
        .sim()
        .value(cosim.sim().find_signal("RECEIVER.COUNT").unwrap());
    assert_eq!(count, &Value::Int(5));
    assert_eq!(cosim.module_status(sender_id).state, "Finished");

    let stats = cosim.unit_stats("link").expect("unit exists");
    assert_eq!(stats.services["put"].completions, 5);
    // The VHDL receiver calls "GET"; stats land in the canonical
    // lower-case row the spec declares (one session, one row — the
    // upper-cased spelling no longer forks either).
    assert_eq!(stats.services["get"].completions, 5);
    assert!(!stats.services.contains_key("GET"));
}

#[test]
fn front_end_views_round_trip_through_renderers() {
    // Elaborate from C, render back to C: the regenerated code preserves
    // the FSM skeleton (same state set).
    let sender = cfront::compile_module(
        C_SENDER,
        "SENDER",
        ModuleKind::Software,
        &cfront::ElabOptions {
            bindings: vec![cfront::ServiceBinding::new("iface", "hs", &["put"])],
        },
    )
    .unwrap();
    let text = cosma::core::render_module(&sender, cosma::core::View::SwSim);
    for st in ["Start", "PutCall", "Bump", "Finished"] {
        assert!(text.contains(&format!("case {st}")), "{text}");
    }
    let vhdl_text = cosma::core::render_module(&sender, cosma::core::View::Hw);
    assert!(vhdl_text.contains("entity SENDER"), "{vhdl_text}");
}

#[test]
fn same_description_both_flows_from_source() {
    // Parse once, use for co-simulation AND co-synthesis (coherence from
    // the same source text).
    use cosma::synth::{compile_sw, flatten_module, IoMap};
    use std::collections::HashMap;

    let sender = cfront::compile_module(
        C_SENDER,
        "SENDER",
        ModuleKind::Software,
        &cfront::ElabOptions {
            bindings: vec![cfront::ServiceBinding::new("iface", "hs", &["put"])],
        },
    )
    .unwrap();

    let mut units = HashMap::new();
    units.insert("iface".to_string(), handshake_unit("hs", Type::INT16));
    let flat = flatten_module(&sender, &units).expect("flattens");
    let prog = compile_sw(&flat, &IoMap::for_module(0x300, &flat)).expect("compiles");
    assert!(prog.image.len_words() > 50, "non-trivial program generated");
    assert!(prog.asm.contains("IN r0"), "bus polling code present");
    assert!(prog.asm.contains("OUT 0x03"), "bus drive code present");
}
