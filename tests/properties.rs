//! Property-based tests over the core invariants.

use cosma::comm::{CallerId, FifoChannel, NativeUnit};
use cosma::core::{Expr, FsmExec, MapEnv, ModuleBuilder, ModuleKind, PortDir, Stmt, Type, Value};
use cosma::isa::{disassemble, Instr, Reg};
use cosma::synth::{synthesize_hw, Encoding};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// FIFO: never loses, duplicates or reorders messages.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn fifo_preserves_message_stream(
        ops in proptest::collection::vec(any::<bool>(), 1..200),
        values in proptest::collection::vec(-3000i64..3000, 1..200),
        cap in 1usize..16,
    ) {
        let mut fifo = FifoChannel::new("q", cap);
        let mut sent = vec![];
        let mut received = vec![];
        let mut vi = 0;
        for &is_put in &ops {
            if is_put {
                let v = values[vi % values.len()];
                vi += 1;
                if fifo.call(CallerId(0), "put", &[Value::Int(v)]).unwrap().done {
                    sent.push(v);
                }
            } else if let Some(Value::Int(v)) =
                fifo.call(CallerId(1), "get", &[]).unwrap().result
            {
                received.push(v);
            }
        }
        // Drain what remains.
        while let Some(Value::Int(v)) = fifo.call(CallerId(1), "get", &[]).unwrap().result {
            received.push(v);
        }
        prop_assert_eq!(sent, received);
    }
}

// ---------------------------------------------------------------------
// Assembler: encode/decode round trip over arbitrary instruction mixes.
// ---------------------------------------------------------------------

fn arb_instr() -> impl Strategy<Value = Instr> {
    let r = || (0u8..8).prop_map(Reg);
    prop_oneof![
        Just(Instr::Nop),
        (r(), any::<u16>()).prop_map(|(rd, i)| Instr::Ldi(rd, i)),
        (r(), r()).prop_map(|(rd, rs)| Instr::Mov(rd, rs)),
        (r(), r()).prop_map(|(rd, rs)| Instr::Add(rd, rs)),
        (r(), r()).prop_map(|(rd, rs)| Instr::Sub(rd, rs)),
        (r(), r()).prop_map(|(rd, rs)| Instr::Mul(rd, rs)),
        (r(), any::<u16>()).prop_map(|(rd, i)| Instr::Cmpi(rd, i)),
        (r(), any::<u16>()).prop_map(|(rd, a)| Instr::Ld(rd, a)),
        (any::<u16>(), r()).prop_map(|(a, rs)| Instr::St(a, rs)),
        (r(), any::<u16>()).prop_map(|(rd, p)| Instr::In(rd, p)),
        (any::<u16>(), r()).prop_map(|(p, rs)| Instr::Out(p, rs)),
        any::<u16>().prop_map(Instr::Jmp),
        any::<u16>().prop_map(Instr::Jz),
        any::<u16>().prop_map(Instr::Jc),
        r().prop_map(Instr::Push),
        r().prop_map(Instr::Pop),
        any::<u16>().prop_map(Instr::Call),
        Just(Instr::Ret),
    ]
}

proptest! {
    #[test]
    fn instruction_stream_round_trips(instrs in proptest::collection::vec(arb_instr(), 1..60)) {
        // Lay the instructions into memory and disassemble them back.
        let mut mem = vec![0u16; 4096];
        let mut addr = 0u16;
        let mut expect = vec![];
        for i in &instrs {
            let (w, imm) = i.encode();
            mem[addr as usize] = w;
            expect.push((addr, *i));
            addr += 1;
            if let Some(imm) = imm {
                mem[addr as usize] = imm;
                addr += 1;
            }
        }
        mem[addr as usize] = Instr::Halt.encode().0;
        expect.push((addr, Instr::Halt));
        let got = disassemble(&mem, 0, expect.len() + 4);
        prop_assert_eq!(got, expect);
    }
}

// ---------------------------------------------------------------------
// State encodings: bijective for every scheme and size.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn encodings_bijective(n in 1usize..40) {
        for enc in Encoding::ALL {
            if enc == Encoding::OneHot && n > 40 {
                continue;
            }
            let codes: Vec<u64> = (0..n).map(|i| enc.encode(i, n)).collect();
            let mut dedup = codes.clone();
            dedup.sort_unstable();
            dedup.dedup();
            prop_assert_eq!(dedup.len(), n, "{} duplicates codes", enc);
            for (i, c) in codes.iter().enumerate() {
                prop_assert_eq!(enc.decode(*c, n), Some(i));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Hardware synthesis: random straight-line datapaths match the
// interpreter on random inputs.
// ---------------------------------------------------------------------

/// A small generator of safe expressions over two input ports and a
/// variable (no division; shifts by constants only).
fn arb_expr(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        (-200i64..200).prop_map(Expr::int),
        Just(Expr::port(cosma::core::ids::PortId::new(0))),
        Just(Expr::port(cosma::core::ids::PortId::new(1))),
        Just(Expr::var(cosma::core::ids::VarId::new(0))),
    ];
    leaf.prop_recursive(depth, 24, 2, |inner| {
        (inner.clone(), inner, 0u8..8)
            .prop_map(|(a, b, op)| match op {
                0 => a.add(b),
                1 => a.sub(b),
                2 => a.mul(b),
                3 => Expr::Binary(cosma::core::BinOp::Min, Box::new(a), Box::new(b)),
                4 => Expr::Binary(cosma::core::BinOp::Max, Box::new(a), Box::new(b)),
                5 => Expr::Binary(cosma::core::BinOp::Xor, Box::new(a), Box::new(b)),
                6 => Expr::Binary(cosma::core::BinOp::And, Box::new(a), Box::new(b)),
                _ => Expr::Binary(cosma::core::BinOp::Or, Box::new(a), Box::new(b)),
            })
            .boxed()
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn random_datapaths_synthesize_equivalently(
        e in arb_expr(3),
        inputs in proptest::collection::vec((-500i64..500, -500i64..500), 1..12),
    ) {
        let mut b = ModuleBuilder::new("dp", ModuleKind::Hardware);
        let _x = b.port("X", PortDir::In, Type::INT16);
        let _y = b.port("Y", PortDir::In, Type::INT16);
        let acc = b.var("ACC", Type::INT16, Value::Int(0));
        let s = b.state("S");
        b.actions(s, vec![Stmt::assign(acc, e)]);
        b.transition(s, None, s);
        b.initial(s);
        let m = b.build().unwrap();

        let (nl, _) = synthesize_hw(&m, Encoding::Binary).unwrap();
        let mut sim = nl.simulator();
        let mut env = MapEnv::new();
        env.add_port(Type::INT16, Value::Int(0));
        env.add_port(Type::INT16, Value::Int(0));
        env.add_var(Type::INT16, Value::Int(0));
        let mut exec = FsmExec::new(m.fsm());
        let reg = nl.find_reg("ACC").unwrap();
        for (x, y) in inputs {
            env.set_port(cosma::core::ids::PortId::new(0), Value::Int(x));
            env.set_port(cosma::core::ids::PortId::new(1), Value::Int(y));
            exec.step(m.fsm(), &mut env).unwrap();
            sim.step(&[x as u64 & 0xFFFF, y as u64 & 0xFFFF]);
            let expect = env.var(acc).to_bus_word(16);
            prop_assert_eq!(sim.reg_value(reg), expect, "inputs ({}, {})", x, y);
        }
    }
}

// ---------------------------------------------------------------------
// Motor plant: position always equals executed step sum; backlog drains.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn motor_position_is_step_integral(
        cmds in proptest::collection::vec(-50i64..50, 1..60),
        speed in 1i64..10,
    ) {
        let mut m = cosma::motor::MotorModel::new(speed);
        let mut executed = 0i64;
        for c in &cmds {
            m.command_pulses(*c);
            let s = m.tick();
            prop_assert!(s.abs() <= speed);
            executed += s;
            prop_assert_eq!(m.position(), executed);
        }
        // Drain: eventually the backlog empties and position equals the
        // total commanded sum.
        let total: i64 = cmds.iter().sum();
        for _ in 0..10_000 {
            if !m.is_moving() {
                break;
            }
            m.tick();
        }
        prop_assert!(!m.is_moving());
        prop_assert_eq!(m.position(), total);
    }
}

// ---------------------------------------------------------------------
// Value layer: bus-word round trips.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn int16_bus_round_trip(v in -32768i64..32767) {
        let w = Value::Int(v).to_bus_word(16);
        let back = Value::from_bus_word(&Type::INT16, w).unwrap();
        prop_assert_eq!(back, Value::Int(v));
    }
}

// ---------------------------------------------------------------------
// Handshake protocol: robust to ARBITRARY interleaving of producer,
// consumer and controller activations (the paper's speed-mismatch
// problem). No loss, duplication or reorder under random schedules.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn handshake_robust_to_any_schedule(
        schedule in proptest::collection::vec(0u8..3, 50..600),
    ) {
        use cosma::comm::{handshake_unit, FsmUnitRuntime, LocalWires};
        let spec = handshake_unit("hs", Type::INT16);
        let mut unit = FsmUnitRuntime::new(spec.clone());
        let mut wires = cosma::comm::LocalWires::new(&spec);
        let _ = &wires as &LocalWires;
        let producer = CallerId(1);
        let consumer = CallerId(2);
        let mut next = 0i64;
        let mut sent: Vec<i64> = vec![];
        let mut received: Vec<i64> = vec![];
        for &who in &schedule {
            match who {
                0 => {
                    if unit
                        .call(producer, "put", &[Value::Int(next)], &mut wires)
                        .unwrap()
                        .done
                    {
                        sent.push(next);
                        next += 1;
                    }
                }
                1 => {
                    if let Some(Value::Int(v)) =
                        unit.call(consumer, "get", &[], &mut wires).unwrap().result
                    {
                        received.push(v);
                    }
                }
                _ => unit.step_controller(&mut wires).unwrap(),
            }
        }
        // Everything received was sent, in order, with no duplicates; at
        // most one message can still be in flight.
        prop_assert!(received.len() <= sent.len() + 1,
            "received {} vs sent {}", received.len(), sent.len());
        let n = received.len().min(sent.len());
        prop_assert_eq!(&received[..n], &sent[..n]);
        for (i, v) in received.iter().enumerate() {
            prop_assert_eq!(*v, i as i64, "stream must be dense and ordered");
        }
    }
}

// ---------------------------------------------------------------------
// Kernel determinism: the same design produces identical signal values
// regardless of when we slice the run into run_for chunks.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn kernel_run_slicing_is_transparent(
        chunks in proptest::collection::vec(1u64..40, 1..20),
    ) {
        use cosma::sim::{Simulator, FnProcess, Wait, Duration};
        fn build() -> (Simulator, cosma::sim::SignalId) {
            let mut sim = Simulator::new();
            let clk = sim.add_bit("CLK");
            sim.add_clock("gen", clk, Duration::from_ns(10));
            let q = sim.add_signal("Q", Type::INT16, Value::Int(0));
            sim.add_process(
                "ctr",
                FnProcess::new(move |ctx| {
                    if ctx.rose(clk) {
                        let v = ctx.read_int(q);
                        ctx.drive(q, Value::Int(v * 3 + 1));
                    }
                    Wait::Event(vec![clk])
                }),
            );
            (sim, q)
        }
        let total: u64 = chunks.iter().sum();
        let (mut a, qa) = build();
        a.run_for(Duration::from_ns(total)).unwrap();
        let (mut b, qb) = build();
        for c in &chunks {
            b.run_for(Duration::from_ns(*c)).unwrap();
        }
        prop_assert_eq!(a.value(qa), b.value(qb));
        prop_assert_eq!(a.now(), b.now());
    }
}

// ---------------------------------------------------------------------
// Kernel scheduling core: the production kernel (inverted sensitivity
// index + heap-based event queues) is observationally equivalent to the
// full-scan reference kernel on randomized clock/process mixes — same
// signal traces, same event counts, same delta counts.
// ---------------------------------------------------------------------

/// A randomized design: free-running clocks, edge counters, delta-cycle
/// inverter chains, timeout tickers, event-or-timeout waiters, clocked
/// (`Wait::Same`) processes and a batched comm link.
#[derive(Debug, Clone)]
struct KernelMix {
    /// Clock periods in ns (one clock signal each).
    clocks: Vec<u64>,
    /// Counters, each watching `clocks[i % clocks.len()]`.
    counters: Vec<usize>,
    /// An inverter chain of this depth rooted at clock 0 (delta cascades).
    chain: usize,
    /// `wait for` tickers with these periods in ns.
    tickers: Vec<u64>,
    /// `wait on .. for ..` waiters: (clock index, timeout ns).
    waiters: Vec<(usize, u64)>,
    /// Clocked processes registered through [`ClockedProcess`] — the
    /// `Wait::Same` steady-state path. Each entry picks a clock; parity
    /// picks the [`Edge`].
    clocked: Vec<usize>,
    /// Whether to thread a batched comm link (put/pump/get over kernel
    /// wire signals) through the design.
    batched: bool,
    /// Total run length in ns.
    run_ns: u64,
}

fn arb_kernel_mix() -> impl Strategy<Value = KernelMix> {
    (
        proptest::collection::vec(1u64..40, 1..4),
        proptest::collection::vec(0usize..8, 0..6),
        0usize..6,
        proptest::collection::vec(1u64..60, 0..4),
        proptest::collection::vec((0usize..8, 1u64..80), 0..4),
        proptest::collection::vec(0usize..8, 0..5),
        any::<bool>(),
        1u64..1200,
    )
        .prop_map(
            |(clocks, counters, chain, tickers, waiters, clocked, batched, run_ns)| KernelMix {
                clocks,
                counters,
                chain,
                tickers,
                waiters,
                clocked,
                batched,
                run_ns,
            },
        )
}

/// Bridges a [`cosma::comm::WireStore`] onto kernel signals through a
/// running process context (mirrors the backplane's adapter).
struct SigWires<'a, 'b> {
    ctx: &'a mut cosma::sim::ProcCtx<'b>,
    map: &'a [cosma::sim::SignalId],
}

impl cosma::comm::WireStore for SigWires<'_, '_> {
    fn read_wire(&self, w: cosma::core::ids::PortId) -> Result<Value, cosma::core::EvalError> {
        Ok(self.ctx.read(self.map[w.index()]).clone())
    }
    fn write_wire(
        &mut self,
        w: cosma::core::ids::PortId,
        v: Value,
    ) -> Result<(), cosma::core::EvalError> {
        self.ctx.drive(self.map[w.index()], v);
        Ok(())
    }
}

/// Builds the mix on any kernel through closures over the shared
/// `Process`/`ProcCtx`/`Wait` vocabulary. `add_sig`/`add_proc` abstract
/// the two kernels' registration calls; returns the observable signals.
fn build_mix(
    mix: &KernelMix,
    mut add_sig: impl FnMut(&str, Type, Value) -> cosma::sim::SignalId,
    mut add_clock: impl FnMut(cosma::sim::SignalId, cosma::sim::Duration),
    mut add_proc: impl FnMut(Box<dyn cosma::sim::Process>),
) -> Vec<cosma::sim::SignalId> {
    use cosma::sim::{Duration, FnProcess, Wait};
    let mut observed = vec![];
    let clk_sigs: Vec<_> = (0..mix.clocks.len())
        .map(|i| {
            add_sig(
                &format!("CLK{i}"),
                Type::Bit,
                Value::Bit(cosma::core::Bit::Zero),
            )
        })
        .collect();
    for (i, &p) in mix.clocks.iter().enumerate() {
        add_clock(clk_sigs[i], Duration::from_ns(p));
    }
    observed.extend(clk_sigs.iter().copied());
    for (j, &ci) in mix.counters.iter().enumerate() {
        let clk = clk_sigs[ci % clk_sigs.len()];
        let q = add_sig(&format!("Q{j}"), Type::INT16, Value::Int(0));
        observed.push(q);
        add_proc(Box::new(FnProcess::new(
            move |ctx: &mut cosma::sim::ProcCtx<'_>| {
                if ctx.rose(clk) {
                    let v = ctx.read_int(q);
                    ctx.drive(q, Value::Int(v + 1));
                }
                Wait::Event(vec![clk])
            },
        )));
    }
    let mut prev = clk_sigs[0];
    for k in 0..mix.chain {
        let out = add_sig(
            &format!("INV{k}"),
            Type::Bit,
            Value::Bit(cosma::core::Bit::Zero),
        );
        observed.push(out);
        let src = prev;
        add_proc(Box::new(FnProcess::new(
            move |ctx: &mut cosma::sim::ProcCtx<'_>| {
                let v = ctx.read_bit(src);
                ctx.drive(out, Value::Bit(!v));
                Wait::Event(vec![src])
            },
        )));
        prev = out;
    }
    for (k, &p) in mix.tickers.iter().enumerate() {
        let t = add_sig(&format!("T{k}"), Type::INT16, Value::Int(0));
        observed.push(t);
        add_proc(Box::new(FnProcess::new(
            move |ctx: &mut cosma::sim::ProcCtx<'_>| {
                let v = ctx.read_int(t);
                ctx.drive(t, Value::Int(v + 1));
                Wait::Timeout(Duration::from_ns(p))
            },
        )));
    }
    for (m, &(ci, tmo)) in mix.waiters.iter().enumerate() {
        let clk = clk_sigs[ci % clk_sigs.len()];
        let w = add_sig(&format!("W{m}"), Type::INT16, Value::Int(0));
        observed.push(w);
        add_proc(Box::new(FnProcess::new(
            move |ctx: &mut cosma::sim::ProcCtx<'_>| {
                let v = ctx.read_int(w);
                ctx.drive(w, Value::Int(v + 1));
                Wait::EventOrTimeout(vec![clk], Duration::from_ns(tmo))
            },
        )));
    }
    // Clocked processes registered through the Wait::Same steady-state
    // path, on alternating rising/falling edges.
    for (j, &ci) in mix.clocked.iter().enumerate() {
        use cosma::sim::{ClockControl, ClockedProcess, Edge};
        let clk = clk_sigs[ci % clk_sigs.len()];
        let edge = if j % 2 == 0 {
            Edge::Rising
        } else {
            Edge::Falling
        };
        let q = add_sig(&format!("C{j}"), Type::INT16, Value::Int(0));
        observed.push(q);
        add_proc(Box::new(ClockedProcess::new(clk, edge, move |ctx| {
            let v = ctx.read_int(q);
            ctx.drive(q, Value::Int(v + 1));
            if v >= 500 {
                ClockControl::Halt
            } else {
                ClockControl::Continue
            }
        })));
    }
    // A batched comm link driven over kernel wire signals: a clocked
    // producer/pump/consumer in one deterministic process.
    if mix.batched {
        use cosma::comm::{BatchedLink, CallerId};
        use cosma::sim::{ClockControl, ClockedProcess, Edge};
        let link = BatchedLink::new("bus", Type::INT16, 4, 16);
        let wire_sigs: Vec<cosma::sim::SignalId> = link
            .spec()
            .wires()
            .iter()
            .map(|w| {
                add_sig(
                    &format!("bus.{}", w.name()),
                    w.ty().clone(),
                    w.init().clone(),
                )
            })
            .collect();
        observed.extend(wire_sigs.iter().copied());
        let sum = add_sig("bus.RECV_SUM", Type::INT16, Value::Int(0));
        observed.push(sum);
        let clk = clk_sigs[0];
        let mut link = link;
        let mut sent = 0i64;
        let mut acc = 0i64;
        add_proc(Box::new(ClockedProcess::new(
            clk,
            Edge::Rising,
            move |ctx| {
                let mut ws = SigWires {
                    ctx,
                    map: &wire_sigs,
                };
                if sent < 24
                    && link
                        .put(CallerId(1), Value::Int(sent), &mut ws)
                        .expect("put")
                        .done
                {
                    sent += 1;
                }
                link.pump(&mut ws, true).expect("pump");
                if let Some(v) = link.get(CallerId(2), &mut ws).expect("get").result {
                    acc = (acc + v.as_int().expect("int")) & 0x3FFF;
                    ctx.drive(sum, Value::Int(acc));
                }
                ClockControl::Continue
            },
        )));
    }
    observed
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn kernel_equivalent_to_full_scan_reference(mix in arb_kernel_mix()) {
        use cosma::sim::reference::RefSimulator;
        use cosma::sim::{Duration, Simulator};

        let mut fast = Simulator::new();
        let fast_sigs;
        {
            let sim = std::cell::RefCell::new(&mut fast);
            fast_sigs = build_mix(
                &mix,
                |n, ty, v| sim.borrow_mut().add_signal(n, ty, v),
                |s, p| { sim.borrow_mut().add_clock("clk", s, p); },
                |p| { sim.borrow_mut().add_process("p", p); },
            );
        }
        let mut oracle = RefSimulator::new();
        let oracle_sigs;
        {
            let sim = std::cell::RefCell::new(&mut oracle);
            oracle_sigs = build_mix(
                &mix,
                |n, ty, v| sim.borrow_mut().add_signal(n, ty, v),
                |s, p| { sim.borrow_mut().add_clock(s, p); },
                |p| { sim.borrow_mut().add_process(p); },
            );
        }
        fast.run_for(Duration::from_ns(mix.run_ns)).unwrap();
        oracle.run_for(Duration::from_ns(mix.run_ns)).unwrap();

        // Identical signal traces: settled value, event count and last
        // event instant for every observable signal.
        prop_assert_eq!(fast_sigs.len(), oracle_sigs.len());
        for (&f, &o) in fast_sigs.iter().zip(&oracle_sigs) {
            let fi = fast.signal_info(f);
            let oi = oracle.signal_info(o);
            prop_assert_eq!(&fi.value, &oi.value, "value of {}", fi.name);
            prop_assert_eq!(fi.event_count, oi.event_count, "event count of {}", fi.name);
            prop_assert_eq!(fi.last_event, oi.last_event, "last event of {}", fi.name);
        }
        // Identical schedule shape: same activations, events, deltas and
        // instants, and the same final time.
        let fs = fast.stats();
        let os = oracle.stats();
        prop_assert_eq!(fs.process_runs, os.process_runs);
        prop_assert_eq!(fs.events, os.events);
        prop_assert_eq!(fs.deltas, os.deltas);
        prop_assert_eq!(fs.instants, os.instants);
        prop_assert_eq!(fast.now(), oracle.now());
    }
}

// ---------------------------------------------------------------------
// Backplane scheduling: every scheduler configuration — the legacy
// per-unit/per-module path, the PR 3 immediate sharded scheduler, and
// the two-phase (delta-buffered) scheduler in all its variants
// (sequential and threaded step phase, hashed and creation-order module
// placement) — is observationally equivalent: same module states, SUMs,
// traces AND activation counts, on randomized topologies over both link
// kinds.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    #[test]
    fn backplane_schedulings_equivalent(
        units in 2usize..7,
        topo_sel in 0u8..5,
        link_sel in 0u8..3,
        values in 1usize..4,
        seed in any::<u64>(),
        shard_size in 1usize..6,
        park in any::<bool>(),
    ) {
        use cosma::comm::BusTiming;
        use cosma::cosim::scenario::{build_scenario, LinkKind, ScenarioSpec, Topology};
        use cosma::cosim::{
            CallApplication, ModulePlacement, ModuleScheduling, Parallelism, SchedulingConfig,
            UnitScheduling,
        };
        use cosma::sim::Duration;

        let topology = match topo_sel {
            0 => Topology::Pipeline,
            1 => Topology::Star,
            2 => Topology::Ring,
            3 => Topology::Starved,
            _ => Topology::RandomDag { seed },
        };
        // All three link flavours face every scheduler: the classic
        // handshake, the batched fast path, and cycle-accurate payload
        // beats (whose commit-phase queue journal must be invisible).
        let link = match link_sel {
            0 => LinkKind::Handshake,
            1 => LinkKind::Batched {
                max_batch: 4,
                capacity: 16,
                timing: BusTiming::LengthOnly,
            },
            _ => LinkKind::Batched {
                max_batch: 4,
                capacity: 16,
                timing: BusTiming::PayloadBeats,
            },
        };
        let mk = |scheduling| ScenarioSpec {
            units,
            topology,
            link,
            values_per_link: values,
            scheduling,
            ..ScenarioSpec::default()
        };
        let run = |name: &str, scheduling| -> Result<_, TestCaseError> {
            let mut s = build_scenario(&mk(scheduling))
                .unwrap_or_else(|e| panic!("{name} builds: {e}"));
            s.cosim
                .run_for(Duration::from_us(300))
                .unwrap_or_else(|e| panic!("{name} runs: {e}"));
            Ok(s)
        };
        let shd = |shard_size| ModuleScheduling::Sharded { shard_size };
        // The oracle: one process per unit and per module, immediate
        // calls — the semantics every other configuration must match.
        let baseline = run("per_unit", SchedulingConfig {
            units: UnitScheduling::PerUnit,
            modules: ModuleScheduling::PerModule,
            park_blocked: park,
            ..SchedulingConfig::legacy()
        })?;
        let variants = [
            ("immediate_sharded", SchedulingConfig {
                units: UnitScheduling::Sharded { shard_size },
                modules: shd(shard_size),
                park_blocked: park,
                ..SchedulingConfig::immediate()
            }),
            ("deferred_hashed", SchedulingConfig {
                units: UnitScheduling::Sharded { shard_size },
                modules: shd(shard_size),
                park_blocked: park,
                ..SchedulingConfig::sharded()
            }),
            ("deferred_creation_order", SchedulingConfig {
                units: UnitScheduling::Sharded { shard_size },
                modules: shd(shard_size),
                park_blocked: park,
                placement: ModulePlacement::CreationOrder,
                ..SchedulingConfig::sharded()
            }),
            // step_fanout_min: 1 forces the speculative step/commit
            // machinery (FSM session deltas, the BatchedLink queue-op
            // journal, outcome validation) onto every cycle of these
            // small backplanes — without it the threaded variants
            // would take the direct sub-threshold path and the
            // commit-phase code would go untested here.
            ("deferred_threads2", SchedulingConfig {
                units: UnitScheduling::Sharded { shard_size },
                modules: shd(shard_size),
                park_blocked: park,
                parallelism: Parallelism::Threads(2),
                step_fanout_min: 1,
                ..SchedulingConfig::sharded()
            }),
            ("deferred_threads4", SchedulingConfig {
                units: UnitScheduling::Sharded { shard_size },
                modules: shd(shard_size),
                park_blocked: park,
                parallelism: Parallelism::Threads(4),
                step_fanout_min: 1,
                ..SchedulingConfig::sharded()
            }),
            // Threads(8): more workers than most of these stepping sets
            // have items, exercising the work-stealing cursor's
            // empty-claim path and idle-worker skip.
            ("deferred_threads8", SchedulingConfig {
                units: UnitScheduling::Sharded { shard_size },
                modules: shd(shard_size),
                park_blocked: park,
                parallelism: Parallelism::Threads(8),
                step_fanout_min: 1,
                ..SchedulingConfig::sharded()
            }),
        ];
        for (name, cfg) in variants {
            prop_assert_eq!(cfg.calls == CallApplication::Immediate,
                name == "immediate_sharded");
            let s = run(name, cfg)?;
            for (&a, &b) in s.modules.iter().zip(&baseline.modules) {
                prop_assert_eq!(
                    s.cosim.module_status(a),
                    baseline.cosim.module_status(b),
                    "{} vs per_unit: module status diverged under {:?}", name, topology
                );
            }
            let s_trace = s.cosim.trace_log();
            let baseline_trace = baseline.cosim.trace_log();
            prop_assert_eq!(
                s_trace.entries(),
                baseline_trace.entries(),
                "{} vs per_unit: traces diverged under {:?}/{:?}", name, topology, link
            );
            // All variants must have completed all traffic in budget.
            prop_assert!(s.is_complete(), "{} incomplete under {:?}", name, topology);
            s.verify().map_err(TestCaseError::fail)?;
            // With parking on, a Starved run must actually have parked
            // its blocked consumers.
            if park && matches!(topology, Topology::Starved) {
                let stats = s.cosim.shard_stats();
                prop_assert!(
                    stats.members_parked as usize >= units - 1,
                    "{}: starved consumers parked: {:?}", name, stats
                );
            }
        }
        baseline.verify().map_err(TestCaseError::fail)?;
    }
}

// ---------------------------------------------------------------------
// Bus timing: cycle-accurate payload beats are a pure *timing* model —
// delivered values, final module states and checksums are bit-identical
// to the length-only fast path on randomized topologies, while the
// PayloadBeats run's bus occupancy (UnitStats::payload_beats) scales
// linearly with batch length (exactly one beat per value).
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    #[test]
    fn payload_beats_preserves_delivered_semantics(
        units in 2usize..7,
        topo_sel in 0u8..4,
        values in 1usize..4,
        max_batch in 2usize..6,
        seed in any::<u64>(),
    ) {
        use cosma::comm::BusTiming;
        use cosma::cosim::scenario::{build_scenario, LinkKind, ScenarioSpec, Topology};
        use cosma::sim::Duration;

        let topology = match topo_sel {
            0 => Topology::Pipeline,
            1 => Topology::Star,
            2 => Topology::Ring,
            _ => Topology::RandomDag { seed },
        };
        let run = |timing| {
            let mut s = build_scenario(&ScenarioSpec {
                units,
                topology,
                link: LinkKind::Batched { max_batch, capacity: 16, timing },
                values_per_link: values,
                ..ScenarioSpec::default()
            })
            .expect("scenario builds");
            let done = s
                .run_to_completion(Duration::from_us(2_000))
                .expect("scenario runs");
            prop_assert!(done, "{timing:?} completes under {topology:?}");
            Ok(s)
        };
        let fast = run(BusTiming::LengthOnly)?;
        let beats = run(BusTiming::PayloadBeats)?;
        // Identical delivered semantics: final states, errors and
        // checksums (activation counts and trace *times* legitimately
        // differ — payload beats add bus cycles).
        for (&a, &b) in beats.modules.iter().zip(&fast.modules) {
            let sa = beats.cosim.module_status(a);
            let sb = fast.cosim.module_status(b);
            prop_assert_eq!(&sa.state, &sb.state, "state diverged under {:?}", topology);
            prop_assert_eq!(&sa.error, &sb.error);
        }
        fast.verify().map_err(TestCaseError::fail)?;
        beats.verify().map_err(TestCaseError::fail)?;
        let seq = |s: &cosma::cosim::scenario::Scenario| -> Vec<(String, String, Vec<cosma::core::Value>)> {
            s.cosim
                .trace_log()
                .entries()
                .iter()
                .map(|e| (e.source.clone(), e.label.clone(), e.values.clone()))
                .collect()
        };
        prop_assert_eq!(seq(&beats), seq(&fast), "trace sequences diverged");
        // Beat linearity: every batched link paid exactly one DATA beat
        // per value under PayloadBeats, and none under LengthOnly.
        for (i, _) in beats.links.iter().enumerate() {
            let name = format!("link{i}");
            let b = beats.cosim.unit_stats(&name).expect("stats");
            let f = fast.cosim.unit_stats(&name).expect("stats");
            prop_assert_eq!(
                b.payload_beats, b.batched_values,
                "link{} beats must equal values carried", i
            );
            prop_assert_eq!(f.payload_beats, 0, "length-only streams nothing");
            prop_assert_eq!(
                b.batched_values, f.batched_values,
                "same traffic volume either way"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Mid-burst checkpoints: under burst-scheduled payload beats every DATA
// beat of an in-flight batch is a pre-scheduled future drive in the
// kernel's drive heap, so an arbitrary cut usually lands *inside* a
// burst. Snapshotting there and restoring must replay the remaining
// beats — and everything after them — bit-identically, across the
// schedulers (including the speculative step/commit regime).
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    #[test]
    fn mid_burst_checkpoint_replays_bit_identically(
        units in 2usize..6,
        topo_sel in 0u8..4,
        values in 1usize..4,
        max_batch in 2usize..6,
        cut_ns in 2_000u64..120_000,
        sched_sel in 0u8..3,
        seed in any::<u64>(),
    ) {
        use cosma::comm::BusTiming;
        use cosma::cosim::scenario::{build_scenario, LinkKind, ScenarioSpec, Topology};
        use cosma::cosim::{Parallelism, SchedulingConfig};
        use cosma::sim::Duration;

        let topology = match topo_sel {
            0 => Topology::Pipeline,
            1 => Topology::Star,
            2 => Topology::Ring,
            _ => Topology::RandomDag { seed },
        };
        let scheduling = match sched_sel {
            0 => SchedulingConfig::immediate(),
            1 => SchedulingConfig::sharded(),
            // The speculative step/commit driver: its scratch arenas
            // and queue journal are pure per-cycle state, so a restored
            // backplane must reproduce the same commits regardless.
            _ => SchedulingConfig {
                parallelism: Parallelism::Threads(2),
                step_fanout_min: 1,
                ..SchedulingConfig::sharded()
            },
        };
        let mut s = build_scenario(&ScenarioSpec {
            units,
            topology,
            link: LinkKind::Batched {
                max_batch,
                capacity: 16,
                timing: BusTiming::PayloadBeats,
            },
            values_per_link: values,
            scheduling,
            ..ScenarioSpec::default()
        })
        .expect("scenario builds");
        // Run to an arbitrary cut point, then checkpoint. The cut is in
        // raw nanoseconds (not cycle-aligned) precisely so it can land
        // between the beats of a scheduled burst.
        s.cosim.run_for(Duration::from_ns(cut_ns)).expect("prefix runs");
        let snap = s.cosim.snapshot();
        s.cosim.run_for(Duration::from_us(400)).expect("tail runs");
        let want_trace = s.cosim.trace_log();
        let want_status: Vec<_> =
            s.modules.iter().map(|&m| s.cosim.module_status(m)).collect();
        // Restore twice: the second round proves restore itself leaves
        // no residue (a restored backplane is a valid checkpoint base).
        for round in 0..2 {
            s.cosim.restore(&snap).expect("restore");
            s.cosim.run_for(Duration::from_us(400)).expect("replay runs");
            prop_assert_eq!(
                s.cosim.trace_log(),
                want_trace.clone(),
                "round {}: replayed trace diverged under {:?}", round, topology
            );
            for (&m, want) in s.modules.iter().zip(&want_status) {
                prop_assert_eq!(
                    &s.cosim.module_status(m),
                    want,
                    "round {}: module status diverged under {:?}", round, topology
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Binary trace codec: encoding a live run's columnar trace log and
// decoding it back must reproduce the exact entry stream, whatever
// scheduler and link flavour produced it. The scenario modules emit an
// interned trace record per activation (`trace: true`), so the interner
// table, the varint-packed columns and the segment framing all carry
// real traffic.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn binary_trace_round_trips_across_schedulers(
        units in 2usize..6,
        topo_sel in 0u8..4,
        link_sel in 0u8..3,
        values in 1usize..4,
        sched_sel in 0u8..4,
        seed in any::<u64>(),
    ) {
        use cosma::comm::BusTiming;
        use cosma::cosim::scenario::{build_scenario, LinkKind, ScenarioSpec, Topology};
        use cosma::cosim::{tracebin, Parallelism, SchedulingConfig};
        use cosma::sim::Duration;

        let topology = match topo_sel {
            0 => Topology::Pipeline,
            1 => Topology::Star,
            2 => Topology::Ring,
            _ => Topology::RandomDag { seed },
        };
        let link = match link_sel {
            0 => LinkKind::Handshake,
            1 => LinkKind::Batched {
                max_batch: 4,
                capacity: 16,
                timing: BusTiming::LengthOnly,
            },
            _ => LinkKind::Batched {
                max_batch: 4,
                capacity: 16,
                timing: BusTiming::PayloadBeats,
            },
        };
        let scheduling = match sched_sel {
            0 => SchedulingConfig::legacy(),
            1 => SchedulingConfig::immediate(),
            2 => SchedulingConfig::sharded(),
            _ => SchedulingConfig {
                parallelism: Parallelism::Threads(2),
                step_fanout_min: 1,
                ..SchedulingConfig::sharded()
            },
        };
        let mut s = build_scenario(&ScenarioSpec {
            units,
            topology,
            link,
            values_per_link: values,
            scheduling,
            trace: true,
            ..ScenarioSpec::default()
        })
        .expect("scenario builds");
        s.cosim.run_for(Duration::from_us(120)).expect("runs");
        let log = s.cosim.trace_log();
        prop_assert!(
            !log.entries().is_empty(),
            "traced modules must have recorded entries"
        );
        let mut buf: Vec<u8> = vec![];
        tracebin::write_log(&log, &mut buf).expect("encode");
        let back = tracebin::read_log(buf.as_slice()).expect("decode");
        prop_assert_eq!(
            back.entries(),
            log.entries(),
            "decoded entry stream diverged under {:?}/{:?}", topology, link
        );
    }
}

// ---------------------------------------------------------------------
// Timer wheel: the hierarchical wheel, the binary-heap oracle and the
// full-scan reference kernel are observationally equivalent on
// randomized schedules whose entries live across every wheel level —
// single delayed drives from nanoseconds to beyond the 141 ms horizon
// (overflow), burst trains whose strides walk entries over the
// 2^29/2^35/2^41 fs level boundaries, periodic tickers, and
// event-or-timeout waiters whose timers are cancelled by clock events
// (exercising O(1) wheel cancellation at every level).
// ---------------------------------------------------------------------

/// A randomized wheel-stressing design. Delay classes are chosen so the
/// wheel files entries at level 0 (< 537 ns), level 1 (< 34.4 us),
/// level 2 (< 2.2 ms), level 3 (< 141 ms) and the overflow list.
#[derive(Debug, Clone)]
struct WheelMix {
    /// Fast clock period in ns (events + canceller wakeups).
    clock_ns: u64,
    /// Looping burst trains: (start_ns, stride_ns, beats). A process
    /// re-issues its train whenever the previous one drains, so trains
    /// are in flight (and crossing level boundaries) for the whole run.
    trains: Vec<(u64, u64, usize)>,
    /// One-shot `drive_after` delays in ns, spanning all levels.
    drives: Vec<u64>,
    /// Event-or-timeout waiters: timeout in ns. Whenever the clock
    /// event arrives first the pending timer is cancelled.
    cancellers: Vec<u64>,
    /// Periodic `wait for` tickers in ns.
    tickers: Vec<u64>,
    /// Run length in ns.
    run_ns: u64,
}

/// A delay spanning the wheel's level structure: class picks the level,
/// `frac` the position inside it.
fn arb_level_delay() -> impl Strategy<Value = u64> {
    (0u8..5, 1u64..1000).prop_map(|(class, frac)| match class {
        0 => frac / 2 + 1,                 // level 0: 1..501 ns
        1 => 600 + frac * 33,              // level 1: 0.6..34 us
        2 => 40_000 + frac * 2_000,        // level 2: 40 us..2 ms
        3 => 3_000_000 + frac * 100_000,   // level 3: 3..103 ms
        _ => 150_000_000 + frac * 250_000, // overflow: > 141 ms horizon
    })
}

fn arb_wheel_mix() -> impl Strategy<Value = WheelMix> {
    (
        1_000u64..8_000,
        proptest::collection::vec((0u64..40_000, 100u64..30_000, 2usize..24), 0..4),
        proptest::collection::vec(arb_level_delay(), 1..8),
        proptest::collection::vec(arb_level_delay(), 0..4),
        proptest::collection::vec(2_000u64..60_000, 0..4),
        100_000u64..4_000_000,
    )
        .prop_map(
            |(clock_ns, trains, drives, cancellers, tickers, run_ns)| WheelMix {
                clock_ns,
                trains,
                drives,
                cancellers,
                tickers,
                run_ns,
            },
        )
}

/// Builds the wheel mix through the shared registration closures
/// (same trick as [`build_mix`]); returns the observable signals.
fn build_wheel_mix(
    mix: &WheelMix,
    mut add_sig: impl FnMut(&str, Type, Value) -> cosma::sim::SignalId,
    mut add_clock: impl FnMut(cosma::sim::SignalId, cosma::sim::Duration),
    mut add_proc: impl FnMut(Box<dyn cosma::sim::Process>),
) -> Vec<cosma::sim::SignalId> {
    use cosma::core::Bit;
    use cosma::sim::{Duration, FnProcess, Wait};
    let mut observed = vec![];
    let clk = add_sig("CLK", Type::Bit, Value::Bit(Bit::Zero));
    add_clock(clk, Duration::from_ns(mix.clock_ns));
    observed.push(clk);
    // Looping burst trains: one signal each, re-armed on drain.
    for (j, &(start, stride, beats)) in mix.trains.iter().enumerate() {
        let sig = add_sig(&format!("TR{j}"), Type::Bit, Value::Bit(Bit::Zero));
        observed.push(sig);
        let start = Duration::from_ns(start);
        let stride = Duration::from_ns(stride);
        let values: Vec<Value> = (0..beats)
            .map(|k| Value::Bit(if k % 2 == 0 { Bit::One } else { Bit::Zero }))
            .collect();
        add_proc(Box::new(FnProcess::new(
            move |ctx: &mut cosma::sim::ProcCtx<'_>| {
                ctx.drive_train(sig, start + stride, stride, &values);
                Wait::Timeout(start + stride.times(values.len() as u64 + 1))
            },
        )));
    }
    // One-shot far drives: a single process scatters them at t=0 and
    // then sleeps forever. Distinct values so last-writer order shows.
    {
        let far = add_sig("FAR", Type::INT16, Value::Int(0));
        observed.push(far);
        let delays = mix.drives.clone();
        let mut fired = false;
        add_proc(Box::new(FnProcess::new(
            move |ctx: &mut cosma::sim::ProcCtx<'_>| {
                if !fired {
                    fired = true;
                    for (i, &d) in delays.iter().enumerate() {
                        ctx.drive_after(far, Value::Int(i as i64 + 1), Duration::from_ns(d));
                    }
                }
                Wait::Forever
            },
        )));
    }
    // Cancellers: the clock edge usually lands before the timeout, so
    // every wakeup cancels a pending timer parked at a random level.
    for (m, &tmo) in mix.cancellers.iter().enumerate() {
        let c = add_sig(&format!("CAN{m}"), Type::INT16, Value::Int(0));
        observed.push(c);
        add_proc(Box::new(FnProcess::new(
            move |ctx: &mut cosma::sim::ProcCtx<'_>| {
                let v = ctx.read_int(c);
                ctx.drive(c, Value::Int((v + 1) & 0x3FFF));
                Wait::EventOrTimeout(vec![clk], Duration::from_ns(tmo))
            },
        )));
    }
    for (k, &p) in mix.tickers.iter().enumerate() {
        let t = add_sig(&format!("TK{k}"), Type::INT16, Value::Int(0));
        observed.push(t);
        add_proc(Box::new(FnProcess::new(
            move |ctx: &mut cosma::sim::ProcCtx<'_>| {
                let v = ctx.read_int(t);
                ctx.drive(t, Value::Int((v + 1) & 0x3FFF));
                Wait::Timeout(Duration::from_ns(p))
            },
        )));
    }
    observed
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn wheel_matches_heap_and_reference_across_levels(mix in arb_wheel_mix()) {
        use cosma::sim::reference::RefSimulator;
        use cosma::sim::{Duration, Simulator};

        let build_fast = |heap: bool| {
            let mut sim = Simulator::new();
            if heap {
                sim.use_heap_queues();
            }
            let sigs;
            {
                let cell = std::cell::RefCell::new(&mut sim);
                sigs = build_wheel_mix(
                    &mix,
                    |n, ty, v| cell.borrow_mut().add_signal(n, ty, v),
                    |s, p| { cell.borrow_mut().add_clock("clk", s, p); },
                    |p| { cell.borrow_mut().add_process("p", p); },
                );
            }
            (sim, sigs)
        };
        let (mut wheel, wheel_sigs) = build_fast(false);
        let (mut heap, heap_sigs) = build_fast(true);
        let mut oracle = RefSimulator::new();
        let oracle_sigs;
        {
            let cell = std::cell::RefCell::new(&mut oracle);
            oracle_sigs = build_wheel_mix(
                &mix,
                |n, ty, v| cell.borrow_mut().add_signal(n, ty, v),
                |s, p| { cell.borrow_mut().add_clock(s, p); },
                |p| { cell.borrow_mut().add_process(p); },
            );
        }
        wheel.run_for(Duration::from_ns(mix.run_ns)).unwrap();
        heap.run_for(Duration::from_ns(mix.run_ns)).unwrap();
        oracle.run_for(Duration::from_ns(mix.run_ns)).unwrap();

        for (&w, (&h, &o)) in wheel_sigs.iter().zip(heap_sigs.iter().zip(&oracle_sigs)) {
            let wi = wheel.signal_info(w);
            let hi = heap.signal_info(h);
            let oi = oracle.signal_info(o);
            prop_assert_eq!(&wi.value, &hi.value, "wheel vs heap: value of {}", wi.name);
            prop_assert_eq!(&wi.value, &oi.value, "wheel vs ref: value of {}", wi.name);
            prop_assert_eq!(wi.event_count, hi.event_count, "wheel vs heap: events of {}", wi.name);
            prop_assert_eq!(wi.event_count, oi.event_count, "wheel vs ref: events of {}", wi.name);
            prop_assert_eq!(wi.last_event, hi.last_event, "wheel vs heap: last event of {}", wi.name);
            prop_assert_eq!(wi.last_event, oi.last_event, "wheel vs ref: last event of {}", wi.name);
        }
        // Identical schedule shape across all three queue disciplines.
        let ws = wheel.stats();
        let hs = heap.stats();
        let os = oracle.stats();
        for (name, w, h, o) in [
            ("process_runs", ws.process_runs, hs.process_runs, os.process_runs),
            ("events", ws.events, hs.events, os.events),
            ("deltas", ws.deltas, hs.deltas, os.deltas),
            ("instants", ws.instants, hs.instants, os.instants),
        ] {
            prop_assert_eq!(w, h, "wheel vs heap: {}", name);
            prop_assert_eq!(w, o, "wheel vs ref: {}", name);
        }
        // Wakeup accounting is backend-independent (cancellation
        // bookkeeping differs: the wheel removes eagerly, the heap
        // skips stale entries lazily — but who woke and why must not).
        prop_assert_eq!(ws.timer_wakeups, hs.timer_wakeups);
        prop_assert_eq!(ws.event_wakeups, hs.event_wakeups);
        prop_assert_eq!(wheel.now(), heap.now());
        prop_assert_eq!(wheel.now(), oracle.now());
    }
}

// ---------------------------------------------------------------------
// Wheel snapshots: `save_state` canonicalizes the wheel into the
// `(at, seq)` contract, so a snapshot taken with live entries in EVERY
// wheel level (and the overflow list), cut in raw nanoseconds so it
// lands mid-train between scheduled beats, must restore into a fresh
// simulator — and rewind the original — bit-identically: same signal
// traces, same final time, same stats to the counter.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn wheel_state_round_trips_with_live_levels_and_mid_train_cuts(
        cut_ns in 60_000u64..1_200_000,
        stride_ns in 150u64..2_500,
        beats in 8usize..48,
        clock_ns in 400u64..3_000,
    ) {
        use cosma::core::Bit;
        use cosma::sim::{Duration, FnProcess, Simulator, Wait};

        // Every level stays populated: a re-seeding process refreshes
        // far drives at level-spanning delays every 50 us, a looping
        // train keeps beats in flight (the raw-ns cut lands between
        // them), and the clock cancels an EventOrTimeout timer parked
        // out at level 2 on every edge.
        let build = |heap: bool| {
            let mut sim = Simulator::new();
            if heap {
                sim.use_heap_queues();
            }
            let clk = sim.add_bit("CLK");
            sim.add_clock("gen", clk, Duration::from_ns(clock_ns));
            let tr = sim.add_bit("TR");
            let stride = Duration::from_ns(stride_ns);
            let values: Vec<Value> = (0..beats)
                .map(|k| Value::Bit(if k % 2 == 0 { Bit::One } else { Bit::Zero }))
                .collect();
            sim.add_process(
                "train",
                FnProcess::new(move |ctx: &mut cosma::sim::ProcCtx<'_>| {
                    ctx.drive_train(tr, stride, stride, &values);
                    Wait::Timeout(stride.times(values.len() as u64 + 1))
                }),
            );
            let far = sim.add_signal("FAR", Type::INT16, Value::Int(0));
            sim.add_process(
                "seeder",
                FnProcess::new(move |ctx: &mut cosma::sim::ProcCtx<'_>| {
                    // Stateless on purpose: `save_state` does not own
                    // closure state, so the round derives from sim time
                    // and survives restore/rewind bit-identically.
                    let round = (ctx.now().as_ns() / 50_000) as i64 + 1;
                    // Level 0 / 1 / 2 / 3 / overflow respectively.
                    for (i, d) in [200u64, 5_000, 600_000, 5_000_000, 250_000_000]
                        .into_iter()
                        .enumerate()
                    {
                        ctx.drive_after(
                            far,
                            Value::Int((round * 8 + i as i64) & 0x3FFF),
                            Duration::from_ns(d),
                        );
                    }
                    Wait::Timeout(Duration::from_us(50))
                }),
            );
            let can = sim.add_signal("CAN", Type::INT16, Value::Int(0));
            sim.add_process(
                "canceller",
                FnProcess::new(move |ctx: &mut cosma::sim::ProcCtx<'_>| {
                    let v = ctx.read_int(can);
                    ctx.drive(can, Value::Int((v + 1) & 0x3FFF));
                    Wait::EventOrTimeout(vec![clk], Duration::from_ms(1))
                }),
            );
            (sim, vec![clk, tr, far, can])
        };

        let tail = Duration::from_ns(1_500_000);
        let (mut a, a_sigs) = build(false);
        a.run_until(cosma::sim::SimTime::from_ns(cut_ns)).unwrap();
        let snap = a.save_state();
        a.run_for(tail).unwrap();
        let want: Vec<_> = a_sigs.iter().map(|&s| a.signal_info(s)).collect();
        let want_now = a.now();
        let want_stats = a.stats();
        // The construction really does exercise the whole structure.
        prop_assert!(want_stats.bulk_inserts > 0, "trains must bulk-insert");
        prop_assert!(want_stats.wheel_cascades > 0, "levels must cascade");
        prop_assert!(want_stats.overflow_parked > 0, "horizon must overflow");
        prop_assert!(want_stats.timers_cancelled > 0, "cancellation must hit the wheel");

        // Restore into a FRESH simulator (structural twin, never run).
        let (mut b, b_sigs) = build(false);
        b.load_state(&snap).unwrap();
        b.run_for(tail).unwrap();
        for (&bs, w) in b_sigs.iter().zip(&want) {
            let bi = b.signal_info(bs);
            prop_assert_eq!(&bi.value, &w.value, "restored value of {}", w.name);
            prop_assert_eq!(bi.event_count, w.event_count, "restored events of {}", w.name);
            prop_assert_eq!(bi.last_event, w.last_event, "restored last event of {}", w.name);
        }
        prop_assert_eq!(b.now(), want_now);
        // Stats continue verbatim — except the wheel's own filing
        // telemetry: `load_state` re-files pending entries relative to
        // the restore-time cursor, so an entry the original run filed
        // high and cascaded down may be filed directly low after a
        // restore (fewer cascades, different slot peaks). Everything
        // observable (wakeups, events, deltas, cancellations) must
        // still match to the counter.
        let scrub = |mut s: cosma::sim::SimStats| {
            s.wheel_cascades = 0;
            s.wheel_slot_peak = 0;
            s.overflow_parked = 0;
            s
        };
        prop_assert_eq!(
            scrub(b.stats()),
            scrub(want_stats),
            "restored stats must continue verbatim"
        );

        // Rewind the original: restoring over a further-run simulator
        // must leave no residue either.
        a.load_state(&snap).unwrap();
        a.run_for(tail).unwrap();
        for (&s, w) in a_sigs.iter().zip(&want) {
            let ai = a.signal_info(s);
            prop_assert_eq!(&ai.value, &w.value, "rewound value of {}", w.name);
            prop_assert_eq!(ai.event_count, w.event_count, "rewound events of {}", w.name);
        }
        prop_assert_eq!(a.now(), want_now);
        prop_assert_eq!(scrub(a.stats()), scrub(want_stats));

        // And the canonical snapshot is backend-portable: a HEAP twin
        // restored from the wheel's snapshot replays the same tail (the
        // `(at, seq)` pop-order contract, end to end).
        let (mut h, h_sigs) = build(true);
        h.load_state(&snap).unwrap();
        h.run_for(tail).unwrap();
        for (&s, w) in h_sigs.iter().zip(&want) {
            let hi = h.signal_info(s);
            prop_assert_eq!(&hi.value, &w.value, "heap-restored value of {}", w.name);
            prop_assert_eq!(hi.event_count, w.event_count, "heap-restored events of {}", w.name);
        }
        prop_assert_eq!(h.now(), want_now);
    }
}

// ---------------------------------------------------------------------
// Partitioned co-simulation: cutting a scenario across coupled
// backplane partitions under the optimistic orchestrator (speculation,
// staleness detection, snapshot rollback) is bit-identical — module
// statuses, SUMs, per-source trace streams — to the collapsed
// single-backplane oracle, across topologies, link kinds, clock-domain
// ratios, partition counts and sync quanta.
// ---------------------------------------------------------------------

/// Runs `spec` partitioned (sync quanta of `quantum`) and through the
/// collapsed oracle, asserting bit-identical observables. Returns the
/// orchestrator stats so callers can gate on the sync machinery.
fn assert_partitioned_matches_collapsed(
    spec: &cosma::cosim::scenario::ScenarioSpec,
    pspec: &cosma::cosim::scenario::PartitionsSpec,
    total: cosma::sim::Duration,
    quantum: cosma::sim::Duration,
) -> cosma::cosim::OrchestratorStats {
    use cosma::cosim::scenario::{build_collapsed, build_partitioned};
    use cosma::cosim::TraceEntry;

    let mut mono = build_collapsed(spec, pspec).expect("collapsed oracle builds");
    mono.cosim.run_for(total).expect("collapsed oracle runs");
    let mut part = build_partitioned(spec, pspec).expect("partitioned builds");
    part.run_for(total, quantum).expect("partitioned runs");
    assert_eq!(part.modules.len(), mono.modules.len());
    for j in 0..part.modules.len() {
        assert_eq!(
            part.module_status(j),
            mono.cosim.module_status(mono.modules[j]),
            "module {j} status diverged under {spec:?} / {pspec:?} / quantum {quantum:?}"
        );
    }
    mono.verify()
        .unwrap_or_else(|e| panic!("collapsed oracle checksum: {e}"));
    part.verify()
        .unwrap_or_else(|e| panic!("partitioned checksum: {e}"));
    // Trace streams compared per source: cross-partition modules
    // interleave arbitrarily in a merged view, but each module's own
    // event stream (labels, payloads AND timestamps) must be
    // bit-identical to the oracle's.
    let want = mono.cosim.trace_log().entries();
    let got: Vec<TraceEntry> = part
        .parts
        .iter()
        .flat_map(|&p| part.orch.partition(p).cosim().trace_log().entries())
        .collect();
    let sources: std::collections::BTreeSet<&str> =
        want.iter().map(|e| e.source.as_str()).collect();
    for src in &sources {
        let by = |entries: &[TraceEntry]| -> Vec<TraceEntry> {
            entries
                .iter()
                .filter(|e| &e.source == src)
                .cloned()
                .collect()
        };
        assert_eq!(
            by(&got),
            by(&want),
            "trace stream of {src} diverged under {spec:?} / {pspec:?}"
        );
    }
    assert_eq!(
        got.len(),
        want.len(),
        "partitioned run recorded extra trace sources"
    );
    part.orch.stats()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn partitioned_matches_monolithic(
        units in 3usize..7,
        topo_sel in 0u8..4,
        link_sel in 0u8..3,
        ratio_sel in 0u8..4,
        parts in 2usize..4,
        values in 1usize..4,
        quantum_us in 1u64..9,
        seed in any::<u64>(),
    ) {
        use cosma::comm::BusTiming;
        use cosma::cosim::scenario::{
            DomainsSpec, LinkKind, PartitionsSpec, ScenarioSpec, Topology,
        };
        use cosma::sim::Duration;

        let topology = match topo_sel {
            0 => Topology::Pipeline,
            1 => Topology::Star,
            2 => Topology::Ring,
            _ => Topology::RandomDag { seed },
        };
        let link = match link_sel {
            0 => LinkKind::Handshake,
            1 => LinkKind::Batched {
                max_batch: 4,
                capacity: 16,
                timing: BusTiming::LengthOnly,
            },
            _ => LinkKind::Batched {
                max_batch: 4,
                capacity: 16,
                timing: BusTiming::PayloadBeats,
            },
        };
        // Clock-domain layouts: uniform, a distinct same-rate domain
        // (multi-domain machinery without rate skew), half rate and
        // quarter rate.
        let domains = match ratio_sel {
            0 => DomainsSpec::default(),
            1 => DomainsSpec { ratio: (1, 1), slow_links: 1 },
            2 => DomainsSpec { ratio: (2, 1), slow_links: 1 },
            _ => DomainsSpec { ratio: (4, 1), slow_links: 1 },
        };
        let spec = ScenarioSpec {
            units,
            topology,
            link,
            values_per_link: values,
            trace: true,
            domains,
            ..ScenarioSpec::default()
        };
        let pspec = PartitionsSpec {
            count: parts,
            latency: Duration::from_ns(200),
        };
        let stats = assert_partitioned_matches_collapsed(
            &spec,
            &pspec,
            Duration::from_us(600),
            Duration::from_us(quantum_us),
        );
        prop_assert!(stats.quanta_committed > 0, "stats: {stats:?}");
    }
}

/// A schedule that *forces* the optimistic sync to roll back — a ring
/// cut across two partitions with a sync quantum 20× the boundary
/// latency, so speculated quanta are guaranteed to see late
/// cross-partition traffic — must still be bit-identical to the
/// collapsed oracle, and must actually exercise the rollback path.
#[test]
fn partitioned_forced_rollback_schedule_matches_oracle() {
    use cosma::comm::BusTiming;
    use cosma::cosim::scenario::{LinkKind, PartitionsSpec, ScenarioSpec, Topology};
    use cosma::sim::Duration;

    let spec = ScenarioSpec {
        units: 5,
        topology: Topology::Ring,
        link: LinkKind::Batched {
            max_batch: 4,
            capacity: 16,
            timing: BusTiming::LengthOnly,
        },
        values_per_link: 4,
        trace: true,
        ..ScenarioSpec::default()
    };
    let pspec = PartitionsSpec {
        count: 2,
        latency: Duration::from_ns(200),
    };
    let stats = assert_partitioned_matches_collapsed(
        &spec,
        &pspec,
        Duration::from_us(400),
        Duration::from_us(4),
    );
    assert!(
        stats.rollbacks > 0,
        "quantum 20x the boundary latency on a cyclic cut must speculate \
         past late traffic and roll back: {stats:?}"
    );
    assert!(stats.boundary_messages > 0, "stats: {stats:?}");
}

/// Multi-rate pinning: with tracing on (traced modules never park, so
/// activations count their domain's clock edges exactly), a module in
/// a 1:4 slow domain records exactly a quarter of the activations its
/// uniform-clock twin records over the same wall-clock run.
#[test]
fn multi_rate_slow_domain_quarters_activations() {
    use cosma::cosim::scenario::{build_scenario, DomainsSpec, ScenarioSpec};
    use cosma::sim::Duration;

    // Enough traffic that no module reaches END (and parks) inside the
    // window, and a window whose edge counts divide exactly: 4000 base
    // edges, 1000 quarter-rate edges.
    let total = Duration::from_ns(399_900);
    let base = ScenarioSpec {
        units: 4,
        values_per_link: 100_000,
        trace: true,
        ..ScenarioSpec::default()
    };
    let slow_spec = ScenarioSpec {
        domains: DomainsSpec {
            ratio: (4, 1),
            slow_links: 1,
        },
        ..base
    };
    let mut uniform = build_scenario(&base).expect("uniform scenario builds");
    uniform.cosim.run_for(total).expect("uniform run");
    let mut slow = build_scenario(&slow_spec).expect("multi-rate scenario builds");
    slow.cosim.run_for(total).expect("multi-rate run");

    // Link 0 and both modules touching it (producer 0, stage 1) land
    // in the quarter-rate domain; module 2 onward stay in the base
    // domain.
    let uni_acts = |j: usize| uniform.cosim.module_status(uniform.modules[j]).activations;
    let slow_acts = |j: usize| slow.cosim.module_status(slow.modules[j]).activations;
    assert_eq!(
        slow_acts(2),
        uni_acts(2),
        "base-domain stage keeps the uniform activation count"
    );
    assert_eq!(
        slow_acts(1) * 4,
        uni_acts(1),
        "quarter-rate module must record exactly 1/4 the activations \
         ({} vs {})",
        slow_acts(1),
        uni_acts(1)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn kernel_equivalence_survives_run_slicing(
        mix in arb_kernel_mix(),
        chunks in proptest::collection::vec(1u64..120, 1..8),
    ) {
        use cosma::sim::reference::RefSimulator;
        use cosma::sim::{Duration, Simulator};

        let mut fast = Simulator::new();
        let fast_sigs;
        {
            let sim = std::cell::RefCell::new(&mut fast);
            fast_sigs = build_mix(
                &mix,
                |n, ty, v| sim.borrow_mut().add_signal(n, ty, v),
                |s, p| { sim.borrow_mut().add_clock("clk", s, p); },
                |p| { sim.borrow_mut().add_process("p", p); },
            );
        }
        let mut oracle = RefSimulator::new();
        let oracle_sigs;
        {
            let sim = std::cell::RefCell::new(&mut oracle);
            oracle_sigs = build_mix(
                &mix,
                |n, ty, v| sim.borrow_mut().add_signal(n, ty, v),
                |s, p| { sim.borrow_mut().add_clock(s, p); },
                |p| { sim.borrow_mut().add_process(p); },
            );
        }
        // The production kernel runs in arbitrary slices, the oracle in
        // one shot over the same total span.
        for &c in &chunks {
            fast.run_for(Duration::from_ns(c)).unwrap();
        }
        let total: u64 = chunks.iter().sum();
        oracle.run_for(Duration::from_ns(total)).unwrap();
        for (&f, &o) in fast_sigs.iter().zip(&oracle_sigs) {
            let fi = fast.signal_info(f);
            let oi = oracle.signal_info(o);
            prop_assert_eq!(&fi.value, &oi.value, "value of {}", fi.name);
            prop_assert_eq!(fi.event_count, oi.event_count, "event count of {}", fi.name);
        }
        prop_assert_eq!(fast.now(), oracle.now());
    }
}
