//! Structural VHDL emission for synthesized netlists.
//!
//! A real co-synthesis flow hands the downstream FPGA tools an RTL/
//! structural netlist; this module renders our executable [`Netlist`] as
//! synthesizable-style VHDL (one signal per node, registers in a clocked
//! process), so the artifact a user would ship exists as text, not only
//! as an in-memory simulator.

use crate::netlist::{Netlist, Node, Op};
use std::fmt::Write as _;

fn sig(i: usize) -> String {
    format!("n{i}")
}

fn slv(width: u32) -> String {
    if width == 1 {
        "std_logic".to_string()
    } else {
        format!("std_logic_vector({} downto 0)", width - 1)
    }
}

fn op_vhdl(op: Op) -> &'static str {
    match op {
        Op::Add => "+",
        Op::Sub => "-",
        Op::Mul => "*",
        Op::Div => "/",
        Op::Rem => "mod",
        Op::And => "and",
        Op::Or => "or",
        Op::Xor => "xor",
        Op::Shl => "sll",
        Op::Shr => "srl",
        Op::Eq => "=",
        Op::Lt => "<",
        Op::Le => "<=",
        Op::Min | Op::Max => unreachable!("rendered as conditionals"),
    }
}

/// Renders the netlist as structural VHDL: an entity with the netlist's
/// inputs/outputs, one internal signal per combinational node, and a
/// clocked process for the registers.
///
/// The emitted text is an artifact of the flow (what would be handed to
/// vendor tools); cycle-accurate semantics live in
/// [`Netlist::simulator`].
#[must_use]
pub fn netlist_to_vhdl(nl: &Netlist) -> String {
    let name = nl
        .name()
        .to_uppercase()
        .replace(|c: char| !c.is_alphanumeric(), "_");
    let mut out = String::new();
    let _ = writeln!(out, "-- structural netlist emitted by cosma-synth");
    let _ = writeln!(out, "library ieee;");
    let _ = writeln!(out, "use ieee.std_logic_1164.all;");
    let _ = writeln!(out, "use ieee.numeric_std.all;");
    let _ = writeln!(out);
    let _ = writeln!(out, "entity {name} is");
    let _ = writeln!(out, "  port (");
    let _ = write!(out, "    CLK : in std_logic");
    for (iname, width) in nl.inputs() {
        let _ = write!(out, ";\n    {iname} : in {}", slv(*width));
    }
    for (oname, node) in nl.outputs() {
        let _ = write!(out, ";\n    {oname} : out {}", slv(nl.width(*node)));
    }
    let _ = writeln!(out, "\n  );");
    let _ = writeln!(out, "end entity;");
    let _ = writeln!(out);
    let _ = writeln!(out, "architecture rtl of {name} is");

    // One signal per node + one per register.
    let dump = nl.dump_nodes();
    let regs = nl.dump_regs();
    for (i, (_, width)) in dump.iter().enumerate() {
        let _ = writeln!(out, "  signal {} : {};", sig(i), slv(*width));
    }
    for (rname, width, init) in &regs {
        let (width, init) = (*width, *init);
        let _ = writeln!(
            out,
            "  signal r_{rname} : {} := {};",
            slv(width),
            init_literal(init, width)
        );
    }
    let _ = writeln!(out, "begin");

    // Combinational assignments in topological (id) order.
    for (i, (node, width)) in dump.iter().enumerate() {
        let rhs = match node {
            Node::Const(c) => init_literal(*c, *width),
            Node::Input(id) => nl.inputs()[id.index()].0.clone(),
            Node::ReadReg(r) => format!("r_{}", regs[r.index()].0),
            Node::Resize(a) => format!(
                "std_logic_vector(resize(unsigned({}), {}))",
                sig(a.index()),
                width
            ),
            Node::Not(a) => format!("not {}", sig(a.index())),
            Node::Neg(a) => format!("std_logic_vector(-signed({}))", sig(a.index())),
            Node::Mux(s, t, f) => format!(
                "{} when {} = '1' else {}",
                sig(t.index()),
                sig(s.index()),
                sig(f.index())
            ),
            Node::Bin(Op::Min, a, b) => format!(
                "{a} when signed({a}) < signed({b}) else {b}",
                a = sig(a.index()),
                b = sig(b.index())
            ),
            Node::Bin(Op::Max, a, b) => format!(
                "{a} when signed({a}) > signed({b}) else {b}",
                a = sig(a.index()),
                b = sig(b.index())
            ),
            Node::Bin(op @ (Op::Eq | Op::Lt | Op::Le), a, b) => format!(
                "'1' when signed({}) {} signed({}) else '0'",
                sig(a.index()),
                op_vhdl(*op),
                sig(b.index())
            ),
            Node::Bin(op @ (Op::And | Op::Or | Op::Xor), a, b) => {
                format!("{} {} {}", sig(a.index()), op_vhdl(*op), sig(b.index()))
            }
            Node::Bin(op, a, b) => format!(
                "std_logic_vector(signed({}) {} signed({}))",
                sig(a.index()),
                op_vhdl(*op),
                sig(b.index())
            ),
        };
        let _ = writeln!(out, "  {} <= {};", sig(i), rhs);
    }

    // Outputs.
    for (oname, node) in nl.outputs() {
        let _ = writeln!(out, "  {oname} <= {};", sig(node.index()));
    }

    // Registers.
    let _ = writeln!(out, "  regs : process(CLK)");
    let _ = writeln!(out, "  begin");
    let _ = writeln!(out, "    if rising_edge(CLK) then");
    for (rname, _, _) in &regs {
        if let Some(next) = nl.reg_next_of(rname) {
            let _ = writeln!(out, "      r_{rname} <= {};", sig(next.index()));
        }
    }
    let _ = writeln!(out, "    end if;");
    let _ = writeln!(out, "  end process;");
    let _ = writeln!(out, "end architecture;");
    out
}

fn init_literal(v: u64, width: u32) -> String {
    if width == 1 {
        format!("'{}'", v & 1)
    } else {
        let mut bits = String::with_capacity(width as usize);
        for i in (0..width).rev() {
            bits.push(if (v >> i) & 1 == 1 { '1' } else { '0' });
        }
        format!("\"{bits}\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;

    fn counter() -> Netlist {
        let mut n = Netlist::new("ctr");
        let r = n.reg("COUNT", 8, 3);
        let cur = n.read_reg(r);
        let one = n.constant(1, 8);
        let next = n.bin(Op::Add, cur, one);
        n.set_reg_next(r, next);
        let (_, en) = n.input("EN", 1);
        n.mark_output("COUNT_OUT", cur);
        n.mark_output("EN_SEEN", en);
        n
    }

    #[test]
    fn emits_entity_and_ports() {
        let text = netlist_to_vhdl(&counter());
        assert!(text.contains("entity CTR is"), "{text}");
        assert!(text.contains("CLK : in std_logic"), "{text}");
        assert!(text.contains("EN : in std_logic"), "{text}");
        assert!(
            text.contains("COUNT_OUT : out std_logic_vector(7 downto 0)"),
            "{text}"
        );
    }

    #[test]
    fn emits_register_process_and_init() {
        let text = netlist_to_vhdl(&counter());
        assert!(
            text.contains("signal r_COUNT : std_logic_vector(7 downto 0) := \"00000011\";"),
            "{text}"
        );
        assert!(text.contains("rising_edge(CLK)"), "{text}");
        assert!(text.contains("r_COUNT <= "), "{text}");
    }

    #[test]
    fn emits_arithmetic_nodes() {
        let text = netlist_to_vhdl(&counter());
        assert!(text.contains("std_logic_vector(signed("), "{text}");
        assert!(text.contains(") + signed("), "{text}");
    }

    #[test]
    fn synthesized_module_emits() {
        use cosma_core::{Expr, ModuleBuilder, ModuleKind, PortDir, Stmt, Type, Value};
        let mut b = ModuleBuilder::new("blinky", ModuleKind::Hardware);
        let led = b.port("LED", PortDir::Out, Type::Bit);
        let n = b.var("N", Type::INT16, Value::Int(0));
        let s = b.state("S");
        b.actions(
            s,
            vec![
                Stmt::assign(n, Expr::var(n).add(Expr::int(1))),
                Stmt::drive(led, Expr::bit(cosma_core::Bit::One)),
            ],
        );
        b.transition(s, None, s);
        b.initial(s);
        let m = b.build().unwrap();
        let (nl, _) = crate::synthesize_hw(&m, crate::Encoding::Binary).unwrap();
        let text = netlist_to_vhdl(&nl);
        assert!(text.contains("entity BLINKY"), "{text}");
        assert!(text.contains("LED__out"), "{text}");
        assert!(text.contains("LED__we"), "{text}");
    }
}
