//! Whole-system co-synthesis: map a validated [`System`] onto the
//! PC-AT + FPGA target in one call.
//!
//! For every software module, the bound communication views are inlined
//! and the result compiles to an MC16 program over a shared bus window;
//! every hardware module synthesizes to a fabric netlist; every unit
//! controller synthesizes alongside. Wire ports are named after the
//! *unit instances* (not the per-module binding names), so modules bound
//! to the same instance share wires on the target — the system-level
//! equivalent of the paper's "communication units are placed into a
//! library and not synthesized [themselves]".

use crate::flatten::{controller_module, flatten_module_bound, FlattenBinding, SynthError};
use crate::hwsynth::{synthesize_hw, HwSynthReport};
use crate::netlist::Netlist;
use crate::swsynth::{compile_sw, IoMap, SwProgram};
use crate::Encoding;
use cosma_core::{ModuleKind, System};
use std::collections::HashMap;

/// The complete output of co-synthesizing a system.
#[derive(Debug, Clone)]
pub struct SystemSynthesis {
    /// One compiled program per software module: `(module name, program)`.
    pub programs: Vec<(String, SwProgram)>,
    /// Fabric netlists: hardware modules first, then unit controllers.
    pub netlists: Vec<Netlist>,
    /// Hardware synthesis reports (same order as `netlists`).
    pub reports: Vec<HwSynthReport>,
    /// The shared bus window (all software-visible wires).
    pub io: IoMap,
}

impl SystemSynthesis {
    /// Total estimated CLBs across the fabric.
    #[must_use]
    pub fn total_clbs(&self) -> u64 {
        self.reports.iter().map(|r| r.tech.clbs).sum()
    }

    /// The netlist of a module/controller by name.
    #[must_use]
    pub fn netlist(&self, name: &str) -> Option<&Netlist> {
        self.netlists.iter().find(|n| n.name() == name)
    }
}

/// Co-synthesizes every module and unit of a system for the PC-AT + FPGA
/// target: software → MC16 programs over one bus window at `bus_base`,
/// hardware and controllers → netlists.
///
/// # Errors
///
/// Returns [`SynthError`] if any module falls outside the synthesizable
/// subset or a binding cannot be resolved.
pub fn synthesize_system(
    sys: &System,
    bus_base: u16,
    encoding: Encoding,
) -> Result<SystemSynthesis, SynthError> {
    // Shared I/O map: allocate addresses as wire ports appear.
    let mut io = IoMap::new(bus_base);
    let mut programs = vec![];
    let mut netlists = vec![];
    let mut reports = vec![];

    for (mi, module) in sys.modules().iter().enumerate() {
        // Resolve this module's bindings to unit instances.
        let mut bound: HashMap<String, FlattenBinding> = HashMap::new();
        for (bi, b) in module.bindings().iter().enumerate() {
            let Some(unit) = sys.unit_for(mi, cosma_core::ids::BindingId::new(bi as u32)) else {
                return Err(SynthError::UnboundBinding {
                    module: module.name().to_string(),
                    binding: b.name().to_string(),
                });
            };
            bound.insert(
                b.name().to_string(),
                FlattenBinding {
                    spec: unit.spec().clone(),
                    prefix: unit.name().to_string(),
                },
            );
        }
        let flat = flatten_module_bound(module, &bound)?;
        match module.kind() {
            ModuleKind::Software => {
                for p in flat.ports() {
                    io.add(p.name());
                }
                let program = compile_sw(&flat, &io)?;
                programs.push((module.name().to_string(), program));
            }
            ModuleKind::Hardware => {
                let (nl, report) = synthesize_hw(&flat, encoding)?;
                netlists.push(nl);
                reports.push(report);
            }
        }
    }

    // Unit controllers live in the fabric.
    for unit in sys.units() {
        if unit.spec().controller().is_some() {
            let ctrl = controller_module(unit.spec(), unit.name())?;
            let (nl, report) = synthesize_hw(&ctrl, encoding)?;
            netlists.push(nl);
            reports.push(report);
        }
    }

    Ok(SystemSynthesis {
        programs,
        netlists,
        reports,
        io,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosma_comm::handshake_unit;
    use cosma_core::{Expr, ModuleBuilder, ServiceCall, Stmt, SystemBuilder, Type, Value};

    fn demo_system() -> System {
        let mut p = ModuleBuilder::new("producer", ModuleKind::Software);
        let done = p.var("D", Type::Bool, Value::Bool(false));
        // Binding name deliberately different from the instance name.
        let b = p.binding("outbound", "hs");
        let s = p.state("S");
        let e = p.state("E");
        p.actions(
            s,
            vec![Stmt::Call(ServiceCall {
                binding: b,
                service: "put".into(),
                args: vec![Expr::int(42)],
                done: Some(done),
                result: None,
            })],
        );
        p.transition(s, Some(Expr::var(done)), e);
        p.transition(e, None, e);
        p.initial(s);

        let mut c = ModuleBuilder::new("consumer", ModuleKind::Hardware);
        let done = c.var("D", Type::Bool, Value::Bool(false));
        let got = c.var("GOT", Type::INT16, Value::Int(0));
        let b = c.binding("inbound", "hs");
        let s2 = c.state("S");
        c.actions(
            s2,
            vec![Stmt::Call(ServiceCall {
                binding: b,
                service: "get".into(),
                args: vec![],
                done: Some(done),
                result: Some(got),
            })],
        );
        c.transition(s2, None, s2);
        c.initial(s2);

        let mut sb = SystemBuilder::new("demo");
        let pm = sb.module(p.build().unwrap());
        let cm = sb.module(c.build().unwrap());
        let u = sb.unit("link", handshake_unit("hs", Type::INT16));
        sb.bind(pm, "outbound", u).unwrap();
        sb.bind(cm, "inbound", u).unwrap();
        sb.build().unwrap()
    }

    #[test]
    fn system_synthesis_shares_instance_wires() {
        let sys = demo_system();
        let out = synthesize_system(&sys, 0x300, Encoding::Binary).unwrap();
        assert_eq!(out.programs.len(), 1);
        // Wire names derive from the instance (`link`), not the binding
        // names (`outbound` / `inbound`).
        assert!(out.io.addr("link_DATA").is_some());
        assert!(out.io.addr("outbound_DATA").is_none());
        // Consumer netlist + controller netlist.
        assert_eq!(out.netlists.len(), 2);
        assert!(out.netlist("consumer").is_some());
        assert!(out.netlist("link_controller").is_some());
        assert!(out.total_clbs() > 0);
        // The consumer reads the same instance-named wires.
        let cons = out.netlist("consumer").unwrap();
        assert!(cons.find_input("link_B_FULL").is_some());
    }

    #[test]
    fn unbound_system_module_rejected() {
        // A module with a binding that the System never attached cannot
        // occur post-validation, so check the error path directly via a
        // hand-built call with a missing unit map entry.
        let sys = demo_system();
        // Sanity: the validated system synthesizes fine.
        assert!(synthesize_system(&sys, 0x300, Encoding::Gray).is_ok());
    }
}
