//! Software synthesis: flattened module → MC16 program.
//!
//! This is the paper's SW synthesis view made executable: every port
//! access of the flattened module becomes an `IN`/`OUT` bus transaction at
//! a physical address from the memory map (the prototype used address
//! 0x300 on the PC-AT extension bus). `Stmt::Trace` compiles to writes
//! into a dedicated trace-port window so board runs produce the same
//! event log as co-simulation — the coherence measurement hook.

use crate::flatten::SynthError;
use cosma_core::{BinOp, Expr, Module, Stmt, UnOp, Value};
use cosma_isa::{assemble, Image};
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;

/// First address of the trace-port window.
pub const TRACE_PORT_BASE: u16 = 0xFE00;
/// Maximum values per trace event (slots per label).
pub const TRACE_SLOTS: u16 = 8;
/// Base address of the variable segment in CPU memory.
pub const VAR_BASE: u16 = 0x4000;

/// I/O address map: module port name → bus address.
///
/// # Examples
///
/// ```
/// use cosma_synth::IoMap;
///
/// let mut map = IoMap::new(0x300);
/// let a = map.add("iface_DATA");
/// let b = map.add("iface_B_FULL");
/// assert_eq!((a, b), (0x300, 0x301));
/// assert_eq!(map.addr("iface_DATA"), Some(0x300));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IoMap {
    base: u16,
    entries: Vec<(String, u16)>,
}

impl IoMap {
    /// Creates a map allocating from `base` upward.
    #[must_use]
    pub fn new(base: u16) -> Self {
        IoMap {
            base,
            entries: vec![],
        }
    }

    /// Allocates the next address for `name` (or returns the existing
    /// one).
    pub fn add(&mut self, name: &str) -> u16 {
        if let Some(a) = self.addr(name) {
            return a;
        }
        let addr = self.base + self.entries.len() as u16;
        self.entries.push((name.to_string(), addr));
        addr
    }

    /// Allocates addresses for every port of a module, in port order.
    #[must_use]
    pub fn for_module(base: u16, module: &Module) -> Self {
        let mut map = IoMap::new(base);
        for p in module.ports() {
            map.add(p.name());
        }
        map
    }

    /// Address of a name.
    #[must_use]
    pub fn addr(&self, name: &str) -> Option<u16> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, a)| *a)
    }

    /// Name mapped at an address.
    #[must_use]
    pub fn name_at(&self, addr: u16) -> Option<&str> {
        self.entries
            .iter()
            .find(|(_, a)| *a == addr)
            .map(|(n, _)| n.as_str())
    }

    /// All `(name, address)` entries.
    #[must_use]
    pub fn entries(&self) -> &[(String, u16)] {
        &self.entries
    }

    /// Base address.
    #[must_use]
    pub fn base(&self) -> u16 {
        self.base
    }
}

/// A compiled software module.
#[derive(Debug, Clone)]
pub struct SwProgram {
    /// Generated assembly listing.
    pub asm: String,
    /// Assembled memory image.
    pub image: Image,
    /// Variable name → memory address.
    pub var_addrs: HashMap<String, u16>,
    /// Address of the FSM state word.
    pub state_addr: u16,
    /// The I/O map used for port accesses.
    pub io: IoMap,
    /// Trace labels in port-window order, with their arities.
    pub trace_labels: Vec<(String, usize)>,
    /// Port names and bit widths, in module port order.
    pub port_widths: Vec<(String, u32)>,
}

impl fmt::Display for SwProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SwProgram ({} words, {} vars)",
            self.image.len_words(),
            self.var_addrs.len()
        )
    }
}

struct CodeGen<'a> {
    module: &'a Module,
    io: &'a IoMap,
    out: String,
    label_counter: u32,
    trace_labels: Vec<(String, usize)>,
}

impl CodeGen<'_> {
    fn fresh(&mut self, stem: &str) -> String {
        self.label_counter += 1;
        format!("L{}_{}", self.label_counter, stem)
    }

    fn line(&mut self, text: &str) {
        let _ = writeln!(self.out, "        {text}");
    }

    fn label(&mut self, l: &str) {
        let _ = writeln!(self.out, "{l}:");
    }

    fn var_addr(&self, v: cosma_core::ids::VarId) -> u16 {
        VAR_BASE + v.raw() as u16
    }

    fn port_addr(&self, p: cosma_core::ids::PortId) -> Result<u16, SynthError> {
        let name = self.module.ports()[p.index()].name();
        self.io.addr(name).ok_or_else(|| SynthError::Unsupported {
            detail: format!("port {name} missing from the I/O map"),
        })
    }

    fn const_word(v: &Value) -> Result<u16, SynthError> {
        match v {
            Value::Int(i) => Ok(*i as u16),
            Value::Bool(b) => Ok(u16::from(*b)),
            Value::Bit(b) => match b.to_bool() {
                Some(x) => Ok(u16::from(x)),
                None => Err(SynthError::Unsupported {
                    detail: "X/Z literal in software code".to_string(),
                }),
            },
            Value::Enum(e) => Ok(e.index() as u16),
        }
    }

    /// Whether an expression is boolean-valued (so `Not` means logical
    /// negation rather than bitwise complement, matching the
    /// interpreter's typed semantics).
    fn is_boolish(&self, e: &Expr) -> bool {
        match e {
            Expr::Const(Value::Bool(_)) | Expr::Const(Value::Bit(_)) => true,
            Expr::Const(_) => false,
            Expr::Var(v) => matches!(
                self.module.vars()[v.index()].ty(),
                cosma_core::Type::Bool | cosma_core::Type::Bit
            ),
            Expr::Port(p) => matches!(
                self.module.ports()[p.index()].ty(),
                cosma_core::Type::Bool | cosma_core::Type::Bit
            ),
            Expr::Arg(_) => false,
            Expr::Unary(UnOp::Not, a) => self.is_boolish(a),
            Expr::Unary(_, _) => false,
            Expr::Binary(op, a, b) => {
                op.is_comparison()
                    || (matches!(op, BinOp::And | BinOp::Or | BinOp::Xor)
                        && self.is_boolish(a)
                        && self.is_boolish(b))
            }
        }
    }

    /// Emits code leaving the expression value in r0 (clobbers r1, r2 and
    /// the stack).
    fn expr(&mut self, e: &Expr) -> Result<(), SynthError> {
        match e {
            Expr::Const(v) => {
                let w = Self::const_word(v)?;
                self.line(&format!("LDI r0, {w}"));
            }
            Expr::Var(v) => {
                let a = self.var_addr(*v);
                self.line(&format!("LD r0, [{a:#06x}]"));
            }
            Expr::Port(p) => {
                let a = self.port_addr(*p)?;
                self.line(&format!("IN r0, {a:#06x}"));
            }
            Expr::Arg(i) => {
                return Err(SynthError::Unsupported {
                    detail: format!("Expr::Arg({i}) in software code after flattening"),
                })
            }
            Expr::Unary(UnOp::Neg, a) => {
                self.expr(a)?;
                self.line("NEG r0");
            }
            Expr::Unary(UnOp::Not, a) => {
                self.expr(a)?;
                if self.is_boolish(a) {
                    // Logical not over truthiness (guard semantics).
                    let lt = self.fresh("true");
                    let le = self.fresh("end");
                    self.line("CMPI r0, 0");
                    self.line(&format!("JZ {lt}"));
                    self.line("LDI r0, 0");
                    self.line(&format!("JMP {le}"));
                    self.label(&lt);
                    self.line("LDI r0, 1");
                    self.label(&le);
                } else {
                    // Bitwise complement (the interpreter's behaviour on
                    // integers).
                    self.line("NOT r0");
                }
            }
            Expr::Binary(BinOp::Shl | BinOp::Shr, a, b) => {
                let Expr::Const(Value::Int(k)) = &**b else {
                    return Err(SynthError::Unsupported {
                        detail: "non-constant shift amount".to_string(),
                    });
                };
                self.expr(a)?;
                let op = if matches!(e, Expr::Binary(BinOp::Shl, _, _)) {
                    "SHL"
                } else {
                    "SAR"
                };
                for _ in 0..(*k).clamp(0, 16) {
                    self.line(&format!("{op} r0"));
                }
            }
            Expr::Binary(op, a, b) => {
                self.expr(a)?;
                self.line("PUSH r0");
                self.expr(b)?;
                self.line("MOV r1, r0");
                self.line("POP r0");
                self.binop(*op)?;
            }
        }
        Ok(())
    }

    /// r0 := r0 <op> r1.
    fn binop(&mut self, op: BinOp) -> Result<(), SynthError> {
        match op {
            BinOp::Add => self.line("ADD r0, r1"),
            BinOp::Sub => self.line("SUB r0, r1"),
            BinOp::Mul => self.line("MUL r0, r1"),
            BinOp::Div => self.line("DIV r0, r1"),
            BinOp::Rem => self.line("REM r0, r1"),
            BinOp::And => self.line("AND r0, r1"),
            BinOp::Or => self.line("OR r0, r1"),
            BinOp::Xor => self.line("XOR r0, r1"),
            BinOp::Eq | BinOp::Ne => {
                let lt = self.fresh("true");
                let le = self.fresh("end");
                self.line("CMP r0, r1");
                self.line(&format!(
                    "{} {lt}",
                    if op == BinOp::Eq { "JZ" } else { "JNZ" }
                ));
                self.line("LDI r0, 0");
                self.line(&format!("JMP {le}"));
                self.label(&lt);
                self.line("LDI r0, 1");
                self.label(&le);
            }
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                // Signed comparison via the bias trick: flip the sign bit
                // of both operands, then unsigned compare (carry = below).
                let lt = self.fresh("true");
                let le = self.fresh("end");
                self.line("LDI r2, 0x8000");
                self.line("XOR r0, r2");
                self.line("XOR r1, r2");
                match op {
                    BinOp::Lt => {
                        self.line("CMP r0, r1");
                        self.line(&format!("JC {lt}"));
                    }
                    BinOp::Gt => {
                        self.line("CMP r1, r0");
                        self.line(&format!("JC {lt}"));
                    }
                    BinOp::Le => {
                        self.line("CMP r0, r1");
                        self.line(&format!("JC {lt}"));
                        self.line(&format!("JZ {lt}"));
                    }
                    BinOp::Ge => {
                        self.line("CMP r1, r0");
                        self.line(&format!("JC {lt}"));
                        self.line(&format!("JZ {lt}"));
                    }
                    _ => unreachable!(),
                }
                self.line("LDI r0, 0");
                self.line(&format!("JMP {le}"));
                self.label(&lt);
                self.line("LDI r0, 1");
                self.label(&le);
            }
            BinOp::Min | BinOp::Max => {
                let keep = self.fresh("keep");
                self.line("PUSH r0");
                self.line("PUSH r1");
                self.line("LDI r2, 0x8000");
                self.line("XOR r0, r2");
                self.line("XOR r1, r2");
                self.line("CMP r0, r1");
                self.line("POP r1");
                self.line("POP r0");
                if op == BinOp::Min {
                    self.line(&format!("JC {keep}")); // r0 < r1: keep r0
                } else {
                    self.line(&format!("JNC {keep}")); // r0 >= r1: keep r0
                }
                self.line("MOV r0, r1");
                self.label(&keep);
            }
            BinOp::Shl | BinOp::Shr => unreachable!("handled in expr"),
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), SynthError> {
        match s {
            Stmt::Assign(v, e) => {
                self.expr(e)?;
                let a = self.var_addr(*v);
                self.line(&format!("ST [{a:#06x}], r0"));
            }
            Stmt::Drive(p, e) => {
                self.expr(e)?;
                let a = self.port_addr(*p)?;
                self.line(&format!("OUT {a:#06x}, r0"));
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                self.expr(cond)?;
                let lelse = self.fresh("else");
                let lend = self.fresh("endif");
                self.line("CMPI r0, 0");
                self.line(&format!("JZ {lelse}"));
                for t in then_body {
                    self.stmt(t)?;
                }
                self.line(&format!("JMP {lend}"));
                self.label(&lelse);
                for t in else_body {
                    self.stmt(t)?;
                }
                self.label(&lend);
            }
            Stmt::Trace(label, values) => {
                let idx = match self.trace_labels.iter().position(|(l, _)| **l == **label) {
                    Some(i) => i,
                    None => {
                        self.trace_labels.push((label.to_string(), values.len()));
                        self.trace_labels.len() - 1
                    }
                };
                if values.len() > TRACE_SLOTS as usize {
                    return Err(SynthError::Unsupported {
                        detail: format!("trace {label} has more than {TRACE_SLOTS} values"),
                    });
                }
                for (j, v) in values.iter().enumerate() {
                    self.expr(v)?;
                    let addr = TRACE_PORT_BASE + idx as u16 * TRACE_SLOTS + j as u16;
                    self.line(&format!("OUT {addr:#06x}, r0"));
                }
            }
            Stmt::Call(c) => {
                return Err(SynthError::Unsupported {
                    detail: format!("service call to {} survived flattening", c.service),
                })
            }
        }
        Ok(())
    }
}

/// Compiles a flattened (call-free) software module to an MC16 program.
///
/// Program shape: an endless dispatch loop over the FSM state word (the
/// synthesized system free-runs; synchronization comes from the inlined
/// communication protocols, exactly as on the paper's prototype).
///
/// # Errors
///
/// Returns [`SynthError`] if the module still contains calls, a port is
/// missing from the I/O map, or a construct is outside the compilable
/// subset (non-constant shifts, X/Z literals).
pub fn compile_sw(module: &Module, io: &IoMap) -> Result<SwProgram, SynthError> {
    let fsm = module.fsm();
    let mut var_addrs = HashMap::new();
    for (i, v) in module.vars().iter().enumerate() {
        var_addrs.insert(v.name().to_string(), VAR_BASE + i as u16);
    }
    let state_addr = VAR_BASE + module.vars().len() as u16;

    let mut cg = CodeGen {
        module,
        io,
        out: String::new(),
        label_counter: 0,
        trace_labels: vec![],
    };
    let _ = writeln!(
        cg.out,
        "; MC16 program synthesized from module {}",
        module.name()
    );
    cg.line("ORG 0");
    // Initialize variables and the state word.
    for (i, v) in module.vars().iter().enumerate() {
        let w = CodeGen::const_word(v.init())?;
        if w != 0 {
            cg.line(&format!("LDI r0, {w}"));
            cg.line(&format!("ST [{:#06x}], r0", VAR_BASE + i as u16));
        }
    }
    let init_idx = fsm.initial().raw() as u16;
    if init_idx != 0 {
        cg.line(&format!("LDI r0, {init_idx}"));
        cg.line(&format!("ST [{state_addr:#06x}], r0"));
    }
    cg.label("main");
    cg.line(&format!("LD r0, [{state_addr:#06x}]"));
    for sid in fsm.state_ids() {
        cg.line(&format!("CMPI r0, {}", sid.raw()));
        cg.line(&format!("JZ st_{}", sid.raw()));
    }
    cg.line("JMP main");
    for sid in fsm.state_ids() {
        let st = fsm.state(sid);
        cg.label(&format!("st_{}", sid.raw()));
        for a in &st.actions {
            cg.stmt(a)?;
        }
        for t in &st.transitions {
            let skip = cg.fresh("skip");
            if let Some(g) = &t.guard {
                cg.expr(g)?;
                cg.line("CMPI r0, 0");
                cg.line(&format!("JZ {skip}"));
            }
            for a in &t.actions {
                cg.stmt(a)?;
            }
            cg.line(&format!("LDI r0, {}", t.target.raw()));
            cg.line(&format!("ST [{state_addr:#06x}], r0"));
            cg.line("JMP main");
            if t.guard.is_some() {
                cg.label(&skip);
            }
        }
        cg.line("JMP main");
    }
    let asm = cg.out;
    let image = assemble(&asm).map_err(|e| SynthError::Unsupported {
        detail: format!("internal codegen error: {e}"),
    })?;
    Ok(SwProgram {
        asm,
        image,
        var_addrs,
        state_addr,
        io: io.clone(),
        trace_labels: cg.trace_labels,
        port_widths: module
            .ports()
            .iter()
            .map(|p| (p.name().to_string(), p.ty().bit_width()))
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosma_core::{ModuleBuilder, ModuleKind, PortDir, Type};
    use cosma_isa::{Cpu, PortBus};

    /// Runs a compiled program for a bounded number of instructions
    /// against a bus.
    fn run(prog: &SwProgram, bus: &mut dyn PortBus, max_instrs: u64) -> Cpu {
        let mut cpu = Cpu::new();
        cpu.load_image(&prog.image);
        for _ in 0..max_instrs {
            cpu.step(bus).expect("program runs cleanly");
        }
        cpu
    }

    #[test]
    fn counter_compiles_and_counts() {
        let mut b = ModuleBuilder::new("ctr", ModuleKind::Software);
        let n = b.var("N", Type::INT16, Value::Int(0));
        let s = b.state("S");
        b.actions(s, vec![Stmt::assign(n, Expr::var(n).add(Expr::int(1)))]);
        b.transition(s, None, s);
        b.initial(s);
        let m = b.build().unwrap();
        let prog = compile_sw(&m, &IoMap::new(0x300)).unwrap();
        let mut bus = cosma_isa::NullBus;
        let cpu = run(&prog, &mut bus, 2000);
        let addr = prog.var_addrs["N"];
        assert!(cpu.mem(addr) > 10, "counter advanced: {}", cpu.mem(addr));
    }

    #[test]
    fn signed_arithmetic_matches_interpreter() {
        // Compute a handful of signed operations and leave results in
        // variables; compare against the interpreter.
        let cases: Vec<(&str, Expr)> = vec![
            ("LT", Expr::int(-5).lt(Expr::int(3))),
            ("GT", Expr::int(-5).gt(Expr::int(3))),
            ("LE", Expr::int(3).le(Expr::int(3))),
            ("GE", Expr::int(-7).ge(Expr::int(-7))),
            ("EQ", Expr::int(4).eq(Expr::int(4))),
            ("NE", Expr::int(4).ne(Expr::int(4))),
            (
                "MIN",
                Expr::Binary(BinOp::Min, Box::new(Expr::int(-5)), Box::new(Expr::int(3))),
            ),
            (
                "MAX",
                Expr::Binary(BinOp::Max, Box::new(Expr::int(-5)), Box::new(Expr::int(3))),
            ),
            ("DIV", Expr::int(-10).div(Expr::int(3))),
            (
                "REM",
                Expr::Binary(BinOp::Rem, Box::new(Expr::int(-10)), Box::new(Expr::int(3))),
            ),
            ("NEG", Expr::int(5).neg()),
            ("NOT", Expr::int(0).not()),
            (
                "SHL",
                Expr::Binary(BinOp::Shl, Box::new(Expr::int(3)), Box::new(Expr::int(2))),
            ),
            (
                "SHR",
                Expr::Binary(BinOp::Shr, Box::new(Expr::int(-8)), Box::new(Expr::int(1))),
            ),
        ];
        let mut b = ModuleBuilder::new("ops", ModuleKind::Software);
        let vars: Vec<_> = cases
            .iter()
            .map(|(name, _)| b.var((*name).to_string(), Type::INT16, Value::Int(0)))
            .collect();
        let s0 = b.state("S0");
        let s1 = b.state("S1");
        let actions: Vec<Stmt> = cases
            .iter()
            .zip(&vars)
            .map(|((_, e), v)| Stmt::assign(*v, e.clone()))
            .collect();
        b.actions(s0, actions);
        b.transition(s0, None, s1);
        b.transition(s1, None, s1);
        b.initial(s0);
        let m = b.build().unwrap();

        // Interpreter reference.
        let mut env = cosma_core::MapEnv::new();
        for v in m.vars() {
            env.add_var(v.ty().clone(), v.init().clone());
        }
        let mut exec = cosma_core::FsmExec::new(m.fsm());
        exec.step(m.fsm(), &mut env).unwrap();

        let prog = compile_sw(&m, &IoMap::new(0x300)).unwrap();
        let mut bus = cosma_isa::NullBus;
        let cpu = run(&prog, &mut bus, 5000);
        for (i, (name, _)) in cases.iter().enumerate() {
            let expect = env.var(vars[i]).clone();
            let expect_word = expect.to_bus_word(16) as u16;
            let got = cpu.mem(prog.var_addrs[*name]);
            assert_eq!(
                got, expect_word,
                "case {name}: got {got:#06x} want {expect_word:#06x}"
            );
        }
    }

    #[test]
    fn port_io_uses_mapped_addresses() {
        struct WireBus {
            b_full: u16,
            written: Vec<(u16, u16)>,
        }
        impl PortBus for WireBus {
            fn port_in(&mut self, port: u16) -> (u16, u32) {
                if port == 0x301 {
                    (self.b_full, 2)
                } else {
                    (0, 2)
                }
            }
            fn port_out(&mut self, port: u16, value: u16) -> u32 {
                self.written.push((port, value));
                2
            }
        }

        let mut b = ModuleBuilder::new("io", ModuleKind::Software);
        let data = b.port("DATA", PortDir::Out, Type::INT16);
        let b_full = b.port("B_FULL", PortDir::In, Type::Bit);
        let wait = b.state("WAIT");
        let send = b.state("SEND");
        let end = b.state("END");
        b.transition(
            wait,
            Some(Expr::port(b_full).eq(Expr::bit(cosma_core::Bit::Zero))),
            send,
        );
        b.actions(send, vec![Stmt::drive(data, Expr::int(99))]);
        b.transition(send, None, end);
        b.transition(end, None, end);
        b.initial(wait);
        let m = b.build().unwrap();
        let mut io = IoMap::new(0x300);
        io.add("DATA");
        io.add("B_FULL");
        let prog = compile_sw(&m, &io).unwrap();
        // Busy while B_FULL=1, proceeds when it drops.
        let mut bus = WireBus {
            b_full: 1,
            written: vec![],
        };
        let mut cpu = Cpu::new();
        cpu.load_image(&prog.image);
        for _ in 0..200 {
            cpu.step(&mut bus).unwrap();
        }
        assert!(bus.written.is_empty(), "stalled while full");
        bus.b_full = 0;
        for _ in 0..200 {
            cpu.step(&mut bus).unwrap();
        }
        assert_eq!(bus.written, vec![(0x300, 99)]);
    }

    #[test]
    fn trace_compiles_to_trace_ports() {
        let mut b = ModuleBuilder::new("tr", ModuleKind::Software);
        let n = b.var("N", Type::INT16, Value::Int(0));
        let s = b.state("S");
        let e = b.state("E");
        b.actions(
            s,
            vec![
                Stmt::assign(n, Expr::int(42)),
                Stmt::Trace("pos".into(), vec![Expr::var(n), Expr::int(7)]),
            ],
        );
        b.transition(s, None, e);
        b.transition(e, None, e);
        b.initial(s);
        let m = b.build().unwrap();
        let prog = compile_sw(&m, &IoMap::new(0x300)).unwrap();
        assert_eq!(prog.trace_labels, vec![("pos".to_string(), 2)]);

        struct Rec(Vec<(u16, u16)>);
        impl PortBus for Rec {
            fn port_in(&mut self, _: u16) -> (u16, u32) {
                (0, 0)
            }
            fn port_out(&mut self, port: u16, value: u16) -> u32 {
                self.0.push((port, value));
                0
            }
        }
        let mut bus = Rec(vec![]);
        let mut cpu = Cpu::new();
        cpu.load_image(&prog.image);
        for _ in 0..100 {
            cpu.step(&mut bus).unwrap();
        }
        assert_eq!(
            &bus.0[..2],
            &[(TRACE_PORT_BASE, 42), (TRACE_PORT_BASE + 1, 7)]
        );
    }

    #[test]
    fn initial_state_respected() {
        let mut b = ModuleBuilder::new("init", ModuleKind::Software);
        let n = b.var("N", Type::INT16, Value::Int(0));
        let a = b.state("A");
        let z = b.state("Z");
        b.actions(a, vec![Stmt::assign(n, Expr::int(1))]);
        b.transition(a, None, a);
        b.actions(z, vec![Stmt::assign(n, Expr::int(2))]);
        b.transition(z, None, z);
        b.initial(z);
        let m = b.build().unwrap();
        let prog = compile_sw(&m, &IoMap::new(0x300)).unwrap();
        let mut bus = cosma_isa::NullBus;
        let cpu = run(&prog, &mut bus, 500);
        assert_eq!(cpu.mem(prog.var_addrs["N"]), 2);
    }

    #[test]
    fn unflattened_module_rejected() {
        let mut b = ModuleBuilder::new("m", ModuleKind::Software);
        let bid = b.binding("iface", "hs");
        let s = b.state("S");
        b.actions(
            s,
            vec![Stmt::Call(cosma_core::ServiceCall {
                binding: bid,
                service: "put".into(),
                args: vec![],
                done: None,
                result: None,
            })],
        );
        b.transition(s, None, s);
        b.initial(s);
        let m = b.build().unwrap();
        let err = compile_sw(&m, &IoMap::new(0x300)).unwrap_err();
        assert!(err.to_string().contains("flattening"));
    }

    #[test]
    fn iomap_lookup() {
        let mut io = IoMap::new(0x300);
        io.add("A");
        io.add("B");
        io.add("A");
        assert_eq!(io.entries().len(), 2, "re-adding is idempotent");
        assert_eq!(io.name_at(0x301), Some("B"));
        assert_eq!(io.addr("C"), None);
        assert_eq!(io.base(), 0x300);
    }
}
