//! # cosma-synth — co-synthesis
//!
//! Maps the unified model onto a target architecture, reproducing the
//! paper's co-synthesis flow:
//!
//! 1. **Interface synthesis** ([`flatten_module`]) — each communication
//!    procedure call is replaced by the *view* matching the target: the
//!    protocol FSM is inlined and the unit's wires surface as module
//!    ports. [`controller_module`] does the same for unit controllers.
//! 2. **Hardware synthesis** ([`synthesize_hw`]) — flattened hardware
//!    modules become executable RTL netlists ([`Netlist`]) with state
//!    [`Encoding`] options and an XC4000-style 4-LUT area/timing estimate
//!    ([`TechReport`]).
//! 3. **Software synthesis** ([`compile_sw`]) — flattened software modules
//!    compile to MC16 programs whose port reads/writes are `IN`/`OUT` bus
//!    transactions at [`IoMap`] addresses (the paper's `inport`/`outport`
//!    at 0x300).
//!
//! Because both outputs execute (netlist simulation, MC16 ISS), the
//! co-synthesis results can be compared event-for-event with
//! co-simulation — the paper's *coherence* property as a measurement.

#![warn(missing_docs)]

mod emit;
mod encoding;
mod flatten;
mod hwsynth;
mod netlist;
mod swsynth;
mod system;

pub use emit::netlist_to_vhdl;
pub use encoding::Encoding;
pub use flatten::{
    controller_module, flatten_module, flatten_module_bound, FlattenBinding, SynthError,
};
pub use hwsynth::{synthesize_hw, HwSynthReport};
pub use netlist::{InputId, Netlist, NetlistSim, Node, NodeId, Op, RegId, TechReport};
pub use swsynth::{compile_sw, IoMap, SwProgram, TRACE_PORT_BASE, TRACE_SLOTS, VAR_BASE};
pub use system::{synthesize_system, SystemSynthesis};
