//! FSM state encodings — one of the design choices the paper leaves to
//! the synthesis tool; we implement the three classic schemes and expose
//! them for the ablation benchmark (area/speed trade-off).

use std::fmt;

/// State encoding scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Encoding {
    /// Dense binary counting code (minimum register bits).
    #[default]
    Binary,
    /// One flip-flop per state (fast decode, more FFs).
    OneHot,
    /// Gray code (single-bit transitions between adjacent states).
    Gray,
}

impl Encoding {
    /// All schemes.
    pub const ALL: [Encoding; 3] = [Encoding::Binary, Encoding::OneHot, Encoding::Gray];

    /// Register width needed for `n` states.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or (for one-hot) exceeds 64 states.
    #[must_use]
    pub fn width(self, n: usize) -> u32 {
        assert!(n > 0, "an FSM has at least one state");
        match self {
            Encoding::Binary | Encoding::Gray => {
                if n <= 1 {
                    1
                } else {
                    32 - (n as u32 - 1).leading_zeros()
                }
            }
            Encoding::OneHot => {
                assert!(n <= 64, "one-hot supports at most 64 states");
                n as u32
            }
        }
    }

    /// The code word for state index `i` of `n` states.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    #[must_use]
    pub fn encode(self, i: usize, n: usize) -> u64 {
        assert!(i < n, "state index out of range");
        match self {
            Encoding::Binary => i as u64,
            Encoding::OneHot => 1u64 << i,
            Encoding::Gray => (i ^ (i >> 1)) as u64,
        }
    }

    /// Decodes a code word back to a state index, if it is a valid code.
    #[must_use]
    pub fn decode(self, code: u64, n: usize) -> Option<usize> {
        (0..n).find(|&i| self.encode(i, n) == code)
    }
}

impl fmt::Display for Encoding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Encoding::Binary => write!(f, "binary"),
            Encoding::OneHot => write!(f, "one-hot"),
            Encoding::Gray => write!(f, "gray"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths() {
        assert_eq!(Encoding::Binary.width(1), 1);
        assert_eq!(Encoding::Binary.width(2), 1);
        assert_eq!(Encoding::Binary.width(5), 3);
        assert_eq!(Encoding::Gray.width(5), 3);
        assert_eq!(Encoding::OneHot.width(5), 5);
    }

    #[test]
    fn encodings_are_injective() {
        for enc in Encoding::ALL {
            for n in 1..=16 {
                let mut seen = std::collections::HashSet::new();
                for i in 0..n {
                    let c = enc.encode(i, n);
                    assert!(seen.insert(c), "{enc}: duplicate code for {i}/{n}");
                    assert!(c < (1u64 << enc.width(n)) || enc.width(n) == 64);
                    assert_eq!(enc.decode(c, n), Some(i), "{enc}: decode round trip");
                }
            }
        }
    }

    #[test]
    fn gray_adjacent_codes_differ_by_one_bit() {
        for i in 0..15usize {
            let a = Encoding::Gray.encode(i, 16);
            let b = Encoding::Gray.encode(i + 1, 16);
            assert_eq!((a ^ b).count_ones(), 1, "{i}");
        }
    }

    #[test]
    fn invalid_code_decodes_to_none() {
        assert_eq!(Encoding::OneHot.decode(0b11, 4), None);
        assert_eq!(Encoding::Binary.decode(9, 4), None);
    }

    #[test]
    #[should_panic(expected = "at least one state")]
    fn zero_states_panics() {
        let _ = Encoding::Binary.width(0);
    }

    #[test]
    fn display_names() {
        assert_eq!(Encoding::OneHot.to_string(), "one-hot");
    }
}
