//! Interface synthesis: inlining communication-procedure views.
//!
//! At co-synthesis time the paper replaces each access-procedure call with
//! the view matching the target (VHDL procedure for hardware, bus code for
//! software). [`flatten_module`] performs exactly that step on the IR:
//! every [`Stmt::Call`] is expanded into the called service's protocol
//! FSM, executed one-transition-per-call via an inlined session-state
//! variable, and the unit's wires surface as module ports named
//! `<BINDING>_<WIRE>`. The result is a self-contained FSMD that both the
//! hardware synthesizer and the MC16 code generator consume.
//!
//! [`controller_module`] performs the counterpart for the unit's internal
//! controller, which co-synthesis maps into the FPGA fabric.

use cosma_core::comm::{CommUnitSpec, ServiceSpec, SERVICE_DONE_VAR, SERVICE_RESULT_VAR};
use cosma_core::ids::{BindingId, PortId, VarId};
use cosma_core::{
    Expr, Module, ModuleBuildError, ModuleBuilder, ModuleKind, PortDir, ServiceCall, Stmt, Type,
    Value,
};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Synthesis errors.
#[derive(Debug, Clone, PartialEq)]
pub enum SynthError {
    /// A binding could not be resolved to a unit spec.
    UnboundBinding {
        /// Module name.
        module: String,
        /// Binding name.
        binding: String,
    },
    /// A call referenced a service the unit does not offer.
    UnknownService {
        /// Module name.
        module: String,
        /// Service name.
        service: String,
    },
    /// A construct outside the synthesizable subset was found.
    Unsupported {
        /// What and where.
        detail: String,
    },
    /// Rebuilding the module failed.
    Build(ModuleBuildError),
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::UnboundBinding { module, binding } => {
                write!(
                    f,
                    "module {module}: binding {binding} not resolved to a unit"
                )
            }
            SynthError::UnknownService { module, service } => {
                write!(f, "module {module}: unit offers no service {service}")
            }
            SynthError::Unsupported { detail } => write!(f, "{detail}"),
            SynthError::Build(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SynthError {}

impl From<ModuleBuildError> for SynthError {
    fn from(e: ModuleBuildError) -> Self {
        SynthError::Build(e)
    }
}

/// Remaps variable/port ids and substitutes `Arg` references in a service
/// expression so it can live inside the caller module.
fn remap_expr(
    e: &Expr,
    var_map: &[VarId],
    port_map: &[PortId],
    args: &[Expr],
) -> Result<Expr, SynthError> {
    Ok(match e {
        Expr::Const(v) => Expr::Const(v.clone()),
        Expr::Var(v) => Expr::Var(var_map[v.index()]),
        Expr::Port(p) => Expr::Port(port_map[p.index()]),
        Expr::Arg(i) => args
            .get(*i as usize)
            .cloned()
            .ok_or_else(|| SynthError::Unsupported {
                detail: format!("argument #{i} missing"),
            })?,
        Expr::Unary(op, a) => Expr::Unary(*op, Box::new(remap_expr(a, var_map, port_map, args)?)),
        Expr::Binary(op, a, b) => Expr::Binary(
            *op,
            Box::new(remap_expr(a, var_map, port_map, args)?),
            Box::new(remap_expr(b, var_map, port_map, args)?),
        ),
    })
}

fn remap_stmt(
    s: &Stmt,
    var_map: &[VarId],
    port_map: &[PortId],
    args: &[Expr],
) -> Result<Stmt, SynthError> {
    Ok(match s {
        Stmt::Assign(v, e) => {
            Stmt::Assign(var_map[v.index()], remap_expr(e, var_map, port_map, args)?)
        }
        Stmt::Drive(p, e) => {
            Stmt::Drive(port_map[p.index()], remap_expr(e, var_map, port_map, args)?)
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => Stmt::If {
            cond: remap_expr(cond, var_map, port_map, args)?,
            then_body: then_body
                .iter()
                .map(|t| remap_stmt(t, var_map, port_map, args))
                .collect::<Result<_, _>>()?,
            else_body: else_body
                .iter()
                .map(|t| remap_stmt(t, var_map, port_map, args))
                .collect::<Result<_, _>>()?,
        },
        Stmt::Trace(l, es) => Stmt::Trace(
            l.clone(),
            es.iter()
                .map(|e| remap_expr(e, var_map, port_map, args))
                .collect::<Result<_, _>>()?,
        ),
        Stmt::Call(_) => {
            return Err(SynthError::Unsupported {
                detail: "nested service call inside a service".to_string(),
            })
        }
    })
}

/// Builds the inlined one-activation step of a service protocol: an
/// if/else chain over the session-state variable executing the current
/// protocol state's actions and first enabled transition.
fn inline_service_step(
    svc: &ServiceSpec,
    sess_var: VarId,
    var_map: &[VarId],
    port_map: &[PortId],
    args: &[Expr],
) -> Result<Stmt, SynthError> {
    let fsm = svc.fsm();
    // Build from the last state backwards into an else chain.
    let mut chain: Vec<Stmt> = vec![];
    for sid in fsm.state_ids().collect::<Vec<_>>().into_iter().rev() {
        let st = fsm.state(sid);
        let mut body: Vec<Stmt> = vec![];
        for a in &st.actions {
            body.push(remap_stmt(a, var_map, port_map, args)?);
        }
        // Transitions as nested if/else (priority order).
        let mut trans_chain: Vec<Stmt> = vec![];
        for t in st.transitions.iter().rev() {
            let mut tb: Vec<Stmt> = vec![];
            for a in &t.actions {
                tb.push(remap_stmt(a, var_map, port_map, args)?);
            }
            tb.push(Stmt::assign(sess_var, Expr::int(i64::from(t.target.raw()))));
            trans_chain = match &t.guard {
                None => tb,
                Some(g) => {
                    vec![Stmt::if_else(
                        remap_expr(g, var_map, port_map, args)?,
                        tb,
                        trans_chain,
                    )]
                }
            };
        }
        body.extend(trans_chain);
        let guard = Expr::var(sess_var).eq(Expr::int(i64::from(sid.raw())));
        chain = vec![Stmt::if_else(guard, body, chain)];
    }
    Ok(chain
        .into_iter()
        .next()
        .unwrap_or(Stmt::if_then(Expr::bool(false), vec![])))
}

/// Flattens a module: every service call is replaced by its inlined
/// protocol (the "view selection" step of co-synthesis), and the bound
/// units' wires become ports named `<BINDING>_<WIRE>`.
///
/// The returned module has no bindings and no `Stmt::Call`; it is directly
/// synthesizable to hardware ([`crate::synthesize_hw`]) or compilable to
/// MC16 ([`crate::compile_sw`]).
///
/// # Errors
///
/// Returns [`SynthError`] if a binding is missing from `units`, a call
/// names an unknown service, or the module is otherwise outside the
/// synthesizable subset.
pub fn flatten_module(
    module: &Module,
    units: &HashMap<String, Arc<CommUnitSpec>>,
) -> Result<Module, SynthError> {
    let bound: HashMap<String, FlattenBinding> = units
        .iter()
        .map(|(k, v)| {
            (
                k.clone(),
                FlattenBinding {
                    spec: v.clone(),
                    prefix: k.clone(),
                },
            )
        })
        .collect();
    flatten_module_bound(module, &bound)
}

/// A resolved binding for [`flatten_module_bound`]: the unit spec plus
/// the wire-name prefix to use for the surfaced ports. Whole-system
/// synthesis uses the *unit instance* name as the prefix so that two
/// modules bound to the same instance (under different binding names)
/// share wires on the target.
#[derive(Debug, Clone)]
pub struct FlattenBinding {
    /// The communication unit's spec.
    pub spec: Arc<CommUnitSpec>,
    /// Prefix for surfaced wire ports (`<prefix>_<WIRE>`).
    pub prefix: String,
}

/// Like [`flatten_module`], with explicit control over the surfaced wire
/// names (see [`FlattenBinding`]).
///
/// # Errors
///
/// Same as [`flatten_module`].
pub fn flatten_module_bound(
    module: &Module,
    units: &HashMap<String, FlattenBinding>,
) -> Result<Module, SynthError> {
    let mut b = ModuleBuilder::new(module.name().to_string(), module.kind());
    // Original ports/vars first, preserving ids.
    for p in module.ports() {
        b.port(p.name().to_string(), p.dir(), p.ty().clone());
    }
    for v in module.vars() {
        b.var(v.name().to_string(), v.ty().clone(), v.init().clone());
    }

    // Which (binding, service) pairs are called?
    let mut called: Vec<(BindingId, std::sync::Arc<str>)> = vec![];
    module.fsm().for_each_stmt(&mut |s| {
        s.for_each_call(&mut |c| {
            if !called
                .iter()
                .any(|(b2, s2)| *b2 == c.binding && *s2 == c.service)
            {
                called.push((c.binding, c.service.clone()));
            }
        });
    });

    // Resolve units per binding; compute wire usage over all called
    // services of that binding.
    let mut unit_of_binding: HashMap<BindingId, FlattenBinding> = HashMap::new();
    for (bid, _) in &called {
        if unit_of_binding.contains_key(bid) {
            continue;
        }
        let bname = module.binding(*bid).name();
        let Some(fb) = units.get(bname) else {
            return Err(SynthError::UnboundBinding {
                module: module.name().to_string(),
                binding: bname.to_string(),
            });
        };
        unit_of_binding.insert(*bid, fb.clone());
    }

    // Wire ports per binding: direction from usage across called services.
    let mut wire_ports: HashMap<BindingId, Vec<PortId>> = HashMap::new();
    for (bid, fb) in &unit_of_binding {
        let spec = &fb.spec;
        let bname = fb.prefix.clone();
        let nwires = spec.wires().len();
        let mut reads = vec![false; nwires];
        let mut writes = vec![false; nwires];
        for (b2, sname) in &called {
            if b2 != bid {
                continue;
            }
            let svc = spec
                .service(sname)
                .ok_or_else(|| SynthError::UnknownService {
                    module: module.name().to_string(),
                    service: sname.to_string(),
                })?;
            svc.fsm().for_each_stmt(&mut |s| {
                s.for_each_driven_port(&mut |p| writes[p.index()] = true);
                s.for_each_expr(&mut |e| e.for_each_port(&mut |p| reads[p.index()] = true));
            });
            svc.fsm().for_each_guard(&mut |g| {
                g.for_each_port(&mut |p| reads[p.index()] = true);
            });
        }
        let ids: Vec<PortId> = spec
            .wires()
            .iter()
            .enumerate()
            .map(|(i, w)| {
                let dir = match (reads[i], writes[i]) {
                    (_, true) => {
                        if reads[i] {
                            PortDir::InOut
                        } else {
                            PortDir::Out
                        }
                    }
                    (true, false) => PortDir::In,
                    (false, false) => PortDir::In,
                };
                b.port(format!("{bname}_{}", w.name()), dir, w.ty().clone())
            })
            .collect();
        wire_ports.insert(*bid, ids);
    }

    // Session variables per (binding, service): state + locals.
    struct Session {
        sess_var: VarId,
        locals: Vec<VarId>,
        init_state: i64,
        local_inits: Vec<Value>,
    }
    let mut sessions: HashMap<(BindingId, std::sync::Arc<str>), Session> = HashMap::new();
    for (bid, sname) in &called {
        let spec = &unit_of_binding[bid].spec;
        let svc = spec.service(sname).expect("checked above");
        let bname = module.binding(*bid).name();
        let prefix = format!("__{bname}_{sname}");
        let init_state = i64::from(svc.fsm().initial().raw());
        let sess_var = b.var(
            format!("{prefix}_state"),
            Type::INT16,
            Value::Int(init_state),
        );
        let mut locals = vec![];
        let mut local_inits = vec![];
        for l in svc.locals() {
            locals.push(b.var(
                format!("{prefix}_{}", l.name()),
                l.ty().clone(),
                l.init().clone(),
            ));
            local_inits.push(l.init().clone());
        }
        sessions.insert(
            (*bid, sname.clone()),
            Session {
                sess_var,
                locals,
                init_state,
                local_inits,
            },
        );
    }

    // Rewrite the FSM.
    let fsm = module.fsm();
    let state_ids: Vec<_> = fsm
        .states()
        .iter()
        .map(|s| b.state(s.name().to_string()))
        .collect();
    let expand_call = |c: &ServiceCall| -> Result<Vec<Stmt>, SynthError> {
        let spec = &unit_of_binding[&c.binding].spec;
        let svc = spec.service(&c.service).expect("checked");
        let sess = &sessions[&(c.binding, c.service.clone())];
        let ports = &wire_ports[&c.binding];
        let step = inline_service_step(svc, sess.sess_var, &sess.locals, ports, &c.args)?;
        let done_local = sess.locals[SERVICE_DONE_VAR.index()];
        let mut out = vec![step];
        if let Some(d) = c.done {
            out.push(Stmt::assign(d, Expr::var(done_local)));
        }
        // On completion: propagate result, reset the session.
        let mut on_done: Vec<Stmt> = vec![];
        if let Some(r) = c.result {
            if svc.returns().is_some() {
                on_done.push(Stmt::assign(
                    r,
                    Expr::var(sess.locals[SERVICE_RESULT_VAR.index()]),
                ));
            }
        }
        on_done.push(Stmt::assign(sess.sess_var, Expr::int(sess.init_state)));
        for (l, init) in sess.locals.iter().zip(&sess.local_inits) {
            on_done.push(Stmt::assign(*l, Expr::Const(init.clone())));
        }
        out.push(Stmt::if_then(Expr::var(done_local), on_done));
        Ok(out)
    };

    fn rewrite(
        stmts: &[Stmt],
        expand: &dyn Fn(&ServiceCall) -> Result<Vec<Stmt>, SynthError>,
    ) -> Result<Vec<Stmt>, SynthError> {
        let mut out = vec![];
        for s in stmts {
            match s {
                Stmt::Call(c) => out.extend(expand(c)?),
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                } => out.push(Stmt::If {
                    cond: cond.clone(),
                    then_body: rewrite(then_body, expand)?,
                    else_body: rewrite(else_body, expand)?,
                }),
                other => out.push(other.clone()),
            }
        }
        Ok(out)
    }

    for (i, sid) in fsm.state_ids().enumerate() {
        let st = fsm.state(sid);
        b.actions(state_ids[i], rewrite(&st.actions, &expand_call)?);
        for t in &st.transitions {
            b.transition_with(
                state_ids[i],
                t.guard.clone(),
                rewrite(&t.actions, &expand_call)?,
                state_ids[t.target.index()],
            );
        }
    }
    b.initial(state_ids[fsm.initial().index()]);
    Ok(b.build()?)
}

/// Converts a unit's internal controller into a standalone hardware
/// module over ports named `<INSTANCE>_<WIRE>` — co-synthesis maps it
/// into the FPGA fabric next to the flattened hardware modules.
///
/// # Errors
///
/// Returns [`SynthError::Unsupported`] if the unit has no controller, or
/// build errors from the module reconstruction.
pub fn controller_module(spec: &CommUnitSpec, instance: &str) -> Result<Module, SynthError> {
    let Some(ctrl) = spec.controller() else {
        return Err(SynthError::Unsupported {
            detail: format!("unit {} has no controller", spec.name()),
        });
    };
    let mut b = ModuleBuilder::new(format!("{instance}_controller"), ModuleKind::Hardware);
    // Wire usage by the controller.
    let nwires = spec.wires().len();
    let mut writes = vec![false; nwires];
    ctrl.fsm.for_each_stmt(&mut |s| {
        s.for_each_driven_port(&mut |p| writes[p.index()] = true);
    });
    for (i, w) in spec.wires().iter().enumerate() {
        let dir = if writes[i] {
            PortDir::InOut
        } else {
            PortDir::In
        };
        b.port(format!("{instance}_{}", w.name()), dir, w.ty().clone());
    }
    for v in &ctrl.vars {
        b.var(v.name().to_string(), v.ty().clone(), v.init().clone());
    }
    let state_ids: Vec<_> = ctrl
        .fsm
        .states()
        .iter()
        .map(|s| b.state(s.name().to_string()))
        .collect();
    for (i, sid) in ctrl.fsm.state_ids().enumerate() {
        let st = ctrl.fsm.state(sid);
        b.actions(state_ids[i], st.actions.clone());
        for t in &st.transitions {
            b.transition_with(
                state_ids[i],
                t.guard.clone(),
                t.actions.clone(),
                state_ids[t.target.index()],
            );
        }
    }
    b.initial(state_ids[ctrl.fsm.initial().index()]);
    Ok(b.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosma_comm::handshake_unit;
    use cosma_core::{FsmExec, MapEnv};

    fn put_caller() -> Module {
        let mut mb = ModuleBuilder::new("producer", ModuleKind::Software);
        let done = mb.var("D", Type::Bool, Value::Bool(false));
        let bid = mb.binding("iface", "hs");
        let put = mb.state("PUT");
        let end = mb.state("END");
        mb.actions(
            put,
            vec![Stmt::Call(ServiceCall {
                binding: bid,
                service: "put".into(),
                args: vec![Expr::int(77)],
                done: Some(done),
                result: None,
            })],
        );
        mb.transition(put, Some(Expr::var(done)), end);
        mb.transition(end, None, end);
        mb.initial(put);
        mb.build().unwrap()
    }

    fn units() -> HashMap<String, Arc<CommUnitSpec>> {
        let mut m = HashMap::new();
        m.insert("iface".to_string(), handshake_unit("hs", Type::INT16));
        m
    }

    #[test]
    fn flatten_removes_calls_and_adds_wire_ports() {
        let flat = flatten_module(&put_caller(), &units()).unwrap();
        let mut calls = 0;
        flat.fsm()
            .for_each_stmt(&mut |s| s.for_each_call(&mut |_| calls += 1));
        assert_eq!(calls, 0, "no calls remain");
        assert!(flat.port_id("iface_DATA").is_some());
        assert!(flat.port_id("iface_B_FULL").is_some());
        assert!(flat.port_id("iface_REQ").is_some());
        assert!(flat.var_id("__iface_put_state").is_some());
        assert!(flat.var_id("__iface_put_DONE").is_some());
        assert_eq!(flat.bindings().len(), 0);
    }

    #[test]
    fn wire_directions_follow_usage() {
        let flat = flatten_module(&put_caller(), &units()).unwrap();
        // put reads B_FULL and ACK, writes DATA and REQ.
        let b_full = flat.port_id("iface_B_FULL").unwrap();
        assert_eq!(flat.port(b_full).dir(), PortDir::In);
        let ack = flat.port_id("iface_ACK").unwrap();
        assert_eq!(flat.port(ack).dir(), PortDir::In);
        let data = flat.port_id("iface_DATA").unwrap();
        assert_eq!(flat.port(data).dir(), PortDir::Out);
        let req = flat.port_id("iface_REQ").unwrap();
        assert_eq!(flat.port(req).dir(), PortDir::Out);
    }

    /// Executes the flattened producer against manually driven wires and
    /// checks it performs the same protocol as the unit runtime would.
    #[test]
    fn flattened_put_protocol_behaves() {
        let flat = flatten_module(&put_caller(), &units()).unwrap();
        let mut env = MapEnv::new();
        for p in flat.ports() {
            env.add_port(p.ty().clone(), p.ty().default_value());
        }
        for v in flat.vars() {
            env.add_var(v.ty().clone(), v.init().clone());
        }
        let data = flat.port_id("iface_DATA").unwrap();
        let ack = flat.port_id("iface_ACK").unwrap();
        let req = flat.port_id("iface_REQ").unwrap();
        let fsm = flat.fsm();
        let mut exec = FsmExec::new(fsm);

        // Activation 1: put INIT -> presents data, raises REQ.
        exec.step(fsm, &mut env).unwrap();
        assert_eq!(env.port(data), &Value::Int(77));
        assert_eq!(env.port(req), &Value::Bit(cosma_core::Bit::One));
        assert_eq!(
            fsm.state(exec.current()).name(),
            "PUT",
            "caller not done yet"
        );

        // Controller (simulated by hand) acknowledges.
        env.set_port(ack, Value::Bit(cosma_core::Bit::One));
        // Activation 2: put WAIT_ACK -> completes, REQ cleared; caller
        // transitions to END.
        exec.step(fsm, &mut env).unwrap();
        assert_eq!(env.port(req), &Value::Bit(cosma_core::Bit::Zero));
        assert_eq!(fsm.state(exec.current()).name(), "END");
    }

    #[test]
    fn session_resets_after_completion() {
        let flat = flatten_module(&put_caller(), &units()).unwrap();
        let sess = flat.var_id("__iface_put_state").unwrap();
        let done_local = flat.var_id("__iface_put_DONE").unwrap();
        let mut env = MapEnv::new();
        for p in flat.ports() {
            env.add_port(p.ty().clone(), p.ty().default_value());
        }
        for v in flat.vars() {
            env.add_var(v.ty().clone(), v.init().clone());
        }
        let ack = flat.port_id("iface_ACK").unwrap();
        let fsm = flat.fsm();
        let mut exec = FsmExec::new(fsm);
        exec.step(fsm, &mut env).unwrap();
        env.set_port(ack, Value::Bit(cosma_core::Bit::One));
        exec.step(fsm, &mut env).unwrap();
        // After completion the session state and DONE local are reset.
        assert_eq!(env.var(sess), &Value::Int(0));
        assert_eq!(env.var(done_local), &Value::Bool(false));
    }

    #[test]
    fn missing_unit_reported() {
        let err = flatten_module(&put_caller(), &HashMap::new()).unwrap_err();
        assert!(matches!(err, SynthError::UnboundBinding { .. }));
        assert!(err.to_string().contains("iface"));
    }

    #[test]
    fn unknown_service_reported() {
        let mut mb = ModuleBuilder::new("m", ModuleKind::Software);
        let bid = mb.binding("iface", "hs");
        let s = mb.state("S");
        mb.actions(
            s,
            vec![Stmt::Call(ServiceCall {
                binding: bid,
                service: "bogus".into(),
                args: vec![],
                done: None,
                result: None,
            })],
        );
        mb.transition(s, None, s);
        mb.initial(s);
        let m = mb.build().unwrap();
        let err = flatten_module(&m, &units()).unwrap_err();
        assert!(matches!(err, SynthError::UnknownService { .. }));
    }

    #[test]
    fn controller_module_over_instance_wires() {
        let spec = handshake_unit("hs", Type::INT16);
        let ctrl = controller_module(&spec, "link").unwrap();
        assert_eq!(ctrl.name(), "link_controller");
        assert!(ctrl.port_id("link_B_FULL").is_some());
        assert!(ctrl.port_id("link_REQ").is_some());
        assert_eq!(ctrl.fsm().state_count(), 2);
        // Controller drives B_FULL.
        let b_full = ctrl.port_id("link_B_FULL").unwrap();
        assert_eq!(ctrl.port(b_full).dir(), PortDir::InOut);
    }

    #[test]
    fn controllerless_unit_reported() {
        let spec = cosma_comm::register_bank_unit("bank", &[("A", Type::INT16)]);
        let err = controller_module(&spec, "b").unwrap_err();
        assert!(matches!(err, SynthError::Unsupported { .. }));
    }
}
