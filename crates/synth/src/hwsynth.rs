//! Hardware synthesis: FSMD module → executable RTL netlist.
//!
//! The classic FSMD lowering: a state register (in the chosen
//! [`Encoding`]), one register per module variable, symbolic execution of
//! each state's actions into dataflow, per-state next values muxed by the
//! state decode, and priority-encoded transition logic for the next-state
//! register.
//!
//! Written module ports become `(value, write-enable)` output pairs so the
//! surrounding fabric (the board's wire bank) can merge multiple drivers;
//! port reads observe the module's own same-cycle write (matching the
//! interpreter's immediate-write semantics).

use crate::encoding::Encoding;
use crate::flatten::SynthError;
use crate::netlist::{Netlist, NodeId, Op, RegId};
use cosma_core::{BinOp, Expr, Module, Stmt, UnOp, Value};
use std::fmt;

/// Summary of one hardware synthesis run.
#[derive(Debug, Clone)]
pub struct HwSynthReport {
    /// Module name.
    pub module: String,
    /// Number of FSM states.
    pub states: usize,
    /// Chosen state encoding.
    pub encoding: Encoding,
    /// State register width.
    pub state_bits: u32,
    /// Technology estimate.
    pub tech: crate::netlist::TechReport,
}

impl fmt::Display for HwSynthReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} states ({} encoding, {} bits) -> {}",
            self.module, self.states, self.encoding, self.state_bits, self.tech
        )
    }
}

fn value_width(v: &Value) -> u32 {
    match v {
        Value::Bit(_) | Value::Bool(_) => 1,
        Value::Int(_) => 16,
        Value::Enum(e) => e.ty().encoding_width(),
    }
}

struct Synth<'a> {
    nl: Netlist,
    module: &'a Module,
    port_inputs: Vec<NodeId>,
}

#[derive(Clone)]
struct SymState {
    vars: Vec<NodeId>,
    /// Per port: (value, write-enable) once written this cycle.
    writes: Vec<Option<(NodeId, NodeId)>>,
}

impl Synth<'_> {
    /// Normalizes a word to a 1-bit condition (`!= 0`, the interpreter's
    /// truthiness for integers).
    #[allow(clippy::wrong_self_convention)] // builds nodes, so needs &mut
    fn to_bool(&mut self, n: NodeId) -> NodeId {
        let z = self.nl.constant(0, self.nl.width(n));
        let eq0 = self.nl.bin(Op::Eq, n, z);
        self.nl.not(eq0)
    }

    fn lower_expr(&mut self, e: &Expr, sym: &SymState) -> Result<NodeId, SynthError> {
        Ok(match e {
            Expr::Const(v) => {
                let w = value_width(v);
                self.nl.constant(v.to_bus_word(w), w)
            }
            Expr::Var(v) => sym.vars[v.index()],
            Expr::Port(p) => match sym.writes[p.index()] {
                // Reads observe the module's own same-cycle write.
                Some((val, we)) => {
                    let input = self.port_inputs[p.index()];
                    self.nl.mux(we, val, input)
                }
                None => self.port_inputs[p.index()],
            },
            Expr::Arg(i) => {
                return Err(SynthError::Unsupported {
                    detail: format!(
                        "module {}: Expr::Arg({i}) after flattening",
                        self.module.name()
                    ),
                })
            }
            Expr::Unary(UnOp::Neg, a) => {
                let an = self.lower_expr(a, sym)?;
                self.nl.neg(an)
            }
            Expr::Unary(UnOp::Not, a) => {
                let an = self.lower_expr(a, sym)?;
                self.nl.not(an)
            }
            Expr::Binary(op, a, b) => {
                let an = self.lower_expr(a, sym)?;
                let bn = self.lower_expr(b, sym)?;
                match op {
                    BinOp::Add => self.nl.bin(Op::Add, an, bn),
                    BinOp::Sub => self.nl.bin(Op::Sub, an, bn),
                    BinOp::Mul => self.nl.bin(Op::Mul, an, bn),
                    BinOp::Div => self.nl.bin(Op::Div, an, bn),
                    BinOp::Rem => self.nl.bin(Op::Rem, an, bn),
                    BinOp::And => self.nl.bin(Op::And, an, bn),
                    BinOp::Or => self.nl.bin(Op::Or, an, bn),
                    BinOp::Xor => self.nl.bin(Op::Xor, an, bn),
                    BinOp::Shl => self.nl.bin(Op::Shl, an, bn),
                    BinOp::Shr => self.nl.bin(Op::Shr, an, bn),
                    BinOp::Eq => self.nl.bin(Op::Eq, an, bn),
                    BinOp::Ne => {
                        let eq = self.nl.bin(Op::Eq, an, bn);
                        self.nl.not(eq)
                    }
                    BinOp::Lt => self.nl.bin(Op::Lt, an, bn),
                    BinOp::Le => self.nl.bin(Op::Le, an, bn),
                    BinOp::Gt => self.nl.bin(Op::Lt, bn, an),
                    BinOp::Ge => self.nl.bin(Op::Le, bn, an),
                    BinOp::Min => self.nl.bin(Op::Min, an, bn),
                    BinOp::Max => self.nl.bin(Op::Max, an, bn),
                }
            }
        })
    }

    fn guard_bit(&mut self, e: &Expr, sym: &SymState) -> Result<NodeId, SynthError> {
        let n = self.lower_expr(e, sym)?;
        // Comparison results and bool variables are 1-bit already; wider
        // integers get normalized to the interpreter's truthiness.
        Ok(if self.nl.width(n) == 1 {
            n
        } else {
            self.to_bool(n)
        })
    }

    fn exec_stmt(&mut self, s: &Stmt, sym: &mut SymState) -> Result<(), SynthError> {
        match s {
            Stmt::Assign(v, e) => {
                let n = self.lower_expr(e, sym)?;
                let w = self.module.vars()[v.index()].ty().bit_width();
                sym.vars[v.index()] = self.nl.resize(n, w);
                Ok(())
            }
            Stmt::Drive(p, e) => {
                let n = self.lower_expr(e, sym)?;
                let w = self.module.ports()[p.index()].ty().bit_width();
                let n = self.nl.resize(n, w);
                let one = self.nl.constant(1, 1);
                sym.writes[p.index()] = Some((n, one));
                Ok(())
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let c = self.guard_bit(cond, sym)?;
                let mut then_sym = sym.clone();
                for t in then_body {
                    self.exec_stmt(t, &mut then_sym)?;
                }
                let mut else_sym = sym.clone();
                for t in else_body {
                    self.exec_stmt(t, &mut else_sym)?;
                }
                // Merge.
                for i in 0..sym.vars.len() {
                    if then_sym.vars[i] != else_sym.vars[i] {
                        sym.vars[i] = self.nl.mux(c, then_sym.vars[i], else_sym.vars[i]);
                    } else {
                        sym.vars[i] = then_sym.vars[i];
                    }
                }
                for i in 0..sym.writes.len() {
                    sym.writes[i] = match (then_sym.writes[i], else_sym.writes[i]) {
                        (None, None) => None,
                        (Some((tv, twe)), None) => {
                            let zero = self.nl.constant(0, 1);
                            let we = self.nl.mux(c, twe, zero);
                            Some((tv, we))
                        }
                        (None, Some((ev, ewe))) => {
                            let zero = self.nl.constant(0, 1);
                            let we = self.nl.mux(c, zero, ewe);
                            Some((ev, we))
                        }
                        (Some((tv, twe)), Some((ev, ewe))) => {
                            let v = self.nl.mux(c, tv, ev);
                            let we = self.nl.mux(c, twe, ewe);
                            Some((v, we))
                        }
                    };
                }
                Ok(())
            }
            Stmt::Trace(_, _) => Ok(()), // erased by synthesis
            Stmt::Call(c) => Err(SynthError::Unsupported {
                detail: format!(
                    "module {}: service call to {} survived flattening",
                    self.module.name(),
                    c.service
                ),
            }),
        }
    }
}

/// Synthesizes a flattened (call-free) module into an executable netlist.
///
/// Netlist interface:
///
/// * one input per module port, named like the port (reads sample the
///   external wire at cycle start),
/// * per written port: outputs `<PORT>__out` and `<PORT>__we`,
/// * output `STATE` exposing the encoded state register.
///
/// # Errors
///
/// Returns [`SynthError::Unsupported`] if the module still contains
/// service calls or uses `Expr::Arg`.
pub fn synthesize_hw(
    module: &Module,
    encoding: Encoding,
) -> Result<(Netlist, HwSynthReport), SynthError> {
    let fsm = module.fsm();
    let n_states = fsm.state_count();
    let state_bits = encoding.width(n_states);

    let mut nl = Netlist::new(module.name().to_string());
    let state_reg = nl.reg(
        "STATE",
        state_bits,
        encoding.encode(fsm.initial().index(), n_states),
    );
    let state_read = nl.read_reg(state_reg);
    nl.mark_output("STATE", state_read);

    let var_regs: Vec<RegId> = module
        .vars()
        .iter()
        .map(|v| {
            nl.reg(
                v.name().to_string(),
                v.ty().bit_width(),
                v.init().to_bus_word(v.ty().bit_width()),
            )
        })
        .collect();
    let port_inputs: Vec<NodeId> = module
        .ports()
        .iter()
        .map(|p| nl.input(p.name().to_string(), p.ty().bit_width()).1)
        .collect();
    let base_var_reads: Vec<NodeId> = var_regs.iter().map(|&r| nl.read_reg(r)).collect();

    let mut synth = Synth {
        nl,
        module,
        port_inputs,
    };

    // Per-state symbolic results.
    let mut per_state: Vec<(SymState, NodeId)> = Vec::with_capacity(n_states);
    for sid in fsm.state_ids() {
        let st = fsm.state(sid);
        let mut sym = SymState {
            vars: base_var_reads.clone(),
            writes: vec![None; module.ports().len()],
        };
        for a in &st.actions {
            synth.exec_stmt(a, &mut sym)?;
        }
        // Next state: priority chain, default = stay.
        let stay = synth
            .nl
            .constant(encoding.encode(sid.index(), n_states), state_bits);
        let mut next_state = stay;
        // Transition actions modify vars/ports only on the taken branch;
        // fold from last to first so the first transition has priority.
        let mut trans_syms: Vec<(Option<NodeId>, SymState, usize)> = vec![];
        for t in &st.transitions {
            let guard = match &t.guard {
                Some(g) => Some(synth.guard_bit(g, &sym)?),
                None => None,
            };
            let mut tsym = sym.clone();
            for a in &t.actions {
                synth.exec_stmt(a, &mut tsym)?;
            }
            trans_syms.push((guard, tsym, t.target.index()));
        }
        let mut acc_sym = sym.clone();
        for (guard, tsym, target) in trans_syms.into_iter().rev() {
            let tcode = synth
                .nl
                .constant(encoding.encode(target, n_states), state_bits);
            match guard {
                None => {
                    next_state = tcode;
                    acc_sym = tsym;
                }
                Some(g) => {
                    next_state = synth.nl.mux(g, tcode, next_state);
                    // Merge var values / writes under the guard.
                    for i in 0..acc_sym.vars.len() {
                        if tsym.vars[i] != acc_sym.vars[i] {
                            acc_sym.vars[i] = synth.nl.mux(g, tsym.vars[i], acc_sym.vars[i]);
                        }
                    }
                    for i in 0..acc_sym.writes.len() {
                        acc_sym.writes[i] = match (tsym.writes[i], acc_sym.writes[i]) {
                            (None, prev) => prev,
                            (Some((tv, twe)), None) => {
                                let zero = synth.nl.constant(0, 1);
                                let we = synth.nl.mux(g, twe, zero);
                                Some((tv, we))
                            }
                            (Some((tv, twe)), Some((pv, pwe))) => {
                                let v = synth.nl.mux(g, tv, pv);
                                let we = synth.nl.mux(g, twe, pwe);
                                Some((v, we))
                            }
                        };
                    }
                }
            }
        }
        per_state.push((acc_sym, next_state));
    }

    // Global muxing by state decode.
    let state_is: Vec<NodeId> = (0..n_states)
        .map(|k| {
            let code = synth.nl.constant(encoding.encode(k, n_states), state_bits);
            synth.nl.bin(Op::Eq, state_read, code)
        })
        .collect();

    // Next state register.
    let mut next_state_global = state_read;
    for (k, (_, ns)) in per_state.iter().enumerate() {
        next_state_global = synth.nl.mux(state_is[k], *ns, next_state_global);
    }
    synth.nl.set_reg_next(state_reg, next_state_global);

    // Variable registers.
    for (vi, &reg) in var_regs.iter().enumerate() {
        let mut acc = base_var_reads[vi];
        for (k, (sym, _)) in per_state.iter().enumerate() {
            if sym.vars[vi] != base_var_reads[vi] {
                acc = synth.nl.mux(state_is[k], sym.vars[vi], acc);
            }
        }
        synth.nl.set_reg_next(reg, acc);
    }

    // Port outputs.
    for (pi, port) in module.ports().iter().enumerate() {
        let written_anywhere = per_state.iter().any(|(sym, _)| sym.writes[pi].is_some());
        if !written_anywhere {
            continue;
        }
        let mut val_acc = synth.port_inputs[pi];
        let mut we_acc = synth.nl.constant(0, 1);
        for (k, (sym, _)) in per_state.iter().enumerate() {
            if let Some((v, we)) = sym.writes[pi] {
                val_acc = synth.nl.mux(state_is[k], v, val_acc);
                we_acc = synth.nl.mux(state_is[k], we, we_acc);
            }
        }
        synth
            .nl
            .mark_output(format!("{}__out", port.name()), val_acc);
        synth.nl.mark_output(format!("{}__we", port.name()), we_acc);
    }

    let nl = synth.nl;
    let tech = nl.tech_report();
    let report = HwSynthReport {
        module: module.name().to_string(),
        states: n_states,
        encoding,
        state_bits,
        tech,
    };
    Ok((nl, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosma_core::{FsmExec, MapEnv, ModuleBuilder, ModuleKind, PortDir, Type};

    /// Builds a module computing a saturating up/down counter with an
    /// enable input — exercises ifs, comparisons and port I/O.
    fn updown() -> Module {
        let mut b = ModuleBuilder::new("updown", ModuleKind::Hardware);
        let en = b.port("EN", PortDir::In, Type::Bit);
        let up = b.port("UP", PortDir::In, Type::Bit);
        let out = b.port("COUNT_OUT", PortDir::Out, Type::INT16);
        let count = b.var("COUNT", Type::INT16, Value::Int(0));
        let run = b.state("RUN");
        b.actions(
            run,
            vec![
                Stmt::if_then(
                    Expr::port(en).eq(Expr::bit(cosma_core::Bit::One)),
                    vec![Stmt::if_else(
                        Expr::port(up).eq(Expr::bit(cosma_core::Bit::One)),
                        vec![Stmt::assign(
                            count,
                            Expr::Binary(
                                BinOp::Min,
                                Box::new(Expr::var(count).add(Expr::int(1))),
                                Box::new(Expr::int(100)),
                            ),
                        )],
                        vec![Stmt::assign(
                            count,
                            Expr::Binary(
                                BinOp::Max,
                                Box::new(Expr::var(count).sub(Expr::int(1))),
                                Box::new(Expr::int(-5)),
                            ),
                        )],
                    )],
                ),
                Stmt::drive(out, Expr::var(count)),
            ],
        );
        b.transition(run, None, run);
        b.initial(run);
        b.build().unwrap()
    }

    /// Runs a module both through the interpreter and the synthesized
    /// netlist with identical per-cycle inputs and compares all variable
    /// values every cycle.
    fn assert_equiv(module: &Module, encoding: Encoding, inputs: &[Vec<Value>], cycles: usize) {
        let (nl, _) = synthesize_hw(module, encoding).unwrap();
        let mut sim = nl.simulator();
        let mut env = MapEnv::new();
        for p in module.ports() {
            env.add_port(p.ty().clone(), p.ty().default_value());
        }
        for v in module.vars() {
            env.add_var(v.ty().clone(), v.init().clone());
        }
        let mut exec = FsmExec::new(module.fsm());
        for cyc in 0..cycles {
            let cycle_inputs: Vec<Value> = inputs
                .get(cyc % inputs.len().max(1))
                .cloned()
                .unwrap_or_default();
            // Feed interpreter ports.
            for (pi, v) in cycle_inputs.iter().enumerate() {
                env.set_port(cosma_core::ids::PortId::new(pi as u32), v.clone());
            }
            exec.step(module.fsm(), &mut env).unwrap();
            // Feed netlist inputs (same order as ports).
            let words: Vec<u64> = cycle_inputs
                .iter()
                .zip(module.ports())
                .map(|(v, p)| v.to_bus_word(p.ty().bit_width()))
                .collect();
            sim.step(&words);
            for (vi, var) in module.vars().iter().enumerate() {
                let reg = nl.find_reg(var.name()).unwrap();
                let expected = env
                    .var(cosma_core::ids::VarId::new(vi as u32))
                    .to_bus_word(var.ty().bit_width());
                assert_eq!(
                    sim.reg_value(reg),
                    expected,
                    "cycle {cyc}, var {} ({encoding})",
                    var.name()
                );
            }
        }
    }

    #[test]
    fn updown_equivalent_across_encodings() {
        let module = updown();
        let one = Value::Bit(cosma_core::Bit::One);
        let zero = Value::Bit(cosma_core::Bit::Zero);
        let inputs: Vec<Vec<Value>> = vec![
            vec![one.clone(), one.clone(), Value::Int(0)],
            vec![one.clone(), zero.clone(), Value::Int(0)],
            vec![zero.clone(), one.clone(), Value::Int(0)],
            vec![one.clone(), one.clone(), Value::Int(0)],
        ];
        for enc in Encoding::ALL {
            assert_equiv(&module, enc, &inputs, 40);
        }
    }

    /// Multi-state FSM with guarded transitions: a tiny traffic light.
    fn traffic() -> Module {
        let mut b = ModuleBuilder::new("traffic", ModuleKind::Hardware);
        let req = b.port("REQ", PortDir::In, Type::Bit);
        let t = b.var("T", Type::INT16, Value::Int(0));
        let green = b.state("GREEN");
        let yellow = b.state("YELLOW");
        let red = b.state("RED");
        b.actions(green, vec![Stmt::assign(t, Expr::var(t).add(Expr::int(1)))]);
        b.transition(
            green,
            Some(
                Expr::port(req)
                    .eq(Expr::bit(cosma_core::Bit::One))
                    .and(Expr::var(t).ge(Expr::int(3))),
            ),
            yellow,
        );
        b.actions(yellow, vec![Stmt::assign(t, Expr::int(0))]);
        b.transition(yellow, None, red);
        b.actions(red, vec![Stmt::assign(t, Expr::var(t).add(Expr::int(1)))]);
        b.transition(red, Some(Expr::var(t).ge(Expr::int(2))), green);
        b.initial(green);
        b.build().unwrap()
    }

    #[test]
    fn traffic_state_sequence_matches() {
        let module = traffic();
        for enc in Encoding::ALL {
            let (nl, report) = synthesize_hw(&module, enc).unwrap();
            assert_eq!(report.states, 3);
            let mut sim = nl.simulator();
            let mut env = MapEnv::new();
            let req_port = cosma_core::ids::PortId::new(0);
            env.add_port(Type::Bit, Value::Bit(cosma_core::Bit::One));
            env.add_var(Type::INT16, Value::Int(0));
            let mut exec = FsmExec::new(module.fsm());
            env.set_port(req_port, Value::Bit(cosma_core::Bit::One));
            let state_reg = nl.find_reg("STATE").unwrap();
            for cyc in 0..30 {
                exec.step(module.fsm(), &mut env).unwrap();
                sim.step(&[1]);
                let expect_code = enc.encode(exec.current().index(), 3);
                assert_eq!(
                    sim.reg_value(state_reg),
                    expect_code,
                    "cycle {cyc} encoding {enc}"
                );
            }
        }
    }

    #[test]
    fn port_outputs_carry_write_enables() {
        let module = updown();
        let (nl, _) = synthesize_hw(&module, Encoding::Binary).unwrap();
        assert!(nl.output("COUNT_OUT__out").is_some());
        assert!(nl.output("COUNT_OUT__we").is_some());
        assert!(
            nl.output("EN__out").is_none(),
            "unwritten ports have no outputs"
        );
        let mut sim = nl.simulator();
        sim.step(&[1, 1, 0]);
        assert_eq!(sim.output_value("COUNT_OUT__we"), Some(1));
    }

    #[test]
    fn encoding_ablation_changes_area() {
        let module = traffic();
        let (_, bin) = synthesize_hw(&module, Encoding::Binary).unwrap();
        let (_, onehot) = synthesize_hw(&module, Encoding::OneHot).unwrap();
        assert_eq!(bin.state_bits, 2);
        assert_eq!(onehot.state_bits, 3);
        assert!(onehot.tech.ffs > bin.tech.ffs);
    }

    #[test]
    fn unflattened_module_rejected() {
        let mut b = ModuleBuilder::new("m", ModuleKind::Hardware);
        let bid = b.binding("iface", "hs");
        let s = b.state("S");
        b.actions(
            s,
            vec![Stmt::Call(cosma_core::ServiceCall {
                binding: bid,
                service: "put".into(),
                args: vec![],
                done: None,
                result: None,
            })],
        );
        b.transition(s, None, s);
        b.initial(s);
        let m = b.build().unwrap();
        let err = synthesize_hw(&m, Encoding::Binary).unwrap_err();
        assert!(matches!(err, SynthError::Unsupported { .. }));
        assert!(err.to_string().contains("flattening"));
    }

    #[test]
    fn report_displays() {
        let (_, report) = synthesize_hw(&traffic(), Encoding::Gray).unwrap();
        let text = report.to_string();
        assert!(text.contains("traffic"));
        assert!(text.contains("gray"));
        assert!(text.contains("LUTs"));
    }
}
