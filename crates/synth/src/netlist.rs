//! Executable word-level RTL netlists.
//!
//! Hardware synthesis lowers an FSMD module to a [`Netlist`]: a DAG of
//! word-level combinational nodes feeding clocked registers. The netlist
//! is *executable* (cycle-accurate evaluation) so the co-synthesized
//! hardware can run on the board model and be checked against the
//! interpreted FSM — coherence as a measurement, not an assumption.
//!
//! A technology model ([`TechReport`]) estimates 4-LUT count, flip-flops,
//! logic depth and fmax in the spirit of the paper's Xilinx XC4000 target.

use std::fmt;

/// Identifies a combinational node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// Raw index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifies a register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegId(u32);

impl RegId {
    /// Raw index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifies a primary input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InputId(u32);

impl InputId {
    /// Raw index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// Word-level combinational operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Addition (wrapping at width).
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication (low bits).
    Mul,
    /// Signed division; division by zero yields 0 (documented hardware
    /// convention).
    Div,
    /// Signed remainder; by zero yields 0.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift by a constant amount (free wiring).
    Shl,
    /// Arithmetic right shift by a constant amount.
    Shr,
    /// Equality (1-bit result).
    Eq,
    /// Signed less-than (1-bit result).
    Lt,
    /// Signed less-or-equal (1-bit result).
    Le,
    /// Signed minimum.
    Min,
    /// Signed maximum.
    Max,
}

/// A combinational node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// Constant word.
    Const(u64),
    /// Primary input.
    Input(InputId),
    /// Current value of a register.
    ReadReg(RegId),
    /// Bitwise complement (width-masked). For 1-bit nodes this is logical
    /// not.
    Not(NodeId),
    /// Arithmetic negation.
    Neg(NodeId),
    /// Binary operation.
    Bin(Op, NodeId, NodeId),
    /// 2:1 multiplexer: `sel ? t : f` (sel must be 1-bit).
    Mux(NodeId, NodeId, NodeId),
    /// Width adaptation (zero-extend or truncate to the node's width);
    /// free wiring in the fabric.
    Resize(NodeId),
}

#[derive(Debug, Clone)]
struct NodeDef {
    node: Node,
    width: u32,
}

#[derive(Debug, Clone)]
struct RegDef {
    name: String,
    width: u32,
    init: u64,
    next: Option<NodeId>,
}

/// An executable RTL netlist.
///
/// # Examples
///
/// A 4-bit counter:
///
/// ```
/// use cosma_synth::{Netlist, Op};
///
/// let mut n = Netlist::new("counter");
/// let r = n.reg("COUNT", 4, 0);
/// let cur = n.read_reg(r);
/// let one = n.constant(1, 4);
/// let next = n.bin(Op::Add, cur, one);
/// n.set_reg_next(r, next);
/// n.mark_output("COUNT", cur);
///
/// let mut sim = n.simulator();
/// for _ in 0..5 { sim.step(&[]); }
/// assert_eq!(sim.reg_value(r), 5);
/// for _ in 0..11 { sim.step(&[]); }
/// assert_eq!(sim.reg_value(r), 0, "wraps at width");
/// ```
#[derive(Debug, Clone)]
pub struct Netlist {
    name: String,
    nodes: Vec<NodeDef>,
    regs: Vec<RegDef>,
    inputs: Vec<(String, u32)>,
    outputs: Vec<(String, NodeId)>,
}

impl Netlist {
    /// Creates an empty netlist.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            nodes: vec![],
            regs: vec![],
            inputs: vec![],
            outputs: vec![],
        }
    }

    /// Netlist name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    fn push(&mut self, node: Node, width: u32) -> NodeId {
        assert!((1..=64).contains(&width), "node width must be 1..=64");
        self.nodes.push(NodeDef { node, width });
        NodeId(self.nodes.len() as u32 - 1)
    }

    /// Adds a constant node.
    pub fn constant(&mut self, value: u64, width: u32) -> NodeId {
        self.push(Node::Const(value & mask(width)), width)
    }

    /// Declares a primary input.
    pub fn input(&mut self, name: impl Into<String>, width: u32) -> (InputId, NodeId) {
        let id = InputId(self.inputs.len() as u32);
        self.inputs.push((name.into(), width));
        let node = self.push(Node::Input(id), width);
        (id, node)
    }

    /// Declares a register.
    pub fn reg(&mut self, name: impl Into<String>, width: u32, init: u64) -> RegId {
        let id = RegId(self.regs.len() as u32);
        self.regs.push(RegDef {
            name: name.into(),
            width,
            init: init & mask(width),
            next: None,
        });
        id
    }

    /// Node reading a register's current value.
    pub fn read_reg(&mut self, r: RegId) -> NodeId {
        let width = self.regs[r.index()].width;
        self.push(Node::ReadReg(r), width)
    }

    /// Sets a register's next-value node.
    ///
    /// # Panics
    ///
    /// Panics if widths mismatch.
    pub fn set_reg_next(&mut self, r: RegId, next: NodeId) {
        assert_eq!(
            self.regs[r.index()].width,
            self.nodes[next.index()].width,
            "register {} next-value width mismatch",
            self.regs[r.index()].name
        );
        self.regs[r.index()].next = Some(next);
    }

    /// Bitwise not.
    pub fn not(&mut self, a: NodeId) -> NodeId {
        let w = self.nodes[a.index()].width;
        self.push(Node::Not(a), w)
    }

    /// Arithmetic negation.
    pub fn neg(&mut self, a: NodeId) -> NodeId {
        let w = self.nodes[a.index()].width;
        self.push(Node::Neg(a), w)
    }

    /// Binary operation; result width is the max operand width, or 1 for
    /// comparisons.
    pub fn bin(&mut self, op: Op, a: NodeId, b: NodeId) -> NodeId {
        let wa = self.nodes[a.index()].width;
        let wb = self.nodes[b.index()].width;
        let w = match op {
            Op::Eq | Op::Lt | Op::Le => 1,
            _ => wa.max(wb),
        };
        self.push(Node::Bin(op, a, b), w)
    }

    /// 2:1 mux.
    ///
    /// # Panics
    ///
    /// Panics if `sel` is not 1-bit wide.
    pub fn mux(&mut self, sel: NodeId, t: NodeId, f: NodeId) -> NodeId {
        assert_eq!(self.nodes[sel.index()].width, 1, "mux select must be 1-bit");
        let w = self.nodes[t.index()].width.max(self.nodes[f.index()].width);
        self.push(Node::Mux(sel, t, f), w)
    }

    /// Width adaptation: returns a node carrying `a` zero-extended or
    /// truncated to `width` (identity if already that width).
    pub fn resize(&mut self, a: NodeId, width: u32) -> NodeId {
        if self.nodes[a.index()].width == width {
            a
        } else {
            self.push(Node::Resize(a), width)
        }
    }

    /// Marks a node as a named output.
    pub fn mark_output(&mut self, name: impl Into<String>, node: NodeId) {
        self.outputs.push((name.into(), node));
    }

    /// Width of a node in bits.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this netlist.
    #[must_use]
    pub fn width(&self, n: NodeId) -> u32 {
        self.nodes[n.index()].width
    }

    /// Number of combinational nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of registers.
    #[must_use]
    pub fn reg_count(&self) -> usize {
        self.regs.len()
    }

    /// Declared inputs `(name, width)`.
    #[must_use]
    pub fn inputs(&self) -> &[(String, u32)] {
        &self.inputs
    }

    /// Declared outputs `(name, node)`.
    #[must_use]
    pub fn outputs(&self) -> &[(String, NodeId)] {
        &self.outputs
    }

    /// Finds an output node by name.
    #[must_use]
    pub fn output(&self, name: &str) -> Option<NodeId> {
        self.outputs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, id)| *id)
    }

    /// Finds a register by name.
    #[must_use]
    pub fn find_reg(&self, name: &str) -> Option<RegId> {
        self.regs
            .iter()
            .position(|r| r.name == name)
            .map(|i| RegId(i as u32))
    }

    /// Finds an input index by name.
    #[must_use]
    pub fn find_input(&self, name: &str) -> Option<InputId> {
        self.inputs
            .iter()
            .position(|(n, _)| n == name)
            .map(|i| InputId(i as u32))
    }

    /// All nodes with their widths, in id (topological) order — for
    /// text emitters.
    #[must_use]
    pub fn dump_nodes(&self) -> Vec<(Node, u32)> {
        self.nodes
            .iter()
            .map(|d| (d.node.clone(), d.width))
            .collect()
    }

    /// All registers as `(name, width, init)` — for text emitters.
    #[must_use]
    pub fn dump_regs(&self) -> Vec<(String, u32, u64)> {
        self.regs
            .iter()
            .map(|r| (r.name.clone(), r.width, r.init))
            .collect()
    }

    /// Next-value node of a register, by name.
    #[must_use]
    pub fn reg_next_of(&self, name: &str) -> Option<NodeId> {
        self.regs
            .iter()
            .find(|r| r.name == name)
            .and_then(|r| r.next)
    }

    /// Creates a cycle-accurate simulator for this netlist (the netlist
    /// is cloned so the simulator is self-contained and storable).
    #[must_use]
    pub fn simulator(&self) -> NetlistSim {
        NetlistSim {
            reg_values: self.regs.iter().map(|r| r.init).collect(),
            node_values: vec![0; self.nodes.len()],
            cycles: 0,
            netlist: self.clone(),
        }
    }

    /// Technology-maps the netlist onto 4-LUT logic and reports
    /// area/depth/fmax estimates (XC4000-style model; see [`TechReport`]).
    #[must_use]
    pub fn tech_report(&self) -> TechReport {
        let mut luts = 0u64;
        let mut depth = vec![0u32; self.nodes.len()];
        let mut max_depth = 0u32;
        for (i, def) in self.nodes.iter().enumerate() {
            let w = def.width as u64;
            let (cost, levels, deps): (u64, u32, Vec<NodeId>) = match &def.node {
                Node::Const(_) | Node::Input(_) | Node::ReadReg(_) => (0, 0, vec![]),
                Node::Resize(a) => (0, 0, vec![*a]),
                Node::Not(a) => (w, 1, vec![*a]),
                Node::Neg(a) => (w, 1 + def.width.div_ceil(8), vec![*a]),
                Node::Mux(s, t, f) => (w, 1, vec![*s, *t, *f]),
                Node::Bin(op, a, b) => {
                    let (c, l) = match op {
                        Op::And | Op::Or | Op::Xor => (w, 1),
                        Op::Add | Op::Sub => (w, 1 + def.width.div_ceil(8)),
                        Op::Min | Op::Max => (2 * w, 2 + def.width.div_ceil(8)),
                        Op::Mul => (w * w / 2, 2 * log2_ceil(def.width.max(2))),
                        Op::Div | Op::Rem => (w * w, 3 * log2_ceil(def.width.max(2))),
                        Op::Eq => (w / 3 + 1, log2_ceil(def.width.max(2))),
                        Op::Lt | Op::Le => {
                            let wa = self.nodes[a.index()].width as u64;
                            (wa, 1 + self.nodes[a.index()].width.div_ceil(8))
                        }
                        Op::Shl | Op::Shr => (0, 0),
                    };
                    (c, l, vec![*a, *b])
                }
            };
            luts += cost;
            let in_depth = deps.iter().map(|d| depth[d.index()]).max().unwrap_or(0);
            depth[i] = in_depth + levels;
            max_depth = max_depth.max(depth[i]);
        }
        let ffs: u64 = self.regs.iter().map(|r| u64::from(r.width)).sum();
        // XC4000 CLB: two 4-LUTs + two FFs per CLB.
        let clbs = (luts / 2).max(ffs / 2).max(1);
        // Delay model: 1.5 ns per LUT level + 2 ns clock-to-out/setup.
        let crit_ns = 2.0 + 1.5 * f64::from(max_depth);
        let fmax_mhz = 1000.0 / crit_ns;
        TechReport {
            luts,
            ffs,
            clbs,
            depth: max_depth,
            crit_ns,
            fmax_mhz,
        }
    }
}

/// Technology-mapping estimate (4-LUT fabric, XC4000-style CLBs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechReport {
    /// Estimated 4-input LUTs.
    pub luts: u64,
    /// Flip-flops (total register bits).
    pub ffs: u64,
    /// Estimated CLBs (2 LUTs + 2 FFs each).
    pub clbs: u64,
    /// Combinational depth in LUT levels.
    pub depth: u32,
    /// Critical path estimate in nanoseconds.
    pub crit_ns: f64,
    /// Maximum clock frequency estimate in MHz.
    pub fmax_mhz: f64,
}

impl fmt::Display for TechReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} LUTs, {} FFs, {} CLBs, depth {}, {:.1} ns ({:.1} MHz)",
            self.luts, self.ffs, self.clbs, self.depth, self.crit_ns, self.fmax_mhz
        )
    }
}

fn mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

fn sign_extend(v: u64, width: u32) -> i64 {
    if width >= 64 {
        return v as i64;
    }
    let sign = 1u64 << (width - 1);
    if v & sign != 0 {
        (v | !mask(width)) as i64
    } else {
        v as i64
    }
}

/// Cycle-accurate evaluation state for a [`Netlist`], owning its netlist.
#[derive(Debug, Clone)]
pub struct NetlistSim {
    netlist: Netlist,
    reg_values: Vec<u64>,
    node_values: Vec<u64>,
    cycles: u64,
}

impl NetlistSim {
    /// The simulated netlist.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Evaluates one clock cycle with the given input values (by input
    /// declaration order; missing inputs read 0).
    pub fn step(&mut self, inputs: &[u64]) {
        let nl = &self.netlist;
        for (i, def) in nl.nodes.iter().enumerate() {
            let w = def.width;
            let v = match &def.node {
                Node::Const(c) => *c,
                Node::Input(id) => {
                    inputs.get(id.index()).copied().unwrap_or(0) & mask(nl.inputs[id.index()].1)
                }
                Node::ReadReg(r) => self.reg_values[r.index()],
                Node::Resize(a) => self.node_values[a.index()],
                Node::Not(a) => !self.node_values[a.index()],
                Node::Neg(a) => (self.node_values[a.index()] as i64).wrapping_neg() as u64,
                Node::Mux(s, t, f) => {
                    if self.node_values[s.index()] & 1 == 1 {
                        self.node_values[t.index()]
                    } else {
                        self.node_values[f.index()]
                    }
                }
                Node::Bin(op, a, b) => {
                    let wa = nl.nodes[a.index()].width;
                    let wb = nl.nodes[b.index()].width;
                    let ua = self.node_values[a.index()];
                    let ub = self.node_values[b.index()];
                    let sa = sign_extend(ua, wa);
                    let sb = sign_extend(ub, wb);
                    match op {
                        Op::Add => (sa.wrapping_add(sb)) as u64,
                        Op::Sub => (sa.wrapping_sub(sb)) as u64,
                        Op::Mul => (sa.wrapping_mul(sb)) as u64,
                        Op::Div => {
                            if sb == 0 {
                                0
                            } else {
                                sa.wrapping_div(sb) as u64
                            }
                        }
                        Op::Rem => {
                            if sb == 0 {
                                0
                            } else {
                                sa.wrapping_rem(sb) as u64
                            }
                        }
                        Op::And => ua & ub,
                        Op::Or => ua | ub,
                        Op::Xor => ua ^ ub,
                        Op::Shl => ua.wrapping_shl(ub as u32 & 63),
                        Op::Shr => (sa >> (ub as u32 & 63)) as u64,
                        Op::Eq => u64::from(ua == ub),
                        Op::Lt => u64::from(sa < sb),
                        Op::Le => u64::from(sa <= sb),
                        Op::Min => sa.min(sb) as u64,
                        Op::Max => sa.max(sb) as u64,
                    }
                }
            };
            self.node_values[i] = v & mask(w);
        }
        // Clock edge: registers load next values simultaneously.
        for (i, reg) in nl.regs.iter().enumerate() {
            if let Some(next) = reg.next {
                self.reg_values[i] = self.node_values[next.index()] & mask(reg.width);
            }
        }
        self.cycles += 1;
    }

    /// Current register value.
    #[must_use]
    pub fn reg_value(&self, r: RegId) -> u64 {
        self.reg_values[r.index()]
    }

    /// Value a node computed during the last [`step`](NetlistSim::step).
    #[must_use]
    pub fn node_value(&self, n: NodeId) -> u64 {
        self.node_values[n.index()]
    }

    /// Value of a named output after the last step.
    #[must_use]
    pub fn output_value(&self, name: &str) -> Option<u64> {
        self.netlist.output(name).map(|n| self.node_value(n))
    }

    /// Forces a register value (reset/test).
    pub fn set_reg(&mut self, r: RegId, v: u64) {
        let w = self.netlist.regs[r.index()].width;
        self.reg_values[r.index()] = v & mask(w);
    }

    /// Cycles executed.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }
}

fn log2_ceil(x: u32) -> u32 {
    32 - (x - 1).leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts_and_wraps() {
        let mut n = Netlist::new("ctr");
        let r = n.reg("C", 3, 0);
        let cur = n.read_reg(r);
        let one = n.constant(1, 3);
        let next = n.bin(Op::Add, cur, one);
        n.set_reg_next(r, next);
        let mut sim = n.simulator();
        for _ in 0..10 {
            sim.step(&[]);
        }
        assert_eq!(sim.reg_value(r), 2); // 10 mod 8
        assert_eq!(sim.cycles(), 10);
    }

    #[test]
    fn mux_selects() {
        let mut n = Netlist::new("mux");
        let (_, sel) = n.input("SEL", 1);
        let a = n.constant(5, 8);
        let b = n.constant(9, 8);
        let m = n.mux(sel, a, b);
        n.mark_output("Y", m);
        let mut sim = n.simulator();
        sim.step(&[0]);
        assert_eq!(sim.output_value("Y"), Some(9));
        sim.step(&[1]);
        assert_eq!(sim.output_value("Y"), Some(5));
    }

    #[test]
    fn signed_comparison() {
        let mut n = Netlist::new("cmp");
        let (_, x) = n.input("X", 16);
        let zero = n.constant(0, 16);
        let lt = n.bin(Op::Lt, x, zero);
        n.mark_output("NEG", lt);
        let mut sim = n.simulator();
        sim.step(&[0xFFFF]); // -1
        assert_eq!(sim.output_value("NEG"), Some(1));
        sim.step(&[5]);
        assert_eq!(sim.output_value("NEG"), Some(0));
    }

    #[test]
    fn signed_arithmetic_wraps_at_width() {
        let mut n = Netlist::new("arith");
        let (_, x) = n.input("X", 16);
        let (_, y) = n.input("Y", 16);
        let s = n.bin(Op::Sub, x, y);
        let d = n.bin(Op::Div, x, y);
        n.mark_output("S", s);
        n.mark_output("D", d);
        let mut sim = n.simulator();
        sim.step(&[3, 5]);
        assert_eq!(sim.output_value("S"), Some(0xFFFE)); // -2 in 16 bits
        assert_eq!(sim.output_value("D"), Some(0));
        sim.step(&[0xFFF6, 3]); // -10 / 3 = -3
        assert_eq!(sim.output_value("D"), Some(0xFFFD));
    }

    #[test]
    fn division_by_zero_yields_zero() {
        let mut n = Netlist::new("div0");
        let (_, x) = n.input("X", 16);
        let zero = n.constant(0, 16);
        let d = n.bin(Op::Div, x, zero);
        let r = n.bin(Op::Rem, x, zero);
        n.mark_output("D", d);
        n.mark_output("R", r);
        let mut sim = n.simulator();
        sim.step(&[7]);
        assert_eq!(sim.output_value("D"), Some(0));
        assert_eq!(sim.output_value("R"), Some(0));
    }

    #[test]
    fn registers_update_simultaneously() {
        // Swap: a <= b, b <= a each cycle.
        let mut n = Netlist::new("swap");
        let ra = n.reg("A", 8, 1);
        let rb = n.reg("B", 8, 2);
        let va = n.read_reg(ra);
        let vb = n.read_reg(rb);
        n.set_reg_next(ra, vb);
        n.set_reg_next(rb, va);
        let mut sim = n.simulator();
        sim.step(&[]);
        assert_eq!((sim.reg_value(ra), sim.reg_value(rb)), (2, 1));
        sim.step(&[]);
        assert_eq!((sim.reg_value(ra), sim.reg_value(rb)), (1, 2));
    }

    #[test]
    fn tech_report_scales_with_logic() {
        let mut small = Netlist::new("small");
        let (_, a) = small.input("A", 8);
        let (_, b) = small.input("B", 8);
        let x = small.bin(Op::And, a, b);
        small.mark_output("X", x);

        let mut big = Netlist::new("big");
        let (_, a) = big.input("A", 16);
        let (_, b) = big.input("B", 16);
        let m = big.bin(Op::Mul, a, b);
        let s = big.bin(Op::Add, m, a);
        let r = big.reg("ACC", 16, 0);
        big.set_reg_next(r, s);

        let rs = small.tech_report();
        let rb = big.tech_report();
        assert!(rb.luts > rs.luts);
        assert!(rb.depth > rs.depth);
        assert!(rb.fmax_mhz < rs.fmax_mhz);
        assert_eq!(rb.ffs, 16);
        assert!(rb.to_string().contains("LUTs"));
    }

    #[test]
    fn shifts_are_free_wiring() {
        let mut n = Netlist::new("shift");
        let (_, a) = n.input("A", 16);
        let k = n.constant(2, 16);
        let s = n.bin(Op::Shl, a, k);
        n.mark_output("S", s);
        let report = n.tech_report();
        assert_eq!(report.luts, 0);
        let mut sim = n.simulator();
        sim.step(&[3]);
        assert_eq!(sim.output_value("S"), Some(12));
    }

    #[test]
    fn lookup_by_name() {
        let mut n = Netlist::new("names");
        let r = n.reg("STATE", 4, 2);
        let (i, _) = n.input("GO", 1);
        assert_eq!(n.find_reg("STATE"), Some(r));
        assert_eq!(n.find_input("GO"), Some(i));
        assert_eq!(n.find_reg("NOPE"), None);
        let sim = n.simulator();
        assert_eq!(sim.reg_value(r), 2, "init value");
    }

    #[test]
    #[should_panic(expected = "mux select")]
    fn wide_mux_select_panics() {
        let mut n = Netlist::new("bad");
        let a = n.constant(1, 8);
        let _ = n.mux(a, a, a);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn reg_width_mismatch_panics() {
        let mut n = Netlist::new("bad");
        let r = n.reg("R", 8, 0);
        let c = n.constant(1, 4);
        n.set_reg_next(r, c);
    }
}
