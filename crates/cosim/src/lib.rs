//! # cosma-cosim — the co-simulation backplane
//!
//! Joint simulation of hardware and software over the discrete-event
//! kernel, following the paper's model:
//!
//! * the same module descriptions used for co-synthesis run here
//!   unchanged (coherence by construction),
//! * software modules are activated once per SW cycle and execute exactly
//!   one transition (precise HW/SW synchronization),
//! * all inter-module interaction goes through communication units whose
//!   wires are kernel signals,
//! * every `Stmt::Trace` lands in a [`TraceLog`] that can be compared
//!   event-for-event against a co-synthesis (board-level) run.

#![warn(missing_docs)]

mod annotate;
mod backplane;
pub mod scenario;
mod trace;

pub use annotate::{back_annotate, timing_error, BackAnnotation, LabelTiming};
pub use backplane::{
    Cosim, CosimConfig, CosimError, CosimModuleId, ModuleStatus, ShardStats, UnitId,
    UnitScheduling, DEFAULT_SHARD_SIZE,
};
pub use trace::{TraceComparison, TraceEntry, TraceLog};
