//! # cosma-cosim — the co-simulation backplane
//!
//! Joint simulation of hardware and software over the discrete-event
//! kernel, following the paper's model:
//!
//! * the same module descriptions used for co-synthesis run here
//!   unchanged (coherence by construction),
//! * software modules are activated once per SW cycle and execute exactly
//!   one transition (precise HW/SW synchronization),
//! * all inter-module interaction goes through communication units whose
//!   wires are kernel signals,
//! * module and unit stepping share one activation-gating architecture
//!   ([`SchedulingConfig`]): sharded dispatch with provably-stable FSMs
//!   *parked* on their completion wires, so blocked or finished parts of
//!   the backplane cost nothing per clock edge,
//! * every `Stmt::Trace` lands in a [`TraceLog`] that can be compared
//!   event-for-event against a co-synthesis (board-level) run.

#![warn(missing_docs)]

mod annotate;
mod backplane;
pub mod scenario;
mod trace;

pub use annotate::{back_annotate, timing_error, BackAnnotation, LabelTiming};
pub use backplane::{
    Cosim, CosimConfig, CosimError, CosimModuleId, ModuleScheduling, ModuleStatus,
    SchedulingConfig, ShardStats, UnitId, UnitScheduling, DEFAULT_SHARD_SIZE,
};
pub use trace::{TraceComparison, TraceEntry, TraceLog};
