//! # cosma-cosim — the co-simulation backplane
//!
//! Joint simulation of hardware and software over the discrete-event
//! kernel, following the paper's model:
//!
//! * the same module descriptions used for co-synthesis run here
//!   unchanged (coherence by construction),
//! * software modules are activated once per SW cycle and execute exactly
//!   one transition (precise HW/SW synchronization),
//! * all inter-module interaction goes through communication units whose
//!   wires are kernel signals,
//! * module and unit stepping share one activation-gating architecture
//!   ([`SchedulingConfig`]): sharded dispatch with provably-stable FSMs
//!   *parked* on their completion wires, so blocked or finished parts of
//!   the backplane cost nothing per clock edge,
//! * module activations run under a **two-phase step/commit model**
//!   ([`CallApplication::Deferred`], the default): the step phase is
//!   pure speculation against the cycle-start snapshot (service calls
//!   buffered as deltas), the commit phase replays the deltas in
//!   deterministic `(module, call index)` order — so module shards
//!   place by hashed id and the step phase can fan out over OS threads
//!   ([`Parallelism::Threads`]) without changing a single trace,
//! * every `Stmt::Trace` lands in a [`TraceLog`] that can be compared
//!   event-for-event against a co-synthesis (board-level) run,
//! * the whole backplane checkpoints into a [`Snapshot`]
//!   ([`Cosim::snapshot`] / [`Cosim::restore`] / [`Cosim::fork`]) with
//!   bit-identical deterministic replay: every layer owns and captures
//!   its mutable state (kernel schedule, unit internals, module
//!   executors, scheduler gating), and the backplane externalizes all
//!   of its process-closure state to make that possible.

#![warn(missing_docs)]

mod annotate;
mod backplane;
pub mod partition;
pub mod scenario;
mod trace;
pub mod tracebin;

pub use annotate::{
    annotate_batch_latency, back_annotate, timing_error, BackAnnotation, BatchAnnotation,
    BatchLinkTiming, LabelTiming, LinkCalibration,
};
pub use backplane::{
    CallApplication, Cosim, CosimConfig, CosimError, CosimModuleId, DomainId, DomainPlacement,
    ModulePlacement, ModuleScheduling, ModuleStatus, Parallelism, SchedulingConfig, ShardStats,
    Snapshot, UnitId, UnitScheduling, DEFAULT_SHARD_SIZE, STEP_FANOUT_MIN,
};
pub use cosma_comm::BusTiming;
pub use cosma_sim::ClockRatio;
pub use partition::{BoundarySpec, Orchestrator, OrchestratorStats, Partition, PartitionId};
pub use trace::{TraceComparison, TraceEntry, TraceEntryRef, TraceLog};
