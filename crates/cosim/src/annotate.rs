//! Back-annotation — the paper's stated future work ("developing tools
//! for evaluation and back-annotation with the results of co-synthesis
//! tools").
//!
//! A co-simulation runs on nominal activation clocks; the synthesized
//! prototype has real timing (instruction counts, bus wait states).
//! Because both flows emit the same labelled event sequence,
//! [`back_annotate`] can compare the two timelines and derive corrected
//! activation periods, after which a re-run of the co-simulation predicts
//! prototype timing instead of just functionality.

use crate::trace::TraceLog;
use cosma_comm::UnitStats;
use cosma_sim::Duration;
use std::fmt;

/// Timing comparison for one event label.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelTiming {
    /// Event label.
    pub label: String,
    /// Events considered (the smaller of the two logs' counts).
    pub events: usize,
    /// Duration between the first and last event in the reference
    /// (co-simulation) log, femtoseconds.
    pub reference_fs: u64,
    /// Same span in the measured (co-synthesis) log.
    pub measured_fs: u64,
    /// measured / reference — how much slower (>1) or faster (<1) the
    /// prototype is than the nominal co-simulation.
    pub scale: f64,
}

/// The result of a back-annotation pass.
#[derive(Debug, Clone, PartialEq)]
pub struct BackAnnotation {
    /// Per-label timing comparisons.
    pub labels: Vec<LabelTiming>,
    /// Geometric-mean timing scale across labels.
    pub scale: f64,
    /// The software activation period to use for a timing-accurate
    /// co-simulation re-run.
    pub annotated_sw_cycle: Duration,
}

impl BackAnnotation {
    /// The timing of one label, if present.
    #[must_use]
    pub fn label(&self, name: &str) -> Option<&LabelTiming> {
        self.labels.iter().find(|l| l.label == name)
    }
}

impl fmt::Display for BackAnnotation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "back-annotation (scale {:.3}):", self.scale)?;
        for l in &self.labels {
            writeln!(
                f,
                "  {:<14} {:>4} events: {:>10} fs (sim) vs {:>10} fs (board) -> x{:.3}",
                l.label, l.events, l.reference_fs, l.measured_fs, l.scale
            )?;
        }
        write!(f, "  annotated sw cycle: {}", self.annotated_sw_cycle)
    }
}

fn span_fs(log: &TraceLog, label: &str, n: usize) -> u64 {
    let times: Vec<u64> = log.with_label(label).take(n).map(|e| e.at).collect();
    match (times.first(), times.last()) {
        (Some(a), Some(b)) if b > a => b - a,
        _ => 0,
    }
}

/// Builds the per-label timing rows shared by [`back_annotate`] and
/// [`annotate_batch_latency`]: for every label with at least two events
/// in both logs and nonzero spans, the reference/measured spans and
/// their ratio.
fn label_rows(reference: &TraceLog, measured: &TraceLog, labels: &[&str]) -> Vec<LabelTiming> {
    let mut rows = vec![];
    for &label in labels {
        let n = reference
            .with_label(label)
            .count()
            .min(measured.with_label(label).count());
        if n < 2 {
            continue;
        }
        let reference_fs = span_fs(reference, label, n);
        let measured_fs = span_fs(measured, label, n);
        if reference_fs == 0 || measured_fs == 0 {
            continue;
        }
        rows.push(LabelTiming {
            label: label.to_string(),
            events: n,
            reference_fs,
            measured_fs,
            scale: measured_fs as f64 / reference_fs as f64,
        });
    }
    rows
}

/// Geometric mean of the rows' timing scales.
fn geometric_scale(rows: &[LabelTiming]) -> f64 {
    (rows.iter().map(|r| r.scale.ln()).sum::<f64>() / rows.len() as f64).exp()
}

/// Compares a co-simulation trace (run at `nominal_sw_cycle`) against a
/// co-synthesis trace and derives corrected timing.
///
/// # Contract
///
/// A label contributes a [`LabelTiming`] row only when it has **at
/// least two** occurrences in *both* logs (a span needs two endpoints)
/// and both spans are nonzero; labels failing that are skipped, so a
/// mixed label set degrades gracefully — the annotation is derived from
/// the annotatable labels alone. Returns `None` only when **no** label
/// yields a usable comparison.
#[must_use]
pub fn back_annotate(
    reference: &TraceLog,
    measured: &TraceLog,
    labels: &[&str],
    nominal_sw_cycle: Duration,
) -> Option<BackAnnotation> {
    let rows = label_rows(reference, measured, labels);
    if rows.is_empty() {
        return None;
    }
    let scale = geometric_scale(&rows);
    let annotated =
        Duration::from_fs((nominal_sw_cycle.as_fs() as f64 * scale).round().max(1.0) as u64);
    Some(BackAnnotation {
        labels: rows,
        scale,
        annotated_sw_cycle: annotated,
    })
}

/// One link's inputs to a batch-latency calibration
/// ([`annotate_batch_latency`]): the calibration run's [`UnitStats`],
/// the trace labels whose events ride this link, and the link's
/// nominal hardware cycle — its *domain's* (ratio-scaled) cycle, so
/// links in different clock domains calibrate against their own rate.
#[derive(Debug, Clone, Copy)]
pub struct LinkCalibration<'a> {
    /// Link instance name.
    pub link: &'a str,
    /// The calibration run's stats for this link
    /// (from [`crate::Cosim::unit_stats`]).
    pub stats: &'a UnitStats,
    /// Trace labels attributable to this link. Labels failing the
    /// two-occurrence contract are skipped; when none survive, the
    /// link falls back to the run-global scale.
    pub labels: &'a [&'a str],
    /// The link's nominal (domain-scaled) hardware cycle.
    pub nominal_hw_cycle: Duration,
}

/// Per-link bus-occupancy report of a batch-latency calibration
/// ([`annotate_batch_latency`]).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchLinkTiming {
    /// Link instance name.
    pub link: String,
    /// Completed bus transactions in the calibration run.
    pub batches: u64,
    /// Values carried by those transactions.
    pub values: u64,
    /// Payload beats streamed on `DATA`
    /// ([`UnitStats::payload_beats`]) — the payload-attributable bus
    /// occupancy in cycles.
    pub beats: u64,
    /// Mean beats per bus transaction — the per-batch latency the
    /// `LengthOnly` fast path leaves unmodelled.
    pub beats_per_batch: f64,
    /// This link's own timing scale, derived from its attributed
    /// labels alone (geometric mean); the run-global scale when none
    /// of its labels yields a usable comparison.
    pub scale: f64,
    /// The link's domain-scaled nominal cycle stretched by its own
    /// scale — the per-link (per-domain) corrected hardware cycle.
    pub annotated_hw_cycle: Duration,
}

/// The result of a batch-latency back-annotation pass
/// ([`annotate_batch_latency`]).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchAnnotation {
    /// Per-label timing comparisons (reference = `LengthOnly` run,
    /// measured = `PayloadBeats` calibration run).
    pub labels: Vec<LabelTiming>,
    /// Per-link bus-occupancy reports from the calibration run's
    /// [`UnitStats`].
    pub links: Vec<BatchLinkTiming>,
    /// Geometric-mean timing scale across labels: how much slower the
    /// payload-accurate bus makes the observed event streams.
    pub scale: f64,
    /// The hardware cycle to use for re-running the fast `LengthOnly`
    /// co-simulation with batch latency folded in: label timelines of
    /// the re-run then approximate the cycle-accurate `PayloadBeats`
    /// run without paying per-beat simulation cost.
    pub annotated_hw_cycle: Duration,
}

impl BatchAnnotation {
    /// The report for one link, if present.
    #[must_use]
    pub fn link(&self, name: &str) -> Option<&BatchLinkTiming> {
        self.links.iter().find(|l| l.link == name)
    }
}

impl fmt::Display for BatchAnnotation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "batch-latency annotation (scale {:.3}):", self.scale)?;
        for l in &self.labels {
            writeln!(
                f,
                "  {:<14} {:>4} events: {:>10} fs (length-only) vs {:>10} fs (beats) -> x{:.3}",
                l.label, l.events, l.reference_fs, l.measured_fs, l.scale
            )?;
        }
        for l in &self.links {
            writeln!(
                f,
                "  link {:<10} {} values / {} batches -> {:.2} beats/batch, \
                 x{:.3} -> {}",
                l.link, l.values, l.batches, l.beats_per_batch, l.scale, l.annotated_hw_cycle
            )?;
        }
        write!(f, "  annotated hw cycle: {}", self.annotated_hw_cycle)
    }
}

/// Batch-latency back-annotation: compares a fast
/// [`cosma_comm::BusTiming::LengthOnly`] co-simulation (`reference`)
/// against a cycle-accurate [`cosma_comm::BusTiming::PayloadBeats`]
/// calibration run (`calibration`) of the *same* system, mirroring how
/// [`back_annotate`] corrects service-call timing from
/// reference-vs-measured label timelines — here the "measured" timeline
/// is the payload-accurate bus.
///
/// `links` supplies one [`LinkCalibration`] per link: the calibration
/// run's [`UnitStats`] (reported as per-batch bus occupancy), the
/// labels attributable to the link, and the link's domain-scaled
/// nominal cycle. Each link derives its *own* timing scale from its
/// attributed labels — so a fast link and a slow link in one run get
/// separate corrected cycles instead of one global average — falling
/// back to the run-global scale when none of its labels is usable.
/// Labels follow the same two-occurrence contract as
/// [`back_annotate`]; links with zero completed batches are skipped.
/// Returns `None` when no label yields a usable comparison.
#[must_use]
pub fn annotate_batch_latency(
    reference: &TraceLog,
    calibration: &TraceLog,
    labels: &[&str],
    links: &[LinkCalibration<'_>],
    nominal_hw_cycle: Duration,
) -> Option<BatchAnnotation> {
    let rows = label_rows(reference, calibration, labels);
    if rows.is_empty() {
        return None;
    }
    let scale = geometric_scale(&rows);
    let stretch = |cycle: Duration, s: f64| {
        Duration::from_fs((cycle.as_fs() as f64 * s).round().max(1.0) as u64)
    };
    let link_rows = links
        .iter()
        .filter(|l| l.stats.batches > 0)
        .map(|l| {
            let own = label_rows(reference, calibration, l.labels);
            let link_scale = if own.is_empty() {
                scale
            } else {
                geometric_scale(&own)
            };
            BatchLinkTiming {
                link: l.link.to_string(),
                batches: l.stats.batches,
                values: l.stats.batched_values,
                beats: l.stats.payload_beats,
                beats_per_batch: l.stats.payload_beats as f64 / l.stats.batches as f64,
                scale: link_scale,
                annotated_hw_cycle: stretch(l.nominal_hw_cycle, link_scale),
            }
        })
        .collect();
    Some(BatchAnnotation {
        labels: rows,
        links: link_rows,
        scale,
        annotated_hw_cycle: stretch(nominal_hw_cycle, scale),
    })
}

/// Prediction quality of a (possibly annotated) co-simulation against the
/// measured prototype: mean absolute relative error of per-label spans.
#[must_use]
pub fn timing_error(reference: &TraceLog, measured: &TraceLog, labels: &[&str]) -> Option<f64> {
    let mut errs = vec![];
    for &label in labels {
        let n = reference
            .with_label(label)
            .count()
            .min(measured.with_label(label).count());
        if n < 2 {
            continue;
        }
        let r = span_fs(reference, label, n) as f64;
        let m = span_fs(measured, label, n) as f64;
        if r > 0.0 && m > 0.0 {
            errs.push(((r - m) / m).abs());
        }
    }
    if errs.is_empty() {
        None
    } else {
        Some(errs.iter().sum::<f64>() / errs.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosma_core::Value;

    fn log_with(times: &[u64], label: &str) -> TraceLog {
        let mut l = TraceLog::new();
        for &t in times {
            l.record(t, "m", label, vec![Value::Int(0)]);
        }
        l
    }

    #[test]
    fn derives_scale_from_spans() {
        // Reference events 0..100, measured 0..300: prototype is 3x
        // slower.
        let r = log_with(&[0, 50, 100], "tick");
        let m = log_with(&[0, 150, 300], "tick");
        let ann = back_annotate(&r, &m, &["tick"], Duration::from_ns(100)).expect("annotates");
        assert!((ann.scale - 3.0).abs() < 1e-9);
        assert_eq!(ann.annotated_sw_cycle, Duration::from_ns(300));
        assert_eq!(ann.label("tick").unwrap().events, 3);
    }

    #[test]
    fn geometric_mean_over_labels() {
        let mut r = log_with(&[0, 100], "a");
        let mut m = log_with(&[0, 200], "a"); // x2
        for (t, log) in [(0u64, &mut r), (0, &mut m)] {
            let _ = t;
            let _ = log;
        }
        for t in [0u64, 100] {
            r.record(t, "m", "b", vec![]);
        }
        for t in [0u64, 800] {
            m.record(t, "m", "b", vec![]);
        }
        let ann = back_annotate(&r, &m, &["a", "b"], Duration::from_ns(100)).unwrap();
        // sqrt(2 * 8) = 4.
        assert!((ann.scale - 4.0).abs() < 1e-9, "{}", ann.scale);
    }

    #[test]
    fn sparse_labels_skipped() {
        let r = log_with(&[0], "once");
        let m = log_with(&[0], "once");
        assert!(back_annotate(&r, &m, &["once"], Duration::from_ns(100)).is_none());
    }

    #[test]
    fn mixed_label_set_uses_only_annotatable_labels() {
        // The contract, pinned: a label with fewer than two occurrences
        // in either log contributes nothing — a mixed set (one
        // annotatable label + one single-shot label) degrades to an
        // annotation over the annotatable labels alone, not to None.
        let mut r = log_with(&[0, 100], "hot");
        let mut m = log_with(&[0, 200], "hot");
        r.record(50, "m", "once", vec![]);
        m.record(70, "m", "once", vec![]);
        let ann =
            back_annotate(&r, &m, &["hot", "once"], Duration::from_ns(100)).expect("annotates");
        assert_eq!(ann.labels.len(), 1, "single-shot label skipped");
        assert!(ann.label("once").is_none());
        assert!(ann.label("hot").is_some());
        assert!(
            (ann.scale - 2.0).abs() < 1e-9,
            "scale derived from the annotatable label alone"
        );
        // A single-shot label on only one side behaves the same.
        let mut m2 = log_with(&[0, 200], "hot");
        m2.record(70, "m", "solo", vec![]);
        let ann = back_annotate(&r, &m2, &["hot", "solo"], Duration::from_ns(100)).unwrap();
        assert_eq!(ann.labels.len(), 1);
    }

    #[test]
    fn batch_latency_derives_scale_and_link_occupancy() {
        // Reference (LengthOnly) events span 200 fs, calibration
        // (PayloadBeats) 600 fs: the payload-accurate bus is 3x slower,
        // and the link report carries beats-per-batch occupancy.
        let r = log_with(&[0, 100, 200], "recv");
        let m = log_with(&[0, 300, 600], "recv");
        let mut stats = UnitStats::default();
        stats.record_batch(4);
        stats.record_batch(2);
        stats.payload_beats = 6;
        let idle = UnitStats::default();
        let ann = annotate_batch_latency(
            &r,
            &m,
            &["recv"],
            &[
                LinkCalibration {
                    link: "bus",
                    stats: &stats,
                    labels: &["recv"],
                    nominal_hw_cycle: Duration::from_ns(100),
                },
                LinkCalibration {
                    link: "idle",
                    stats: &idle,
                    labels: &[],
                    nominal_hw_cycle: Duration::from_ns(100),
                },
            ],
            Duration::from_ns(100),
        )
        .expect("annotates");
        assert!((ann.scale - 3.0).abs() < 1e-9);
        assert_eq!(ann.annotated_hw_cycle, Duration::from_ns(300));
        assert_eq!(ann.links.len(), 1, "batch-less links skipped");
        let link = ann.link("bus").expect("bus reported");
        assert_eq!(link.batches, 2);
        assert_eq!(link.values, 6);
        assert_eq!(link.beats, 6);
        assert!((link.beats_per_batch - 3.0).abs() < 1e-9);
        assert!((link.scale - 3.0).abs() < 1e-9);
        assert_eq!(link.annotated_hw_cycle, Duration::from_ns(300));
        let text = ann.to_string();
        assert!(text.contains("beats/batch"));
        assert!(text.contains("annotated hw cycle"));
    }

    #[test]
    fn batch_latency_requires_usable_labels() {
        let r = log_with(&[0], "once");
        let m = log_with(&[0], "once");
        let stats = UnitStats::default();
        assert!(annotate_batch_latency(
            &r,
            &m,
            &["once"],
            &[LinkCalibration {
                link: "bus",
                stats: &stats,
                labels: &["once"],
                nominal_hw_cycle: Duration::from_ns(100),
            }],
            Duration::from_ns(100)
        )
        .is_none());
    }

    #[test]
    fn per_link_scales_mix_fast_and_slow_links() {
        // One run, two links: the "fast" link's events stretch x2 under
        // the payload-accurate bus, the "slow" link's x4 — and the slow
        // link lives in a quarter-rate clock domain, so its nominal
        // cycle is already 4x the base. Per-link annotation must keep
        // the two corrections separate; the old single global scale
        // (geometric mean sqrt(8)) was wrong for both.
        let mut r = log_with(&[0, 100], "fast.recv");
        let mut m = log_with(&[0, 200], "fast.recv");
        for t in [0u64, 100] {
            r.record(t, "m", "slow.recv", vec![]);
        }
        for t in [0u64, 400] {
            m.record(t, "m", "slow.recv", vec![]);
        }
        let mut fast_stats = UnitStats::default();
        fast_stats.record_batch(2);
        fast_stats.payload_beats = 2;
        let mut slow_stats = UnitStats::default();
        slow_stats.record_batch(2);
        slow_stats.payload_beats = 8;
        let base = Duration::from_ns(100);
        let ann = annotate_batch_latency(
            &r,
            &m,
            &["fast.recv", "slow.recv"],
            &[
                LinkCalibration {
                    link: "fast",
                    stats: &fast_stats,
                    labels: &["fast.recv"],
                    nominal_hw_cycle: base,
                },
                LinkCalibration {
                    link: "slow",
                    stats: &slow_stats,
                    labels: &["slow.recv"],
                    nominal_hw_cycle: Duration::from_ns(400),
                },
            ],
            base,
        )
        .expect("annotates");
        // Global scale remains the geometric mean across all labels.
        assert!((ann.scale - 8f64.sqrt()).abs() < 1e-9, "{}", ann.scale);
        let fast = ann.link("fast").expect("fast reported");
        assert!((fast.scale - 2.0).abs() < 1e-9, "{}", fast.scale);
        assert_eq!(fast.annotated_hw_cycle, Duration::from_ns(200));
        let slow = ann.link("slow").expect("slow reported");
        assert!((slow.scale - 4.0).abs() < 1e-9, "{}", slow.scale);
        assert_eq!(slow.annotated_hw_cycle, Duration::from_ns(1600));
        // A link whose labels are all unusable falls back to the
        // global scale rather than dropping out.
        let ann2 = annotate_batch_latency(
            &r,
            &m,
            &["fast.recv", "slow.recv"],
            &[LinkCalibration {
                link: "blind",
                stats: &fast_stats,
                labels: &[],
                nominal_hw_cycle: base,
            }],
            base,
        )
        .expect("annotates");
        let blind = ann2.link("blind").unwrap();
        assert!((blind.scale - ann2.scale).abs() < 1e-9);
    }

    #[test]
    fn timing_error_measures_mismatch() {
        let r = log_with(&[0, 100], "t");
        let m = log_with(&[0, 200], "t");
        let e = timing_error(&r, &m, &["t"]).unwrap();
        assert!((e - 0.5).abs() < 1e-9); // |100-200|/200
        let perfect = timing_error(&m, &m, &["t"]).unwrap();
        assert!(perfect.abs() < 1e-9);
    }

    #[test]
    fn display_renders() {
        let r = log_with(&[0, 100], "t");
        let m = log_with(&[0, 250], "t");
        let ann = back_annotate(&r, &m, &["t"], Duration::from_ns(100)).unwrap();
        let text = ann.to_string();
        assert!(text.contains("back-annotation"));
        assert!(text.contains('t'));
    }
}
