//! Back-annotation — the paper's stated future work ("developing tools
//! for evaluation and back-annotation with the results of co-synthesis
//! tools").
//!
//! A co-simulation runs on nominal activation clocks; the synthesized
//! prototype has real timing (instruction counts, bus wait states).
//! Because both flows emit the same labelled event sequence,
//! [`back_annotate`] can compare the two timelines and derive corrected
//! activation periods, after which a re-run of the co-simulation predicts
//! prototype timing instead of just functionality.

use crate::trace::TraceLog;
use cosma_sim::Duration;
use std::fmt;

/// Timing comparison for one event label.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelTiming {
    /// Event label.
    pub label: String,
    /// Events considered (the smaller of the two logs' counts).
    pub events: usize,
    /// Duration between the first and last event in the reference
    /// (co-simulation) log, femtoseconds.
    pub reference_fs: u64,
    /// Same span in the measured (co-synthesis) log.
    pub measured_fs: u64,
    /// measured / reference — how much slower (>1) or faster (<1) the
    /// prototype is than the nominal co-simulation.
    pub scale: f64,
}

/// The result of a back-annotation pass.
#[derive(Debug, Clone, PartialEq)]
pub struct BackAnnotation {
    /// Per-label timing comparisons.
    pub labels: Vec<LabelTiming>,
    /// Geometric-mean timing scale across labels.
    pub scale: f64,
    /// The software activation period to use for a timing-accurate
    /// co-simulation re-run.
    pub annotated_sw_cycle: Duration,
}

impl BackAnnotation {
    /// The timing of one label, if present.
    #[must_use]
    pub fn label(&self, name: &str) -> Option<&LabelTiming> {
        self.labels.iter().find(|l| l.label == name)
    }
}

impl fmt::Display for BackAnnotation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "back-annotation (scale {:.3}):", self.scale)?;
        for l in &self.labels {
            writeln!(
                f,
                "  {:<14} {:>4} events: {:>10} fs (sim) vs {:>10} fs (board) -> x{:.3}",
                l.label, l.events, l.reference_fs, l.measured_fs, l.scale
            )?;
        }
        write!(f, "  annotated sw cycle: {}", self.annotated_sw_cycle)
    }
}

fn span_fs(log: &TraceLog, label: &str, n: usize) -> u64 {
    let times: Vec<u64> = log.with_label(label).take(n).map(|e| e.at).collect();
    match (times.first(), times.last()) {
        (Some(a), Some(b)) if b > a => b - a,
        _ => 0,
    }
}

/// Compares a co-simulation trace (run at `nominal_sw_cycle`) against a
/// co-synthesis trace and derives corrected timing.
///
/// Labels with fewer than two events in either log are skipped. Returns
/// `None` if no label yields a usable comparison.
#[must_use]
pub fn back_annotate(
    reference: &TraceLog,
    measured: &TraceLog,
    labels: &[&str],
    nominal_sw_cycle: Duration,
) -> Option<BackAnnotation> {
    let mut rows = vec![];
    for &label in labels {
        let n = reference
            .with_label(label)
            .count()
            .min(measured.with_label(label).count());
        if n < 2 {
            continue;
        }
        let reference_fs = span_fs(reference, label, n);
        let measured_fs = span_fs(measured, label, n);
        if reference_fs == 0 || measured_fs == 0 {
            continue;
        }
        rows.push(LabelTiming {
            label: label.to_string(),
            events: n,
            reference_fs,
            measured_fs,
            scale: measured_fs as f64 / reference_fs as f64,
        });
    }
    if rows.is_empty() {
        return None;
    }
    let scale = (rows.iter().map(|r| r.scale.ln()).sum::<f64>() / rows.len() as f64).exp();
    let annotated =
        Duration::from_fs((nominal_sw_cycle.as_fs() as f64 * scale).round().max(1.0) as u64);
    Some(BackAnnotation {
        labels: rows,
        scale,
        annotated_sw_cycle: annotated,
    })
}

/// Prediction quality of a (possibly annotated) co-simulation against the
/// measured prototype: mean absolute relative error of per-label spans.
#[must_use]
pub fn timing_error(reference: &TraceLog, measured: &TraceLog, labels: &[&str]) -> Option<f64> {
    let mut errs = vec![];
    for &label in labels {
        let n = reference
            .with_label(label)
            .count()
            .min(measured.with_label(label).count());
        if n < 2 {
            continue;
        }
        let r = span_fs(reference, label, n) as f64;
        let m = span_fs(measured, label, n) as f64;
        if r > 0.0 && m > 0.0 {
            errs.push(((r - m) / m).abs());
        }
    }
    if errs.is_empty() {
        None
    } else {
        Some(errs.iter().sum::<f64>() / errs.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosma_core::Value;

    fn log_with(times: &[u64], label: &str) -> TraceLog {
        let mut l = TraceLog::new();
        for &t in times {
            l.record(t, "m", label, vec![Value::Int(0)]);
        }
        l
    }

    #[test]
    fn derives_scale_from_spans() {
        // Reference events 0..100, measured 0..300: prototype is 3x
        // slower.
        let r = log_with(&[0, 50, 100], "tick");
        let m = log_with(&[0, 150, 300], "tick");
        let ann = back_annotate(&r, &m, &["tick"], Duration::from_ns(100)).expect("annotates");
        assert!((ann.scale - 3.0).abs() < 1e-9);
        assert_eq!(ann.annotated_sw_cycle, Duration::from_ns(300));
        assert_eq!(ann.label("tick").unwrap().events, 3);
    }

    #[test]
    fn geometric_mean_over_labels() {
        let mut r = log_with(&[0, 100], "a");
        let mut m = log_with(&[0, 200], "a"); // x2
        for (t, log) in [(0u64, &mut r), (0, &mut m)] {
            let _ = t;
            let _ = log;
        }
        for t in [0u64, 100] {
            r.record(t, "m", "b", vec![]);
        }
        for t in [0u64, 800] {
            m.record(t, "m", "b", vec![]);
        }
        let ann = back_annotate(&r, &m, &["a", "b"], Duration::from_ns(100)).unwrap();
        // sqrt(2 * 8) = 4.
        assert!((ann.scale - 4.0).abs() < 1e-9, "{}", ann.scale);
    }

    #[test]
    fn sparse_labels_skipped() {
        let r = log_with(&[0], "once");
        let m = log_with(&[0], "once");
        assert!(back_annotate(&r, &m, &["once"], Duration::from_ns(100)).is_none());
    }

    #[test]
    fn timing_error_measures_mismatch() {
        let r = log_with(&[0, 100], "t");
        let m = log_with(&[0, 200], "t");
        let e = timing_error(&r, &m, &["t"]).unwrap();
        assert!((e - 0.5).abs() < 1e-9); // |100-200|/200
        let perfect = timing_error(&m, &m, &["t"]).unwrap();
        assert!(perfect.abs() < 1e-9);
    }

    #[test]
    fn display_renders() {
        let r = log_with(&[0, 100], "t");
        let m = log_with(&[0, 250], "t");
        let ann = back_annotate(&r, &m, &["t"], Duration::from_ns(100)).unwrap();
        let text = ann.to_string();
        assert!(text.contains("back-annotation"));
        assert!(text.contains('t'));
    }
}
