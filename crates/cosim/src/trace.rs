//! Trace capture and comparison — the instrument behind the paper's
//! *coherence* claim: co-simulation and co-synthesis runs of the same
//! description must produce the same externally visible event sequence.
//!
//! # Columnar layout and the interning contract
//!
//! [`TraceLog`] is on the per-cycle hot path of every traced module
//! activation, so it does **not** store one `String` + `Vec<Value>`
//! allocation pair per entry. Instead:
//!
//! * **Interning** — every source and label string is interned once
//!   into an `Arc<str>` table; entries store `u32` ids. Recording a
//!   label that is already interned costs one hash lookup and zero
//!   allocations. IR trace statements carry `Arc<str>` labels (shared
//!   with the interner on first sight), so even the first occurrence
//!   is a refcount bump, not a string copy.
//! * **Segmented columnar storage** — entries live in fixed-arity
//!   segments ([`SEG_ENTRIES`] records each); each segment carries one
//!   shared `Value` pool that all of its entries' payloads are packed
//!   into back-to-back. Steady-state recording appends plain-old-data
//!   records and `Value`s into pre-grown vectors: no per-entry
//!   allocation, and segment allocation itself disappears once a spill
//!   sink recycles shells (or amortizes to one `Vec` growth per
//!   [`SEG_ENTRIES`] entries without one).
//! * **Binary spill** — [`TraceLog::set_spill`] attaches a byte sink
//!   (format: [`crate::tracebin`]); every segment that fills is encoded
//!   to the sink and its shell recycled, so an arbitrarily long run
//!   holds at most one segment in memory and recording allocates
//!   nothing at all in steady state. Spilled entries leave the
//!   in-memory view (`len`, iteration, comparison) — the sink is the
//!   archive.
//!
//! The crate-external API still speaks [`TraceEntry`] — materialized
//! owned views rendered on demand — so comparison tooling and tests
//! are unaffected by the physical layout.

use cosma_core::Value;
use std::collections::HashMap;
use std::fmt;
use std::io::Write;
use std::sync::Arc;

/// Entries per storage segment. Each full segment is one allocation
/// unit (two `Vec`s: records and the shared value pool) and one spill
/// unit.
pub(crate) const SEG_ENTRIES: usize = 1024;

/// One recorded event, as an owned view. The log stores entries
/// columnar and interned ([`TraceLog`]); this struct is what iteration
/// and comparison *render*, and what ad-hoc construction in tests uses.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// Timestamp in femtoseconds (simulation) or cycles (board runs);
    /// ignored by sequence comparison.
    pub at: u64,
    /// Emitting module or component.
    pub source: String,
    /// Event label.
    pub label: String,
    /// Event payload.
    pub values: Vec<Value>,
}

/// One recorded event, as a borrowed view into the log's interned
/// strings and columnar value pool — the zero-copy counterpart of
/// [`TraceEntry`] that [`TraceLog::iter`] yields.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEntryRef<'a> {
    /// Timestamp in femtoseconds (simulation) or cycles (board runs).
    pub at: u64,
    /// Emitting module or component.
    pub source: &'a str,
    /// Event label.
    pub label: &'a str,
    /// Event payload (a slice of the segment's value pool).
    pub values: &'a [Value],
}

impl TraceEntryRef<'_> {
    /// Materializes an owned [`TraceEntry`].
    #[must_use]
    pub fn to_entry(&self) -> TraceEntry {
        TraceEntry {
            at: self.at,
            source: self.source.to_string(),
            label: self.label.to_string(),
            values: self.values.to_vec(),
        }
    }
}

/// String interner: id-stable `Arc<str>` table with a reverse map.
#[derive(Debug, Clone, Default)]
struct Interner {
    names: Vec<Arc<str>>,
    ids: HashMap<Arc<str>, u32>,
}

impl Interner {
    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.ids.get(s) {
            return id;
        }
        self.insert(Arc::from(s))
    }

    /// Interns an already-`Arc`ed string: first sight shares the
    /// allocation (refcount bump) instead of copying the bytes.
    fn intern_arc(&mut self, s: &Arc<str>) -> u32 {
        if let Some(&id) = self.ids.get(&**s) {
            return id;
        }
        self.insert(Arc::clone(s))
    }

    fn insert(&mut self, arc: Arc<str>) -> u32 {
        let id = u32::try_from(self.names.len()).expect("interner id fits u32");
        self.names.push(Arc::clone(&arc));
        self.ids.insert(arc, id);
        id
    }

    fn resolve(&self, id: u32) -> &str {
        &self.names[id as usize]
    }
}

/// Plain-old-data record of one entry; payload lives in the owning
/// segment's value pool at `values[vstart..vstart + vlen]`.
#[derive(Debug, Clone, Copy)]
struct EntryRec {
    at: u64,
    source: u32,
    label: u32,
    vstart: u32,
    vlen: u32,
}

/// One storage segment: up to [`SEG_ENTRIES`] records plus their
/// shared value pool. Cleared shells keep their capacity, so recycling
/// a segment makes its refill allocation-free.
#[derive(Debug, Clone, Default)]
struct Segment {
    recs: Vec<EntryRec>,
    values: Vec<Value>,
}

impl Segment {
    fn entry<'a>(&'a self, i: usize, interner: &'a Interner) -> TraceEntryRef<'a> {
        let r = &self.recs[i];
        TraceEntryRef {
            at: r.at,
            source: interner.resolve(r.source),
            label: interner.resolve(r.label),
            values: &self.values[r.vstart as usize..(r.vstart + r.vlen) as usize],
        }
    }
}

/// An ordered event log with interned strings and segmented columnar
/// value storage (see the [module docs](self) for the layout and the
/// interning contract).
#[derive(Default)]
pub struct TraceLog {
    interner: Interner,
    segs: Vec<Segment>,
    /// Recycled segment shells (spill mode drains into this).
    free: Vec<Segment>,
    /// In-memory entry count (excludes spilled entries).
    len: usize,
    /// Entries encoded to the spill sink and dropped from memory.
    spilled: u64,
    spill: Option<SpillSink>,
}

struct SpillSink {
    sink: Box<dyn Write>,
    /// Per interned id: whether its definition record was emitted.
    defined: Vec<bool>,
}

impl TraceLog {
    /// Creates an empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event. Steady-state cost: two interner hash lookups
    /// plus POD/`Value` appends into pre-grown segment vectors — no
    /// allocation once the strings are known and the segment shells
    /// are warm.
    pub fn record(
        &mut self,
        at: u64,
        source: impl AsRef<str>,
        label: impl AsRef<str>,
        values: impl AsRef<[Value]>,
    ) {
        let source = self.interner.intern(source.as_ref());
        let label = self.interner.intern(label.as_ref());
        self.push(at, source, label, values.as_ref());
    }

    /// [`TraceLog::record`] for labels that already exist as `Arc<str>`
    /// (IR trace statements): a first-sight label shares the `Arc`
    /// instead of copying the string.
    pub fn record_interned(&mut self, at: u64, source: &str, label: &Arc<str>, values: &[Value]) {
        let source = self.interner.intern(source);
        let label = self.interner.intern_arc(label);
        self.push(at, source, label, values);
    }

    fn push(&mut self, at: u64, source: u32, label: u32, values: &[Value]) {
        if self.segs.last().is_none_or(|s| s.recs.len() >= SEG_ENTRIES) {
            let seg = self.free.pop().unwrap_or_default();
            self.segs.push(seg);
        }
        let seg = self.segs.last_mut().expect("segment just ensured");
        let vstart = u32::try_from(seg.values.len()).expect("segment value pool fits u32");
        let vlen = u32::try_from(values.len()).expect("payload arity fits u32");
        seg.values.extend_from_slice(values);
        seg.recs.push(EntryRec {
            at,
            source,
            label,
            vstart,
            vlen,
        });
        self.len += 1;
        if seg.recs.len() >= SEG_ENTRIES && self.spill.is_some() {
            self.spill_last_segment();
        }
    }

    /// Attaches a binary spill sink: every segment that fills from now
    /// on is encoded to the sink ([`crate::tracebin`] record stream)
    /// and its shell recycled, bounding memory to one segment and
    /// making steady-state recording strictly allocation-free. The
    /// stream header is written immediately.
    ///
    /// Clones and snapshots of a spilling log do **not** inherit the
    /// sink (a byte sink cannot be duplicated); they keep the
    /// in-memory tail only.
    pub fn set_spill(&mut self, mut sink: Box<dyn Write>) {
        crate::tracebin::write_header(&mut sink).expect("spill sink accepts header");
        self.spill = Some(SpillSink {
            sink,
            defined: vec![],
        });
    }

    /// Flushes buffered full segments and the sink. Entries still in
    /// the partial tail segment stay in memory (they spill when their
    /// segment fills).
    ///
    /// # Errors
    ///
    /// Propagates sink write errors.
    pub fn flush_spill(&mut self) -> std::io::Result<()> {
        if let Some(sp) = &mut self.spill {
            sp.sink.flush()?;
        }
        Ok(())
    }

    /// Encodes the (full) last segment to the spill sink and recycles
    /// its shell.
    fn spill_last_segment(&mut self) {
        let seg = self.segs.pop().expect("spill caller ensured a segment");
        let sp = self.spill.as_mut().expect("spill caller checked sink");
        for i in 0..seg.recs.len() {
            let r = &seg.recs[i];
            for id in [r.source, r.label] {
                let idx = id as usize;
                if sp.defined.len() <= idx {
                    sp.defined.resize(idx + 1, false);
                }
                if !sp.defined[idx] {
                    sp.defined[idx] = true;
                    crate::tracebin::write_def(&mut sp.sink, id, self.interner.resolve(id))
                        .expect("spill sink accepts records");
                }
            }
            crate::tracebin::write_entry(
                &mut sp.sink,
                &seg.entry(i, &self.interner),
                r.source,
                r.label,
            )
            .expect("spill sink accepts records");
        }
        self.len -= seg.recs.len();
        self.spilled += seg.recs.len() as u64;
        let mut shell = seg;
        shell.recs.clear();
        shell.values.clear();
        self.free.push(shell);
    }

    /// Iterates the in-memory entries in order as zero-copy views.
    pub fn iter(&self) -> impl Iterator<Item = TraceEntryRef<'_>> + '_ {
        self.segs
            .iter()
            .flat_map(move |seg| (0..seg.recs.len()).map(move |i| seg.entry(i, &self.interner)))
    }

    /// All in-memory entries, materialized in order. A rendering
    /// convenience for tests and inspection — hot paths and big logs
    /// should use [`TraceLog::iter`].
    #[must_use]
    pub fn entries(&self) -> Vec<TraceEntry> {
        self.iter().map(|e| e.to_entry()).collect()
    }

    /// Entries with a given label.
    pub fn with_label<'a>(
        &'a self,
        label: &'a str,
    ) -> impl Iterator<Item = TraceEntryRef<'a>> + 'a {
        self.iter().filter(move |e| e.label == label)
    }

    /// Number of in-memory entries (excludes spilled entries).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the in-memory log is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Entries encoded to the spill sink and dropped from memory.
    #[must_use]
    pub fn spilled(&self) -> u64 {
        self.spilled
    }

    /// Compares two logs as *sequences of (label, values)*, ignoring
    /// timestamps and sources (a simulation timeline and a board cycle
    /// count are incomparable). Returns a report with the first
    /// divergence, if any.
    #[must_use]
    pub fn compare(&self, other: &TraceLog) -> TraceComparison {
        let mut matched = 0usize;
        let mut divergence = None;
        for (a, b) in self.iter().zip(other.iter()) {
            if a.label != b.label || a.values != b.values {
                divergence = Some((a.to_entry(), b.to_entry()));
                break;
            }
            matched += 1;
        }
        TraceComparison {
            matched,
            left_len: self.len,
            right_len: other.len,
            divergence,
        }
    }

    /// Restricts the log to entries that pass the filter (e.g. only
    /// motor-visible events).
    #[must_use]
    pub fn filtered(&self, mut keep: impl FnMut(TraceEntryRef<'_>) -> bool) -> TraceLog {
        let mut out = TraceLog::new();
        for e in self.iter() {
            if keep(e) {
                out.record(e.at, e.source, e.label, e.values);
            }
        }
        out
    }
}

impl Clone for TraceLog {
    /// Deep-copies the in-memory log. The spill sink (if any) is *not*
    /// cloned — a byte sink cannot be duplicated — so clones (and thus
    /// snapshots) hold the in-memory tail only and do not spill.
    fn clone(&self) -> Self {
        TraceLog {
            interner: self.interner.clone(),
            segs: self.segs.clone(),
            free: vec![],
            len: self.len,
            spilled: self.spilled,
            spill: None,
        }
    }
}

impl fmt::Debug for TraceLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceLog")
            .field("len", &self.len)
            .field("spilled", &self.spilled)
            .field("segments", &self.segs.len())
            .field("interned", &self.interner.names.len())
            .field("spilling", &self.spill.is_some())
            .finish()
    }
}

impl PartialEq for TraceLog {
    /// Logical sequence equality over the in-memory entries — resolved
    /// strings, timestamps and values — independent of interner id
    /// assignment or segment boundaries. Spill counts must match too,
    /// so two logs that drained differently compare unequal rather
    /// than silently comparing different windows.
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len
            && self.spilled == other.spilled
            && self.iter().zip(other.iter()).all(|(a, b)| {
                a.at == b.at && a.source == b.source && a.label == b.label && a.values == b.values
            })
    }
}

/// Result of [`TraceLog::compare`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceComparison {
    /// Number of leading entries that matched.
    pub matched: usize,
    /// Length of the left log.
    pub left_len: usize,
    /// Length of the right log.
    pub right_len: usize,
    /// First mismatching pair, if any.
    pub divergence: Option<(TraceEntry, TraceEntry)>,
}

impl TraceComparison {
    /// Whether the logs are identical as sequences (same length, no
    /// divergence).
    #[must_use]
    pub fn is_match(&self) -> bool {
        self.divergence.is_none() && self.left_len == self.right_len
    }

    /// Fraction of the longer log that matched, in [0, 1].
    #[must_use]
    pub fn match_rate(&self) -> f64 {
        let denom = self.left_len.max(self.right_len);
        if denom == 0 {
            1.0
        } else {
            self.matched as f64 / denom as f64
        }
    }
}

impl fmt::Display for TraceComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_match() {
            write!(f, "traces match ({} events)", self.matched)
        } else {
            write!(
                f,
                "traces diverge after {} events (lengths {} vs {})",
                self.matched, self.left_len, self.right_len
            )?;
            if let Some((a, b)) = &self.divergence {
                write!(
                    f,
                    ": {}({:?}) vs {}({:?})",
                    a.label, a.values, b.label, b.values
                )?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log(pairs: &[(&str, i64)]) -> TraceLog {
        let mut l = TraceLog::new();
        for (i, (label, v)) in pairs.iter().enumerate() {
            l.record(i as u64, "m", *label, vec![Value::Int(*v)]);
        }
        l
    }

    #[test]
    fn identical_logs_match() {
        let a = log(&[("pulse", 1), ("pulse", 2)]);
        let b = log(&[("pulse", 1), ("pulse", 2)]);
        let c = a.compare(&b);
        assert!(c.is_match());
        assert_eq!(c.match_rate(), 1.0);
        assert!(c.to_string().contains("match"));
    }

    #[test]
    fn timestamps_ignored() {
        let mut a = TraceLog::new();
        a.record(5, "sim", "pulse", vec![Value::Int(1)]);
        let mut b = TraceLog::new();
        b.record(99, "board", "pulse", vec![Value::Int(1)]);
        assert!(a.compare(&b).is_match());
    }

    #[test]
    fn divergence_reported() {
        let a = log(&[("pulse", 1), ("pulse", 2)]);
        let b = log(&[("pulse", 1), ("pulse", 3)]);
        let c = a.compare(&b);
        assert!(!c.is_match());
        assert_eq!(c.matched, 1);
        assert!(c.match_rate() < 1.0);
        assert!(c.to_string().contains("diverge"));
    }

    #[test]
    fn length_mismatch_detected() {
        let a = log(&[("pulse", 1)]);
        let b = log(&[("pulse", 1), ("pulse", 2)]);
        let c = a.compare(&b);
        assert!(!c.is_match());
        assert!(c.divergence.is_none());
        assert_eq!(c.matched, 1);
        assert_eq!(c.match_rate(), 0.5);
    }

    #[test]
    fn filter_and_label_queries() {
        let a = log(&[("pulse", 1), ("pos", 2), ("pulse", 3)]);
        assert_eq!(a.with_label("pulse").count(), 2);
        let only = a.filtered(|e| e.label == "pos");
        assert_eq!(only.len(), 1);
        assert!(!only.is_empty());
    }

    #[test]
    fn empty_logs_match() {
        let c = TraceLog::new().compare(&TraceLog::new());
        assert!(c.is_match());
        assert_eq!(c.match_rate(), 1.0);
    }

    #[test]
    fn equality_is_logical_not_physical() {
        // Same sequence, different interning order and segment history
        // (one built directly, one via filter-copy): must compare
        // equal.
        let mut a = TraceLog::new();
        a.record(1, "m", "zzz", [Value::Int(1)]);
        a.record(2, "m", "aaa", [Value::Int(2)]);
        let b = a.filtered(|_| true);
        assert_eq!(a, b);
        // And a genuinely different sequence must not.
        let c = log(&[("zzz", 1)]);
        assert_ne!(a, c);
    }

    #[test]
    fn crosses_segment_boundaries() {
        let mut l = TraceLog::new();
        let n = SEG_ENTRIES * 2 + 7;
        for i in 0..n {
            l.record(
                i as u64,
                "m",
                "e",
                [Value::Int(i as i64), Value::Bool(i % 2 == 0)],
            );
        }
        assert_eq!(l.len(), n);
        assert_eq!(l.iter().count(), n);
        for (i, e) in l.iter().enumerate() {
            assert_eq!(e.at, i as u64);
            assert_eq!(e.values, &[Value::Int(i as i64), Value::Bool(i % 2 == 0)]);
        }
        let copy = l.clone();
        assert_eq!(l, copy);
    }

    #[test]
    fn spill_bounds_memory_and_recycles_shells() {
        let mut l = TraceLog::new();
        l.set_spill(Box::new(std::io::sink()));
        let n = SEG_ENTRIES * 3 + 5;
        for i in 0..n {
            l.record(i as u64, "m", "e", [Value::Int(i as i64)]);
        }
        assert_eq!(l.spilled(), (SEG_ENTRIES * 3) as u64);
        assert_eq!(l.len(), 5);
        assert!(l.segs.len() <= 1, "spill keeps at most the tail segment");
        l.flush_spill().expect("sink flush");
        // A clone drops the sink but keeps the tail.
        let c = l.clone();
        assert_eq!(c.len(), 5);
        assert!(c.spill.is_none());
    }
}
