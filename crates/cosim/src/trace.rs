//! Trace capture and comparison — the instrument behind the paper's
//! *coherence* claim: co-simulation and co-synthesis runs of the same
//! description must produce the same externally visible event sequence.

use cosma_core::Value;
use std::fmt;

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// Timestamp in femtoseconds (simulation) or cycles (board runs);
    /// ignored by sequence comparison.
    pub at: u64,
    /// Emitting module or component.
    pub source: String,
    /// Event label.
    pub label: String,
    /// Event payload.
    pub values: Vec<Value>,
}

/// An ordered event log.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceLog {
    entries: Vec<TraceEntry>,
}

impl TraceLog {
    /// Creates an empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    pub fn record(
        &mut self,
        at: u64,
        source: impl Into<String>,
        label: impl Into<String>,
        values: Vec<Value>,
    ) {
        self.entries.push(TraceEntry {
            at,
            source: source.into(),
            label: label.into(),
            values,
        });
    }

    /// All entries in order.
    #[must_use]
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Entries with a given label.
    pub fn with_label<'a>(&'a self, label: &'a str) -> impl Iterator<Item = &'a TraceEntry> + 'a {
        self.entries.iter().filter(move |e| e.label == label)
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Compares two logs as *sequences of (label, values)*, ignoring
    /// timestamps and sources (a simulation timeline and a board cycle
    /// count are incomparable). Returns a report with the first
    /// divergence, if any.
    #[must_use]
    pub fn compare(&self, other: &TraceLog) -> TraceComparison {
        let n = self.entries.len().min(other.entries.len());
        for i in 0..n {
            let a = &self.entries[i];
            let b = &other.entries[i];
            if a.label != b.label || a.values != b.values {
                return TraceComparison {
                    matched: i,
                    left_len: self.entries.len(),
                    right_len: other.entries.len(),
                    divergence: Some((a.clone(), b.clone())),
                };
            }
        }
        TraceComparison {
            matched: n,
            left_len: self.entries.len(),
            right_len: other.entries.len(),
            divergence: None,
        }
    }

    /// Restricts the log to entries whose label passes the filter
    /// (e.g. only motor-visible events).
    #[must_use]
    pub fn filtered(&self, mut keep: impl FnMut(&TraceEntry) -> bool) -> TraceLog {
        TraceLog {
            entries: self.entries.iter().filter(|e| keep(e)).cloned().collect(),
        }
    }
}

/// Result of [`TraceLog::compare`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceComparison {
    /// Number of leading entries that matched.
    pub matched: usize,
    /// Length of the left log.
    pub left_len: usize,
    /// Length of the right log.
    pub right_len: usize,
    /// First mismatching pair, if any.
    pub divergence: Option<(TraceEntry, TraceEntry)>,
}

impl TraceComparison {
    /// Whether the logs are identical as sequences (same length, no
    /// divergence).
    #[must_use]
    pub fn is_match(&self) -> bool {
        self.divergence.is_none() && self.left_len == self.right_len
    }

    /// Fraction of the longer log that matched, in [0, 1].
    #[must_use]
    pub fn match_rate(&self) -> f64 {
        let denom = self.left_len.max(self.right_len);
        if denom == 0 {
            1.0
        } else {
            self.matched as f64 / denom as f64
        }
    }
}

impl fmt::Display for TraceComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_match() {
            write!(f, "traces match ({} events)", self.matched)
        } else {
            write!(
                f,
                "traces diverge after {} events (lengths {} vs {})",
                self.matched, self.left_len, self.right_len
            )?;
            if let Some((a, b)) = &self.divergence {
                write!(
                    f,
                    ": {}({:?}) vs {}({:?})",
                    a.label, a.values, b.label, b.values
                )?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log(pairs: &[(&str, i64)]) -> TraceLog {
        let mut l = TraceLog::new();
        for (i, (label, v)) in pairs.iter().enumerate() {
            l.record(i as u64, "m", *label, vec![Value::Int(*v)]);
        }
        l
    }

    #[test]
    fn identical_logs_match() {
        let a = log(&[("pulse", 1), ("pulse", 2)]);
        let b = log(&[("pulse", 1), ("pulse", 2)]);
        let c = a.compare(&b);
        assert!(c.is_match());
        assert_eq!(c.match_rate(), 1.0);
        assert!(c.to_string().contains("match"));
    }

    #[test]
    fn timestamps_ignored() {
        let mut a = TraceLog::new();
        a.record(5, "sim", "pulse", vec![Value::Int(1)]);
        let mut b = TraceLog::new();
        b.record(99, "board", "pulse", vec![Value::Int(1)]);
        assert!(a.compare(&b).is_match());
    }

    #[test]
    fn divergence_reported() {
        let a = log(&[("pulse", 1), ("pulse", 2)]);
        let b = log(&[("pulse", 1), ("pulse", 3)]);
        let c = a.compare(&b);
        assert!(!c.is_match());
        assert_eq!(c.matched, 1);
        assert!(c.match_rate() < 1.0);
        assert!(c.to_string().contains("diverge"));
    }

    #[test]
    fn length_mismatch_detected() {
        let a = log(&[("pulse", 1)]);
        let b = log(&[("pulse", 1), ("pulse", 2)]);
        let c = a.compare(&b);
        assert!(!c.is_match());
        assert!(c.divergence.is_none());
        assert_eq!(c.matched, 1);
        assert_eq!(c.match_rate(), 0.5);
    }

    #[test]
    fn filter_and_label_queries() {
        let a = log(&[("pulse", 1), ("pos", 2), ("pulse", 3)]);
        assert_eq!(a.with_label("pulse").count(), 2);
        let only = a.filtered(|e| e.label == "pos");
        assert_eq!(only.len(), 1);
        assert!(!only.is_empty());
    }

    #[test]
    fn empty_logs_match() {
        let c = TraceLog::new().compare(&TraceLog::new());
        assert!(c.is_match());
        assert_eq!(c.match_rate(), 1.0);
    }
}
