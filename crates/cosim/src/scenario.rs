//! Scenario generator: parameterized N-unit backplane topologies.
//!
//! Benches and tests need co-simulations with *hundreds* of units, wired
//! in realistic shapes, without hand-writing hundreds of FSMs. A
//! [`ScenarioSpec`] describes the shape — link count, [`Topology`],
//! [`LinkKind`] (classic handshake or batched bus), traffic volume,
//! clocking and [`UnitScheduling`] — and [`build_scenario`] elaborates it
//! into a ready-to-run [`Scenario`] whose completion is mechanically
//! checkable ([`Scenario::verify`]).
//!
//! Topologies:
//!
//! * **Pipeline** — `N` links in a chain: one producer, `N-1` relays,
//!   one consumer. Traffic travels as a wave, so most units are idle at
//!   any instant — the sharded scheduler's best case.
//! * **Star** — `N` producers each on a private link into one
//!   round-robin hub consumer.
//! * **Ring** — `N` links closed into a cycle; a driver module sends
//!   tokens all the way around through `N-1` forever-relays.
//! * **Random DAG** — the links are split (deterministically from a
//!   seed) into independent pipelines of random length: a random DAG
//!   with in/out degree ≤ 1, modelling uncorrelated traffic across the
//!   backplane.
//! * **Starved** — a consumer per link but a producer only on link 0:
//!   `N-1` consumers block on `get` forever, the activation-parking
//!   showcase.
//!
//! Module kinds alternate between hardware and software so both
//! activation clocks are exercised.

use crate::backplane::{
    BoundaryQueue, Cosim, CosimConfig, CosimError, CosimModuleId, DomainId, ModuleStatus,
    SchedulingConfig, UnitId,
};
use crate::partition::{BoundarySpec, Orchestrator, PartitionId};
use cosma_comm::{handshake_unit, BusTiming};
use cosma_core::{Expr, Module, ModuleBuilder, ModuleKind, ServiceCall, Stmt, Type, Value};
use cosma_sim::Duration;
use std::cell::RefCell;
use std::rc::Rc;

/// Wiring shape of a generated scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// A single producer→relay→…→consumer chain over all links.
    Pipeline,
    /// One producer per link, all feeding a round-robin hub.
    Star,
    /// Links closed into a cycle; a driver circulates tokens.
    Ring,
    /// Independent random-length pipelines (random DAG, degree ≤ 1),
    /// deterministic in the seed.
    RandomDag {
        /// RNG seed for the segment partition.
        seed: u64,
    },
    /// Every link gets a consumer blocked on `get`, but only link 0 has
    /// a producer: `N-1` consumers stay service-blocked forever. The
    /// activation scheduler's parking showcase — without it, every
    /// starved consumer burns one no-op activation per clock edge.
    Starved,
    /// The [`Starved`](Topology::Starved) wiring with deliberately
    /// skewed step costs: link 0's producer burns [`HEAVY_WORK`]
    /// chained arithmetic assignments per activation while the starved
    /// consumers are near-free. One expensive speculation amid many
    /// cheap ones — the shape a fixed per-worker partition serializes
    /// on and work-stealing rebalances.
    Skewed,
}

/// Per-activation arithmetic statements of the [`Topology::Skewed`]
/// heavy producer.
pub const HEAVY_WORK: usize = 96;

/// Communication-unit flavour used for every link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkKind {
    /// The classic per-value 4-phase [`handshake_unit`].
    Handshake,
    /// A [`cosma_comm::BatchedLink`]: one wire handshake per batch.
    Batched {
        /// Values per bus transaction.
        max_batch: usize,
        /// Total link occupancy bound.
        capacity: usize,
        /// Wire-level bus timing: [`BusTiming::LengthOnly`] for the
        /// fast path, [`BusTiming::PayloadBeats`] for cycle-accurate
        /// payload streaming on `DATA`.
        timing: BusTiming,
    },
}

/// Clock-domain knob: carves a "slow" (or fast) second clock domain
/// out of a scenario. The first [`DomainsSpec::slow_links`] links —
/// and every module whose *input* binding targets one of them — are
/// placed in a domain running at [`DomainsSpec::ratio`] (period
/// `num:den`) versus the base domain. `slow_links == 0` leaves the
/// whole scenario in the base domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DomainsSpec {
    /// Period ratio `(num, den)` of the second domain versus the base:
    /// `(4, 1)` gives a quarter-rate domain (members see one rising
    /// edge for every four base edges). `(1, 1)` creates a distinct
    /// domain at the same rate — useful for exercising multi-domain
    /// machinery without a rate skew.
    pub ratio: (u64, u64),
    /// Number of links, from link 0 upward, placed in the second
    /// domain.
    pub slow_links: usize,
}

impl Default for DomainsSpec {
    fn default() -> Self {
        DomainsSpec {
            ratio: (1, 1),
            slow_links: 0,
        }
    }
}

/// Partitioning knob: how a scenario is cut across coupled backplane
/// instances ([`build_partitioned`] / [`build_collapsed`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionsSpec {
    /// Number of partitions. Modules are assigned in contiguous
    /// creation-order chunks; links whose producer and consumer land
    /// in different partitions become boundary links.
    pub count: usize,
    /// Transport latency of every boundary link. Must be positive.
    pub latency: Duration,
}

impl Default for PartitionsSpec {
    fn default() -> Self {
        PartitionsSpec {
            count: 2,
            latency: Duration::from_ns(200),
        }
    }
}

/// Everything needed to elaborate a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioSpec {
    /// Number of communication units (links).
    pub units: usize,
    /// Wiring shape.
    pub topology: Topology,
    /// Values sent per producer (per link for Star, per segment for
    /// pipelines, tokens around the Ring).
    pub values_per_link: usize,
    /// Link flavour.
    pub link: LinkKind,
    /// Backplane clocking.
    pub config: CosimConfig,
    /// Activation-scheduler configuration (unit dispatch, module
    /// dispatch, parking).
    pub scheduling: SchedulingConfig,
    /// When set, every generated module emits a `Stmt::Trace` record on
    /// every activation of its main loop state — the trace-heavy
    /// regime. Tracing counts as an effective change, so traced
    /// modules never park; use it to stress the trace log and the
    /// steady-state allocation discipline, not the parking machinery.
    pub trace: bool,
    /// Clock-domain layout (defaults to everything in the base
    /// domain).
    pub domains: DomainsSpec,
}

impl Default for ScenarioSpec {
    fn default() -> Self {
        ScenarioSpec {
            units: 16,
            topology: Topology::Pipeline,
            values_per_link: 4,
            link: LinkKind::Handshake,
            config: CosimConfig::default(),
            scheduling: SchedulingConfig::default(),
            trace: false,
            domains: DomainsSpec::default(),
        }
    }
}

/// An elaborated scenario: the backplane plus the bookkeeping needed to
/// check that all traffic arrived.
pub struct Scenario {
    /// The assembled backplane, ready to run.
    pub cosim: Cosim,
    /// All module ids, in creation order.
    pub modules: Vec<CosimModuleId>,
    /// All link unit ids, in creation order.
    pub links: Vec<UnitId>,
    /// Terminating checker modules and the SUM each must reach.
    checkers: Vec<(CosimModuleId, i64)>,
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario")
            .field("modules", &self.modules.len())
            .field("links", &self.links.len())
            .field("checkers", &self.checkers.len())
            .finish()
    }
}

impl Scenario {
    /// Whether every terminating checker module has reached `END`.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.checkers
            .iter()
            .all(|(id, _)| self.cosim.module_status(*id).state == "END")
    }

    /// Runs in chunks until every checker terminates or `budget`
    /// elapses. Returns whether the scenario completed.
    ///
    /// # Errors
    ///
    /// Propagates backplane runtime errors.
    pub fn run_to_completion(&mut self, budget: Duration) -> Result<bool, CosimError> {
        let chunk = Duration::from_us(5);
        let deadline = self.cosim.sim().now().saturating_add(budget);
        while self.cosim.sim().now() < deadline {
            let next = self.cosim.sim().now().saturating_add(chunk).min(deadline);
            self.cosim.run_until(next)?;
            if self.is_complete() {
                return Ok(true);
            }
        }
        Ok(self.is_complete())
    }

    /// Checks that every checker reached `END` with the expected
    /// checksum.
    ///
    /// # Errors
    ///
    /// Returns a description of the first divergence.
    pub fn verify(&self) -> Result<(), String> {
        for (i, (id, expect)) in self.checkers.iter().enumerate() {
            let status = self.cosim.module_status(*id);
            if status.state != "END" {
                return Err(format!(
                    "checker {i}: stuck in {} after {} activations",
                    status.state, status.activations
                ));
            }
            let got = self.cosim.module_var(*id, "SUM");
            if got != Some(Value::Int(*expect)) {
                return Err(format!("checker {i}: SUM {got:?}, expected {expect}"));
            }
        }
        Ok(())
    }
}

/// Alternating module kinds exercise both activation clocks.
fn kind_for(index: usize) -> ModuleKind {
    if index.is_multiple_of(2) {
        ModuleKind::Hardware
    } else {
        ModuleKind::Software
    }
}

/// Prepends the trace-heavy marker record to a state's action list
/// when the scenario's trace regime is on: one `Stmt::Trace` of `var`
/// per activation of that state.
fn traced(trace: bool, var: cosma_core::ids::VarId, mut acts: Vec<Stmt>) -> Vec<Stmt> {
    if trace {
        acts.insert(0, Stmt::Trace("tick".into(), vec![Expr::var(var)]));
    }
    acts
}

/// A producer sending `base`, `base+1`, …, `base+n-1` on binding `out`.
fn producer(name: &str, kind: ModuleKind, base: i64, n: usize, trace: bool) -> Module {
    producer_with_work(name, kind, base, n, 0, trace)
}

/// [`producer`] with `work` extra arithmetic assignments per activation
/// on a scratch variable — a knob for skewing per-module step cost.
fn producer_with_work(
    name: &str,
    kind: ModuleKind,
    base: i64,
    n: usize,
    work: usize,
    trace: bool,
) -> Module {
    let mut b = ModuleBuilder::new(name, kind);
    let done = b.var("D", Type::Bool, Value::Bool(false));
    let idx = b.var("I", Type::INT16, Value::Int(0));
    let out = b.binding("out", "link");
    let put = b.state("PUT");
    let end = b.state("END");
    let mut acts = Vec::with_capacity(work + 2);
    if trace {
        acts.push(Stmt::Trace("tick".into(), vec![Expr::var(idx)]));
    }
    if work > 0 {
        let w = b.var("W", Type::INT16, Value::Int(0));
        for _ in 0..work {
            acts.push(Stmt::assign(
                w,
                Expr::var(w).add(Expr::var(idx)).add(Expr::int(1)),
            ));
        }
    }
    acts.push(Stmt::Call(ServiceCall {
        binding: out,
        service: "put".into(),
        args: vec![Expr::int(base).add(Expr::var(idx))],
        done: Some(done),
        result: None,
    }));
    b.actions(put, acts);
    b.transition_with(
        put,
        Some(Expr::var(done).and(Expr::var(idx).ge(Expr::int(n as i64 - 1)))),
        vec![],
        end,
    );
    b.transition_with(
        put,
        Some(Expr::var(done)),
        vec![Stmt::assign(idx, Expr::var(idx).add(Expr::int(1)))],
        put,
    );
    b.transition(end, None, end);
    b.initial(put);
    b.build().expect("generated producer is well-formed")
}

/// A relay forwarding values from binding `in` to binding `out`:
/// `n` values then `END`, or forever when `n` is `None`.
fn relay(name: &str, kind: ModuleKind, n: Option<usize>, trace: bool) -> Module {
    let mut b = ModuleBuilder::new(name, kind);
    let done = b.var("D", Type::Bool, Value::Bool(false));
    let val = b.var("V", Type::INT16, Value::Int(0));
    let cnt = b.var("CNT", Type::INT16, Value::Int(0));
    let inb = b.binding("in", "link");
    let outb = b.binding("out", "link");
    let get = b.state("GET");
    let put = b.state("PUT");
    b.actions(
        get,
        traced(
            trace,
            cnt,
            vec![Stmt::Call(ServiceCall {
                binding: inb,
                service: "get".into(),
                args: vec![],
                done: Some(done),
                result: Some(val),
            })],
        ),
    );
    b.transition(get, Some(Expr::var(done)), put);
    b.actions(
        put,
        traced(
            trace,
            cnt,
            vec![Stmt::Call(ServiceCall {
                binding: outb,
                service: "put".into(),
                args: vec![Expr::var(val)],
                done: Some(done),
                result: None,
            })],
        ),
    );
    if let Some(n) = n {
        let end = b.state("END");
        b.transition_with(
            put,
            Some(Expr::var(done).and(Expr::var(cnt).ge(Expr::int(n as i64 - 1)))),
            vec![],
            end,
        );
        b.transition(end, None, end);
    }
    b.transition_with(
        put,
        Some(Expr::var(done)),
        vec![Stmt::assign(cnt, Expr::var(cnt).add(Expr::int(1)))],
        get,
    );
    b.initial(get);
    b.build().expect("generated relay is well-formed")
}

/// A consumer summing `n` values from binding `in` into `SUM`, then
/// `END`.
fn consumer(name: &str, kind: ModuleKind, n: usize, trace: bool) -> Module {
    let mut b = ModuleBuilder::new(name, kind);
    let done = b.var("D", Type::Bool, Value::Bool(false));
    let val = b.var("V", Type::INT16, Value::Int(0));
    let sum = b.var("SUM", Type::INT16, Value::Int(0));
    let cnt = b.var("CNT", Type::INT16, Value::Int(0));
    let inb = b.binding("in", "link");
    let get = b.state("GET");
    let end = b.state("END");
    b.actions(
        get,
        traced(
            trace,
            sum,
            vec![Stmt::Call(ServiceCall {
                binding: inb,
                service: "get".into(),
                args: vec![],
                done: Some(done),
                result: Some(val),
            })],
        ),
    );
    b.transition_with(
        get,
        Some(Expr::var(done).and(Expr::var(cnt).ge(Expr::int(n as i64 - 1)))),
        vec![Stmt::assign(sum, Expr::var(sum).add(Expr::var(val)))],
        end,
    );
    b.transition_with(
        get,
        Some(Expr::var(done)),
        vec![
            Stmt::assign(sum, Expr::var(sum).add(Expr::var(val))),
            Stmt::assign(cnt, Expr::var(cnt).add(Expr::int(1))),
        ],
        get,
    );
    b.transition(end, None, end);
    b.initial(get);
    b.build().expect("generated consumer is well-formed")
}

/// The round-robin hub of a Star: cycles over `links` inputs, `rounds`
/// values from each, summing everything into `SUM`.
fn hub(name: &str, kind: ModuleKind, links: usize, rounds: usize, trace: bool) -> Module {
    let mut b = ModuleBuilder::new(name, kind);
    let done = b.var("D", Type::Bool, Value::Bool(false));
    let val = b.var("V", Type::INT16, Value::Int(0));
    let sum = b.var("SUM", Type::INT16, Value::Int(0));
    let cnt = b.var("CNT", Type::INT16, Value::Int(0));
    let bindings: Vec<_> = (0..links)
        .map(|i| b.binding(format!("in{i}"), "link"))
        .collect();
    let states: Vec<_> = (0..links).map(|i| b.state(format!("GET{i}"))).collect();
    let end = b.state("END");
    let total = (links * rounds) as i64;
    for i in 0..links {
        b.actions(
            states[i],
            traced(
                trace,
                sum,
                vec![Stmt::Call(ServiceCall {
                    binding: bindings[i],
                    service: "get".into(),
                    args: vec![],
                    done: Some(done),
                    result: Some(val),
                })],
            ),
        );
        b.transition_with(
            states[i],
            Some(Expr::var(done).and(Expr::var(cnt).ge(Expr::int(total - 1)))),
            vec![Stmt::assign(sum, Expr::var(sum).add(Expr::var(val)))],
            end,
        );
        b.transition_with(
            states[i],
            Some(Expr::var(done)),
            vec![
                Stmt::assign(sum, Expr::var(sum).add(Expr::var(val))),
                Stmt::assign(cnt, Expr::var(cnt).add(Expr::int(1))),
            ],
            states[(i + 1) % links],
        );
    }
    b.transition(end, None, end);
    b.initial(states[0]);
    b.build().expect("generated hub is well-formed")
}

/// The Ring driver: sends `n` tokens on `out`, receives each back on
/// `in`, sums them, then `END`.
fn ring_driver(name: &str, kind: ModuleKind, base: i64, n: usize, trace: bool) -> Module {
    let mut b = ModuleBuilder::new(name, kind);
    let done = b.var("D", Type::Bool, Value::Bool(false));
    let val = b.var("V", Type::INT16, Value::Int(0));
    let sum = b.var("SUM", Type::INT16, Value::Int(0));
    let cnt = b.var("CNT", Type::INT16, Value::Int(0));
    let inb = b.binding("in", "link");
    let outb = b.binding("out", "link");
    let put = b.state("PUT");
    let get = b.state("GET");
    let end = b.state("END");
    b.actions(
        put,
        traced(
            trace,
            cnt,
            vec![Stmt::Call(ServiceCall {
                binding: outb,
                service: "put".into(),
                args: vec![Expr::int(base).add(Expr::var(cnt))],
                done: Some(done),
                result: None,
            })],
        ),
    );
    b.transition(put, Some(Expr::var(done)), get);
    b.actions(
        get,
        traced(
            trace,
            cnt,
            vec![Stmt::Call(ServiceCall {
                binding: inb,
                service: "get".into(),
                args: vec![],
                done: Some(done),
                result: Some(val),
            })],
        ),
    );
    b.transition_with(
        get,
        Some(Expr::var(done).and(Expr::var(cnt).ge(Expr::int(n as i64 - 1)))),
        vec![Stmt::assign(sum, Expr::var(sum).add(Expr::var(val)))],
        end,
    );
    b.transition_with(
        get,
        Some(Expr::var(done)),
        vec![
            Stmt::assign(sum, Expr::var(sum).add(Expr::var(val))),
            Stmt::assign(cnt, Expr::var(cnt).add(Expr::int(1))),
        ],
        put,
    );
    b.transition(end, None, end);
    b.initial(put);
    b.build().expect("generated ring driver is well-formed")
}

/// Sum of the arithmetic run `base .. base+n-1`, wrapped like an INT16
/// accumulator wraps.
fn run_sum(base: i64, n: usize) -> i64 {
    let mut sum = 0i64;
    for i in 0..n as i64 {
        sum = ((sum + base + i) as i16) as i64;
    }
    sum
}

/// xorshift64: a tiny deterministic RNG for `Topology::RandomDag`.
struct XorShift64(u64);

impl XorShift64 {
    fn next(&mut self) -> u64 {
        let mut x = self.0.max(1);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// A planned module: its FSM description plus `(binding name, link
/// index)` pairs, resolved to concrete unit ids at elaboration time.
/// Producer-side bindings are named `out`; consumer-side bindings
/// start with `in` — the partitioner relies on this convention to
/// orient boundary links.
struct PlannedModule {
    module: Module,
    bindings: Vec<(String, usize)>,
}

/// A topology plan: pure data, shared by every elaboration flavour
/// (monolithic, multi-rate, partitioned, collapsed oracle). Link `i`
/// is named `link{i}`; checker expectations reference modules by plan
/// index.
struct ScenarioPlan {
    n_links: usize,
    modules: Vec<PlannedModule>,
    checkers: Vec<(usize, i64)>,
}

/// Plans a spec's topology without touching a backplane.
fn plan_scenario(spec: &ScenarioSpec) -> Result<ScenarioPlan, CosimError> {
    if spec.units == 0 {
        return Err(CosimError::Setup("scenario needs at least one unit".into()));
    }
    if spec.values_per_link == 0 {
        return Err(CosimError::Setup(
            "scenario needs at least one value per link".into(),
        ));
    }
    let m = spec.values_per_link;
    let mut plan = ScenarioPlan {
        n_links: spec.units,
        modules: vec![],
        checkers: vec![],
    };
    match spec.topology {
        Topology::Pipeline => plan_segment(&mut plan, 0, spec.units, m, spec.trace),
        Topology::Star => {
            for i in 0..spec.units {
                let base = (i as i64 * 7) % 50;
                plan.modules.push(PlannedModule {
                    module: producer(&format!("prod{i}"), kind_for(i), base, m, spec.trace),
                    bindings: vec![("out".into(), i)],
                });
            }
            let h = hub("hub", kind_for(spec.units), spec.units, m, spec.trace);
            plan.modules.push(PlannedModule {
                module: h,
                bindings: (0..spec.units).map(|i| (format!("in{i}"), i)).collect(),
            });
            let expect = (0..spec.units).fold(0i64, |acc, i| {
                let base = (i as i64 * 7) % 50;
                ((acc + run_sum(base, m)) as i16) as i64
            });
            plan.checkers.push((plan.modules.len() - 1, expect));
        }
        Topology::Ring => {
            let n = spec.units;
            plan.modules.push(PlannedModule {
                module: ring_driver("driver", kind_for(0), 3, m, spec.trace),
                bindings: vec![("out".into(), 0), ("in".into(), n - 1)],
            });
            for i in 1..n {
                plan.modules.push(PlannedModule {
                    module: relay(&format!("relay{i}"), kind_for(i), None, spec.trace),
                    bindings: vec![("in".into(), i - 1), ("out".into(), i)],
                });
            }
            plan.checkers.push((0, run_sum(3, m)));
        }
        Topology::RandomDag { seed } => {
            let mut rng = XorShift64(seed ^ 0x9E37_79B9_7F4A_7C15);
            let mut start = 0usize;
            while start < spec.units {
                let remaining = spec.units - start;
                let len = 1 + (rng.next() as usize) % remaining.min(4);
                plan_segment(&mut plan, start, len, m, spec.trace);
                start += len;
            }
        }
        Topology::Starved | Topology::Skewed => {
            // One consumer per link, but traffic only on link 0: the
            // consumers on links 1..N block on `get` forever. Skewed
            // additionally loads the producer with HEAVY_WORK dummy
            // statements per activation.
            let work = if spec.topology == Topology::Skewed {
                HEAVY_WORK
            } else {
                0
            };
            plan.modules.push(PlannedModule {
                module: producer_with_work("prod0", kind_for(0), 3, m, work, spec.trace),
                bindings: vec![("out".into(), 0)],
            });
            for i in 0..spec.units {
                plan.modules.push(PlannedModule {
                    module: consumer(&format!("cons{i}"), kind_for(i + 1), m, spec.trace),
                    bindings: vec![("in".into(), i)],
                });
                if i == 0 {
                    plan.checkers.push((plan.modules.len() - 1, run_sum(3, m)));
                }
            }
        }
    }
    Ok(plan)
}

/// Plans one producer→relay*→consumer pipeline over links
/// `[start, start+len)`; `start` decorrelates names and value bases
/// across segments.
fn plan_segment(plan: &mut ScenarioPlan, start: usize, len: usize, m: usize, trace: bool) {
    let base = (start as i64 * 11) % 40;
    plan.modules.push(PlannedModule {
        module: producer(&format!("prod{start}"), kind_for(start), base, m, trace),
        bindings: vec![("out".into(), start)],
    });
    for k in 0..len - 1 {
        plan.modules.push(PlannedModule {
            module: relay(
                &format!("relay{start}_{k}"),
                kind_for(start + k + 1),
                Some(m),
                trace,
            ),
            bindings: vec![("in".into(), start + k), ("out".into(), start + k + 1)],
        });
    }
    plan.modules.push(PlannedModule {
        module: consumer(&format!("cons{start}"), kind_for(start + len), m, trace),
        bindings: vec![("in".into(), start + len - 1)],
    });
    plan.checkers
        .push((plan.modules.len() - 1, run_sum(base, m)));
}

/// Creates the spec's second clock domain on a backplane, when the
/// spec asks for one (`slow_links > 0`). Must run before any unit is
/// added.
fn scenario_domains(
    cosim: &mut Cosim,
    spec: &ScenarioSpec,
) -> Result<Option<DomainId>, CosimError> {
    if spec.domains.slow_links == 0 {
        return Ok(None);
    }
    let (num, den) = spec.domains.ratio;
    Ok(Some(cosim.add_clock_domain("slow", num, den)?))
}

/// The domain link `i` lives in.
fn link_domain(spec: &ScenarioSpec, slow: Option<DomainId>, i: usize) -> DomainId {
    match slow {
        Some(d) if i < spec.domains.slow_links => d,
        _ => DomainId::BASE,
    }
}

/// The domain a planned module lives in: that of its input link (a
/// module's activation rate is governed by its input side), falling
/// back to its first binding.
fn module_domain(spec: &ScenarioSpec, slow: Option<DomainId>, pm: &PlannedModule) -> DomainId {
    pm.bindings
        .iter()
        .find(|(n, _)| n.starts_with("in"))
        .or_else(|| pm.bindings.first())
        .map_or(DomainId::BASE, |&(_, li)| link_domain(spec, slow, li))
}

/// Adds link `i` to a backplane in domain `d`, with the spec's link
/// flavour.
fn add_link(
    cosim: &mut Cosim,
    spec: &ScenarioSpec,
    i: usize,
    d: DomainId,
) -> Result<UnitId, CosimError> {
    let name = format!("link{i}");
    match spec.link {
        LinkKind::Handshake => cosim.add_fsm_unit_in(d, &name, handshake_unit("hs", Type::INT16)),
        LinkKind::Batched {
            max_batch,
            capacity,
            timing,
        } => cosim.add_batched_unit_in_with(d, &name, Type::INT16, max_batch, capacity, timing),
    }
}

/// Elaborates a spec into a runnable scenario. All links are created
/// before any module, so link/shard process ids precede module process
/// ids regardless of topology — the per-unit and sharded schedulings
/// then produce identical traces.
///
/// # Errors
///
/// Returns [`CosimError::Setup`] for empty specs or invalid link
/// parameters.
pub fn build_scenario(spec: &ScenarioSpec) -> Result<Scenario, CosimError> {
    let plan = plan_scenario(spec)?;
    let mut cosim = Cosim::new(spec.config);
    cosim.set_scheduling(spec.scheduling)?;
    let slow = scenario_domains(&mut cosim, spec)?;
    let links: Vec<UnitId> = (0..plan.n_links)
        .map(|i| add_link(&mut cosim, spec, i, link_domain(spec, slow, i)))
        .collect::<Result<_, _>>()?;
    let mut modules = vec![];
    for pm in &plan.modules {
        let binds: Vec<(&str, UnitId)> = pm
            .bindings
            .iter()
            .map(|(n, li)| (n.as_str(), links[*li]))
            .collect();
        modules.push(cosim.add_module_in(module_domain(spec, slow, pm), &pm.module, &binds)?);
    }
    let checkers = plan
        .checkers
        .iter()
        .map(|&(j, expect)| (modules[j], expect))
        .collect();
    Ok(Scenario {
        cosim,
        modules,
        links,
        checkers,
    })
}

/// Where each link's unit(s) landed in a partitioned elaboration.
enum LinkSite {
    /// Producer and consumer share a partition (or the link is
    /// single-sided): one ordinary link there.
    Local { part: usize, unit: UnitId },
    /// The cut severs the link: an *out* half on the producer's
    /// partition, an *in* half on the consumer's.
    Cross {
        out: (usize, UnitId),
        inb: (usize, UnitId),
    },
}

/// Contiguous-chunk partition assignment of `n` modules over `count`
/// partitions.
fn chunked(n: usize, count: usize) -> Vec<usize> {
    (0..n).map(|j| j * count / n).collect()
}

/// Per-link producer/consumer partitions, derived from the binding
/// naming convention (`out` puts, `in*` gets).
fn link_endpoints(
    plan: &ScenarioPlan,
    part_of: &[usize],
) -> (Vec<Option<usize>>, Vec<Option<usize>>) {
    let mut producer = vec![None; plan.n_links];
    let mut consumer = vec![None; plan.n_links];
    for (j, pm) in plan.modules.iter().enumerate() {
        for (name, li) in &pm.bindings {
            if name == "out" {
                producer[*li] = Some(part_of[j]);
            } else {
                consumer[*li] = Some(part_of[j]);
            }
        }
    }
    (producer, consumer)
}

/// The boundary contract used for every severed link of a spec.
fn boundary_spec(spec: &ScenarioSpec, latency: Duration) -> BoundarySpec {
    match spec.link {
        LinkKind::Handshake => BoundarySpec {
            data_ty: Type::INT16,
            max_batch: 1,
            capacity: 4,
            timing: BusTiming::LengthOnly,
            latency,
        },
        LinkKind::Batched {
            max_batch,
            capacity,
            timing,
        } => BoundarySpec {
            data_ty: Type::INT16,
            max_batch,
            capacity,
            timing,
            latency,
        },
    }
}

/// A scenario cut across coupled backplane partitions, ready to run
/// under the optimistic [`Orchestrator`].
pub struct PartitionedScenario {
    /// The orchestrator owning every partition.
    pub orch: Orchestrator,
    /// Partition ids, in partition order.
    pub parts: Vec<PartitionId>,
    /// Where each planned module landed, in plan (creation) order —
    /// index-compatible with the monolithic [`Scenario::modules`].
    pub modules: Vec<(PartitionId, CosimModuleId)>,
    /// Checker plan indices and expected SUMs.
    checkers: Vec<(usize, i64)>,
}

impl std::fmt::Debug for PartitionedScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PartitionedScenario")
            .field("partitions", &self.parts.len())
            .field("modules", &self.modules.len())
            .finish_non_exhaustive()
    }
}

impl PartitionedScenario {
    /// Advances every partition by `total` in quanta of `quantum`.
    ///
    /// # Errors
    ///
    /// Propagates orchestrator errors.
    pub fn run_for(&mut self, total: Duration, quantum: Duration) -> Result<(), CosimError> {
        self.orch.run_for(total, quantum)
    }

    /// Status of the `j`-th planned module (plan order, matching the
    /// monolithic scenario's module order).
    #[must_use]
    pub fn module_status(&self, j: usize) -> ModuleStatus {
        let (p, m) = self.modules[j];
        self.orch.partition(p).cosim().module_status(m)
    }

    /// A module variable of the `j`-th planned module.
    #[must_use]
    pub fn module_var(&self, j: usize, var: &str) -> Option<Value> {
        let (p, m) = self.modules[j];
        self.orch.partition(p).cosim().module_var(m, var)
    }

    /// Checks every checker reached `END` with the expected checksum.
    ///
    /// # Errors
    ///
    /// Returns a description of the first divergence.
    pub fn verify(&self) -> Result<(), String> {
        for (i, &(j, expect)) in self.checkers.iter().enumerate() {
            let status = self.module_status(j);
            if status.state != "END" {
                return Err(format!(
                    "checker {i}: stuck in {} after {} activations",
                    status.state, status.activations
                ));
            }
            let got = self.module_var(j, "SUM");
            if got != Some(Value::Int(expect)) {
                return Err(format!("checker {i}: SUM {got:?}, expected {expect}"));
            }
        }
        Ok(())
    }
}

/// Elaborates a spec cut into [`PartitionsSpec::count`] coupled
/// backplane partitions: modules are chunked contiguously in creation
/// order, links whose producer and consumer land on different chunks
/// become latency-annotated boundary links, and every partition gets
/// the same clock-domain layout. The bit-identical reference for a
/// partitioned run is [`build_collapsed`] with the same specs.
///
/// # Errors
///
/// Returns [`CosimError::Setup`] for invalid specs (empty scenario,
/// zero partitions, more partitions than modules, zero boundary
/// latency).
pub fn build_partitioned(
    spec: &ScenarioSpec,
    pspec: &PartitionsSpec,
) -> Result<PartitionedScenario, CosimError> {
    let plan = plan_scenario(spec)?;
    if pspec.count == 0 || pspec.count > plan.modules.len() {
        return Err(CosimError::Setup(format!(
            "cannot cut {} modules into {} partitions",
            plan.modules.len(),
            pspec.count
        )));
    }
    let part_of = chunked(plan.modules.len(), pspec.count);
    let (producer, consumer) = link_endpoints(&plan, &part_of);
    let mut orch = Orchestrator::new();
    let mut parts = vec![];
    let mut slow = None;
    for _ in 0..pspec.count {
        let mut c = Cosim::new(spec.config);
        c.set_scheduling(spec.scheduling)?;
        slow = scenario_domains(&mut c, spec)?;
        parts.push(orch.add_partition(c));
    }
    let bspec = boundary_spec(spec, pspec.latency);
    let mut sites = Vec::with_capacity(plan.n_links);
    for i in 0..plan.n_links {
        let d = link_domain(spec, slow, i);
        match (producer[i], consumer[i]) {
            (Some(p), Some(c)) if p != c => {
                let (ou, iu) = orch.add_boundary(
                    &format!("link{i}"),
                    parts[p],
                    d,
                    &bspec,
                    parts[c],
                    d,
                    &bspec,
                )?;
                sites.push(LinkSite::Cross {
                    out: (p, ou),
                    inb: (c, iu),
                });
            }
            (p, c) => {
                let home = p.or(c).unwrap_or(0);
                let unit = add_link(orch.partition_mut(parts[home]).cosim_mut(), spec, i, d)?;
                sites.push(LinkSite::Local { part: home, unit });
            }
        }
    }
    let mut modules = vec![];
    for (j, pm) in plan.modules.iter().enumerate() {
        let home = part_of[j];
        let binds: Vec<(&str, UnitId)> = pm
            .bindings
            .iter()
            .map(|(n, li)| {
                let unit = match &sites[*li] {
                    LinkSite::Local { part, unit } => {
                        debug_assert_eq!(*part, home, "local link in the module's partition");
                        *unit
                    }
                    LinkSite::Cross { out, inb } => {
                        if n == "out" {
                            debug_assert_eq!(out.0, home);
                            out.1
                        } else {
                            debug_assert_eq!(inb.0, home);
                            inb.1
                        }
                    }
                };
                (n.as_str(), unit)
            })
            .collect();
        let d = module_domain(spec, slow, pm);
        let id = orch
            .partition_mut(parts[home])
            .cosim_mut()
            .add_module_in(d, &pm.module, &binds)?;
        modules.push((parts[home], id));
    }
    Ok(PartitionedScenario {
        orch,
        parts,
        modules,
        checkers: plan.checkers,
    })
}

/// The *collapsed oracle*: the exact coupled structure
/// [`build_partitioned`] produces — same boundary half-units, same
/// latency-stamped queues, same pinned clock domains — but elaborated
/// into ONE backplane, where the queues fill and drain inline and no
/// orchestration is needed. A partitioned run is correct iff it is
/// bit-identical (module statuses, traces, SUMs) to this oracle; the
/// comparison isolates exactly the cut — speculation, rollback, queue
/// commit — because everything else is structurally the same.
///
/// The returned scenario's `links` vector holds the ordinary unit for
/// local links and the *out* half for severed ones.
///
/// # Errors
///
/// Same as [`build_partitioned`].
pub fn build_collapsed(
    spec: &ScenarioSpec,
    pspec: &PartitionsSpec,
) -> Result<Scenario, CosimError> {
    let plan = plan_scenario(spec)?;
    if pspec.count == 0 || pspec.count > plan.modules.len() {
        return Err(CosimError::Setup(format!(
            "cannot cut {} modules into {} partitions",
            plan.modules.len(),
            pspec.count
        )));
    }
    let part_of = chunked(plan.modules.len(), pspec.count);
    let (producer, consumer) = link_endpoints(&plan, &part_of);
    let mut cosim = Cosim::new(spec.config);
    cosim.set_scheduling(spec.scheduling)?;
    let slow = scenario_domains(&mut cosim, spec)?;
    let bspec = boundary_spec(spec, pspec.latency);
    let mut links = vec![];
    let mut sites = Vec::with_capacity(plan.n_links);
    for i in 0..plan.n_links {
        let d = link_domain(spec, slow, i);
        match (producer[i], consumer[i]) {
            (Some(p), Some(c)) if p != c => {
                let queue = Rc::new(RefCell::new(BoundaryQueue::default()));
                let ou = cosim.add_boundary_out(
                    d,
                    &format!("link{i}.bo"),
                    bspec.data_ty.clone(),
                    bspec.max_batch,
                    bspec.capacity,
                    bspec.timing,
                    bspec.latency,
                    Rc::clone(&queue),
                )?;
                let iu = cosim.add_boundary_in(
                    d,
                    &format!("link{i}.bi"),
                    bspec.data_ty.clone(),
                    bspec.max_batch,
                    bspec.capacity,
                    bspec.timing,
                    queue,
                )?;
                links.push(ou);
                sites.push(LinkSite::Cross {
                    out: (p, ou),
                    inb: (c, iu),
                });
            }
            (p, c) => {
                let home = p.or(c).unwrap_or(0);
                let unit = add_link(&mut cosim, spec, i, d)?;
                links.push(unit);
                sites.push(LinkSite::Local { part: home, unit });
            }
        }
    }
    let mut modules = vec![];
    for pm in &plan.modules {
        let binds: Vec<(&str, UnitId)> = pm
            .bindings
            .iter()
            .map(|(n, li)| {
                let unit = match &sites[*li] {
                    LinkSite::Local { unit, .. } => *unit,
                    LinkSite::Cross { out, inb } => {
                        if n == "out" {
                            out.1
                        } else {
                            inb.1
                        }
                    }
                };
                (n.as_str(), unit)
            })
            .collect();
        modules.push(cosim.add_module_in(module_domain(spec, slow, pm), &pm.module, &binds)?);
    }
    // Partitioned backplanes run with their domains pinned (the edge
    // grid must not depend on how the cut distributes clock demand);
    // the oracle must match.
    cosim.pin_clock_domains();
    let checkers = plan
        .checkers
        .iter()
        .map(|&(j, expect)| (modules[j], expect))
        .collect();
    Ok(Scenario {
        cosim,
        modules,
        links,
        checkers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceEntry;

    fn check(spec: ScenarioSpec, budget_us: u64) {
        let mut s = build_scenario(&spec).expect("builds");
        let done = s
            .run_to_completion(Duration::from_us(budget_us))
            .expect("runs");
        assert!(done, "{spec:?} did not complete within {budget_us}us");
        s.verify().unwrap_or_else(|e| panic!("{spec:?}: {e}"));
    }

    #[test]
    fn pipeline_completes_both_link_kinds() {
        for link in [
            LinkKind::Handshake,
            LinkKind::Batched {
                max_batch: 8,
                capacity: 32,
                timing: BusTiming::LengthOnly,
            },
            LinkKind::Batched {
                max_batch: 8,
                capacity: 32,
                timing: BusTiming::PayloadBeats,
            },
        ] {
            check(
                ScenarioSpec {
                    units: 8,
                    link,
                    values_per_link: 3,
                    ..ScenarioSpec::default()
                },
                2_000,
            );
        }
    }

    #[test]
    fn star_completes() {
        check(
            ScenarioSpec {
                units: 6,
                topology: Topology::Star,
                values_per_link: 3,
                ..ScenarioSpec::default()
            },
            2_000,
        );
    }

    #[test]
    fn ring_completes() {
        check(
            ScenarioSpec {
                units: 5,
                topology: Topology::Ring,
                values_per_link: 4,
                ..ScenarioSpec::default()
            },
            4_000,
        );
    }

    #[test]
    fn random_dag_completes_and_is_deterministic() {
        for seed in [1u64, 42, 1234] {
            check(
                ScenarioSpec {
                    units: 10,
                    topology: Topology::RandomDag { seed },
                    values_per_link: 2,
                    ..ScenarioSpec::default()
                },
                3_000,
            );
        }
        // Determinism: two builds from the same seed have identical
        // module counts.
        let spec = ScenarioSpec {
            units: 10,
            topology: Topology::RandomDag { seed: 7 },
            ..ScenarioSpec::default()
        };
        let a = build_scenario(&spec).unwrap();
        let b = build_scenario(&spec).unwrap();
        assert_eq!(a.modules.len(), b.modules.len());
    }

    #[test]
    fn schedulings_produce_identical_traces() {
        // The tentpole correctness claim: every scheduler — legacy
        // per-unit/per-module, PR 3 immediate sharded, and the
        // two-phase delta-buffered scheduler (sequential and threaded,
        // hashed and creation-order placement) — is observationally
        // equivalent: same states, SUMs, traces and ACTIVATION COUNTS,
        // on every topology and link kind, parking included.
        use crate::backplane::{ModulePlacement, ModuleScheduling, UnitScheduling};
        for topology in [
            Topology::Pipeline,
            Topology::Star,
            Topology::Ring,
            Topology::RandomDag { seed: 99 },
            Topology::Starved,
            Topology::Skewed,
        ] {
            for link in [
                LinkKind::Handshake,
                LinkKind::Batched {
                    max_batch: 4,
                    capacity: 16,
                    timing: BusTiming::LengthOnly,
                },
                LinkKind::Batched {
                    max_batch: 4,
                    capacity: 16,
                    timing: BusTiming::PayloadBeats,
                },
            ] {
                let mk = |scheduling| ScenarioSpec {
                    units: 6,
                    topology,
                    link,
                    values_per_link: 2,
                    scheduling,
                    ..ScenarioSpec::default()
                };
                let sharded4 = SchedulingConfig {
                    units: UnitScheduling::Sharded { shard_size: 4 },
                    modules: ModuleScheduling::Sharded { shard_size: 4 },
                    park_blocked: true,
                    ..SchedulingConfig::sharded()
                };
                let mut b = build_scenario(&mk(SchedulingConfig {
                    units: UnitScheduling::PerUnit,
                    modules: ModuleScheduling::PerModule,
                    park_blocked: true,
                    ..SchedulingConfig::legacy()
                }))
                .expect("per-unit builds");
                b.cosim
                    .run_for(Duration::from_us(400))
                    .expect("per-unit runs");
                for (name, cfg) in [
                    ("deferred_hashed", sharded4),
                    (
                        "deferred_creation_order",
                        SchedulingConfig {
                            placement: ModulePlacement::CreationOrder,
                            ..sharded4
                        },
                    ),
                    // Threshold 1 forces real speculation + commit
                    // (journal installs, outcome validation) on this
                    // small backplane instead of the direct path.
                    (
                        "deferred_threads2",
                        SchedulingConfig {
                            step_fanout_min: 1,
                            ..sharded4.with_threads(2)
                        },
                    ),
                    // More workers than stepping-set items: exercises
                    // the work-stealing cursor's idle-worker skip.
                    (
                        "deferred_threads8",
                        SchedulingConfig {
                            step_fanout_min: 1,
                            ..sharded4.with_threads(8)
                        },
                    ),
                    (
                        "immediate_sharded",
                        SchedulingConfig {
                            units: UnitScheduling::Sharded { shard_size: 4 },
                            modules: ModuleScheduling::Sharded { shard_size: 4 },
                            park_blocked: true,
                            ..SchedulingConfig::immediate()
                        },
                    ),
                ] {
                    let mut a = build_scenario(&mk(cfg)).expect("scheduler builds");
                    a.cosim
                        .run_for(Duration::from_us(400))
                        .unwrap_or_else(|e| panic!("{name} runs: {e}"));
                    for (&ma, &mb) in a.modules.iter().zip(&b.modules) {
                        assert_eq!(
                            a.cosim.module_status(ma),
                            b.cosim.module_status(mb),
                            "{topology:?}/{link:?}/{name}: module status diverged"
                        );
                    }
                    assert_eq!(
                        a.cosim.trace_log().entries(),
                        b.cosim.trace_log().entries(),
                        "{topology:?}/{link:?}/{name}: traces diverged"
                    );
                    a.verify()
                        .unwrap_or_else(|e| panic!("{topology:?}/{link:?}/{name}: {e}"));
                }
            }
        }
    }

    #[test]
    fn skewed_costs_steal_work_and_reuse_arenas_under_threads() {
        // One heavy producer amid 48 near-free consumers, parking off so
        // the whole set steps every cycle: the work-stealing cursor must
        // rebalance chunks past the fair share at least once across the
        // run, and the scratch arenas must hit their free-lists in the
        // steady state (zero-allocation speculation).
        use crate::backplane::{ModuleScheduling, UnitScheduling};
        let mut s = build_scenario(&ScenarioSpec {
            units: 48,
            topology: Topology::Skewed,
            values_per_link: 4,
            scheduling: SchedulingConfig {
                units: UnitScheduling::Sharded { shard_size: 16 },
                modules: ModuleScheduling::Sharded { shard_size: 16 },
                park_blocked: false,
                step_fanout_min: 1,
                ..SchedulingConfig::sharded().with_threads(2)
            },
            ..ScenarioSpec::default()
        })
        .expect("builds");
        let done = s.run_to_completion(Duration::from_us(2_000)).expect("runs");
        assert!(done, "skewed scenario completes");
        s.verify().expect("checksum holds");
        let st = s.cosim.shard_stats();
        assert!(st.scratch.chunks > 0, "threaded step phase ran: {st:?}");
        assert!(
            st.scratch.steals > 0,
            "skewed stepping set rebalanced via stealing: {:?}",
            st.scratch
        );
        assert!(
            st.scratch.arena_reuses > 0,
            "speculation shells recycled: {:?}",
            st.scratch
        );
        assert!(st.scratch.bytes_high_water > 0);
    }

    #[test]
    fn starved_backplane_reaches_quiescence() {
        // Quiescence regression on the Starved topology: once link 0's
        // traffic completes and the N-1 starved consumers are parked on
        // their silent links, EVERY clocked body is parked — the
        // activation clocks stop and simulated time stops advancing,
        // instead of toggling activation clocks forever.
        use cosma_sim::SimTime;
        let mut s = build_scenario(&ScenarioSpec {
            units: 6,
            topology: Topology::Starved,
            values_per_link: 3,
            ..ScenarioSpec::default()
        })
        .expect("builds");
        let quiesced = s
            .cosim
            .run_to_quiescence(SimTime::from_ns(2_000_000))
            .expect("runs");
        assert!(quiesced, "deadlocked system reaches quiescence early");
        s.verify().expect("link 0 traffic completed first");
        assert!(
            !s.cosim.pending_activity(),
            "no timers or drives remain: the activation clocks stopped"
        );
        assert_eq!(
            s.cosim.sim_mut().next_instant(),
            None,
            "simulated time stops advancing once all consumers are parked"
        );
        let stats = s.cosim.shard_stats();
        assert_eq!(
            stats.dormant_shards, stats.shards,
            "every shard parked: {stats:?}"
        );
        // Further runs change nothing.
        let before = s.cosim.sim().stats().events;
        s.cosim.run_for(Duration::from_us(500)).expect("idles");
        assert_eq!(s.cosim.sim().stats().events, before);
    }

    #[test]
    fn empty_spec_rejected() {
        let err = build_scenario(&ScenarioSpec {
            units: 0,
            ..ScenarioSpec::default()
        })
        .unwrap_err();
        assert!(matches!(err, CosimError::Setup(_)));
    }

    #[test]
    fn sharding_pays_off_on_idle_pipelines() {
        // After a pipeline drains, every shard — unit shards AND module
        // shards — must be dormant: controllers proved stable, finished
        // modules halt-parked.
        let mut s = build_scenario(&ScenarioSpec {
            units: 32,
            values_per_link: 2,
            ..ScenarioSpec::default()
        })
        .expect("builds");
        let done = s.run_to_completion(Duration::from_us(4_000)).expect("runs");
        assert!(done);
        // A long idle tail.
        s.cosim.run_for(Duration::from_us(100)).expect("idles");
        let st = s.cosim.shard_stats();
        assert!(
            st.shards >= 4,
            "32 units + 33 modules at shard size 16 need several shards, got {}",
            st.shards
        );
        assert_eq!(
            st.dormant_shards, st.shards,
            "drained pipeline parks every shard"
        );
        assert!(st.units_skipped > 0 || st.units_stepped > 0);
        assert_eq!(
            st.parked_now,
            32 + 33,
            "every unit and every module is parked"
        );
    }

    #[test]
    fn starved_consumers_park_at_zero_activation_cost() {
        // N-1 consumers blocked on get against silent links: they must
        // prove stable within a couple of activations and then cost
        // nothing, while link 0's traffic completes normally.
        let mut s = build_scenario(&ScenarioSpec {
            units: 8,
            topology: Topology::Starved,
            values_per_link: 3,
            ..ScenarioSpec::default()
        })
        .expect("builds");
        let done = s.run_to_completion(Duration::from_us(2_000)).expect("runs");
        assert!(done, "link 0 traffic completes");
        s.verify().expect("checksum holds");
        let before = s.cosim.shard_stats();
        assert!(
            before.members_parked >= 7,
            "starved consumers parked (got {})",
            before.members_parked
        );
        // Snapshot the starved consumers' activation counts, idle a long
        // tail, and verify they did not move.
        let starved: Vec<u64> = s.modules[2..]
            .iter()
            .map(|&m| s.cosim.module_status(m).activations)
            .collect();
        assert!(
            starved.iter().all(|&a| a <= 3),
            "blocked consumers stall within a couple of steps: {starved:?}"
        );
        s.cosim.run_for(Duration::from_us(200)).expect("idles");
        let after: Vec<u64> = s.modules[2..]
            .iter()
            .map(|&m| s.cosim.module_status(m).activations)
            .collect();
        assert_eq!(starved, after, "parked consumers cost zero activations");
    }

    /// Compares a backplane's observable state — per-module status
    /// (FSM state, activation count, error) and full trace log —
    /// against a recorded expectation.
    fn assert_same(
        c: &Cosim,
        modules: &[CosimModuleId],
        want_status: &[crate::ModuleStatus],
        want_trace: &crate::TraceLog,
        tag: &str,
        what: &str,
    ) {
        for (&m, want) in modules.iter().zip(want_status) {
            assert_eq!(
                &c.module_status(m),
                want,
                "{tag}/{what}: module status diverged"
            );
        }
        assert_eq!(
            c.trace_log().entries(),
            want_trace.entries(),
            "{tag}/{what}: traces diverged"
        );
    }

    #[test]
    fn snapshot_restore_fork_replay_bit_identical() {
        // The tentpole property: checkpoint at an arbitrary mid-run
        // instant, then (a) keep running, (b) rewind and re-run, and
        // (c) run forked twins — all must be bit-identical to an
        // uninterrupted run: same traces, same FSM states, same
        // activation counts. Pinned across the legacy per-unit/
        // per-module path, immediate sharded, and the two-phase driver
        // (sequential and threaded), on both link flavours.
        use crate::backplane::{ModuleScheduling, UnitScheduling};
        let sharded4 = SchedulingConfig {
            units: UnitScheduling::Sharded { shard_size: 4 },
            modules: ModuleScheduling::Sharded { shard_size: 4 },
            park_blocked: true,
            ..SchedulingConfig::sharded()
        };
        let variants = [
            (
                "legacy",
                SchedulingConfig {
                    units: UnitScheduling::PerUnit,
                    modules: ModuleScheduling::PerModule,
                    park_blocked: true,
                    ..SchedulingConfig::legacy()
                },
            ),
            ("deferred_hashed", sharded4),
            // Threshold 1 forces real speculation + commit so the
            // snapshot covers driver scratch, journals and the
            // threaded step phase.
            (
                "deferred_threads2",
                SchedulingConfig {
                    step_fanout_min: 1,
                    ..sharded4.with_threads(2)
                },
            ),
            (
                "immediate_sharded",
                SchedulingConfig {
                    units: UnitScheduling::Sharded { shard_size: 4 },
                    modules: ModuleScheduling::Sharded { shard_size: 4 },
                    park_blocked: true,
                    ..SchedulingConfig::immediate()
                },
            ),
        ];
        for topology in [Topology::Pipeline, Topology::Ring, Topology::Skewed] {
            for link in [
                LinkKind::Handshake,
                LinkKind::Batched {
                    max_batch: 4,
                    capacity: 16,
                    timing: BusTiming::PayloadBeats,
                },
            ] {
                for (name, cfg) in variants {
                    let spec = ScenarioSpec {
                        units: 6,
                        topology,
                        link,
                        values_per_link: 2,
                        scheduling: cfg,
                        ..ScenarioSpec::default()
                    };
                    let tag = format!("{topology:?}/{link:?}/{name}");

                    // Uninterrupted reference run.
                    let mut r = build_scenario(&spec).expect("builds");
                    r.cosim
                        .run_for(Duration::from_us(400))
                        .unwrap_or_else(|e| panic!("{tag}: reference runs: {e}"));
                    let ref_status: Vec<_> = r
                        .modules
                        .iter()
                        .map(|&m| r.cosim.module_status(m))
                        .collect();
                    let ref_trace = r.cosim.trace_log();
                    r.verify().unwrap_or_else(|e| panic!("{tag}: {e}"));

                    // Checkpointed run: snapshot mid-flight.
                    let mut a = build_scenario(&spec).expect("builds");
                    a.cosim
                        .run_for(Duration::from_us(150))
                        .expect("runs to mid");
                    let snap = a.cosim.snapshot();
                    assert_eq!(snap.at(), a.cosim.sim().now(), "{tag}: snapshot time");
                    let mid_status: Vec<_> = a
                        .modules
                        .iter()
                        .map(|&m| a.cosim.module_status(m))
                        .collect();
                    let mid_trace = a.cosim.trace_log();
                    // Fork two twins before the original moves on.
                    let mut f1 = a
                        .cosim
                        .fork(&snap)
                        .unwrap_or_else(|e| panic!("{tag}: fork: {e}"));
                    let mut f2 = a.cosim.fork(&snap).expect("second fork");

                    // (a) Capturing is non-destructive: the original
                    // continues to the same end state.
                    a.cosim.run_for(Duration::from_us(250)).expect("continues");
                    assert_same(
                        &a.cosim,
                        &r.modules,
                        &ref_status,
                        &ref_trace,
                        &tag,
                        "continue",
                    );
                    a.verify()
                        .unwrap_or_else(|e| panic!("{tag}: continue: {e}"));

                    // (b) Rewind in place and replay.
                    a.cosim
                        .restore(&snap)
                        .unwrap_or_else(|e| panic!("{tag}: restore: {e}"));
                    assert_same(
                        &a.cosim,
                        &r.modules,
                        &mid_status,
                        &mid_trace,
                        &tag,
                        "rewound",
                    );
                    a.cosim.run_for(Duration::from_us(250)).expect("replays");
                    assert_same(
                        &a.cosim,
                        &r.modules,
                        &ref_status,
                        &ref_trace,
                        &tag,
                        "replay",
                    );
                    a.verify().unwrap_or_else(|e| panic!("{tag}: replay: {e}"));

                    // (c) Forks replay identically and independently:
                    // f1 runs to the end...
                    f1.run_for(Duration::from_us(250)).expect("fork runs");
                    assert_same(&f1, &r.modules, &ref_status, &ref_trace, &tag, "fork");
                    // ...while sibling f2 — untouched by f1's run and
                    // the original's — still sits at the snapshot
                    // instant...
                    assert_eq!(
                        f2.sim().now(),
                        snap.at(),
                        "{tag}: idle sibling did not advance"
                    );
                    assert_same(
                        &f2,
                        &r.modules,
                        &mid_status,
                        &mid_trace,
                        &tag,
                        "idle sibling",
                    );
                    // ...and then replays to the same end state.
                    f2.run_for(Duration::from_us(250)).expect("sibling runs");
                    assert_same(&f2, &r.modules, &ref_status, &ref_trace, &tag, "sibling");
                }
            }
        }
    }

    #[test]
    fn restored_stats_continue_verbatim() {
        // The stats-coherence contract: counters are captured and
        // restored verbatim, so a rewound run's final statistics —
        // kernel, per-unit, and scheduler — are identical to the
        // uninterrupted run's. (Allocation telemetry of the *threaded*
        // step phase is the documented exception; this config is
        // sequential, so the equality is exact and total.)
        let spec = ScenarioSpec {
            units: 6,
            values_per_link: 3,
            ..ScenarioSpec::default()
        };
        let mut r = build_scenario(&spec).expect("builds");
        r.cosim.run_for(Duration::from_us(400)).expect("runs");

        let mut a = build_scenario(&spec).expect("builds");
        a.cosim.run_for(Duration::from_us(150)).expect("runs");
        let snap = a.cosim.snapshot();
        a.cosim.run_for(Duration::from_us(250)).expect("continues");
        a.cosim.restore(&snap).expect("restores");
        a.cosim.run_for(Duration::from_us(250)).expect("replays");

        assert_eq!(
            a.cosim.sim().stats(),
            r.cosim.sim().stats(),
            "kernel stats replay verbatim"
        );
        assert_eq!(
            a.cosim.shard_stats(),
            r.cosim.shard_stats(),
            "scheduler stats replay verbatim"
        );
        for i in 0..r.links.len() {
            let name = format!("link{i}");
            assert_eq!(
                a.cosim.unit_stats(&name),
                r.cosim.unit_stats(&name),
                "{name} stats replay verbatim"
            );
        }
    }

    #[test]
    fn skewed_chunks_adapt_and_oversized_shells_reclaimed() {
        // Adaptive work-stealing chunk sizing + oversized-shell
        // reclamation, on the same skewed fleet as
        // skewed_costs_steal_work_and_reuse_arenas_under_threads: the
        // heavy producer's shell retains pools far past the per-shell
        // EWMA once dozens of near-empty consumer shells have decayed
        // it, and observed steals must shrink the chunk grain at least
        // once.
        use crate::backplane::{ModuleScheduling, UnitScheduling};
        let mut s = build_scenario(&ScenarioSpec {
            units: 48,
            topology: Topology::Skewed,
            values_per_link: 4,
            scheduling: SchedulingConfig {
                units: UnitScheduling::Sharded { shard_size: 16 },
                modules: ModuleScheduling::Sharded { shard_size: 16 },
                park_blocked: false,
                step_fanout_min: 1,
                ..SchedulingConfig::sharded().with_threads(2)
            },
            ..ScenarioSpec::default()
        })
        .expect("builds");
        let done = s.run_to_completion(Duration::from_us(2_000)).expect("runs");
        assert!(done, "skewed scenario completes");
        s.verify().expect("checksum holds");
        let st = s.cosim.shard_stats().scratch;
        assert!(st.steals > 0, "skewed set rebalanced: {st:?}");
        assert!(
            st.chunk_shrinks > 0,
            "a steal cycle shrank the chunk grain: {st:?}"
        );
        assert!(
            (2..=64).contains(&st.chunk_now),
            "adapted chunk stays within bounds: {st:?}"
        );
        assert!(
            st.shells_shrunk > 0,
            "the heavy producer's oversized shell was reclaimed: {st:?}"
        );
    }

    /// Runs `spec` both partitioned (under the orchestrator, in quanta
    /// of `quantum`) and through the collapsed single-backplane oracle,
    /// and asserts bit-identical module statuses, checksums and
    /// per-source trace streams. Returns the orchestrator stats so
    /// callers can assert on the sync machinery itself.
    fn partitioned_vs_collapsed(
        spec: &ScenarioSpec,
        pspec: &PartitionsSpec,
        total: Duration,
        quantum: Duration,
    ) -> crate::partition::OrchestratorStats {
        let mut mono = build_collapsed(spec, pspec).expect("collapsed oracle builds");
        mono.cosim.run_for(total).expect("collapsed oracle runs");
        let mut part = build_partitioned(spec, pspec).expect("partitioned builds");
        part.run_for(total, quantum).expect("partitioned runs");
        assert_eq!(part.modules.len(), mono.modules.len());
        for j in 0..part.modules.len() {
            assert_eq!(
                part.module_status(j),
                mono.cosim.module_status(mono.modules[j]),
                "module {j} status diverged under {spec:?} / {pspec:?}"
            );
        }
        mono.verify()
            .unwrap_or_else(|e| panic!("collapsed oracle checksum: {e}"));
        part.verify()
            .unwrap_or_else(|e| panic!("partitioned checksum: {e}"));
        // Trace equivalence, compared per source: cross-partition
        // modules interleave arbitrarily in a merged view, but each
        // module's own event stream (labels, payloads AND timestamps)
        // must be bit-identical to the oracle's.
        let want = mono.cosim.trace_log().entries();
        let got: Vec<TraceEntry> = part
            .parts
            .iter()
            .flat_map(|&p| part.orch.partition(p).cosim().trace_log().entries())
            .collect();
        let sources: std::collections::BTreeSet<&str> =
            want.iter().map(|e| e.source.as_str()).collect();
        let by_source = |entries: &[TraceEntry], src: &str| -> Vec<TraceEntry> {
            entries
                .iter()
                .filter(|e| e.source == src)
                .cloned()
                .collect()
        };
        for src in sources {
            assert_eq!(
                by_source(&got, src),
                by_source(&want, src),
                "trace stream of {src} diverged under {spec:?} / {pspec:?}"
            );
        }
        assert_eq!(
            got.len(),
            want.len(),
            "partitioned run recorded extra trace sources"
        );
        part.orch.stats()
    }

    #[test]
    fn partitioned_pipeline_matches_collapsed_oracle() {
        let spec = ScenarioSpec {
            units: 6,
            values_per_link: 3,
            trace: true,
            ..ScenarioSpec::default()
        };
        let stats = partitioned_vs_collapsed(
            &spec,
            &PartitionsSpec::default(),
            Duration::from_us(300),
            Duration::from_us(5),
        );
        assert!(stats.quanta_committed >= 60, "stats: {stats:?}");
    }

    #[test]
    fn partitioned_batched_ring_matches_collapsed_oracle() {
        let spec = ScenarioSpec {
            units: 5,
            topology: Topology::Ring,
            values_per_link: 4,
            link: LinkKind::Batched {
                max_batch: 4,
                capacity: 16,
                timing: BusTiming::LengthOnly,
            },
            trace: true,
            ..ScenarioSpec::default()
        };
        let stats = partitioned_vs_collapsed(
            &spec,
            &PartitionsSpec {
                count: 2,
                latency: Duration::from_ns(200),
            },
            Duration::from_us(400),
            Duration::from_us(4),
        );
        assert!(stats.boundary_messages > 0, "stats: {stats:?}");
    }

    #[test]
    fn partition_count_must_fit_module_count() {
        let spec = ScenarioSpec {
            units: 4,
            ..ScenarioSpec::default()
        };
        for count in [0, 100] {
            let err = build_partitioned(
                &spec,
                &PartitionsSpec {
                    count,
                    ..PartitionsSpec::default()
                },
            )
            .unwrap_err();
            assert!(matches!(err, CosimError::Setup(_)), "{err}");
        }
    }
}
