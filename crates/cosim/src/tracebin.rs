//! Binary trace stream — the [`TraceLog`](crate::TraceLog) counterpart
//! of the kernel's `vcd` waveform writer: a compact, append-only record
//! stream for archiving trace logs (whole-log [`write_log`]) and for
//! the log's incremental spill mode
//! ([`TraceLog::set_spill`](crate::TraceLog::set_spill)).
//!
//! # Format
//!
//! A 5-byte header (`b"CTRC"` + version `1`), then records:
//!
//! * `0x01` **Def** — `varint id`, `varint len`, `len` UTF-8 bytes.
//!   Binds an interned-string id to its text; ids are defined before
//!   first use and never redefined.
//! * `0x02` **Entry** — `varint at`, `varint source-id`,
//!   `varint label-id`, `varint n`, then `n` values.
//!
//! Values are a tag byte plus payload: `0x00` four-valued bit (one code
//! byte), `0x01` bool (one byte), `0x02` int (zigzag varint), `0x03`
//! enum (inline type name + variant list as length-prefixed strings,
//! then the variant index — self-contained so the spill path needs no
//! cross-record type table; trace payloads are overwhelmingly ints and
//! bits, so the inline cost is immaterial).
//!
//! All varints are LEB128. The stream is self-delimiting: readers stop
//! cleanly at end-of-input between records.

use crate::trace::{TraceEntryRef, TraceLog};
use cosma_core::{Bit, EnumType, EnumValue, Value};
use std::io::{Read, Write};

const MAGIC: &[u8; 4] = b"CTRC";
const VERSION: u8 = 1;

const REC_DEF: u8 = 0x01;
const REC_ENTRY: u8 = 0x02;

const VAL_BIT: u8 = 0x00;
const VAL_BOOL: u8 = 0x01;
const VAL_INT: u8 = 0x02;
const VAL_ENUM: u8 = 0x03;

/// Errors from decoding a binary trace stream.
#[derive(Debug)]
pub enum TraceBinError {
    /// Underlying reader failure.
    Io(std::io::Error),
    /// Stream header or record structure is malformed.
    Malformed(String),
}

impl std::fmt::Display for TraceBinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceBinError::Io(e) => write!(f, "trace stream read: {e}"),
            TraceBinError::Malformed(m) => write!(f, "malformed trace stream: {m}"),
        }
    }
}

impl std::error::Error for TraceBinError {}

impl From<std::io::Error> for TraceBinError {
    fn from(e: std::io::Error) -> Self {
        TraceBinError::Io(e)
    }
}

fn malformed(m: impl Into<String>) -> TraceBinError {
    TraceBinError::Malformed(m.into())
}

// --- encoding primitives (allocation-free: stack buffers only) ---

fn write_varint(w: &mut dyn Write, mut v: u64) -> std::io::Result<()> {
    let mut buf = [0u8; 10];
    let mut i = 0;
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        buf[i] = if v == 0 { byte } else { byte | 0x80 };
        i += 1;
        if v == 0 {
            break;
        }
    }
    w.write_all(&buf[..i])
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn write_str(w: &mut dyn Write, s: &str) -> std::io::Result<()> {
    write_varint(w, s.len() as u64)?;
    w.write_all(s.as_bytes())
}

fn bit_code(b: Bit) -> u8 {
    match b {
        Bit::Zero => 0,
        Bit::One => 1,
        Bit::X => 2,
        Bit::Z => 3,
    }
}

fn write_value(w: &mut dyn Write, v: &Value) -> std::io::Result<()> {
    match v {
        Value::Bit(b) => w.write_all(&[VAL_BIT, bit_code(*b)]),
        Value::Bool(b) => w.write_all(&[VAL_BOOL, u8::from(*b)]),
        Value::Int(i) => {
            w.write_all(&[VAL_INT])?;
            write_varint(w, zigzag(*i))
        }
        Value::Enum(e) => {
            w.write_all(&[VAL_ENUM])?;
            write_str(w, e.ty().name())?;
            write_varint(w, e.ty().variants().len() as u64)?;
            for var in e.ty().variants() {
                write_str(w, var)?;
            }
            write_varint(w, u64::from(e.index()))
        }
    }
}

/// Writes the stream header.
///
/// # Errors
///
/// Propagates sink write errors.
pub fn write_header(w: &mut dyn Write) -> std::io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&[VERSION])
}

/// Writes one string-definition record binding `id` to `text`.
///
/// # Errors
///
/// Propagates sink write errors.
pub(crate) fn write_def(w: &mut dyn Write, id: u32, text: &str) -> std::io::Result<()> {
    w.write_all(&[REC_DEF])?;
    write_varint(w, u64::from(id))?;
    write_str(w, text)
}

/// Writes one entry record referencing previously defined string ids.
///
/// # Errors
///
/// Propagates sink write errors.
pub(crate) fn write_entry(
    w: &mut dyn Write,
    e: &TraceEntryRef<'_>,
    source_id: u32,
    label_id: u32,
) -> std::io::Result<()> {
    w.write_all(&[REC_ENTRY])?;
    write_varint(w, e.at)?;
    write_varint(w, u64::from(source_id))?;
    write_varint(w, u64::from(label_id))?;
    write_varint(w, e.values.len() as u64)?;
    for v in e.values {
        write_value(w, v)?;
    }
    Ok(())
}

/// Serializes a whole log — header, each distinct source/label defined
/// on first use, then every in-memory entry in order.
///
/// # Errors
///
/// Propagates sink write errors.
pub fn write_log(log: &TraceLog, w: &mut dyn Write) -> std::io::Result<()> {
    write_header(w)?;
    let mut defined: Vec<(String, u32)> = vec![];
    let mut id_of = |w: &mut dyn Write, s: &str| -> std::io::Result<u32> {
        if let Some((_, id)) = defined.iter().find(|(t, _)| t == s) {
            return Ok(*id);
        }
        let id = defined.len() as u32;
        write_def(w, id, s)?;
        defined.push((s.to_string(), id));
        Ok(id)
    };
    for e in log.iter() {
        let source_id = id_of(w, e.source)?;
        let label_id = id_of(w, e.label)?;
        write_entry(w, &e, source_id, label_id)?;
    }
    Ok(())
}

// --- decoding ---

struct ByteReader<R: Read> {
    inner: R,
}

impl<R: Read> ByteReader<R> {
    /// Reads one byte; `Ok(None)` at clean end-of-input.
    fn byte_or_eof(&mut self) -> Result<Option<u8>, TraceBinError> {
        let mut b = [0u8; 1];
        let mut read = 0;
        while read == 0 {
            match self.inner.read(&mut b) {
                Ok(0) => return Ok(None),
                Ok(n) => read = n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
        Ok(Some(b[0]))
    }

    fn byte(&mut self) -> Result<u8, TraceBinError> {
        self.byte_or_eof()?
            .ok_or_else(|| malformed("unexpected end of stream"))
    }

    fn varint(&mut self) -> Result<u64, TraceBinError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.byte()?;
            if shift >= 64 {
                return Err(malformed("varint overflow"));
            }
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn string(&mut self) -> Result<String, TraceBinError> {
        let len = usize::try_from(self.varint()?).map_err(|_| malformed("string length"))?;
        let mut buf = vec![0u8; len];
        self.inner.read_exact(&mut buf)?;
        String::from_utf8(buf).map_err(|_| malformed("string is not UTF-8"))
    }

    fn value(&mut self) -> Result<Value, TraceBinError> {
        match self.byte()? {
            VAL_BIT => Ok(Value::Bit(match self.byte()? {
                0 => Bit::Zero,
                1 => Bit::One,
                2 => Bit::X,
                3 => Bit::Z,
                c => return Err(malformed(format!("bit code {c}"))),
            })),
            VAL_BOOL => Ok(Value::Bool(self.byte()? != 0)),
            VAL_INT => Ok(Value::Int(unzigzag(self.varint()?))),
            VAL_ENUM => {
                let name = self.string()?;
                let n = usize::try_from(self.varint()?).map_err(|_| malformed("variant count"))?;
                let mut variants = Vec::with_capacity(n);
                for _ in 0..n {
                    variants.push(self.string()?);
                }
                if variants.is_empty() {
                    return Err(malformed("enum with no variants"));
                }
                let ty = EnumType::new(name, variants);
                let index = u32::try_from(self.varint()?).map_err(|_| malformed("enum index"))?;
                EnumValue::from_index(ty, index)
                    .map(Value::Enum)
                    .map_err(|e| malformed(format!("enum value: {e:?}")))
            }
            t => Err(malformed(format!("value tag {t:#x}"))),
        }
    }
}

/// Decodes a binary trace stream back into an in-memory [`TraceLog`].
/// Accepts the output of [`write_log`] and of the incremental spill
/// path (which emits the identical record stream).
///
/// # Errors
///
/// Returns [`TraceBinError`] on read failures or a malformed stream.
pub fn read_log(r: impl Read) -> Result<TraceLog, TraceBinError> {
    let mut br = ByteReader { inner: r };
    let mut magic = [0u8; 5];
    br.inner.read_exact(&mut magic)?;
    if &magic[..4] != MAGIC {
        return Err(malformed("bad magic"));
    }
    if magic[4] != VERSION {
        return Err(malformed(format!("unsupported version {}", magic[4])));
    }
    let mut names: Vec<Option<String>> = vec![];
    let mut log = TraceLog::new();
    let mut values: Vec<Value> = vec![];
    while let Some(tag) = br.byte_or_eof()? {
        match tag {
            REC_DEF => {
                let id = usize::try_from(br.varint()?).map_err(|_| malformed("def id"))?;
                let text = br.string()?;
                if names.len() <= id {
                    names.resize(id + 1, None);
                }
                names[id] = Some(text);
            }
            REC_ENTRY => {
                let at = br.varint()?;
                let source = usize::try_from(br.varint()?).map_err(|_| malformed("source id"))?;
                let label = usize::try_from(br.varint()?).map_err(|_| malformed("label id"))?;
                let n = usize::try_from(br.varint()?).map_err(|_| malformed("value count"))?;
                values.clear();
                for _ in 0..n {
                    values.push(br.value()?);
                }
                let resolve =
                    |ids: &[Option<String>], id: usize| -> Result<String, TraceBinError> {
                        ids.get(id)
                            .and_then(|s| s.clone())
                            .ok_or_else(|| malformed(format!("undefined string id {id}")))
                    };
                let source = resolve(&names, source)?;
                let label = resolve(&names, label)?;
                log.record(at, source, label, &values);
            }
            t => return Err(malformed(format!("record tag {t:#x}"))),
        }
    }
    Ok(log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosma_core::EnumType;

    fn sample_log() -> TraceLog {
        let mut l = TraceLog::new();
        let ty = EnumType::new("state", vec!["idle".into(), "busy".into()]);
        l.record(0, "alpha", "pulse", [Value::Int(-7)]);
        l.record(
            10,
            "beta",
            "mode",
            [
                Value::Bit(Bit::One),
                Value::Bool(true),
                Value::Enum(EnumValue::from_index(ty, 1).unwrap()),
            ],
        );
        l.record(u64::MAX, "alpha", "pulse", [Value::Int(i64::MIN)]);
        l.record(11, "alpha", "empty", []);
        l
    }

    #[test]
    fn round_trips_whole_log() {
        let log = sample_log();
        let mut bytes = vec![];
        write_log(&log, &mut bytes).unwrap();
        let back = read_log(&bytes[..]).unwrap();
        assert_eq!(back, log);
        assert_eq!(back.entries(), log.entries());
    }

    #[test]
    fn spill_stream_is_readable() {
        use crate::trace::SEG_ENTRIES;
        use std::cell::RefCell;
        use std::rc::Rc;

        // A shared byte sink so the test can inspect what spilled.
        #[derive(Clone)]
        struct SharedSink(Rc<RefCell<Vec<u8>>>);
        impl Write for SharedSink {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.borrow_mut().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let bytes = Rc::new(RefCell::new(vec![]));
        let mut l = TraceLog::new();
        l.set_spill(Box::new(SharedSink(Rc::clone(&bytes))));
        let n = SEG_ENTRIES + 3;
        for i in 0..n {
            l.record(i as u64, "m", "e", [Value::Int(i as i64)]);
        }
        assert_eq!(l.spilled(), SEG_ENTRIES as u64);
        let data = bytes.borrow().clone();
        let back = read_log(&data[..]).unwrap();
        assert_eq!(back.len(), SEG_ENTRIES);
        for (i, e) in back.iter().enumerate() {
            assert_eq!(e.at, i as u64);
            assert_eq!(e.values, &[Value::Int(i as i64)]);
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_log(&b"NOPE\x01"[..]).is_err());
        assert!(read_log(&b"CTRC\x63"[..]).is_err());
        let mut bytes = vec![];
        write_log(&sample_log(), &mut bytes).unwrap();
        bytes.push(0x77); // trailing junk record tag
        assert!(read_log(&bytes[..]).is_err());
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}
