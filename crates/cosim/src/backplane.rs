//! The co-simulation backplane: modules, communication units and clocks
//! assembled over the discrete-event kernel.
//!
//! * Hardware modules activate on each rising edge of the HW clock;
//!   software modules on each rising edge of the SW activation clock.
//!   Every activation executes exactly one FSM transition — the paper's
//!   synchronization rule.
//! * FSM communication units live on kernel signals (one per wire).
//!   Service calls from modules step the caller's protocol session
//!   against those signals — the runtime equivalent of linking the SW
//!   *simulation* view (Fig. 3b).
//! * Unit bookkeeping (controller steps, native steps, batched-link
//!   pumping) is scheduled per [`UnitScheduling`]: by default units are
//!   grouped into *shards*, each one kernel process whose activation set
//!   tracks which members were touched; fully idle shards go dormant and
//!   cost nothing per clock edge. `UnitScheduling::PerUnit` preserves
//!   the legacy one-clocked-process-per-unit path.
//! * Native units with background activity are stepped once per HW
//!   cycle; purely call-driven ones ([`NativeUnit::needs_step`] =
//!   `false`) are parked under sharded scheduling.
//! * Batched bus links ([`Cosim::add_batched_unit`]) coalesce per-value
//!   transfers into one wire handshake per batch.

use crate::trace::TraceLog;
use cosma_comm::{BatchedLink, CallerId, FsmUnitRuntime, NativeUnit, UnitStats, WireStore};
use cosma_core::comm::CommUnitSpec;
use cosma_core::ids::{PortId, VarId};
use cosma_core::{
    Env, EvalError, Fsm, FsmExec, Module, ModuleKind, ReadEnv, ServiceCall, ServiceOutcome, Type,
    Value,
};
use cosma_sim::{
    ClockControl, Duration, Edge, FnProcess, ProcCtx, SignalId, SimError, SimTime, Simulator, Wait,
};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

/// How communication-unit bookkeeping (controller steps, native steps,
/// batched-link pumping) is scheduled on the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnitScheduling {
    /// One clocked kernel process per unit, activated on every HW clock
    /// edge. The pre-sharding path, kept as an ablation baseline — per
    /// edge it costs one process wakeup per unit even when every unit is
    /// provably idle.
    PerUnit,
    /// Units grouped into shards of at most `shard_size`; each shard is
    /// one kernel process with a per-member activation set. A shard whose
    /// members are all provably stable goes *dormant*: it drops its clock
    /// sensitivity and waits only on its members' wires through the
    /// kernel's inverted sensitivity index, so idle shards cost nothing
    /// per clock edge. Only touched shards step.
    Sharded {
        /// Maximum units per shard.
        shard_size: usize,
    },
}

impl Default for UnitScheduling {
    fn default() -> Self {
        UnitScheduling::Sharded {
            shard_size: DEFAULT_SHARD_SIZE,
        }
    }
}

/// Default units per shard.
pub const DEFAULT_SHARD_SIZE: usize = 16;

/// Aggregate statistics of the sharded unit scheduler (all zero under
/// [`UnitScheduling::PerUnit`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Number of shards.
    pub shards: usize,
    /// Shards currently dormant (no clock sensitivity).
    pub dormant_shards: usize,
    /// Total shard-process activations.
    pub shard_runs: u64,
    /// Member step executions (controller steps, native steps, pumps).
    pub units_stepped: u64,
    /// Members skipped at a clock edge because they were provably idle.
    pub units_skipped: u64,
    /// Dormant-shard wakeups caused by a member wire event.
    pub wire_wakeups: u64,
}

/// Clocking configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CosimConfig {
    /// Hardware cycle (default 100 ns — the paper's 10 MHz bus clock).
    pub hw_cycle: Duration,
    /// Software activation period (default equal to the hardware cycle,
    /// giving the paper's precise HW/SW synchronization).
    pub sw_cycle: Duration,
}

impl Default for CosimConfig {
    fn default() -> Self {
        let c = Duration::from_freq_hz(10_000_000);
        CosimConfig {
            hw_cycle: c,
            sw_cycle: c,
        }
    }
}

/// Identifies a communication-unit instance in the backplane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UnitId(usize);

/// Identifies a module instance in the backplane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CosimModuleId(usize);

/// Live status of a module, readable while the simulation runs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ModuleStatus {
    /// Current FSM state name.
    pub state: String,
    /// Activations performed.
    pub activations: u64,
}

struct FsmUnitEntry {
    name: String,
    runtime: FsmUnitRuntime,
    wires: Vec<SignalId>,
}

struct BatchedUnitEntry {
    name: String,
    link: BatchedLink,
    wires: Vec<SignalId>,
}

struct Registry {
    fsm: Vec<FsmUnitEntry>,
    native: Vec<(String, Box<dyn NativeUnit>)>,
    batched: Vec<BatchedUnitEntry>,
}

#[derive(Debug, Clone, Copy)]
enum Handle {
    Fsm(usize),
    Native(usize),
    Batched(usize),
}

/// One unit inside a shard: its registry handle, its kernel wires and the
/// monotone event counts last observed for them.
struct ShardMember {
    handle: Handle,
    wires: Vec<SignalId>,
    seen_events: Vec<u64>,
    /// Whether the member must run on the next rising HW clock edge:
    /// controllers that are not provably stable, native units with real
    /// background steps, batched links with queued or in-flight work.
    needs_clock: bool,
}

/// Shared state of one shard process.
struct ShardState {
    members: Vec<ShardMember>,
    /// Whether the shard currently holds clock sensitivity.
    awake: bool,
    runs: u64,
    units_stepped: u64,
    units_skipped: u64,
    wire_wakeups: u64,
}

impl ShardState {
    fn new() -> Self {
        ShardState {
            members: vec![],
            awake: true,
            runs: 0,
            units_stepped: 0,
            units_skipped: 0,
            wire_wakeups: 0,
        }
    }
}

/// Bridges a unit's wire table onto kernel signals through the running
/// process context.
struct CtxWires<'a, 'b> {
    ctx: &'a mut ProcCtx<'b>,
    map: &'a [SignalId],
}

impl WireStore for CtxWires<'_, '_> {
    fn read_wire(&self, w: PortId) -> Result<Value, EvalError> {
        match self.map.get(w.index()) {
            Some(&sig) => Ok(self.ctx.read(sig).clone()),
            None => Err(EvalError::NoSuchPort(w)),
        }
    }
    fn write_wire(&mut self, w: PortId, v: Value) -> Result<(), EvalError> {
        match self.map.get(w.index()) {
            Some(&sig) => {
                self.ctx.drive(sig, v);
                Ok(())
            }
            None => Err(EvalError::NoSuchPort(w)),
        }
    }
}

/// The execution environment a module activation sees: ports are kernel
/// signals, variables are module-local, service calls go to the registry.
struct CosimEnv<'a, 'b> {
    ctx: &'a mut ProcCtx<'b>,
    ports: &'a [SignalId],
    vars: &'a mut [Value],
    var_tys: &'a [Type],
    registry: &'a RefCell<Registry>,
    bindings: &'a [Handle],
    caller: CallerId,
    trace: &'a RefCell<TraceLog>,
    source: &'a str,
}

impl ReadEnv for CosimEnv<'_, '_> {
    fn read_var(&self, v: VarId) -> Result<Value, EvalError> {
        self.vars
            .get(v.index())
            .cloned()
            .ok_or(EvalError::NoSuchVar(v))
    }
    fn read_port(&self, p: PortId) -> Result<Value, EvalError> {
        match self.ports.get(p.index()) {
            Some(&sig) => Ok(self.ctx.read(sig).clone()),
            None => Err(EvalError::NoSuchPort(p)),
        }
    }
}

impl Env for CosimEnv<'_, '_> {
    fn write_var(&mut self, v: VarId, value: Value) -> Result<(), EvalError> {
        let ty = self.var_tys.get(v.index()).ok_or(EvalError::NoSuchVar(v))?;
        let slot = self
            .vars
            .get_mut(v.index())
            .ok_or(EvalError::NoSuchVar(v))?;
        *slot = ty.clamp(value);
        Ok(())
    }
    fn drive_port(&mut self, p: PortId, value: Value) -> Result<(), EvalError> {
        match self.ports.get(p.index()) {
            Some(&sig) => {
                self.ctx.drive(sig, value);
                Ok(())
            }
            None => Err(EvalError::NoSuchPort(p)),
        }
    }
    fn call_service(
        &mut self,
        call: &ServiceCall,
        args: &[Value],
    ) -> Result<ServiceOutcome, EvalError> {
        let Some(&handle) = self.bindings.get(call.binding.index()) else {
            return Err(EvalError::Service(format!(
                "module {} has no unit attached to binding {}",
                self.source, call.binding
            )));
        };
        let mut reg = self.registry.borrow_mut();
        match handle {
            Handle::Fsm(i) => {
                let FsmUnitEntry { runtime, wires, .. } = &mut reg.fsm[i];
                let mut ws = CtxWires {
                    ctx: self.ctx,
                    map: wires,
                };
                runtime.call(self.caller, &call.service, args, &mut ws)
            }
            Handle::Native(i) => reg.native[i].1.call(self.caller, &call.service, args),
            Handle::Batched(i) => {
                let BatchedUnitEntry { name, link, wires } = &mut reg.batched[i];
                let mut ws = CtxWires {
                    ctx: self.ctx,
                    map: wires,
                };
                match (call.service.as_str(), args) {
                    ("put", [v]) => link.put(self.caller, v.clone(), &mut ws),
                    ("get", []) => link.get(self.caller, &mut ws),
                    ("put" | "get", _) => Err(EvalError::Service(format!(
                        "batched link {name}: service {} called with {} argument(s)",
                        call.service,
                        args.len()
                    ))),
                    (other, _) => Err(EvalError::Service(format!(
                        "batched link {name} has no service {other}"
                    ))),
                }
            }
        }
    }
    fn trace(&mut self, label: &str, values: &[Value]) {
        self.trace
            .borrow_mut()
            .record(self.ctx.now().as_fs(), self.source, label, values.to_vec());
    }
}

/// Errors from backplane assembly and runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CosimError {
    /// Kernel-level error.
    Sim(SimError),
    /// A module or controller hit an evaluation error.
    Runtime(String),
    /// Assembly-time error (duplicate names, unresolved bindings...).
    Setup(String),
}

impl fmt::Display for CosimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CosimError::Sim(e) => write!(f, "{e}"),
            CosimError::Runtime(m) | CosimError::Setup(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CosimError {}

impl From<SimError> for CosimError {
    fn from(e: SimError) -> Self {
        CosimError::Sim(e)
    }
}

/// Per-module bookkeeping: name, live status, live variables, and the
/// module description itself.
type ModuleSlot = (
    String,
    Rc<RefCell<ModuleStatus>>,
    Rc<RefCell<Vec<Value>>>,
    Module,
);

/// The co-simulation backplane.
///
/// # Examples
///
/// A software producer and a hardware consumer exchanging one value over
/// the library handshake unit:
///
/// ```
/// use cosma_cosim::{Cosim, CosimConfig};
/// use cosma_comm::handshake_unit;
/// use cosma_core::{ModuleBuilder, ModuleKind, Type, Value, Expr, Stmt, ServiceCall};
/// use cosma_sim::Duration;
///
/// let mut cosim = Cosim::new(CosimConfig::default());
/// let link = cosim.add_fsm_unit("link", handshake_unit("hs", Type::INT16));
///
/// let mut p = ModuleBuilder::new("producer", ModuleKind::Software);
/// let done = p.var("D", Type::Bool, Value::Bool(false));
/// let b = p.binding("iface", "hs");
/// let s_put = p.state("PUT");
/// let s_end = p.state("END");
/// p.actions(s_put, vec![Stmt::Call(ServiceCall {
///     binding: b, service: "put".into(), args: vec![Expr::int(42)],
///     done: Some(done), result: None,
/// })]);
/// p.transition(s_put, Some(Expr::var(done)), s_end);
/// p.transition(s_end, None, s_end);
/// p.initial(s_put);
///
/// let mut c = ModuleBuilder::new("consumer", ModuleKind::Hardware);
/// let got = c.var("GOT", Type::INT16, Value::Int(0));
/// let cdone = c.var("D", Type::Bool, Value::Bool(false));
/// let cb = c.binding("iface", "hs");
/// let s_get = c.state("GET");
/// let s_end2 = c.state("END");
/// c.actions(s_get, vec![Stmt::Call(ServiceCall {
///     binding: cb, service: "get".into(), args: vec![],
///     done: Some(cdone), result: Some(got),
/// })]);
/// c.transition(s_get, Some(Expr::var(cdone)), s_end2);
/// c.transition(s_end2, None, s_end2);
/// c.initial(s_get);
///
/// let pm = cosim.add_module(&p.build()?, &[("iface", link)])?;
/// let cm = cosim.add_module(&c.build()?, &[("iface", link)])?;
/// cosim.run_for(Duration::from_us(10))?;
/// assert_eq!(cosim.module_status(cm).state, "END");
/// assert_eq!(cosim.module_var(cm, "GOT"), Some(Value::Int(42)));
/// # let _ = pm;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Cosim {
    sim: Simulator,
    registry: Rc<RefCell<Registry>>,
    handles: Vec<Handle>,
    unit_names: HashMap<String, UnitId>,
    error: Rc<RefCell<Option<String>>>,
    trace: Rc<RefCell<TraceLog>>,
    hw_clk: SignalId,
    sw_clk: SignalId,
    modules: Vec<ModuleSlot>,
    scheduling: UnitScheduling,
    shards: Vec<Rc<RefCell<ShardState>>>,
    /// Number of clocked bodies (module activations, unit controllers,
    /// native steps) still registered. The activation clock generators
    /// park forever when it reaches zero, so a backplane whose clocked
    /// work has all halted actually goes quiescent
    /// ([`Cosim::run_to_quiescence`]).
    live_clocked: Rc<Cell<u32>>,
}

impl fmt::Debug for Cosim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cosim")
            .field("modules", &self.modules.len())
            .field("units", &self.handles.len())
            .finish_non_exhaustive()
    }
}

impl Cosim {
    /// Creates a backplane with HW and SW activation clocks.
    #[must_use]
    pub fn new(config: CosimConfig) -> Self {
        let mut sim = Simulator::new();
        let hw_clk = sim.add_bit("HW_CLK");
        let sw_clk = sim.add_bit("SW_CLK");
        let live_clocked = Rc::new(Cell::new(0u32));
        for (name, clk, period) in [
            ("hw_clkgen", hw_clk, config.hw_cycle),
            ("sw_clkgen", sw_clk, config.sw_cycle),
        ] {
            // Like Simulator::add_clock, but the generator parks once no
            // clocked body is left to activate.
            let live = Rc::clone(&live_clocked);
            let half = period.halved();
            sim.add_process(
                name,
                FnProcess::new(move |ctx| {
                    if live.get() == 0 {
                        return Wait::Forever;
                    }
                    let next = match ctx.read(clk) {
                        cosma_core::Value::Bit(cosma_core::Bit::One) => cosma_core::Bit::Zero,
                        _ => cosma_core::Bit::One,
                    };
                    ctx.drive(clk, cosma_core::Value::Bit(next));
                    Wait::Timeout(half)
                }),
            );
        }
        Cosim {
            sim,
            registry: Rc::new(RefCell::new(Registry {
                fsm: vec![],
                native: vec![],
                batched: vec![],
            })),
            handles: vec![],
            unit_names: HashMap::new(),
            error: Rc::new(RefCell::new(None)),
            trace: Rc::new(RefCell::new(TraceLog::new())),
            hw_clk,
            sw_clk,
            modules: vec![],
            scheduling: UnitScheduling::default(),
            shards: vec![],
            live_clocked,
        }
    }

    /// Selects the unit-scheduling strategy. Must be called before any
    /// unit is added.
    ///
    /// # Errors
    ///
    /// Returns [`CosimError::Setup`] if units were already added.
    pub fn set_unit_scheduling(&mut self, s: UnitScheduling) -> Result<(), CosimError> {
        if !self.handles.is_empty() {
            return Err(CosimError::Setup(
                "unit scheduling must be chosen before adding units".to_string(),
            ));
        }
        if let UnitScheduling::Sharded { shard_size } = s {
            if shard_size == 0 {
                return Err(CosimError::Setup("shard size must be nonzero".to_string()));
            }
        }
        self.scheduling = s;
        Ok(())
    }

    /// The active unit-scheduling strategy.
    #[must_use]
    pub fn unit_scheduling(&self) -> UnitScheduling {
        self.scheduling
    }

    /// Aggregate shard-scheduler statistics (all zero under
    /// [`UnitScheduling::PerUnit`]).
    #[must_use]
    pub fn shard_stats(&self) -> ShardStats {
        let mut s = ShardStats {
            shards: self.shards.len(),
            ..ShardStats::default()
        };
        for shard in &self.shards {
            let st = shard.borrow();
            if !st.awake {
                s.dormant_shards += 1;
            }
            s.shard_runs += st.runs;
            s.units_stepped += st.units_stepped;
            s.units_skipped += st.units_skipped;
            s.wire_wakeups += st.wire_wakeups;
        }
        s
    }

    /// Adds a member to the open shard, creating a new shard (and its
    /// kernel process) when the current one is full.
    fn add_shard_member(&mut self, handle: Handle, wires: Vec<SignalId>) {
        let shard_size = match self.scheduling {
            UnitScheduling::Sharded { shard_size } => shard_size.max(1),
            UnitScheduling::PerUnit => unreachable!("shard members only exist when sharded"),
        };
        let state = match self.shards.last() {
            Some(s) if s.borrow().members.len() < shard_size => Rc::clone(s),
            _ => {
                let state = Rc::new(RefCell::new(ShardState::new()));
                self.register_shard_process(Rc::clone(&state));
                self.shards.push(Rc::clone(&state));
                state
            }
        };
        let seen_events = vec![0; wires.len()];
        state.borrow_mut().members.push(ShardMember {
            handle,
            wires,
            seen_events,
            needs_clock: true,
        });
    }

    /// Registers the kernel process driving one shard: it steps touched
    /// members on rising HW-clock edges and drops its clock sensitivity
    /// entirely (waiting only on member wires) while every member is
    /// provably stable.
    fn register_shard_process(&mut self, state: Rc<RefCell<ShardState>>) {
        let registry = Rc::clone(&self.registry);
        let error = Rc::clone(&self.error);
        let live = Rc::clone(&self.live_clocked);
        let clk = self.hw_clk;
        let name = format!("unit_shard{}", self.shards.len());
        live.set(live.get() + 1);
        let mut live_counted = true;
        let mut registered = false;
        self.sim.add_process(
            name,
            FnProcess::new(move |ctx| {
                if error.borrow().is_some() {
                    if live_counted {
                        live_counted = false;
                        live.set(live.get() - 1);
                    }
                    return Wait::Forever;
                }
                let mut st = state.borrow_mut();
                st.runs += 1;
                let was_awake = st.awake;
                // A dormant shard can only be woken by a member wire
                // event: find the touched members (this delta's events
                // are still marked) and put them back on the clock.
                if !was_awake {
                    st.wire_wakeups += 1;
                    for m in &mut st.members {
                        if !m.needs_clock && m.wires.iter().any(|&w| ctx.event(w)) {
                            m.needs_clock = true;
                        }
                    }
                }
                if ctx.rose(clk) {
                    let mut reg = registry.borrow_mut();
                    let ShardState {
                        members,
                        units_stepped,
                        units_skipped,
                        ..
                    } = &mut *st;
                    for m in members.iter_mut() {
                        // Monotone per-signal event counts tell each
                        // member whether any of its wires changed since
                        // its last step.
                        let changed = wires_changed(ctx, &m.wires, &mut m.seen_events);
                        if !m.needs_clock && !changed {
                            *units_skipped += 1;
                            continue;
                        }
                        *units_stepped += 1;
                        if let Err(msg) = step_shard_member(&mut reg, m, ctx, changed) {
                            *error.borrow_mut() = Some(msg);
                            if live_counted {
                                live_counted = false;
                                live.set(live.get() - 1);
                            }
                            return Wait::Forever;
                        }
                    }
                }
                let awake = st.members.iter().any(|m| m.needs_clock);
                st.awake = awake;
                if !registered || awake != was_awake {
                    registered = true;
                    if awake {
                        Wait::Event(vec![clk])
                    } else {
                        // Dormant: wake only when a member wire has an
                        // event (the inverted sensitivity index makes
                        // this free for untouched shards).
                        Wait::Event(
                            st.members
                                .iter()
                                .flat_map(|m| m.wires.iter().copied())
                                .collect(),
                        )
                    }
                } else {
                    Wait::Same
                }
            }),
        );
    }

    /// The underlying kernel (for signal pokes, VCD, stats).
    #[must_use]
    pub fn sim(&self) -> &Simulator {
        &self.sim
    }

    /// Mutable kernel access.
    pub fn sim_mut(&mut self) -> &mut Simulator {
        &mut self.sim
    }

    /// The hardware clock signal.
    #[must_use]
    pub fn hw_clk(&self) -> SignalId {
        self.hw_clk
    }

    /// The software activation clock signal.
    #[must_use]
    pub fn sw_clk(&self) -> SignalId {
        self.sw_clk
    }

    /// Instantiates an FSM communication unit: one kernel signal per wire
    /// (`<name>.<WIRE>`), plus a clocked controller process.
    pub fn add_fsm_unit(&mut self, name: &str, spec: Arc<CommUnitSpec>) -> UnitId {
        let wires: Vec<SignalId> = spec
            .wires()
            .iter()
            .map(|w| {
                self.sim.add_signal(
                    format!("{name}.{}", w.name()),
                    w.ty().clone(),
                    w.init().clone(),
                )
            })
            .collect();
        let has_controller = spec.controller().is_some();
        let runtime = FsmUnitRuntime::new(spec);
        let idx = {
            let mut reg = self.registry.borrow_mut();
            reg.fsm.push(FsmUnitEntry {
                name: name.to_string(),
                runtime,
                wires: wires.clone(),
            });
            reg.fsm.len() - 1
        };
        if has_controller {
            match self.scheduling {
                UnitScheduling::Sharded { .. } => {
                    self.add_shard_member(Handle::Fsm(idx), wires);
                }
                UnitScheduling::PerUnit => {
                    let registry = Rc::clone(&self.registry);
                    let error = Rc::clone(&self.error);
                    let clk = self.hw_clk;
                    // The kernel's monotone per-signal event counts tell the
                    // controller whether any of its wires changed since its
                    // last activation; provably idle controllers are then
                    // skipped (see FsmUnitRuntime::step_controller_if_active).
                    let watched = wires;
                    let mut seen_events: Vec<u64> = vec![0; watched.len()];
                    let live = Rc::clone(&self.live_clocked);
                    live.set(live.get() + 1);
                    self.sim.add_clocked(
                        format!("{name}.controller"),
                        clk,
                        Edge::Rising,
                        move |ctx| {
                            if error.borrow().is_some() {
                                live.set(live.get() - 1);
                                return ClockControl::Halt;
                            }
                            let inputs_changed = wires_changed(ctx, &watched, &mut seen_events);
                            let mut reg = registry.borrow_mut();
                            let FsmUnitEntry {
                                name,
                                runtime,
                                wires,
                            } = &mut reg.fsm[idx];
                            let mut ws = CtxWires { ctx, map: wires };
                            if let Err(e) =
                                runtime.step_controller_if_active(&mut ws, inputs_changed)
                            {
                                *error.borrow_mut() = Some(format!("unit {name} controller: {e}"));
                                live.set(live.get() - 1);
                                return ClockControl::Halt;
                            }
                            ClockControl::Continue
                        },
                    );
                }
            }
        }
        let id = UnitId(self.handles.len());
        self.handles.push(Handle::Fsm(idx));
        self.unit_names.insert(name.to_string(), id);
        id
    }

    /// Installs a batched bus link ([`BatchedLink`]): producer `put`
    /// calls enqueue into a vec-backed payload queue, whole batches cross
    /// the unit's wire-level handshake in a *single* bus transaction, and
    /// consumer `get` calls pop delivered values. Modules bind to it like
    /// any other unit and call its `put`/`get` services.
    ///
    /// `max_batch` bounds one bus transaction; `capacity` bounds total
    /// link occupancy (producer backpressure).
    ///
    /// # Errors
    ///
    /// Returns [`CosimError::Setup`] if `max_batch` or `capacity` is
    /// zero.
    pub fn add_batched_unit(
        &mut self,
        name: &str,
        data_ty: Type,
        max_batch: usize,
        capacity: usize,
    ) -> Result<UnitId, CosimError> {
        if max_batch == 0 || capacity == 0 {
            return Err(CosimError::Setup(format!(
                "batched link {name}: max_batch and capacity must be nonzero"
            )));
        }
        let link = BatchedLink::new(name, data_ty, max_batch, capacity);
        let wires: Vec<SignalId> = link
            .spec()
            .wires()
            .iter()
            .map(|w| {
                self.sim.add_signal(
                    format!("{name}.{}", w.name()),
                    w.ty().clone(),
                    w.init().clone(),
                )
            })
            .collect();
        let idx = {
            let mut reg = self.registry.borrow_mut();
            reg.batched.push(BatchedUnitEntry {
                name: name.to_string(),
                link,
                wires: wires.clone(),
            });
            reg.batched.len() - 1
        };
        match self.scheduling {
            UnitScheduling::Sharded { .. } => {
                self.add_shard_member(Handle::Batched(idx), wires);
            }
            UnitScheduling::PerUnit => {
                let registry = Rc::clone(&self.registry);
                let error = Rc::clone(&self.error);
                let clk = self.hw_clk;
                let watched = wires;
                let mut seen_events: Vec<u64> = vec![0; watched.len()];
                let live = Rc::clone(&self.live_clocked);
                live.set(live.get() + 1);
                self.sim
                    .add_clocked(format!("{name}.pump"), clk, Edge::Rising, move |ctx| {
                        if error.borrow().is_some() {
                            live.set(live.get() - 1);
                            return ClockControl::Halt;
                        }
                        let inputs_changed = wires_changed(ctx, &watched, &mut seen_events);
                        let mut reg = registry.borrow_mut();
                        let BatchedUnitEntry { name, link, wires } = &mut reg.batched[idx];
                        let mut ws = CtxWires { ctx, map: wires };
                        if let Err(e) = link.pump(&mut ws, inputs_changed) {
                            *error.borrow_mut() = Some(format!("batched link {name}: {e}"));
                            live.set(live.get() - 1);
                            return ClockControl::Halt;
                        }
                        ClockControl::Continue
                    });
            }
        }
        let id = UnitId(self.handles.len());
        self.handles.push(Handle::Batched(idx));
        self.unit_names.insert(name.to_string(), id);
        Ok(id)
    }

    /// Installs a native (platform) unit. Units with real background
    /// activity ([`NativeUnit::needs_step`]) are stepped once per HW
    /// cycle; purely call-driven units cost nothing per cycle under
    /// sharded scheduling.
    pub fn add_native_unit(&mut self, name: &str, unit: Box<dyn NativeUnit>) -> UnitId {
        let idx = {
            let mut reg = self.registry.borrow_mut();
            reg.native.push((name.to_string(), unit));
            reg.native.len() - 1
        };
        match self.scheduling {
            UnitScheduling::Sharded { .. } => {
                self.add_shard_member(Handle::Native(idx), vec![]);
            }
            UnitScheduling::PerUnit => {
                let registry = Rc::clone(&self.registry);
                let clk = self.hw_clk;
                self.live_clocked.set(self.live_clocked.get() + 1);
                self.sim
                    .add_clocked(format!("{name}.step"), clk, Edge::Rising, move |_ctx| {
                        registry.borrow_mut().native[idx].1.step();
                        ClockControl::Continue
                    });
            }
        }
        let id = UnitId(self.handles.len());
        self.handles.push(Handle::Native(idx));
        self.unit_names.insert(name.to_string(), id);
        id
    }

    /// Looks up a unit by instance name.
    #[must_use]
    pub fn unit(&self, name: &str) -> Option<UnitId> {
        self.unit_names.get(name).copied()
    }

    /// Adds a module whose ports get fresh kernel signals named
    /// `<module>.<PORT>`. `bindings` maps binding names to unit ids.
    ///
    /// # Errors
    ///
    /// Returns [`CosimError::Setup`] if a binding name is unknown or left
    /// unbound.
    pub fn add_module(
        &mut self,
        module: &Module,
        bindings: &[(&str, UnitId)],
    ) -> Result<CosimModuleId, CosimError> {
        let ports: Vec<SignalId> = module
            .ports()
            .iter()
            .map(|p| {
                self.sim.add_signal(
                    format!("{}.{}", module.name(), p.name()),
                    p.ty().clone(),
                    p.ty().default_value(),
                )
            })
            .collect();
        self.add_module_with_ports(module, bindings, ports)
    }

    /// Adds a module with an explicit port→signal map (used to share nets
    /// between the processes of one VHDL entity). `ports[i]` carries the
    /// signal for the module's `PortId(i)`.
    ///
    /// # Errors
    ///
    /// Returns [`CosimError::Setup`] on arity mismatch or unresolved
    /// bindings.
    pub fn add_module_with_ports(
        &mut self,
        module: &Module,
        bindings: &[(&str, UnitId)],
        ports: Vec<SignalId>,
    ) -> Result<CosimModuleId, CosimError> {
        if ports.len() != module.ports().len() {
            return Err(CosimError::Setup(format!(
                "module {}: {} signals provided for {} ports",
                module.name(),
                ports.len(),
                module.ports().len()
            )));
        }
        let mut handle_by_binding: Vec<Option<Handle>> = vec![None; module.bindings().len()];
        for (bname, uid) in bindings {
            let Some(bid) = module.binding_id(bname) else {
                return Err(CosimError::Setup(format!(
                    "module {} has no binding named {bname}",
                    module.name()
                )));
            };
            handle_by_binding[bid.index()] = Some(self.handles[uid.0]);
        }
        let mut resolved = Vec::with_capacity(handle_by_binding.len());
        for (i, h) in handle_by_binding.into_iter().enumerate() {
            match h {
                Some(h) => resolved.push(h),
                None => {
                    return Err(CosimError::Setup(format!(
                        "module {}: binding {} left unbound",
                        module.name(),
                        module.bindings()[i].name()
                    )))
                }
            }
        }

        let caller = CallerId(self.modules.len() as u64);
        let clk = match module.kind() {
            ModuleKind::Hardware => self.hw_clk,
            ModuleKind::Software => self.sw_clk,
        };
        let fsm: Fsm = module.fsm().clone();
        let vars: Vec<Value> = module.vars().iter().map(|v| v.init().clone()).collect();
        let var_tys: Vec<Type> = module.vars().iter().map(|v| v.ty().clone()).collect();
        let status = Rc::new(RefCell::new(ModuleStatus {
            state: fsm.state(fsm.initial()).name().to_string(),
            activations: 0,
        }));
        let vars_cell = Rc::new(RefCell::new(vars));
        let id = CosimModuleId(self.modules.len());
        self.modules.push((
            module.name().to_string(),
            Rc::clone(&status),
            Rc::clone(&vars_cell),
            module.clone(),
        ));

        let registry = Rc::clone(&self.registry);
        let error = Rc::clone(&self.error);
        let trace = Rc::clone(&self.trace);
        let mname = module.name().to_string();
        let mut exec = FsmExec::new(&fsm);
        let live = Rc::clone(&self.live_clocked);
        live.set(live.get() + 1);
        self.sim
            .add_clocked(mname.clone(), clk, Edge::Rising, move |ctx| {
                if error.borrow().is_some() {
                    live.set(live.get() - 1);
                    return ClockControl::Halt;
                }
                let mut vars = vars_cell.borrow_mut();
                let mut env = CosimEnv {
                    ctx,
                    ports: &ports,
                    vars: &mut vars,
                    var_tys: &var_tys,
                    registry: &registry,
                    bindings: &resolved,
                    caller,
                    trace: &trace,
                    source: &mname,
                };
                match exec.step(&fsm, &mut env) {
                    Ok(_) => {
                        let mut st = status.borrow_mut();
                        st.state = fsm.state(exec.current()).name().to_string();
                        st.activations += 1;
                        ClockControl::Continue
                    }
                    Err(e) => {
                        *error.borrow_mut() = Some(format!("module {mname}: {e}"));
                        live.set(live.get() - 1);
                        ClockControl::Halt
                    }
                }
            });
        Ok(id)
    }

    /// Assembles a validated [`cosma_core::System`]: every unit instance
    /// and module is added, with bindings resolved as declared.
    ///
    /// # Errors
    ///
    /// Returns [`CosimError::Setup`] on assembly problems.
    pub fn add_system(
        &mut self,
        sys: &cosma_core::System,
    ) -> Result<Vec<CosimModuleId>, CosimError> {
        let unit_ids: Vec<UnitId> = sys
            .units()
            .iter()
            .map(|u| self.add_fsm_unit(u.name(), u.spec().clone()))
            .collect();
        let mut module_ids = vec![];
        for (mi, module) in sys.modules().iter().enumerate() {
            let mut binds: Vec<(&str, UnitId)> = vec![];
            for (bi, b) in module.bindings().iter().enumerate() {
                let Some(ui) = sys.unit_index_for(mi, cosma_core::ids::BindingId::new(bi as u32))
                else {
                    return Err(CosimError::Setup(format!(
                        "system {}: module {} binding {} unbound",
                        sys.name(),
                        module.name(),
                        b.name()
                    )));
                };
                binds.push((b.name(), unit_ids[ui]));
            }
            module_ids.push(self.add_module(module, &binds)?);
        }
        Ok(module_ids)
    }

    /// Runs the co-simulation for a span.
    ///
    /// # Errors
    ///
    /// Returns [`CosimError::Runtime`] if any module or controller hit an
    /// evaluation error, or [`CosimError::Sim`] on kernel errors.
    pub fn run_for(&mut self, d: Duration) -> Result<(), CosimError> {
        self.sim.run_for(d)?;
        if let Some(msg) = self.error.borrow().clone() {
            return Err(CosimError::Runtime(msg));
        }
        Ok(())
    }

    /// Runs until an absolute deadline.
    ///
    /// # Errors
    ///
    /// Same as [`Cosim::run_for`].
    pub fn run_until(&mut self, t: SimTime) -> Result<(), CosimError> {
        self.sim.run_until(t)?;
        if let Some(msg) = self.error.borrow().clone() {
            return Err(CosimError::Runtime(msg));
        }
        Ok(())
    }

    /// Whether any kernel activity is still scheduled
    /// ([`Simulator::pending_activity`]). Once false, further runs can
    /// never change a signal: the backplane is quiescent for good (all
    /// processes halted or waiting forever).
    #[must_use]
    pub fn pending_activity(&self) -> bool {
        self.sim.pending_activity()
    }

    /// Run-to-quiescence: advances until `limit` or until the kernel has
    /// nothing scheduled, whichever comes first. Returns `true` when
    /// quiescence was reached — the final state is then the system's
    /// forever state, and harness loops (e.g.
    /// `run_to_completion`-style chunked polling) can stop early.
    ///
    /// The activation clock generators park once every
    /// backplane-registered clocked body (module, unit controller,
    /// native step) has halted, so an empty or fully-halted backplane
    /// really does quiesce. Processes registered directly through
    /// [`Cosim::sim_mut`] are not counted: they see clock edges only
    /// while at least one backplane body keeps the clocks alive.
    ///
    /// # Errors
    ///
    /// Same as [`Cosim::run_for`].
    pub fn run_to_quiescence(&mut self, limit: SimTime) -> Result<bool, CosimError> {
        self.run_until(limit)?;
        Ok(!self.sim.pending_activity())
    }

    /// Live status of a module.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this backplane.
    #[must_use]
    pub fn module_status(&self, id: CosimModuleId) -> ModuleStatus {
        self.modules[id.0].1.borrow().clone()
    }

    /// Finds a module id by name.
    #[must_use]
    pub fn find_module(&self, name: &str) -> Option<CosimModuleId> {
        self.modules
            .iter()
            .position(|(n, _, _, _)| n == name)
            .map(CosimModuleId)
    }

    /// Current value of a module variable, by name.
    #[must_use]
    pub fn module_var(&self, id: CosimModuleId, var: &str) -> Option<Value> {
        let (_, _, vars, module) = &self.modules[id.0];
        let vid = module.var_id(var)?;
        vars.borrow().get(vid.index()).cloned()
    }

    /// Statistics of a unit instance.
    #[must_use]
    pub fn unit_stats(&self, name: &str) -> Option<UnitStats> {
        let id = self.unit_names.get(name)?;
        let reg = self.registry.borrow();
        match self.handles[id.0] {
            Handle::Fsm(i) => Some(reg.fsm[i].runtime.stats().clone()),
            Handle::Native(i) => Some(reg.native[i].1.stats().clone()),
            Handle::Batched(i) => Some(reg.batched[i].link.stats()),
        }
    }

    /// Snapshot of the trace log.
    #[must_use]
    pub fn trace_log(&self) -> TraceLog {
        self.trace.borrow().clone()
    }

    /// Appends an external event to the trace log (used by testbench
    /// processes).
    pub fn trace_handle(&self) -> Rc<RefCell<TraceLog>> {
        Rc::clone(&self.trace)
    }
}

/// Diffs a wire set's monotone kernel event counts against the last
/// observation (updating it in place); `true` when any wire changed
/// since the previous call. This is the activation gate shared by the
/// per-unit clocked processes and the shard scheduler.
fn wires_changed(ctx: &ProcCtx<'_>, watched: &[SignalId], seen: &mut [u64]) -> bool {
    let mut changed = false;
    for (sig, last) in watched.iter().zip(seen.iter_mut()) {
        let n = ctx.event_count(*sig);
        changed |= n != *last;
        *last = n;
    }
    changed
}

/// One activation of a shard member at a rising clock edge. Updates the
/// member's `needs_clock` from the post-step stability proof.
fn step_shard_member(
    reg: &mut Registry,
    m: &mut ShardMember,
    ctx: &mut ProcCtx<'_>,
    inputs_changed: bool,
) -> Result<(), String> {
    match m.handle {
        Handle::Fsm(i) => {
            let FsmUnitEntry {
                name,
                runtime,
                wires,
            } = &mut reg.fsm[i];
            let mut ws = CtxWires { ctx, map: wires };
            runtime
                .step_controller_if_active(&mut ws, inputs_changed)
                .map_err(|e| format!("unit {name} controller: {e}"))?;
            m.needs_clock = !runtime.controller_stable();
        }
        Handle::Native(i) => {
            let (_, unit) = &mut reg.native[i];
            unit.step();
            m.needs_clock = unit.needs_step();
        }
        Handle::Batched(i) => {
            let BatchedUnitEntry { name, link, wires } = &mut reg.batched[i];
            let mut ws = CtxWires { ctx, map: wires };
            let active = link
                .pump(&mut ws, inputs_changed)
                .map_err(|e| format!("batched link {name}: {e}"))?;
            m.needs_clock = active;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosma_comm::{handshake_unit, FifoChannel};
    use cosma_core::{Expr, ModuleBuilder, Stmt};

    fn producer(values: &[i64]) -> Module {
        let mut p = ModuleBuilder::new("producer", ModuleKind::Software);
        let done = p.var("D", Type::Bool, Value::Bool(false));
        let idx = p.var("I", Type::INT16, Value::Int(0));
        let b = p.binding("iface", "hs");
        let put = p.state("PUT");
        let end = p.state("END");
        // Send values[I] until I == len; the helper requires an
        // arithmetic progression so the argument is base + I * step.
        let step = if values.len() > 1 {
            values[1] - values[0]
        } else {
            0
        };
        let arg = Expr::int(values[0]).add(Expr::var(idx).mul(Expr::int(step)));
        p.actions(
            put,
            vec![Stmt::Call(ServiceCall {
                binding: b,
                service: "put".into(),
                args: vec![arg],
                done: Some(done),
                result: None,
            })],
        );
        p.transition_with(
            put,
            Some(Expr::var(done).and(Expr::var(idx).ge(Expr::int(values.len() as i64 - 1)))),
            vec![],
            end,
        );
        p.transition_with(
            put,
            Some(Expr::var(done)),
            vec![Stmt::assign(idx, Expr::var(idx).add(Expr::int(1)))],
            put,
        );
        p.transition(end, None, end);
        p.initial(put);
        p.build().unwrap()
    }

    fn consumer(n: usize) -> Module {
        let mut c = ModuleBuilder::new("consumer", ModuleKind::Hardware);
        let done = c.var("D", Type::Bool, Value::Bool(false));
        let got = c.var("GOT", Type::INT16, Value::Int(0));
        let sum = c.var("SUM", Type::INT16, Value::Int(0));
        let count = c.var("N", Type::INT16, Value::Int(0));
        let b = c.binding("iface", "hs");
        let get = c.state("GET");
        let end = c.state("END");
        c.actions(
            get,
            vec![Stmt::Call(ServiceCall {
                binding: b,
                service: "get".into(),
                args: vec![],
                done: Some(done),
                result: Some(got),
            })],
        );
        c.transition_with(
            get,
            Some(Expr::var(done).and(Expr::var(count).ge(Expr::int(n as i64 - 1)))),
            vec![
                Stmt::assign(sum, Expr::var(sum).add(Expr::var(got))),
                Stmt::Trace("recv".into(), vec![Expr::var(got)]),
            ],
            end,
        );
        c.transition_with(
            get,
            Some(Expr::var(done)),
            vec![
                Stmt::assign(sum, Expr::var(sum).add(Expr::var(got))),
                Stmt::assign(count, Expr::var(count).add(Expr::int(1))),
                Stmt::Trace("recv".into(), vec![Expr::var(got)]),
            ],
            get,
        );
        c.transition(end, None, end);
        c.initial(get);
        c.build().unwrap()
    }

    #[test]
    fn sw_to_hw_exchange_over_handshake() {
        let mut cosim = Cosim::new(CosimConfig::default());
        let link = cosim.add_fsm_unit("link", handshake_unit("hs", Type::INT16));
        let p = producer(&[10, 20, 30]);
        let c = consumer(3);
        cosim.add_module(&p, &[("iface", link)]).unwrap();
        let cid = cosim.add_module(&c, &[("iface", link)]).unwrap();
        cosim.run_for(Duration::from_us(50)).unwrap();
        assert_eq!(cosim.module_status(cid).state, "END");
        assert_eq!(cosim.module_var(cid, "SUM"), Some(Value::Int(60)));
        // Trace captured all three receptions in order.
        let log = cosim.trace_log();
        let recvs: Vec<i64> = log
            .with_label("recv")
            .map(|e| e.values[0].as_int().unwrap())
            .collect();
        assert_eq!(recvs, vec![10, 20, 30]);
        // Stats flowed through.
        let stats = cosim.unit_stats("link").unwrap();
        assert_eq!(stats.services["put"].completions, 3);
        assert_eq!(stats.services["get"].completions, 3);
        assert!(stats.controller_steps > 0);
    }

    #[test]
    fn idle_controllers_are_gated_per_unit() {
        // Under the legacy per-unit scheduling: after the 3-value
        // exchange completes, the link's wires stop changing and its
        // controller self-loops without writes — from then on the
        // backplane skips its activations entirely.
        let mut cosim = Cosim::new(CosimConfig::default());
        cosim.set_unit_scheduling(UnitScheduling::PerUnit).unwrap();
        let link = cosim.add_fsm_unit("link", handshake_unit("hs", Type::INT16));
        let p = producer(&[10, 20, 30]);
        let c = consumer(3);
        cosim.add_module(&p, &[("iface", link)]).unwrap();
        let cid = cosim.add_module(&c, &[("iface", link)]).unwrap();
        cosim.run_for(Duration::from_us(200)).unwrap();
        assert_eq!(cosim.module_status(cid).state, "END");
        assert_eq!(cosim.module_var(cid, "SUM"), Some(Value::Int(60)));
        let stats = cosim.unit_stats("link").unwrap();
        assert_eq!(stats.services["put"].completions, 3);
        assert!(
            stats.controller_steps > 0,
            "the exchange required real steps"
        );
        assert!(
            stats.controller_skips > stats.controller_steps,
            "a long idle tail must be dominated by skipped activations \
             (steps {}, skips {})",
            stats.controller_steps,
            stats.controller_skips
        );
    }

    #[test]
    fn idle_shards_go_dormant() {
        // Under sharded scheduling the idle tail is even cheaper: once
        // the link's controller proves itself stable, its whole shard
        // drops clock sensitivity. Controller steps stall AND the shard
        // process itself stops being woken.
        let mut cosim = Cosim::new(CosimConfig::default());
        let link = cosim.add_fsm_unit("link", handshake_unit("hs", Type::INT16));
        let p = producer(&[10, 20, 30]);
        let c = consumer(3);
        cosim.add_module(&p, &[("iface", link)]).unwrap();
        let cid = cosim.add_module(&c, &[("iface", link)]).unwrap();
        cosim.run_for(Duration::from_us(20)).unwrap();
        assert_eq!(cosim.module_status(cid).state, "END");
        assert_eq!(cosim.module_var(cid, "SUM"), Some(Value::Int(60)));
        let steps_after_exchange = cosim.unit_stats("link").unwrap().controller_steps;
        assert!(steps_after_exchange > 0, "the exchange required steps");
        let shard_runs_after_exchange = cosim.shard_stats().shard_runs;

        // A long idle tail: ~2000 further HW cycles.
        cosim.run_for(Duration::from_us(200)).unwrap();
        let stats = cosim.unit_stats("link").unwrap();
        assert_eq!(
            stats.controller_steps, steps_after_exchange,
            "idle controller never steps again"
        );
        let shard = cosim.shard_stats();
        assert_eq!(shard.shards, 1);
        assert_eq!(shard.dormant_shards, 1, "the shard parked itself");
        assert_eq!(
            shard.shard_runs, shard_runs_after_exchange,
            "a dormant shard is not even woken by clock edges"
        );
    }

    #[test]
    fn batched_unit_in_backplane() {
        // A producer/consumer pair over a batched bus link: values are
        // queued per activation but cross the bus in whole batches — far
        // fewer wire handshakes than values.
        let mut cosim = Cosim::new(CosimConfig::default());
        let link = cosim.add_batched_unit("bus", Type::INT16, 16, 64).unwrap();
        let p = producer(&[10, 20, 30, 40]);
        let c = consumer(4);
        cosim.add_module(&p, &[("iface", link)]).unwrap();
        let cid = cosim.add_module(&c, &[("iface", link)]).unwrap();
        cosim.run_for(Duration::from_us(50)).unwrap();
        assert_eq!(cosim.module_status(cid).state, "END");
        assert_eq!(cosim.module_var(cid, "SUM"), Some(Value::Int(100)));
        let stats = cosim.unit_stats("bus").unwrap();
        assert_eq!(stats.services["put"].completions, 4);
        assert_eq!(stats.services["get"].completions, 4);
        assert_eq!(stats.batched_values, 4);
        assert!(
            stats.batches < 4,
            "4 values must need fewer than 4 bus transactions (got {})",
            stats.batches
        );
        assert!(stats.max_batch_len >= 2);
    }

    #[test]
    fn batched_unit_agrees_across_schedulings() {
        // The same batched topology under per-unit and sharded scheduling
        // delivers identical values and identical traces.
        fn run(scheduling: UnitScheduling) -> (Option<Value>, String, Vec<i64>) {
            let mut cosim = Cosim::new(CosimConfig::default());
            cosim.set_unit_scheduling(scheduling).unwrap();
            let link = cosim.add_batched_unit("bus", Type::INT16, 4, 32).unwrap();
            let p = producer(&[5, 6, 7]);
            let c = consumer(3);
            cosim.add_module(&p, &[("iface", link)]).unwrap();
            let cid = cosim.add_module(&c, &[("iface", link)]).unwrap();
            cosim.run_for(Duration::from_us(40)).unwrap();
            let recvs = cosim
                .trace_log()
                .with_label("recv")
                .map(|e| e.values[0].as_int().unwrap())
                .collect();
            (
                cosim.module_var(cid, "SUM"),
                cosim.module_status(cid).state,
                recvs,
            )
        }
        let sharded = run(UnitScheduling::Sharded { shard_size: 16 });
        let per_unit = run(UnitScheduling::PerUnit);
        assert_eq!(sharded, per_unit);
        assert_eq!(sharded.0, Some(Value::Int(18)));
        assert_eq!(sharded.1, "END");
        assert_eq!(sharded.2, vec![5, 6, 7]);
    }

    #[test]
    fn scheduling_locked_after_first_unit() {
        let mut cosim = Cosim::new(CosimConfig::default());
        cosim.add_fsm_unit("link", handshake_unit("hs", Type::INT16));
        let err = cosim
            .set_unit_scheduling(UnitScheduling::PerUnit)
            .unwrap_err();
        assert!(matches!(err, CosimError::Setup(_)));
    }

    #[test]
    fn bad_batched_config_rejected() {
        let mut cosim = Cosim::new(CosimConfig::default());
        assert!(matches!(
            cosim.add_batched_unit("b", Type::INT16, 0, 4),
            Err(CosimError::Setup(_))
        ));
        assert!(matches!(
            cosim.add_batched_unit("b", Type::INT16, 4, 0),
            Err(CosimError::Setup(_))
        ));
    }

    #[test]
    fn many_idle_units_fill_multiple_dormant_shards() {
        let mut cosim = Cosim::new(CosimConfig::default());
        cosim
            .set_unit_scheduling(UnitScheduling::Sharded { shard_size: 8 })
            .unwrap();
        for k in 0..20 {
            cosim.add_fsm_unit(&format!("quiet{k}"), handshake_unit("hs", Type::INT16));
        }
        // One live module keeps the clocks running.
        let mut b = ModuleBuilder::new("m", ModuleKind::Software);
        let s = b.state("S");
        b.transition(s, None, s);
        b.initial(s);
        cosim.add_module(&b.build().unwrap(), &[]).unwrap();
        cosim.run_for(Duration::from_us(100)).unwrap();
        let shard = cosim.shard_stats();
        assert_eq!(shard.shards, 3, "20 units at shard size 8");
        assert_eq!(shard.dormant_shards, 3, "all idle, all parked");
        // Dormant shards were woken at most a handful of times while the
        // clock toggled ~2000 times.
        assert!(
            shard.shard_runs < 30,
            "idle shards must not track the clock (runs {})",
            shard.shard_runs
        );
    }

    #[test]
    fn quiescence_reached_after_last_timer_cancelled() {
        // Regression: a lazily-cancelled timer (dead heap entry) must not
        // stall run_to_quiescence. A testbench process holds the only
        // live timer; an event wake cancels it and the process parks.
        let mut cosim = Cosim::new(CosimConfig::default());
        let kick = cosim.sim_mut().add_bit("KICK");
        let mut woken = false;
        cosim.sim_mut().add_process(
            "waiter",
            FnProcess::new(move |ctx| {
                if ctx.event(kick) {
                    woken = true;
                }
                if woken {
                    Wait::Forever
                } else {
                    Wait::EventOrTimeout(vec![kick], Duration::from_us(500))
                }
            }),
        );
        cosim.run_until(SimTime::ZERO).unwrap();
        assert!(cosim.pending_activity(), "the 500us timer is live");
        cosim.sim_mut().poke(kick, Value::Bit(cosma_core::Bit::One));
        let quiesced = cosim.run_to_quiescence(SimTime::from_ns(10_000)).unwrap();
        assert!(
            quiesced,
            "dead timer entry at 500us must not report phantom pending work"
        );
        assert!(!cosim.pending_activity());
        assert_eq!(
            cosim.sim().now(),
            SimTime::from_ns(10_000),
            "run advanced to the limit, not to the dead deadline"
        );
    }

    #[test]
    fn empty_backplane_quiesces_immediately() {
        // No clocked bodies: the activation clock generators park at
        // elaboration, so the kernel truly runs dry.
        let mut cosim = Cosim::new(CosimConfig::default());
        let quiesced = cosim.run_to_quiescence(SimTime::from_ns(1000)).unwrap();
        assert!(quiesced, "nothing is clocked, so nothing is pending");
        assert!(!cosim.pending_activity());
    }

    #[test]
    fn populated_backplane_never_quiesces_but_reports_it() {
        let mut b = ModuleBuilder::new("m", ModuleKind::Software);
        let s = b.state("S");
        b.transition(s, None, s);
        b.initial(s);
        let mut cosim = Cosim::new(CosimConfig::default());
        cosim.add_module(&b.build().unwrap(), &[]).unwrap();
        assert!(cosim.pending_activity(), "elaboration is owed");
        let quiesced = cosim.run_to_quiescence(SimTime::from_ns(1000)).unwrap();
        assert!(
            !quiesced,
            "a live module keeps the activation clocks running"
        );
        assert!(
            cosim.pending_activity(),
            "activation clocks keep timers armed"
        );
        assert_eq!(cosim.sim().now(), SimTime::from_ns(1000));
    }

    #[test]
    fn native_unit_in_backplane() {
        let mut cosim = Cosim::new(CosimConfig::default());
        let link = cosim.add_native_unit("fifo", Box::new(FifoChannel::new("fifo", 8)));
        let p = producer(&[5, 6]);
        let c = consumer(2);
        cosim.add_module(&p, &[("iface", link)]).unwrap();
        let cid = cosim.add_module(&c, &[("iface", link)]).unwrap();
        cosim.run_for(Duration::from_us(20)).unwrap();
        assert_eq!(cosim.module_var(cid, "SUM"), Some(Value::Int(11)));
    }

    #[test]
    fn one_activation_per_sw_cycle() {
        // A 3-state chain takes exactly 3 SW cycles to reach END.
        let mut b = ModuleBuilder::new("chain", ModuleKind::Software);
        let s1 = b.state("S1");
        let s2 = b.state("S2");
        let s3 = b.state("S3");
        b.transition(s1, None, s2);
        b.transition(s2, None, s3);
        b.transition(s3, None, s3);
        b.initial(s1);
        let m = b.build().unwrap();
        let mut cosim = Cosim::new(CosimConfig {
            hw_cycle: Duration::from_ns(100),
            sw_cycle: Duration::from_ns(100),
        });
        let id = cosim.add_module(&m, &[]).unwrap();
        // Edges at 0, 100, 200: exactly 3 activations by t=250.
        cosim.run_for(Duration::from_ns(250)).unwrap();
        let st = cosim.module_status(id);
        assert_eq!(st.activations, 3);
        assert_eq!(st.state, "S3");
    }

    #[test]
    fn sw_slower_than_hw() {
        let mut b = ModuleBuilder::new("swm", ModuleKind::Software);
        let s = b.state("S");
        b.transition(s, None, s);
        b.initial(s);
        let sw = b.build().unwrap();
        let mut b = ModuleBuilder::new("hwm", ModuleKind::Hardware);
        let s = b.state("S");
        b.transition(s, None, s);
        b.initial(s);
        let hw = b.build().unwrap();
        let mut cosim = Cosim::new(CosimConfig {
            hw_cycle: Duration::from_ns(100),
            sw_cycle: Duration::from_ns(400),
        });
        let swid = cosim.add_module(&sw, &[]).unwrap();
        let hwid = cosim.add_module(&hw, &[]).unwrap();
        cosim.run_for(Duration::from_us(4)).unwrap();
        let sw_act = cosim.module_status(swid).activations;
        let hw_act = cosim.module_status(hwid).activations;
        assert!(hw_act >= 3 * sw_act, "hw {hw_act} vs sw {sw_act}");
    }

    #[test]
    fn runtime_errors_surface() {
        let mut b = ModuleBuilder::new("crash", ModuleKind::Software);
        let x = b.var("X", Type::INT16, Value::Int(1));
        let s = b.state("S");
        b.actions(s, vec![Stmt::assign(x, Expr::var(x).div(Expr::int(0)))]);
        b.transition(s, None, s);
        b.initial(s);
        let m = b.build().unwrap();
        let mut cosim = Cosim::new(CosimConfig::default());
        cosim.add_module(&m, &[]).unwrap();
        let err = cosim.run_for(Duration::from_us(1)).unwrap_err();
        assert!(matches!(err, CosimError::Runtime(_)));
        assert!(err.to_string().contains("crash"));
    }

    #[test]
    fn unbound_binding_rejected() {
        let mut b = ModuleBuilder::new("m", ModuleKind::Software);
        b.binding("iface", "hs");
        let s = b.state("S");
        b.transition(s, None, s);
        b.initial(s);
        let m = b.build().unwrap();
        let mut cosim = Cosim::new(CosimConfig::default());
        let err = cosim.add_module(&m, &[]).unwrap_err();
        assert!(matches!(err, CosimError::Setup(_)));
    }

    #[test]
    fn add_system_end_to_end() {
        use cosma_core::SystemBuilder;
        let mut sysb = SystemBuilder::new("demo");
        let pm = sysb.module(producer(&[1, 2]));
        let cm = sysb.module(consumer(2));
        let u = sysb.unit("link", handshake_unit("hs", Type::INT16));
        sysb.bind(pm, "iface", u).unwrap();
        sysb.bind(cm, "iface", u).unwrap();
        let sys = sysb.build().unwrap();

        let mut cosim = Cosim::new(CosimConfig::default());
        let ids = cosim.add_system(&sys).unwrap();
        cosim.run_for(Duration::from_us(40)).unwrap();
        assert_eq!(cosim.module_var(ids[1], "SUM"), Some(Value::Int(3)));
    }

    #[test]
    fn module_port_signals_created() {
        let mut b = ModuleBuilder::new("pm", ModuleKind::Hardware);
        let port = b.port("LED", cosma_core::PortDir::Out, Type::Bit);
        let s = b.state("S");
        b.actions(s, vec![Stmt::drive(port, Expr::bit(cosma_core::Bit::One))]);
        b.transition(s, None, s);
        b.initial(s);
        let m = b.build().unwrap();
        let mut cosim = Cosim::new(CosimConfig::default());
        cosim.add_module(&m, &[]).unwrap();
        cosim.run_for(Duration::from_us(1)).unwrap();
        let sig = cosim.sim().find_signal("pm.LED").expect("signal exists");
        assert_eq!(cosim.sim().value(sig), &Value::Bit(cosma_core::Bit::One));
    }
}
