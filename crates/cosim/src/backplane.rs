//! The co-simulation backplane: modules, communication units and clocks
//! assembled over the discrete-event kernel.
//!
//! * Hardware modules activate on each rising edge of the HW clock;
//!   software modules on each rising edge of the SW activation clock.
//!   Every activation executes exactly one FSM transition — the paper's
//!   synchronization rule.
//! * FSM communication units live on kernel signals (one per wire).
//!   Service calls from modules step the caller's protocol session
//!   against those signals — the runtime equivalent of linking the SW
//!   *simulation* view (Fig. 3b).
//! * All stepping — module activations, unit controller steps, native
//!   steps, batched-link pumping — is owned by one *activation
//!   scheduler* ([`SchedulingConfig`]). By default both modules and
//!   units are grouped into *shards*: each shard is one kernel process
//!   whose members carry per-member activation state. A member that
//!   proves itself stable is **parked** — removed from the shard's
//!   active set and re-armed only by events on its *watch wires* — and
//!   a shard whose members are all parked goes dormant (drops its clock
//!   sensitivity entirely), so idle regions of the backplane cost
//!   nothing per clock edge.
//! * A module whose FSM is blocked on a pending service call parks on
//!   the bound unit's **completion wires** (the read-set of the blocked
//!   protocol): a consumer blocked on `get` against an empty link costs
//!   zero activations until the producer's `put` lands.
//! * The legacy one-kernel-process-per-unit and per-module paths
//!   survive as [`UnitScheduling::PerUnit`] /
//!   [`ModuleScheduling::PerModule`] for ablation, and parking can be
//!   disabled wholesale with [`SchedulingConfig::park_blocked`].
//! * Batched bus links ([`Cosim::add_batched_unit`]) coalesce per-value
//!   transfers into one wire handshake per (adaptively sized) batch.

use crate::trace::TraceLog;
use cosma_comm::{
    BatchedLink, BatchedLinkState, BusTiming, CallerId, FsmUnitRuntime, FsmUnitState, NativeUnit,
    NativeUnitState, UnitStats, WireStore,
};
use cosma_core::comm::CommUnitSpec;
use cosma_core::ids::{PortId, VarId};
use cosma_core::{
    Env, EvalError, FsmExec, Module, ModuleKind, ReadEnv, ServiceCall, ServiceOutcome, Type, Value,
};
use cosma_sim::{
    ClockControl, ClockRatio, Duration, Edge, FnProcess, ProcCtx, SignalId, SimError, SimState,
    SimTime, Simulator, Wait,
};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

/// Caller identity used by boundary exporter/injector processes when
/// calling `get`/`put` on their half-link. Distinct from any module's
/// caller id (modules use small indices) so per-caller link accounting
/// never conflates a boundary with a real module.
pub(crate) const BOUNDARY_CALLER: CallerId = CallerId(u64::MAX);

/// How communication-unit bookkeeping (controller steps, native steps,
/// batched-link pumping) is scheduled on the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnitScheduling {
    /// One clocked kernel process per unit, activated on every HW clock
    /// edge. The pre-sharding path, kept as an ablation baseline — per
    /// edge it costs one process wakeup per unit even when every unit is
    /// provably idle.
    PerUnit,
    /// Units grouped into shards by **hashed id** (so creation-order
    /// runs of hot units do not pile into one shard); each shard is one
    /// kernel process with an active/parked member split. Provably
    /// stable members are parked out of the active set and re-armed
    /// through the kernel's inverted sensitivity index when one of
    /// their wires events, so idle units cost nothing per clock edge —
    /// even inside a shard kept awake by a hot member.
    Sharded {
        /// Target units per shard (shards are opened so the *average*
        /// fill is `shard_size`; hashed placement makes individual
        /// shards vary around it).
        shard_size: usize,
    },
}

impl Default for UnitScheduling {
    fn default() -> Self {
        UnitScheduling::Sharded {
            shard_size: DEFAULT_SHARD_SIZE,
        }
    }
}

/// How module activations are scheduled on the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModuleScheduling {
    /// One kernel process per module, activated on every rising edge of
    /// its kind's activation clock. The classic path, kept for ablation.
    /// (Parking still applies unless disabled: a blocked module's
    /// process swaps its clock sensitivity for its watch wires.)
    PerModule,
    /// Modules grouped into shards **in creation order** (service calls
    /// mutate unit state immediately, so the global step order must
    /// match the per-module path — see the module docs); each shard is
    /// one kernel process stepping its active members on their clock's
    /// rising edges. Parked members cost nothing until a watch wire
    /// events.
    Sharded {
        /// Maximum modules per shard.
        shard_size: usize,
    },
}

impl Default for ModuleScheduling {
    fn default() -> Self {
        ModuleScheduling::Sharded {
            shard_size: DEFAULT_SHARD_SIZE,
        }
    }
}

/// How module service calls are applied to the bound units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallApplication {
    /// Calls mutate unit state the moment the module executes them. The
    /// classic path: correct only while module steps run in creation
    /// order, which forces creation-order module placement and fully
    /// serial stepping. Kept for ablation and as the equivalence oracle.
    Immediate,
    /// Two-phase step/commit: during the *step* phase a module
    /// activation runs against the cycle-start snapshot — service calls
    /// answer speculative outcomes ([`cosma_comm::FsmUnitRuntime::peek_call`])
    /// and are buffered as [`cosma_core::DeferredCall`] records together
    /// with every other effect (variable writes, port drives, traces).
    /// The *commit* phase then replays all buffered calls against the
    /// real units in `(module id, call index)` order, validating each
    /// actual outcome against the speculation; an activation whose
    /// speculation fails (or that called a wire-invisible native unit)
    /// is re-executed sequentially inside the commit, which restores
    /// exact immediate semantics. Step order therefore no longer
    /// matters, which is what allows hashed module placement and
    /// multi-threaded stepping ([`Parallelism::Threads`]).
    Deferred,
}

/// How many OS threads the deferred step phase fans out over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parallelism {
    /// Step phase runs inline on the kernel thread (default).
    Off,
    /// Step phase fans the cycle's module activations out over up to `n`
    /// threads total: the kernel thread plus `n - 1` pooled workers.
    /// Speculation is pure (read-only against the snapshot), so
    /// threading cannot change results — the sequential commit phase is
    /// the only mutator. Requires [`CallApplication::Deferred`].
    ///
    /// `Threads(1)` engages the speculative step/commit regime (scratch
    /// arenas, work-stealing chunks) on the kernel thread alone, with
    /// no worker handoff at all — useful for exercising or profiling
    /// the two-phase machinery without OS-thread traffic.
    Threads(usize),
}

/// How module shard members are placed into shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModulePlacement {
    /// Fill shards in creation order. Mandatory under
    /// [`CallApplication::Immediate`] (the global step order must match
    /// the per-module path); supported under `Deferred` for ablation.
    CreationOrder,
    /// Hash module ids over the open shards, exactly like unit
    /// placement, so hot creation-order runs don't pile into one shard.
    /// Requires [`CallApplication::Deferred`] — the commit phase
    /// restores the deterministic global order regardless of placement.
    Hashed,
}

/// How shard members of different clock domains may be placed relative
/// to each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DomainPlacement {
    /// Shards never mix clock domains (the only supported placement):
    /// every shard pool — unit shards, immediate module shards, the
    /// two-phase driver's shards — is split per domain, so a shard's
    /// members always share one activation clock pair and one
    /// [`ClockDemand`] ledger.
    #[default]
    Isolated,
    /// Request mixed-domain shards. Unsupported: a shard's park/demand
    /// accounting is keyed to one domain's clock generators, so
    /// [`Cosim::add_clock_domain`] rejects this placement with a typed
    /// [`CosimError::Setup`] as soon as a second domain would exist.
    /// Kept as an explicit knob (rather than silently ignoring the
    /// request) so configuration intent always round-trips.
    Mixed,
}

/// The activation scheduler's configuration: how units and modules are
/// dispatched, how service calls are applied, and whether
/// provably-stable FSMs are parked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulingConfig {
    /// Unit dispatch (controller steps, native steps, batched pumping).
    pub units: UnitScheduling,
    /// Module dispatch (FSM activations).
    pub modules: ModuleScheduling,
    /// Whether to park provably-stable FSMs (default `true`). A module
    /// activation that changed nothing — same state, no effective
    /// variable writes or port drives, every service call pending *and*
    /// a provable no-op on the unit side — would repeat identically
    /// every cycle; with parking on, the module instead sleeps until an
    /// event on its ports or on the blocked services' completion wires.
    ///
    /// Parking is invisible to signal traces, trace logs, final states
    /// and `ModuleStatus.activations` *across scheduler paths* (sharded
    /// and per-module park identically). It does suppress the no-op
    /// activations themselves, so activation counts differ from a
    /// `park_blocked: false` run while a module is blocked.
    pub park_blocked: bool,
    /// Service-call application: two-phase step/commit (default) or
    /// immediate (the PR 3 baseline, kept for ablation).
    pub calls: CallApplication,
    /// Module shard placement (hashed by default; creation-order fill is
    /// mandatory under immediate calls).
    pub placement: ModulePlacement,
    /// Step-phase threading (deferred calls only; default off).
    pub parallelism: Parallelism,
    /// Minimum stepping-set size before a deferred cycle speculates
    /// (and, with [`Parallelism::Threads`], fans out to the worker
    /// pool). Cycles below the threshold — or any cycle when no pool
    /// exists — step directly in `(module id)` order instead: the
    /// same deterministic semantics without the buffering cost.
    /// Defaults to [`STEP_FANOUT_MIN`]; tests lower it to force the
    /// speculative machinery onto small backplanes.
    pub step_fanout_min: usize,
    /// Clock-domain shard placement (see [`DomainPlacement`]). Only
    /// [`DomainPlacement::Isolated`] is supported with more than one
    /// domain; [`DomainPlacement::Mixed`] makes
    /// [`Cosim::add_clock_domain`] fail with a typed setup error.
    pub domains: DomainPlacement,
}

impl Default for SchedulingConfig {
    fn default() -> Self {
        SchedulingConfig::sharded()
    }
}

impl SchedulingConfig {
    /// The default configuration: sharded units, sharded modules placed
    /// by hashed id, two-phase (deferred) call application, parking
    /// enabled, no step-phase threading.
    #[must_use]
    pub fn sharded() -> Self {
        SchedulingConfig {
            units: UnitScheduling::default(),
            modules: ModuleScheduling::default(),
            park_blocked: true,
            calls: CallApplication::Deferred,
            placement: ModulePlacement::Hashed,
            parallelism: Parallelism::Off,
            step_fanout_min: STEP_FANOUT_MIN,
            domains: DomainPlacement::Isolated,
        }
    }

    /// The PR 3 baseline: sharded units and modules with parking, but
    /// immediate call application (creation-order module placement,
    /// serial stepping). The equivalence oracle for the deferred path.
    #[must_use]
    pub fn immediate() -> Self {
        SchedulingConfig {
            calls: CallApplication::Immediate,
            placement: ModulePlacement::CreationOrder,
            ..SchedulingConfig::sharded()
        }
    }

    /// The PR-2-era baseline: one process per unit and per module,
    /// stepped on every clock edge, no parking. Kept for ablation.
    #[must_use]
    pub fn legacy() -> Self {
        SchedulingConfig {
            units: UnitScheduling::PerUnit,
            modules: ModuleScheduling::PerModule,
            park_blocked: false,
            calls: CallApplication::Immediate,
            placement: ModulePlacement::CreationOrder,
            parallelism: Parallelism::Off,
            step_fanout_min: STEP_FANOUT_MIN,
            domains: DomainPlacement::Isolated,
        }
    }

    /// Returns this configuration with the step phase fanned out over
    /// `n` worker threads (implies deferred calls stay required).
    #[must_use]
    pub fn with_threads(mut self, n: usize) -> Self {
        self.parallelism = Parallelism::Threads(n);
        self
    }

    /// Setup-time validation of the configuration's internal
    /// consistency.
    fn validate(&self) -> Result<(), CosimError> {
        if matches!(self.units, UnitScheduling::Sharded { shard_size: 0 })
            || matches!(self.modules, ModuleScheduling::Sharded { shard_size: 0 })
        {
            return Err(CosimError::Setup("shard size must be nonzero".to_string()));
        }
        if matches!(self.parallelism, Parallelism::Threads(0)) {
            return Err(CosimError::Setup(
                "parallelism: thread count must be nonzero".to_string(),
            ));
        }
        if self.step_fanout_min == 0 {
            return Err(CosimError::Setup(
                "step_fanout_min must be nonzero".to_string(),
            ));
        }
        if self.calls == CallApplication::Immediate {
            if self.placement == ModulePlacement::Hashed {
                return Err(CosimError::Setup(
                    "hashed module placement requires deferred call application \
                     (immediate calls pin the global step order to creation order)"
                        .to_string(),
                ));
            }
            if self.parallelism != Parallelism::Off {
                return Err(CosimError::Setup(
                    "threaded stepping requires deferred call application".to_string(),
                ));
            }
        }
        if self.calls == CallApplication::Deferred
            && matches!(self.modules, ModuleScheduling::PerModule)
        {
            return Err(CosimError::Setup(
                "deferred call application requires sharded module scheduling".to_string(),
            ));
        }
        Ok(())
    }
}

/// Default members per shard.
pub const DEFAULT_SHARD_SIZE: usize = 16;

/// Aggregate statistics of the activation scheduler.
///
/// Shard counters are zero under the per-unit/per-module paths; the
/// park/resume counters cover *both* paths (per-module processes park
/// too, by swapping their clock sensitivity for their watch wires).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Number of shards (unit shards + module shards).
    pub shards: usize,
    /// Shards currently dormant (no active member, no clock
    /// sensitivity).
    pub dormant_shards: usize,
    /// Total shard-process activations.
    pub shard_runs: u64,
    /// Unit-member step executions (controller steps, native steps,
    /// pumps).
    pub units_stepped: u64,
    /// Member steps avoided at a clock edge because the member was
    /// parked.
    pub units_skipped: u64,
    /// Dormant-shard wakeups caused by a member watch-wire event.
    pub wire_wakeups: u64,
    /// Watch-wire event probes spent re-arming parked members on shard
    /// wakeups — the cost of the parked rescan loop.
    pub watch_probes: u64,
    /// Module activations executed through the scheduler (both paths).
    pub modules_stepped: u64,
    /// Park transitions: members (modules or units) removed from their
    /// scheduler's active set after proving themselves stable.
    pub members_parked: u64,
    /// Resume transitions: parked members re-armed by a watch-wire
    /// event.
    pub members_resumed: u64,
    /// Members currently parked (across shards and per-module
    /// processes).
    pub parked_now: usize,
    /// Deferred calls applied by commit phases
    /// ([`CallApplication::Deferred`] only).
    pub commit_calls: u64,
    /// Activations whose speculation failed validation (or that called a
    /// wire-invisible native unit) and were re-executed sequentially in
    /// the commit phase.
    pub commit_fallbacks: u64,
    /// Per-worker stepped-activation counts of the threaded step phase;
    /// empty under [`Parallelism::Off`]. `step_thread_runs[i]` is the
    /// number of module activations speculated on worker `i`.
    pub step_thread_runs: Vec<u64>,
    /// Scratch-arena and work-stealing accounting of the threaded step
    /// phase; all-zero outside the speculative regime.
    pub scratch: ScratchStats,
}

/// Allocation-reuse and load-balance counters of the threaded step
/// phase's per-worker scratch arenas ([`ShardStats::scratch`]).
///
/// In steady state `arena_reuses` dominates `arena_acquires`: every
/// speculative activation runs inside a recycled result shell (pooled
/// call-argument buffers, peek vectors, trace buffers, the
/// copy-on-write var overlay), so the step phase stops allocating once
/// the pools are warm. `steals` counts work chunks a worker claimed
/// beyond its fair share of the cycle's stepping set — nonzero steals
/// mean the shared-cursor chunking actually rebalanced skewed
/// speculation costs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScratchStats {
    /// Shell acquisitions that had to allocate a fresh shell (cold
    /// pool).
    pub arena_acquires: u64,
    /// Shell acquisitions served from a worker's free-list — the
    /// allocation-free steady state.
    pub arena_reuses: u64,
    /// High-water mark of approximate bytes retained across all
    /// recycled shells after a commit phase.
    pub bytes_high_water: u64,
    /// Work chunks claimed off the shared step-phase cursor.
    pub chunks: u64,
    /// Chunks claimed by a worker already past its fair share of the
    /// stepping set (len / workers) — load actively rebalanced away
    /// from a slow worker.
    pub steals: u64,
    /// Current adaptive work-stealing chunk size (zero until the first
    /// speculative cycle). Starts at [`STEP_CHUNK_INIT`], halves on a
    /// cycle that had to steal (finer grains rebalance skew better) and
    /// doubles on a steal-free cycle with plenty of chunks (coarser
    /// grains contend the shared cursor less).
    pub chunk_now: u64,
    /// Cycles that shrank the chunk size (a steal was observed).
    pub chunk_shrinks: u64,
    /// Cycles that grew the chunk size (steal-free with spare chunks).
    pub chunk_grows: u64,
    /// Oversized speculation shells dropped back to the allocator after
    /// commit instead of being recycled: a shell whose retained pools
    /// grew far past the running per-shell average (a trace burst, a
    /// pathological activation) is reclaimed so one outlier cannot pin
    /// the arena's [`ScratchStats::bytes_high_water`] forever.
    pub shells_shrunk: u64,
}

/// Park/resume accounting shared by every scheduler path.
#[derive(Debug, Default)]
struct ParkCounters {
    parked: Cell<u64>,
    resumed: Cell<u64>,
    parked_now: Cell<usize>,
    modules_stepped: Cell<u64>,
}

/// Clock-edge demand: how many clocked bodies (module activations, unit
/// controllers, native steps) currently need clock edges. Parked and
/// halted bodies count zero, so a *fully parked* backplane stops its
/// activation clock generators entirely — simulated time stops
/// advancing and [`Cosim::run_to_quiescence`] can return early on
/// deadlocked or finished systems. A parked body that is re-armed by a
/// wire event bumps the demand back up and *kicks* the generators awake
/// through the `CLK_KICK` signal.
#[derive(Debug)]
struct ClockDemand {
    demand: Cell<i64>,
    kick: SignalId,
}

impl ClockDemand {
    /// A new unparked clocked body exists. If the generators had gone
    /// idle (everything previously registered is parked or halted —
    /// possible when bodies are added after a run reached quiescence),
    /// kick them awake so the new body actually sees clock edges.
    fn register(&self, sim: &mut Simulator) {
        if self.demand.get() <= 0 {
            let next = match sim.value(self.kick) {
                Value::Bit(cosma_core::Bit::One) => cosma_core::Bit::Zero,
                _ => cosma_core::Bit::One,
            };
            sim.poke(self.kick, Value::Bit(next));
        }
        self.demand.set(self.demand.get() + 1);
    }

    /// `n` bodies parked (or halted): they need no clock edges until
    /// re-armed.
    fn park(&self, n: usize) {
        self.demand.set(self.demand.get() - n as i64);
    }

    /// `n` parked bodies were re-armed; restart the clock generators if
    /// they had gone idle. The kick is an ordinary signal toggle:
    /// generators parked on it wake through the sensitivity index.
    fn resume(&self, n: usize, ctx: &mut ProcCtx<'_>) {
        if n == 0 {
            return;
        }
        if self.demand.get() <= 0 {
            let next = match ctx.read(self.kick) {
                Value::Bit(cosma_core::Bit::One) => cosma_core::Bit::Zero,
                _ => cosma_core::Bit::One,
            };
            ctx.drive(self.kick, Value::Bit(next));
        }
        self.demand.set(self.demand.get() + n as i64);
    }
}

/// Clocking configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CosimConfig {
    /// Hardware cycle (default 100 ns — the paper's 10 MHz bus clock).
    pub hw_cycle: Duration,
    /// Software activation period (default equal to the hardware cycle,
    /// giving the paper's precise HW/SW synchronization).
    pub sw_cycle: Duration,
}

impl Default for CosimConfig {
    fn default() -> Self {
        let c = Duration::from_freq_hz(10_000_000);
        CosimConfig {
            hw_cycle: c,
            sw_cycle: c,
        }
    }
}

/// Identifies a clock domain of a backplane.
///
/// Every backplane starts with one *base* domain ([`DomainId::BASE`])
/// running at the configured [`CosimConfig`] rates; further domains are
/// created with [`Cosim::add_clock_domain`] at a rational period ratio
/// versus the base. Units and modules are placed into a domain with the
/// `*_in` constructors ([`Cosim::add_fsm_unit_in`],
/// [`Cosim::add_module_in`], ...); the domain decides which activation
/// clock pair drives them and which [`ClockDemand`] ledger accounts for
/// their parking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DomainId(usize);

impl DomainId {
    /// The base clock domain every backplane is created with.
    pub const BASE: DomainId = DomainId(0);

    /// Index of this domain in the backplane's domain table.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

/// The message channel shared by the two halves of a boundary link
/// (partitioned co-simulation, [`crate::partition`]). The *out* half's
/// exporter appends latency-stamped `(arrival_time, value)` entries;
/// the *in* half's injector consumes the prefix whose arrival time has
/// been reached, tracked by `cursor`. Entries are appended in
/// nondecreasing arrival order (one exporter, constant latency), so the
/// injector never reorders. The orchestrator snapshots `(len, cursor)`
/// per quantum and rolls either side back by truncating/rewinding.
#[derive(Debug, Default)]
pub(crate) struct BoundaryQueue {
    /// Latency-stamped messages: `(arrival_time, value)`.
    pub(crate) entries: Vec<(SimTime, Value)>,
    /// Index of the first entry the injector has not yet delivered.
    pub(crate) cursor: usize,
}

/// One clock domain: its activation clock pair, its period ratio versus
/// the base domain, and its clock-demand ledger. All domains share the
/// global femtosecond time axis — a 4:1 domain's members simply see a
/// rising edge every fourth base period.
struct ClockDomainEntry {
    name: String,
    ratio: ClockRatio,
    hw_clk: SignalId,
    sw_clk: SignalId,
    demand: Rc<ClockDemand>,
}

/// Identifies a communication-unit instance in the backplane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UnitId(usize);

/// Identifies a module instance in the backplane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CosimModuleId(usize);

/// Live status of a module, readable while the simulation runs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ModuleStatus {
    /// Current FSM state name. When the module halted on an evaluation
    /// error this is the state whose actions/guards errored.
    pub state: String,
    /// Activations performed.
    pub activations: u64,
    /// The evaluation error that halted this module, if any. Also
    /// surfaced globally through [`Cosim::run_for`]'s error result.
    pub error: Option<String>,
}

struct FsmUnitEntry {
    name: String,
    runtime: FsmUnitRuntime,
    wires: Vec<SignalId>,
    /// Per-service completion wires (the blocked protocol's read-set,
    /// mapped onto kernel signals): the wires whose events can unblock
    /// a pending caller, precomputed at registration.
    completion: HashMap<String, Vec<SignalId>>,
}

struct BatchedUnitEntry {
    name: String,
    link: BatchedLink,
    wires: Vec<SignalId>,
    /// One HW clock cycle — the scheduling unit for the link's
    /// pre-scheduled payload bursts ([`WireStore::write_wire_after`]).
    cycle: Duration,
    /// Per-service completion wires (see [`FsmUnitEntry::completion`]).
    completion: HashMap<String, Vec<SignalId>>,
}

struct NativeEntry {
    name: String,
    unit: Box<dyn NativeUnit>,
    /// Kernel mirror of the unit's queue occupancy
    /// ([`NativeUnit::occupancy`]), if the unit exposes one. Driven
    /// after every call and step, it makes native state changes
    /// wire-visible so blocked callers can *park* instead of polling.
    occ: Option<SignalId>,
    /// The occupancy value most recently *driven* onto the `OCC`
    /// signal. Drive decisions must compare against this, not the
    /// committed signal value: within one delta an earlier drive is
    /// still pending, and comparing against the stale committed value
    /// would skip the correcting drive — leaving the mirror wrong
    /// forever and losing a parked caller's wakeup.
    occ_driven: i64,
    /// Completion wires for blocked callers: `[occ]` when the unit is
    /// wire-visible, empty otherwise (callers must poll).
    completion: Vec<SignalId>,
}

struct Registry {
    fsm: Vec<FsmUnitEntry>,
    native: Vec<NativeEntry>,
    batched: Vec<BatchedUnitEntry>,
}

/// Mirrors a native unit's occupancy onto its `OCC` kernel signal after
/// a call or step may have changed it. Same-value drives are deduped by
/// the kernel (no event), so this is cheap for no-op calls.
fn sync_native_occ(entry: &mut NativeEntry, ctx: &mut ProcCtx<'_>) {
    if let (Some(sig), Some(occ)) = (entry.occ, entry.unit.occupancy()) {
        if entry.occ_driven != occ {
            entry.occ_driven = occ;
            ctx.drive(sig, Value::Int(occ));
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Handle {
    Fsm(usize),
    Native(usize),
    Batched(usize),
}

/// Everything the backplane knows about one module instance. Owned by
/// the shared module table so both scheduler paths (per-module process,
/// module shard) step modules through the same code.
struct ModuleEntry {
    name: String,
    module: Module,
    exec: FsmExec,
    ports: Vec<SignalId>,
    vars: Vec<Value>,
    var_tys: Vec<Type>,
    bindings: Vec<Handle>,
    caller: CallerId,
    status: ModuleStatus,
}

/// What a shard member is: a unit's bookkeeping body or a module's FSM.
#[derive(Clone, Copy)]
enum MemberBody {
    Unit(Handle),
    Module(usize),
}

/// One member of a shard: its body, its activation clock, its gating
/// wires and the wires that re-arm it while parked.
struct ShardMember {
    body: MemberBody,
    /// The rising edge this member activates on.
    clk: SignalId,
    /// Gating wires (unit members only): the unit's kernel wires, whose
    /// monotone event counts decide whether inputs changed.
    wires: Vec<SignalId>,
    /// Last observed event counts for `wires`.
    seen_events: Vec<u64>,
    /// Wires whose events re-arm this member while parked. Fixed for
    /// units (their own wires); computed at park time for modules
    /// (ports plus the blocked services' completion wires). Empty means
    /// the member can never be re-armed (a provably-halted module).
    watch: Vec<SignalId>,
}

/// Shared state of one shard process.
struct ShardState {
    members: Vec<ShardMember>,
    /// Indices of members stepped at clock edges, ascending (module
    /// step order must match creation order — see the module docs).
    active: Vec<u32>,
    /// Indices of parked members, re-armed by watch-wire events.
    parked: Vec<u32>,
    /// Whether the kernel sensitivity must be recomputed on the next
    /// run (membership changed).
    wait_dirty: bool,
    /// Whether this shard's process already surrendered its members'
    /// clock demand after a backplane error. Lives here (not in the
    /// process closure) so snapshot/restore can carry it.
    halted: bool,
    runs: u64,
    units_stepped: u64,
    units_skipped: u64,
    wire_wakeups: u64,
    watch_probes: u64,
}

impl ShardState {
    fn new() -> Self {
        ShardState {
            members: vec![],
            active: vec![],
            parked: vec![],
            wait_dirty: true,
            halted: false,
            runs: 0,
            units_stepped: 0,
            units_skipped: 0,
            wire_wakeups: 0,
            watch_probes: 0,
        }
    }

    fn push_member(&mut self, m: ShardMember) {
        let idx = self.members.len() as u32;
        self.members.push(m);
        self.active.push(idx);
        self.wait_dirty = true;
    }
}

/// splitmix64: the hash spreading unit ids over shards.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Bridges a unit's wire table onto kernel signals through the running
/// process context.
struct CtxWires<'a, 'b> {
    ctx: &'a mut ProcCtx<'b>,
    map: &'a [SignalId],
    /// One clock cycle of the owning unit's clock, the unit of
    /// [`WireStore::write_wire_after`] scheduling. `Duration::ZERO` at
    /// call sites that never schedule timed writes (service dispatch,
    /// commit replay) — timed writes then report unsupported, which
    /// keeps a mis-plumbed site on the cycle-by-cycle fallback instead
    /// of silently collapsing a burst into one instant.
    cycle: Duration,
}

impl WireStore for CtxWires<'_, '_> {
    fn read_wire(&self, w: PortId) -> Result<Value, EvalError> {
        match self.map.get(w.index()) {
            Some(&sig) => Ok(self.ctx.read(sig).clone()),
            None => Err(EvalError::NoSuchPort(w)),
        }
    }
    fn write_wire(&mut self, w: PortId, v: Value) -> Result<(), EvalError> {
        match self.map.get(w.index()) {
            Some(&sig) => {
                self.ctx.drive(sig, v);
                Ok(())
            }
            None => Err(EvalError::NoSuchPort(w)),
        }
    }
    fn write_wire_after(&mut self, w: PortId, v: Value, cycles: u64) -> Result<bool, EvalError> {
        if self.cycle == Duration::ZERO {
            return Ok(false);
        }
        match self.map.get(w.index()) {
            Some(&sig) => {
                self.ctx.drive_after(sig, v, self.cycle.times(cycles));
                Ok(true)
            }
            None => Err(EvalError::NoSuchPort(w)),
        }
    }
    fn write_wire_train(
        &mut self,
        w: PortId,
        start_cycles: u64,
        stride_cycles: u64,
        values: &[Value],
    ) -> Result<bool, EvalError> {
        if self.cycle == Duration::ZERO {
            return Ok(false);
        }
        match self.map.get(w.index()) {
            Some(&sig) => {
                self.ctx.drive_train(
                    sig,
                    self.cycle.times(start_cycles),
                    self.cycle.times(stride_cycles),
                    values,
                );
                Ok(true)
            }
            None => Err(EvalError::NoSuchPort(w)),
        }
    }
}

/// Outcome record of a call that was already applied to its unit during
/// a commit phase, served to a fallback re-execution so the unit is not
/// mutated twice. See [`step_module`]'s `memo` parameter.
struct MemoCall {
    binding: cosma_core::ids::BindingId,
    service: Arc<str>,
    result: Result<ServiceOutcome, EvalError>,
    stable: bool,
}

/// Reusable arena for immediate-mode activations through
/// [`step_module`]: the memoized-outcome deque and the
/// [`StepEffects`](cosma_core::StepEffects) call-stream arena. Each
/// inline scheduler process owns one, and every [`SpecResult`] shell
/// carries one for the commit phase's divergence fallback — so the
/// re-execution path draws its environment from the per-shard scratch
/// (recycled through [`StepScratch`]) instead of building a fresh
/// immediate env per fallback.
#[derive(Default)]
struct ImmScratch {
    /// Already-applied call outcomes to serve before touching the
    /// units again; cleared (capacity kept) after every activation.
    memo: std::collections::VecDeque<MemoCall>,
    /// Step-effects arena handed to
    /// [`FsmExec::step_with`](cosma_core::FsmExec::step_with);
    /// recycled (pools kept) at the start of every activation.
    effects: cosma_core::StepEffects,
    /// Pooled completion-wire watch list lent to the activation's
    /// [`CosimEnv`]; returned cleared unless the module parks (the
    /// rare case, where the buffer leaves as the park wait list).
    watch: Vec<SignalId>,
}

impl ImmScratch {
    /// Approximate bytes retained by the arena's buffers
    /// (capacity-based) — feeds [`SpecResult::approx_bytes`].
    fn approx_bytes(&self) -> usize {
        self.memo.capacity() * std::mem::size_of::<MemoCall>()
            + self.effects.approx_bytes()
            + self.watch.capacity() * std::mem::size_of::<SignalId>()
    }
}

/// The execution environment a module activation sees: ports are kernel
/// signals, variables are module-local, service calls go to the
/// registry. Alongside execution it accumulates the *stability
/// evidence* the scheduler needs for its park verdict.
struct CosimEnv<'a, 'b> {
    ctx: &'a mut ProcCtx<'b>,
    ports: &'a [SignalId],
    vars: &'a mut [Value],
    var_tys: &'a [Type],
    registry: &'a RefCell<Registry>,
    bindings: &'a [Handle],
    caller: CallerId,
    trace: &'a RefCell<TraceLog>,
    source: &'a str,
    /// Already-applied call outcomes to serve before touching the units
    /// again (commit-phase fallback re-execution; empty otherwise).
    /// Borrowed from the caller's [`ImmScratch`] so the deque's
    /// capacity survives across activations.
    memo: &'a mut std::collections::VecDeque<MemoCall>,
    /// Effective changes this activation: variable writes that changed
    /// a value, port drives that differ from the signal's current
    /// value, trace records, completed service calls. Zero means the
    /// activation was (conservatively) a no-op.
    changes: u32,
    /// Whether every pending service call this activation was a
    /// provable no-op on the unit side *with* non-empty completion
    /// wires — i.e. safe to wait on wires instead of polling.
    pending_stable: bool,
    /// Completion wires of the pending calls (what to watch if parked).
    pending_watch: Vec<SignalId>,
}

impl CosimEnv<'_, '_> {
    /// Shared post-call bookkeeping: a completed call is an effective
    /// change; a pending one contributes to the park verdict (parkable
    /// only if the unit proved the call a no-op AND names completion
    /// wires that can wake the caller).
    fn note_outcome(&mut self, handle: Handle, service: &str, done: bool, stable: bool) {
        if done {
            self.changes += 1;
            return;
        }
        let reg = self.registry.borrow();
        let comp = match handle {
            Handle::Fsm(i) => reg.fsm[i].completion.get(service),
            Handle::Batched(i) => reg.batched[i].completion.get(service),
            Handle::Native(i) => Some(&reg.native[i].completion),
        };
        match comp {
            Some(ws) if stable && !ws.is_empty() => {
                self.pending_watch.extend_from_slice(ws);
            }
            _ => self.pending_stable = false,
        }
    }
}

impl ReadEnv for CosimEnv<'_, '_> {
    fn read_var(&self, v: VarId) -> Result<Value, EvalError> {
        self.vars
            .get(v.index())
            .cloned()
            .ok_or(EvalError::NoSuchVar(v))
    }
    fn read_port(&self, p: PortId) -> Result<Value, EvalError> {
        match self.ports.get(p.index()) {
            Some(&sig) => Ok(self.ctx.read(sig).clone()),
            None => Err(EvalError::NoSuchPort(p)),
        }
    }
}

impl Env for CosimEnv<'_, '_> {
    fn write_var(&mut self, v: VarId, value: Value) -> Result<(), EvalError> {
        let ty = self.var_tys.get(v.index()).ok_or(EvalError::NoSuchVar(v))?;
        let slot = self
            .vars
            .get_mut(v.index())
            .ok_or(EvalError::NoSuchVar(v))?;
        let value = ty.clamp(value);
        if *slot != value {
            self.changes += 1;
            *slot = value;
        }
        Ok(())
    }
    fn drive_port(&mut self, p: PortId, value: Value) -> Result<(), EvalError> {
        match self.ports.get(p.index()) {
            Some(&sig) => {
                if self.ctx.read(sig) != &value {
                    self.changes += 1;
                }
                self.ctx.drive(sig, value);
                Ok(())
            }
            None => Err(EvalError::NoSuchPort(p)),
        }
    }
    fn call_service(
        &mut self,
        call: &ServiceCall,
        args: &[Value],
    ) -> Result<ServiceOutcome, EvalError> {
        let Some(&handle) = self.bindings.get(call.binding.index()) else {
            return Err(EvalError::Service(format!(
                "module {} has no unit attached to binding {}",
                self.source, call.binding
            )));
        };
        // Commit-phase fallback: serve the outcomes of calls that were
        // already applied to the units during validation, in order. The
        // re-execution is deterministic, so the served stream lines up
        // with the calls the activation re-issues.
        if let Some(m) = self.memo.pop_front() {
            if m.binding != call.binding || m.service != call.service {
                return Err(EvalError::Service(format!(
                    "module {}: deferred-call replay diverged (expected {}/{}, got {}/{})",
                    self.source, m.binding, m.service, call.binding, call.service
                )));
            }
            let out = m.result?;
            self.note_outcome(handle, &call.service, out.done, m.stable);
            return Ok(out);
        }
        let (out, stable) = {
            let mut reg = self.registry.borrow_mut();
            match handle {
                Handle::Fsm(i) => {
                    let FsmUnitEntry { runtime, wires, .. } = &mut reg.fsm[i];
                    let mut ws = CtxWires {
                        ctx: self.ctx,
                        map: wires,
                        cycle: Duration::ZERO,
                    };
                    let out = runtime.call(self.caller, &call.service, args, &mut ws)?;
                    let stable = runtime.last_call_stable();
                    (out, stable)
                }
                Handle::Native(i) => {
                    let entry = &mut reg.native[i];
                    let out = entry
                        .unit
                        .call(self.caller, &call.service, args)
                        .map_err(|e| {
                            EvalError::Service(format!("native unit {}: {e}", entry.name))
                        })?;
                    sync_native_occ(entry, self.ctx);
                    let stable = entry.unit.last_call_stable();
                    (out, stable)
                }
                Handle::Batched(i) => {
                    let BatchedUnitEntry { link, wires, .. } = &mut reg.batched[i];
                    let mut ws = CtxWires {
                        ctx: self.ctx,
                        map: wires,
                        cycle: Duration::ZERO,
                    };
                    let out = link.call(self.caller, &call.service, args, &mut ws)?;
                    let stable = link.last_call_stable();
                    (out, stable)
                }
            }
        };
        self.note_outcome(handle, &call.service, out.done, stable);
        Ok(out)
    }
    fn trace(&mut self, label: &str, values: &[Value]) {
        self.changes += 1;
        self.trace
            .borrow_mut()
            .record(self.ctx.now().as_fs(), self.source, label, values);
    }
    fn trace_interned(&mut self, label: &Arc<str>, values: &[Value]) {
        self.changes += 1;
        self.trace
            .borrow_mut()
            .record_interned(self.ctx.now().as_fs(), self.source, label, values);
    }
}

/// Errors from backplane assembly and runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CosimError {
    /// Kernel-level error.
    Sim(SimError),
    /// A module or controller hit an evaluation error.
    Runtime(String),
    /// Assembly-time error (duplicate names, unresolved bindings...).
    Setup(String),
}

impl fmt::Display for CosimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CosimError::Sim(e) => write!(f, "{e}"),
            CosimError::Runtime(m) | CosimError::Setup(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CosimError {}

impl From<SimError> for CosimError {
    fn from(e: SimError) -> Self {
        CosimError::Sim(e)
    }
}

/// One module activation through the shared module table, with service
/// calls applied immediately (and, during a commit-phase fallback,
/// already-applied outcomes served from `scratch.memo` first). Returns
/// `Ok(Some(watch))` when the activation proved the module stable and
/// it should be parked on `watch` (possibly empty: a halted module that
/// nothing can ever re-arm), `Ok(None)` to stay clocked.
///
/// The execution environment is drawn from the caller's pooled
/// [`ImmScratch`] — the memo deque and the [`StepEffects`] arena are
/// recycled (capacity kept) across activations, so a warm immediate
/// path or commit fallback allocates nothing for its bookkeeping.
#[allow(clippy::too_many_arguments)]
fn step_module(
    modules: &RefCell<Vec<ModuleEntry>>,
    idx: usize,
    registry: &RefCell<Registry>,
    trace: &RefCell<TraceLog>,
    park: &ParkCounters,
    park_blocked: bool,
    ctx: &mut ProcCtx<'_>,
    scratch: &mut ImmScratch,
) -> Result<Option<Vec<SignalId>>, String> {
    let mut modules = modules.borrow_mut();
    let ModuleEntry {
        name,
        module,
        exec,
        ports,
        vars,
        var_tys,
        bindings,
        caller,
        status,
    } = &mut modules[idx];
    let fsm = module.fsm();
    scratch.effects.recycle();
    let mut env = CosimEnv {
        ctx,
        ports,
        vars,
        var_tys,
        registry,
        bindings,
        caller: *caller,
        trace,
        source: name,
        memo: &mut scratch.memo,
        changes: 0,
        pending_stable: true,
        pending_watch: std::mem::take(&mut scratch.watch),
    };
    let stepped = exec.step_with(fsm, &mut env, &mut scratch.effects);
    let verdict = match stepped {
        Ok(meta) => {
            let changes = env.changes;
            let pending_stable = env.pending_stable;
            let mut watch = env.pending_watch;
            if meta.from != meta.to {
                // The state name only changes on a real transition —
                // skip the per-activation render for self-loops, and
                // reuse the status String's buffer when it does.
                status.state.clear();
                status.state.push_str(fsm.state(exec.current()).name());
            }
            status.activations += 1;
            park.modules_stepped.set(park.modules_stepped.get() + 1);
            // Park verdict: the activation must be a provable fixed
            // point. Same state (self-loops included), zero effective
            // changes, and every service call pending as a unit-side
            // no-op with completion wires to wait on. Re-running such
            // an activation with unchanged ports/wires is guaranteed
            // to repeat it identically, so the module may sleep until
            // one of its ports or completion wires events.
            let parkable = park_blocked
                && meta.from == meta.to
                && changes == 0
                && pending_stable
                && scratch.effects.pending.len() == scratch.effects.service_calls as usize;
            if parkable {
                watch.extend_from_slice(ports);
                watch.sort_unstable();
                watch.dedup();
                Ok(Some(watch))
            } else {
                watch.clear();
                scratch.watch = watch;
                Ok(None)
            }
        }
        Err(e) => {
            let mut watch = env.pending_watch;
            watch.clear();
            scratch.watch = watch;
            // Record the halting state and the error on the module
            // itself, not just in the backplane's global error slot.
            let msg = format!("module {name}: {e}");
            status.state.clear();
            status.state.push_str(fsm.state(exec.current()).name());
            status.error = Some(msg.clone());
            Err(msg)
        }
    };
    // Any unserved memo entries (a diverged replay that erred early)
    // are stale — clear them so the next activation through this
    // scratch starts clean, keeping the deque's capacity.
    scratch.memo.clear();
    verdict
}

/// Read-only wire view over the cycle-start signal snapshot, for
/// speculative unit peeks. Exact within an activation: kernel drives
/// are delta-delayed, so the immediate path's protocol steps read the
/// same snapshot.
struct SnapWires<'a, 'b> {
    ctx: &'a ProcCtx<'b>,
    map: &'a [SignalId],
}

impl cosma_comm::ReadWires for SnapWires<'_, '_> {
    fn read_wire(&self, w: PortId) -> Result<Value, EvalError> {
        match self.map.get(w.index()) {
            Some(&sig) => Ok(self.ctx.read(sig).clone()),
            None => Err(EvalError::NoSuchPort(w)),
        }
    }
}

/// Everything one speculative module activation buffered during the
/// step phase. Nothing in here has touched shared state: the commit
/// phase installs it wholesale (after validating the speculated call
/// outcomes against the real units) or discards it and re-executes the
/// activation sequentially.
///
/// A `SpecResult` doubles as the *scratch arena* of the threaded step
/// phase: after its effects are installed, [`SpecResult::reset`]
/// clears the activation-visible contents while keeping every heap
/// buffer — the var-overlay, drive/trace/peek vectors, the
/// [`StepEffects`](cosma_core::StepEffects) call-argument pools and
/// the [`cosma_comm::PeekScratch`] session pools — and the shell goes
/// back to the free-list of the worker that filled it. Steady-state
/// speculation therefore performs zero heap allocation: every buffer
/// an activation needs is popped from a pool and returned after
/// commit.
#[derive(Default)]
struct SpecResult {
    /// Effective variable writes in execution order (a copy-on-write
    /// overlay over the entry's committed vars — most activations
    /// write zero or one variable, so buffering writes beats cloning
    /// the whole vars vec per speculation).
    var_writes: Vec<(VarId, Value)>,
    /// Post-activation executor (current state + step count).
    exec: FsmExec,
    /// The activation's state-transition outcome.
    meta: cosma_core::StepMeta,
    /// The activation's call stream and pending set (with the internal
    /// argument-buffer pools that make re-filling it allocation-free).
    effects: cosma_core::StepEffects,
    /// Per-call speculated stability flags, parallel to `effects.calls`.
    call_stables: Vec<bool>,
    /// Per-call peek results, parallel to `effects.calls`: FSM-unit
    /// peeks carry a session delta the commit can install directly
    /// instead of re-running the protocol step (`None` for batched and
    /// native calls).
    peeks: Vec<Option<cosma_comm::PeekedCall>>,
    /// Effective-change count (the park verdict input).
    changes: u32,
    /// Park verdict inputs, mirroring [`CosimEnv`].
    pending_stable: bool,
    pending_watch: Vec<SignalId>,
    /// Buffered module port drives, in execution order.
    drives: Vec<(SignalId, Value)>,
    /// Buffered trace records, in execution order. Labels are the IR's
    /// interned `Arc<str>`s (a refcount bump per record, not a string
    /// allocation); value vectors come from `vals_pool`.
    traces: Vec<(Arc<str>, Vec<Value>)>,
    /// The speculation is unusable — it called a wire-invisible native
    /// unit or hit an evaluation error — and the activation must be
    /// re-executed sequentially at commit.
    fallback: bool,
    /// Pooled buffers for peeked unit sessions (locals + captured wire
    /// writes).
    peek_scratch: cosma_comm::PeekScratch,
    /// Pooled trace-value vectors, recycled by [`SpecResult::reset`].
    vals_pool: Vec<Vec<Value>>,
    /// Pooled immediate-execution environment for the commit phase's
    /// divergence/abandon fallback ([`step_module`] re-execution):
    /// rides the shell through [`StepScratch`] recycling, so fallbacks
    /// reuse the memo deque and effects arena instead of building a
    /// fresh env each time.
    fb: ImmScratch,
}

impl SpecResult {
    /// Clears the activation-visible contents while keeping (and
    /// replenishing) the heap pools, readying the shell for the next
    /// activation. Leftover peeks (a diverged or abandoned speculation)
    /// and trace-value vectors are reclaimed into the pools.
    fn reset(&mut self) {
        self.var_writes.clear();
        self.exec = FsmExec::default();
        self.meta = cosma_core::StepMeta::default();
        self.effects.recycle();
        self.call_stables.clear();
        for peek in self.peeks.drain(..).flatten() {
            self.peek_scratch.reclaim(peek);
        }
        self.changes = 0;
        self.pending_stable = true;
        self.pending_watch.clear();
        self.drives.clear();
        for (_, mut vals) in self.traces.drain(..) {
            vals.clear();
            self.vals_pool.push(vals);
        }
        self.fallback = false;
        self.fb.memo.clear();
        self.fb.effects.recycle();
    }

    /// Approximate bytes retained by the shell's buffers and pools
    /// (capacity-based) — feeds [`ScratchStats::bytes_high_water`].
    fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        self.var_writes.capacity() * size_of::<(VarId, Value)>()
            + self.effects.approx_bytes()
            + self.call_stables.capacity()
            + self.peeks.capacity() * size_of::<Option<cosma_comm::PeekedCall>>()
            + self.pending_watch.capacity() * size_of::<SignalId>()
            + self.drives.capacity() * size_of::<(SignalId, Value)>()
            + self.traces.capacity() * size_of::<(Arc<str>, Vec<Value>)>()
            + self
                .vals_pool
                .iter()
                .map(|v| v.capacity() * size_of::<Value>())
                .sum::<usize>()
            + self.peek_scratch.approx_bytes()
            + self.fb.approx_bytes()
    }

    /// Returns every retained pool to the allocator. Used by the commit
    /// loop to reclaim a shell whose buffers grew far past the running
    /// per-shell average: pools are sized lazily, so the shell simply
    /// re-grows to its *typical* working set instead of keeping one
    /// outlier activation's worth of heap pinned in the arena.
    fn shrink(&mut self) {
        *self = SpecResult::default();
    }
}

/// A reset shell retaining fewer bytes than this is never reclaimed,
/// whatever the average says — re-growing small pools costs more than
/// the memory is worth.
const SHELL_SHRINK_FLOOR: u64 = 1024;

/// The pure (read-only) speculation environment of the step phase.
/// Variable writes land in a copy-on-write overlay over the entry's
/// committed vars, port drives and traces are buffered, and service
/// calls answer unit *peeks* while being recorded for commit-time
/// replay.
///
/// Every buffer is borrowed from the worker's [`SpecResult`] shell —
/// the environment itself owns nothing, so an activation through a
/// warm shell allocates nothing.
struct SpecEnv<'a, 'b> {
    ctx: &'a ProcCtx<'b>,
    ports: &'a [SignalId],
    /// The committed variable values (read-only; `var_writes` overlays
    /// them).
    vars: &'a [Value],
    /// Effective writes in order; reads consult the latest overlay
    /// entry first. Equal-value writes are dropped, exactly like the
    /// immediate path's change counting.
    var_writes: &'a mut Vec<(VarId, Value)>,
    var_tys: &'a [Type],
    reg: &'a Registry,
    bindings: &'a [Handle],
    caller: CallerId,
    changes: u32,
    pending_stable: bool,
    pending_watch: &'a mut Vec<SignalId>,
    call_stables: &'a mut Vec<bool>,
    peeks: &'a mut Vec<Option<cosma_comm::PeekedCall>>,
    drives: &'a mut Vec<(SignalId, Value)>,
    traces: &'a mut Vec<(Arc<str>, Vec<Value>)>,
    /// Pooled trace-value vectors (popped per trace record).
    vals_pool: &'a mut Vec<Vec<Value>>,
    /// Pooled peek-session buffers.
    peek_scratch: &'a mut cosma_comm::PeekScratch,
    fallback: bool,
}

impl SpecEnv<'_, '_> {
    /// The activation-current value of a variable: the latest overlay
    /// write, else the committed value.
    fn var_now(&self, v: VarId) -> Option<&Value> {
        self.var_writes
            .iter()
            .rev()
            .find(|(id, _)| *id == v)
            .map(|(_, val)| val)
            .or_else(|| self.vars.get(v.index()))
    }
}

impl ReadEnv for SpecEnv<'_, '_> {
    fn read_var(&self, v: VarId) -> Result<Value, EvalError> {
        self.var_now(v).cloned().ok_or(EvalError::NoSuchVar(v))
    }
    fn read_port(&self, p: PortId) -> Result<Value, EvalError> {
        match self.ports.get(p.index()) {
            Some(&sig) => Ok(self.ctx.read(sig).clone()),
            None => Err(EvalError::NoSuchPort(p)),
        }
    }
}

impl Env for SpecEnv<'_, '_> {
    fn write_var(&mut self, v: VarId, value: Value) -> Result<(), EvalError> {
        let ty = self.var_tys.get(v.index()).ok_or(EvalError::NoSuchVar(v))?;
        if self.vars.get(v.index()).is_none() {
            return Err(EvalError::NoSuchVar(v));
        }
        let value = ty.clamp(value);
        if self.var_now(v) != Some(&value) {
            self.changes += 1;
            self.var_writes.push((v, value));
        }
        Ok(())
    }
    fn drive_port(&mut self, p: PortId, value: Value) -> Result<(), EvalError> {
        match self.ports.get(p.index()) {
            Some(&sig) => {
                if self.ctx.read(sig) != &value {
                    self.changes += 1;
                }
                self.drives.push((sig, value));
                Ok(())
            }
            None => Err(EvalError::NoSuchPort(p)),
        }
    }
    fn call_service(
        &mut self,
        call: &ServiceCall,
        args: &[Value],
    ) -> Result<ServiceOutcome, EvalError> {
        let Some(&handle) = self.bindings.get(call.binding.index()) else {
            return Err(EvalError::Service(format!(
                "no unit attached to binding {}",
                call.binding
            )));
        };
        let peeked = match handle {
            Handle::Fsm(i) => {
                let e = &self.reg.fsm[i];
                let ws = SnapWires {
                    ctx: self.ctx,
                    map: &e.wires,
                };
                e.runtime.peek_call_scratch(
                    self.caller,
                    &call.service,
                    args,
                    &ws,
                    self.peek_scratch,
                )?
            }
            Handle::Batched(i) => self.reg.batched[i].link.peek_call(&call.service, args)?,
            Handle::Native(_) => {
                // Native calls cannot be peeked (arbitrary Rust state):
                // abandon the speculation; the commit phase re-executes
                // this activation sequentially with real calls.
                self.fallback = true;
                self.call_stables.push(false);
                self.peeks.push(None);
                return Ok(ServiceOutcome::pending());
            }
        };
        // Park-verdict bookkeeping, mirroring CosimEnv::note_outcome.
        if peeked.outcome.done {
            self.changes += 1;
        } else {
            let comp = match handle {
                Handle::Fsm(i) => self.reg.fsm[i].completion.get(&*call.service),
                Handle::Batched(i) => self.reg.batched[i].completion.get(&*call.service),
                Handle::Native(_) => unreachable!("natives abandon speculation"),
            };
            match comp {
                Some(ws) if peeked.stable && !ws.is_empty() => {
                    self.pending_watch.extend_from_slice(ws);
                }
                _ => self.pending_stable = false,
            }
        }
        self.call_stables.push(peeked.stable);
        let outcome = peeked.outcome.clone();
        self.peeks.push(Some(peeked));
        Ok(outcome)
    }
    fn record_calls(&self) -> bool {
        true
    }
    fn trace(&mut self, label: &str, values: &[Value]) {
        // Non-interned entry point (not reached from IR statements,
        // which carry interned labels): intern ad hoc.
        self.trace_interned(&Arc::from(label), values);
    }
    fn trace_interned(&mut self, label: &Arc<str>, values: &[Value]) {
        self.changes += 1;
        let mut vals = self.vals_pool.pop().unwrap_or_default();
        vals.extend_from_slice(values);
        self.traces.push((Arc::clone(label), vals));
    }
}

/// Minimum stepping-set size before the driver fans the step phase out
/// to the worker pool: below this, handing work over costs more than
/// the speculation itself (a few µs of channel/futex latency). Below
/// the threshold (or with no pool at all) the driver skips speculation
/// entirely and steps the cycle's set directly in `(module id)` order —
/// the deterministic commit order with immediate semantics — since
/// buffering deltas buys nothing when nothing runs in parallel. This is
/// the default of [`SchedulingConfig::step_fanout_min`].
pub const STEP_FANOUT_MIN: usize = 64;

/// Initial work-stealing chunk size of the threaded step phase: workers
/// claim items off a shared atomic cursor in chunks, so a worker stuck
/// on one expensive speculation simply stops claiming while the others
/// drain the rest of the set.
///
/// The size is **adaptive** per driver, bounded by [`STEP_CHUNK_MIN`]
/// and [`STEP_CHUNK_MAX`]: a cycle that observed steals (a worker had
/// to rebalance past its fair share — the per-item cost spread is wide)
/// halves it so the tail behind a heavy item stays short; a steal-free
/// cycle with at least four chunks per worker doubles it so the shared
/// cursor is contended less. The current value is reported as
/// [`ScratchStats::chunk_now`].
const STEP_CHUNK_INIT: usize = 8;

/// Lower bound of the adaptive step chunk (below this the shared-cursor
/// `fetch_add` itself dominates a cheap speculation).
const STEP_CHUNK_MIN: usize = 2;

/// Upper bound of the adaptive step chunk (above this one chunk can
/// strand most of a typical stepping set behind a single worker).
const STEP_CHUNK_MAX: usize = 64;

/// Everything a step-phase worker needs to speculate its share of the
/// cycle's stepping set. All fields are shared read-only references
/// (plus the shared claim cursor) — the pool's blocking protocol
/// guarantees they outlive the parallel region.
struct StepJobCtx<'a, 'b> {
    entries: &'a [ModuleEntry],
    reg: &'a Registry,
    snapshot: &'a ProcCtx<'b>,
    items: &'a [(usize, usize, u32)],
    /// This region's work-stealing chunk size (the driver's current
    /// adaptive value).
    chunk: usize,
    /// Work-stealing cursor: the next unclaimed item index. Workers
    /// `fetch_add` `chunk` to claim a chunk; `Relaxed` suffices
    /// because the cursor orders nothing but itself (item data is
    /// read-only and the done-channel handoff provides the
    /// happens-before for the results).
    cursor: std::sync::atomic::AtomicUsize,
    /// Fair share per worker (`len / workers`, rounded up): chunks a
    /// worker claims beyond it are counted as steals — work that a
    /// fixed partition would have left serialized on another worker.
    fair: usize,
}

/// One region assignment handed to a pooled worker: a type-erased
/// pointer to the region's [`StepJobCtx`] plus the worker's private
/// scratch arena. Both pointers are only dereferenced between
/// receiving the job and sending the done signal back, and the driver
/// blocks on that signal before releasing the borrows — the same
/// happens-before protocol `std::thread::scope` provides, without
/// re-paying thread spawn/join (~100µs) on every kernel delta.
struct StepJob {
    ctx: *const (),
    scratch: *mut StepScratch,
}

// SAFETY: the raw context pointer is only dereferenced while the
// issuing driver is blocked in `StepPool::run`, which keeps the
// referenced borrows alive; `StepJobCtx`'s referents are all `Sync`
// (machine-checked by `_assert_step_ctx_sync` below, so a future field
// with interior mutability fails to compile instead of racing). The
// scratch pointer is exclusive to one worker per region (each worker
// gets a distinct arena, the kernel thread uses arena 0), so no two
// threads alias it.
unsafe impl Send for StepJob {}

/// Compile-time guard for the `unsafe impl Send for StepJob`: sharing
/// `&StepJobCtx` across worker threads is only sound while the whole
/// context is `Sync`.
fn _assert_step_ctx_sync<'a, 'b>(ctx: &'a StepJobCtx<'a, 'b>) -> &'a (dyn Sync + 'a) {
    ctx
}

/// Per-worker scratch arena of the threaded step phase: the free-list
/// of recycled [`SpecResult`] shells, the region's filled results, and
/// the arena/steal counters folded into [`ScratchStats`] after each
/// region.
#[derive(Default)]
struct StepScratch {
    /// Recycled result shells; popped per activation, pushed back by
    /// the commit loop after installing (warm pools, zero allocation).
    shells: Vec<SpecResult>,
    /// Filled results of the current region, tagged with the item index
    /// they speculated.
    results: Vec<(u32, SpecResult)>,
    acquires: u64,
    reuses: u64,
    chunks: u64,
    steals: u64,
}

/// One worker's share of a parallel step region: claim chunked item
/// ranges off the shared cursor until the set is drained, speculating
/// each item into a recycled shell from this worker's arena. Runs
/// identically on pooled workers and the kernel thread.
fn run_step_region(ctx: &StepJobCtx<'_, '_>, scratch: &mut StepScratch) {
    use std::sync::atomic::Ordering;
    let len = ctx.items.len();
    let mut taken = 0usize;
    loop {
        let lo = ctx.cursor.fetch_add(ctx.chunk, Ordering::Relaxed);
        if lo >= len {
            break;
        }
        let hi = (lo + ctx.chunk).min(len);
        scratch.chunks += 1;
        if taken >= ctx.fair {
            scratch.steals += 1;
        }
        for (off, &(mi, _, _)) in ctx.items[lo..hi].iter().enumerate() {
            let mut shell = match scratch.shells.pop() {
                Some(s) => {
                    scratch.reuses += 1;
                    s
                }
                None => {
                    scratch.acquires += 1;
                    SpecResult::default()
                }
            };
            speculate_into(&ctx.entries[mi], ctx.reg, ctx.snapshot, &mut shell);
            scratch.results.push(((lo + off) as u32, shell));
        }
        taken += hi - lo;
    }
}

/// One persistent step-phase worker: parked on its job channel between
/// parallel regions.
struct StepWorker {
    job_tx: std::sync::mpsc::Sender<StepJob>,
    done_rx: std::sync::mpsc::Receiver<()>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// The persistent worker pool of the threaded step phase
/// ([`Parallelism::Threads`]): `n - 1` OS threads spawned once at
/// driver registration (the kernel thread itself acts as the `n`-th
/// worker), plus one scratch arena per thread.
struct StepPool {
    workers: Vec<StepWorker>,
    /// Per-thread scratch arenas: index 0 belongs to the kernel thread,
    /// index `i + 1` to worker `i`. The commit loop pushes each reset
    /// shell back to the arena that filled it, so arena capacity
    /// self-balances to each worker's actual throughput.
    scratches: Vec<StepScratch>,
}

impl StepPool {
    fn new(workers: usize) -> Self {
        let scratches = (0..=workers).map(|_| StepScratch::default()).collect();
        let workers = (0..workers)
            .map(|i| {
                let (job_tx, job_rx) = std::sync::mpsc::channel::<StepJob>();
                let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
                let handle = std::thread::Builder::new()
                    .name(format!("cosim-step{i}"))
                    .spawn(move || {
                        while let Ok(job) = job_rx.recv() {
                            // SAFETY: see `StepJob` — the driver is
                            // blocked in `run` until we answer, so the
                            // context outlives this dereference and the
                            // scratch arena is ours alone this region.
                            let ctx = unsafe { &*(job.ctx as *const StepJobCtx<'_, '_>) };
                            let scratch = unsafe { &mut *job.scratch };
                            run_step_region(ctx, scratch);
                            if done_tx.send(()).is_err() {
                                break;
                            }
                        }
                    })
                    .expect("spawn step-phase worker");
                StepWorker {
                    job_tx,
                    done_rx,
                    handle: Some(handle),
                }
            })
            .collect();
        StepPool { workers, scratches }
    }

    /// Runs one parallel region over the shared work-stealing cursor:
    /// wakes as many workers as the chunk count can occupy, joins in on
    /// the kernel thread, and blocks until every woken worker answered.
    /// Results land in `specs[item index]` with `origins[item index]`
    /// recording which arena the shell came from (so the commit loop
    /// can recycle it there); `thread_runs[i]` is bumped by the number
    /// of items thread `i` stepped and the arena counters are folded
    /// into `stats`.
    fn run(
        &mut self,
        ctx: &StepJobCtx<'_, '_>,
        specs: &mut Vec<Option<SpecResult>>,
        origins: &mut Vec<u32>,
        thread_runs: &mut [u64],
        stats: &mut ScratchStats,
    ) {
        let len = ctx.items.len();
        specs.clear();
        specs.resize_with(len, || None);
        origins.clear();
        origins.resize(len, 0);
        let erased = ctx as *const StepJobCtx<'_, '_> as *const ();
        // A worker can only help if there is a chunk beyond what the
        // kernel thread will claim first — don't wake the rest.
        let helpers = self
            .workers
            .len()
            .min(len.div_ceil(ctx.chunk).saturating_sub(1));
        let (kernel, rest) = self.scratches.split_at_mut(1);
        for (i, w) in self.workers.iter().take(helpers).enumerate() {
            let scratch: *mut StepScratch = &mut rest[i];
            w.job_tx
                .send(StepJob {
                    ctx: erased,
                    scratch,
                })
                .expect("step-phase worker alive");
        }
        run_step_region(ctx, &mut kernel[0]);
        for w in self.workers.iter().take(helpers) {
            w.done_rx.recv().expect("step-phase worker answered");
        }
        for (wi, scratch) in self.scratches.iter_mut().enumerate() {
            thread_runs[wi] += scratch.results.len() as u64;
            for (idx, shell) in scratch.results.drain(..) {
                origins[idx as usize] = wi as u32;
                specs[idx as usize] = Some(shell);
            }
            stats.arena_acquires += std::mem::take(&mut scratch.acquires);
            stats.arena_reuses += std::mem::take(&mut scratch.reuses);
            stats.chunks += std::mem::take(&mut scratch.chunks);
            stats.steals += std::mem::take(&mut scratch.steals);
        }
    }
}

impl Drop for StepPool {
    fn drop(&mut self) {
        for w in &mut self.workers {
            // Dropping the sender ends the worker loop.
            let (dead_tx, _) = std::sync::mpsc::channel();
            w.job_tx = dead_tx;
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }
}

/// The step phase of one module activation: pure speculation against
/// the cycle-start snapshot, filled into a recycled [`SpecResult`]
/// shell. Thread-safe — takes only shared references plus the
/// worker-private shell, whose warm buffer pools make steady-state
/// speculation allocation-free.
fn speculate_into(entry: &ModuleEntry, reg: &Registry, ctx: &ProcCtx<'_>, buf: &mut SpecResult) {
    buf.reset();
    let fsm = entry.module.fsm();
    let mut exec = entry.exec.clone();
    // The effects block is threaded through the step as a separate
    // value (its arg/trace pools live inside it) and handed back to the
    // shell afterwards.
    let mut effects = std::mem::take(&mut buf.effects);
    let mut env = SpecEnv {
        ctx,
        ports: &entry.ports,
        vars: &entry.vars,
        var_writes: &mut buf.var_writes,
        var_tys: &entry.var_tys,
        reg,
        bindings: &entry.bindings,
        caller: entry.caller,
        changes: 0,
        pending_stable: true,
        pending_watch: &mut buf.pending_watch,
        call_stables: &mut buf.call_stables,
        peeks: &mut buf.peeks,
        drives: &mut buf.drives,
        traces: &mut buf.traces,
        vals_pool: &mut buf.vals_pool,
        peek_scratch: &mut buf.peek_scratch,
        fallback: false,
    };
    match exec.step_with(fsm, &mut env, &mut effects) {
        Ok(meta) => {
            buf.changes = env.changes;
            buf.pending_stable = env.pending_stable;
            buf.fallback = env.fallback;
            buf.exec = exec;
            buf.meta = meta;
            buf.effects = effects;
        }
        // A speculative evaluation error may be an artifact of answered
        // placeholder outcomes; re-execute for real at commit (a genuine
        // error reproduces deterministically there).
        Err(_) => {
            buf.reset();
            buf.effects = effects;
            buf.effects.recycle();
            buf.exec = entry.exec.clone();
            let cur = entry.exec.current();
            buf.meta = cosma_core::StepMeta {
                from: cur,
                to: cur,
                transitioned: false,
            };
            buf.pending_stable = false;
            buf.fallback = true;
        }
    }
}

/// Applies one deferred call to its unit, returning the actual outcome
/// and the unit's post-call stability verdict.
fn apply_deferred_call(
    reg: &mut Registry,
    handle: Handle,
    caller: CallerId,
    dc: &cosma_core::DeferredCall,
    ctx: &mut ProcCtx<'_>,
) -> (Result<ServiceOutcome, EvalError>, bool) {
    match handle {
        Handle::Fsm(i) => {
            let FsmUnitEntry { runtime, wires, .. } = &mut reg.fsm[i];
            let mut ws = CtxWires {
                ctx,
                map: wires,
                cycle: Duration::ZERO,
            };
            let r = runtime.call(caller, &dc.service, &dc.args, &mut ws);
            let stable = runtime.last_call_stable();
            (r, stable)
        }
        Handle::Batched(i) => {
            let BatchedUnitEntry { link, wires, .. } = &mut reg.batched[i];
            let mut ws = CtxWires {
                ctx,
                map: wires,
                cycle: Duration::ZERO,
            };
            let r = link.call(caller, &dc.service, &dc.args, &mut ws);
            let stable = link.last_call_stable();
            (r, stable)
        }
        Handle::Native(i) => {
            let entry = &mut reg.native[i];
            let r = entry
                .unit
                .call(caller, &dc.service, &dc.args)
                .map_err(|e| EvalError::Service(format!("native unit {}: {e}", entry.name)));
            sync_native_occ(entry, ctx);
            let stable = entry.unit.last_call_stable();
            (r, stable)
        }
    }
}

/// The commit phase of one module activation. Replays the speculated
/// call stream against the real units in order, validating every actual
/// outcome; on full agreement the buffered effects are installed
/// wholesale, otherwise (or when the speculation was abandoned) the
/// activation is re-executed sequentially with the already-applied
/// outcomes memoized — which is exactly the immediate-application
/// semantics, so the two-phase scheduler is observationally identical
/// to the immediate one on every workload.
///
/// Returns the park verdict like [`step_module`].
#[allow(clippy::too_many_arguments)]
fn commit_module(
    modules: &RefCell<Vec<ModuleEntry>>,
    idx: usize,
    spec: &mut SpecResult,
    registry: &RefCell<Registry>,
    trace: &RefCell<TraceLog>,
    park: &ParkCounters,
    park_blocked: bool,
    ctx: &mut ProcCtx<'_>,
    commit_calls: &mut u64,
    fallbacks: &mut u64,
) -> Result<Option<Vec<SignalId>>, String> {
    if spec.fallback {
        *fallbacks += 1;
        return step_module(
            modules,
            idx,
            registry,
            trace,
            park,
            park_blocked,
            ctx,
            &mut spec.fb,
        );
    }
    // The effects block is detached for the duration of the replay so
    // its call stream can be iterated while the rest of the shell
    // (peeks, peek scratch) is mutated; it is handed back before every
    // return so the shell keeps its pools for recycling.
    let effects = std::mem::take(&mut spec.effects);
    // Validate-and-apply: replay the recorded calls against the real
    // units. Calls are applied one by one so a divergence can hand the
    // already-applied prefix to the fallback as memoized outcomes.
    // Divergence record: the index of the first call whose actual
    // outcome departed from the speculation, plus that call's actual
    // result. The memo handed to the fallback re-execution is built
    // lazily from it — validated activations allocate nothing here.
    let mut diverged: Option<(usize, Result<ServiceOutcome, EvalError>, bool)> = None;
    {
        let modules_ref = modules.borrow();
        let entry = &modules_ref[idx];
        let mut reg = registry.borrow_mut();
        for (k, dc) in effects.calls.iter().enumerate() {
            let Some(&handle) = entry.bindings.get(dc.binding.index()) else {
                diverged = Some((
                    k,
                    Err(EvalError::Service(format!(
                        "no unit attached to binding {}",
                        dc.binding
                    ))),
                    false,
                ));
                break;
            };
            *commit_calls += 1;
            // Fast path: a peek whose delta is still valid installs its
            // buffered effects — no second dispatch, and validation
            // holds by construction (the install IS what was
            // speculated). FSM units install the peeked session delta
            // after a (state, step-count) fingerprint check — returning
            // the displaced buffers to this shell's peek scratch —
            // batched links install the peeked queue-op journal entry
            // after an occupancy fingerprint check.
            let peek = spec.peeks.get_mut(k).and_then(Option::take);
            if let Some(peeked) = peek {
                match handle {
                    Handle::Fsm(i) => {
                        let FsmUnitEntry { runtime, wires, .. } = &mut reg.fsm[i];
                        let mut ws = CtxWires {
                            ctx,
                            map: wires,
                            cycle: Duration::ZERO,
                        };
                        if matches!(
                            runtime.commit_peeked_reclaim(
                                entry.caller,
                                &dc.service,
                                peeked,
                                &mut ws,
                                &mut spec.peek_scratch,
                            ),
                            Ok(true)
                        ) {
                            continue;
                        }
                    }
                    Handle::Batched(i) => {
                        let BatchedUnitEntry { link, wires, .. } = &mut reg.batched[i];
                        let mut ws = CtxWires {
                            ctx,
                            map: wires,
                            cycle: Duration::ZERO,
                        };
                        if matches!(
                            link.commit_peeked(entry.caller, &dc.service, peeked, &mut ws),
                            Ok(true)
                        ) {
                            continue;
                        }
                    }
                    Handle::Native(_) => {}
                }
            }
            let (result, stable) = apply_deferred_call(&mut reg, handle, entry.caller, dc, ctx);
            let ok = matches!(&result, Ok(out) if *out == dc.outcome)
                && spec.call_stables.get(k) == Some(&stable);
            if !ok {
                diverged = Some((k, result, stable));
                break;
            }
        }
    }
    if let Some((k, result, stable)) = diverged {
        // Reconstruct the applied prefix into the shell's pooled memo
        // deque: calls 0..k matched the speculation exactly, call k
        // answered `result`. Service names are interned `Arc<str>`s, so
        // the memo costs refcount bumps plus the outcome clones — no
        // per-fallback deque or string allocation once the shell is
        // warm.
        let stables = &spec.call_stables;
        spec.fb.memo.clear();
        spec.fb.memo.extend(
            effects.calls[..k]
                .iter()
                .enumerate()
                .map(|(j, dc)| MemoCall {
                    binding: dc.binding,
                    service: dc.service.clone(),
                    result: Ok(dc.outcome.clone()),
                    stable: stables[j],
                }),
        );
        spec.fb.memo.push_back(MemoCall {
            binding: effects.calls[k].binding,
            service: effects.calls[k].service.clone(),
            result,
            stable,
        });
        spec.effects = effects;
        *fallbacks += 1;
        return step_module(
            modules,
            idx,
            registry,
            trace,
            park,
            park_blocked,
            ctx,
            &mut spec.fb,
        );
    }
    // Speculation validated: install the buffered effects. Buffers are
    // drained, not moved, so their capacity stays with the shell —
    // including trace value vectors, which the columnar log copies out
    // of and the shell's pool gets back.
    let mut modules = modules.borrow_mut();
    let entry = &mut modules[idx];
    let fsm = entry.module.fsm();
    for (v, val) in spec.var_writes.drain(..) {
        entry.vars[v.index()] = val;
    }
    entry.exec = spec.exec.clone();
    for (sig, v) in spec.drives.drain(..) {
        ctx.drive(sig, v);
    }
    if !spec.traces.is_empty() {
        let now = ctx.now().as_fs();
        let mut tlog = trace.borrow_mut();
        for (label, mut values) in spec.traces.drain(..) {
            tlog.record_interned(now, &entry.name, &label, &values);
            values.clear();
            spec.vals_pool.push(values);
        }
    }
    if spec.meta.from != spec.meta.to {
        // The state name only changes on a real transition — skip the
        // per-activation render for self-loops and fixed points, and
        // reuse the status String's buffer when it does.
        entry.status.state.clear();
        entry
            .status
            .state
            .push_str(fsm.state(entry.exec.current()).name());
    }
    entry.status.activations += 1;
    park.modules_stepped.set(park.modules_stepped.get() + 1);
    let parkable = park_blocked
        && spec.meta.from == spec.meta.to
        && spec.changes == 0
        && spec.pending_stable
        && effects.pending.len() == effects.service_calls as usize;
    spec.effects = effects;
    if parkable {
        let mut watch = std::mem::take(&mut spec.pending_watch);
        watch.extend_from_slice(&entry.ports);
        watch.sort_unstable();
        watch.dedup();
        Ok(Some(watch))
    } else {
        Ok(None)
    }
}

/// The single owner of module and unit stepping: shard pools, hashed
/// unit placement, park accounting. Unified here so modules and units —
/// the same FSM semantics in the paper's model — share one
/// activation-gating architecture.
struct ActivationScheduler {
    cfg: SchedulingConfig,
    /// Per-domain unit shard pool: shards never mix clock domains
    /// ([`DomainPlacement::Isolated`]), so hashed placement runs inside
    /// the member's domain pool. Entry `d` indexes
    /// [`ActivationScheduler::unit_shards`] for domain `d`.
    unit_pools: Vec<PoolState>,
    /// Per-domain module shard pool (creation-order fill inside the
    /// domain). Entry `d` holds indices into
    /// [`ActivationScheduler::module_shards`].
    module_pools: Vec<Vec<usize>>,
    /// Per-domain shard pool of the two-phase driver. Entry `d` holds
    /// indices into [`DriverState::shards`].
    driver_pools: Vec<PoolState>,
    unit_shards: Vec<Rc<RefCell<ShardState>>>,
    module_shards: Vec<Rc<RefCell<ShardState>>>,
    /// The two-phase module scheduler ([`CallApplication::Deferred`]):
    /// one kernel process owning every module shard, running all step
    /// phases before a single commit phase.
    driver: Option<Rc<RefCell<DriverState>>>,
    /// Per-process state of the legacy one-process-per-module path
    /// ([`ModuleScheduling::PerModule`]), in module order. Shared with
    /// the process closures so snapshot/restore can reach it.
    per_module: Vec<Rc<RefCell<PerModuleProcState>>>,
    /// Per-unit `seen_events` gates of the legacy
    /// [`UnitScheduling::PerUnit`] path, in unit-registration order.
    /// Shared with the clocked closures so snapshot/restore can reach
    /// them.
    per_unit_seen: Vec<Rc<RefCell<Vec<u64>>>>,
    park: Rc<ParkCounters>,
}

/// One clock domain's shard pool: how many members were ever placed in
/// it (drives hashed shard assignment *within* the pool) and which
/// global shards belong to it.
#[derive(Debug, Default)]
struct PoolState {
    members: usize,
    shards: Vec<usize>,
}

/// The mutable scheduling state of one legacy per-module process —
/// everything its closure used to keep as captured locals, hoisted
/// behind an `Rc` so whole-backplane snapshots can capture and restore
/// it.
#[derive(Debug, Clone, PartialEq, Eq)]
struct PerModuleProcState {
    /// Whether the process currently holds a clock-demand unit (true
    /// while unparked and not halted).
    counted: bool,
    parked: bool,
    watch: Vec<SignalId>,
    wait_dirty: bool,
}

/// One member of the two-phase driver: a module, its activation clock,
/// and the wires that re-arm it while parked.
struct DriverMember {
    module: usize,
    clk: SignalId,
    watch: Vec<SignalId>,
}

/// One module shard of the two-phase driver (active/parked split, like
/// [`ShardState`], but stepped by the shared driver process).
///
/// Parked-member wakeups are owned by a per-shard *watcher* kernel
/// process whose sensitivity covers only this shard's watch wires —
/// keeping sensitivity churn local to the shard (the driver itself
/// stays pinned to the two activation clocks), exactly like the
/// immediate path's per-shard processes.
struct DriverShard {
    members: Vec<DriverMember>,
    active: Vec<u32>,
    parked: Vec<u32>,
    /// The clock-demand ledger of this shard's domain (shards never mix
    /// domains, so parking a member surrenders demand on exactly one
    /// domain's generators).
    demand: Rc<ClockDemand>,
    /// Toggled by the driver when it parks members of this shard, so
    /// the watcher re-arms on the new watch set.
    poke: SignalId,
    /// Whether the watcher must recompute its sensitivity.
    watch_dirty: bool,
    /// Whether the shard's watcher process performed its first
    /// (elaboration) run and armed itself on the poke signal. Lives
    /// here — not in the watcher's closure — so a forked backplane's
    /// fresh watcher resumes mid-stream instead of re-running its
    /// elaboration arm (which would clobber the restored watch
    /// sensitivity).
    watcher_armed: bool,
}

/// Shared state of the two-phase driver process.
struct DriverState {
    shards: Vec<DriverShard>,
    /// Members ever placed (drives hashed shard assignment).
    placed: usize,
    /// Whether the driver surrendered its members' clock demand after a
    /// backplane error (kept here so snapshot/restore can carry it).
    halted: bool,
    /// Adaptive work-stealing chunk size of the threaded step phase
    /// (see [`STEP_CHUNK_INIT`]).
    step_chunk: usize,
    /// Exponential moving average (alpha 1/8) of bytes retained per
    /// reset speculation shell — the baseline the commit loop compares
    /// against when deciding to reclaim an oversized shell.
    shell_ewma: u64,
    runs: u64,
    skipped: u64,
    wire_wakeups: u64,
    commit_calls: u64,
    fallbacks: u64,
    /// Per-worker stepped-activation counts (threaded step phase).
    thread_runs: Vec<u64>,
    /// Scratch-arena and work-stealing counters (threaded step phase).
    scratch: ScratchStats,
    /// Pooled commit-phase buffers, reused every cycle: the speculated
    /// results indexed by stepping-set position, the arena each shell
    /// came from, and the module-id commit order.
    specs: Vec<Option<SpecResult>>,
    origins: Vec<u32>,
    order: Vec<usize>,
    /// Pooled per-cycle scratch: the stepping set and the park list,
    /// taken at the start of each driver run and handed back (capacity
    /// kept) at the end — the last per-cycle allocations of the
    /// steady-state driver.
    items: Vec<(usize, usize, u32)>,
    to_park: Vec<(usize, u32, Vec<SignalId>)>,
}

/// The backplane resources a scheduler registration needs.
struct SchedCtx<'a> {
    sim: &'a mut Simulator,
    registry: &'a Rc<RefCell<Registry>>,
    modules: &'a Rc<RefCell<Vec<ModuleEntry>>>,
    error: &'a Rc<RefCell<Option<String>>>,
    trace: &'a Rc<RefCell<TraceLog>>,
    /// The target clock domain's demand ledger.
    demand: &'a Rc<ClockDemand>,
    /// The target domain's hardware activation clock.
    hw_clk: SignalId,
    /// Index of the target domain (selects the per-domain shard pools).
    domain: usize,
    /// Every domain's activation clocks, in domain order — the
    /// two-phase driver's clock sensitivity.
    clocks: &'a [SignalId],
}

impl ActivationScheduler {
    fn new(cfg: SchedulingConfig) -> Self {
        ActivationScheduler {
            cfg,
            unit_pools: vec![PoolState::default()],
            module_pools: vec![vec![]],
            driver_pools: vec![PoolState::default()],
            unit_shards: vec![],
            module_shards: vec![],
            driver: None,
            per_module: vec![],
            per_unit_seen: vec![],
            park: Rc::new(ParkCounters::default()),
        }
    }

    /// Opens the shard pools of a freshly created clock domain
    /// ([`Cosim::add_clock_domain`]).
    fn add_domain_pool(&mut self) {
        self.unit_pools.push(PoolState::default());
        self.module_pools.push(vec![]);
        self.driver_pools.push(PoolState::default());
    }

    /// Places a unit member into a shard chosen by hashing its id over
    /// the shards allowed so far (one more per `shard_size` members).
    /// A hash landing past the open shards creates the next one, so
    /// shard count still tracks `members / shard_size` while
    /// creation-order runs are scattered. Placement runs inside the
    /// member's clock-domain pool: shards never mix domains, so every
    /// member of a shard shares one activation clock and one
    /// [`ClockDemand`] ledger.
    fn add_unit_member(&mut self, ctx: SchedCtx<'_>, handle: Handle, wires: Vec<SignalId>) {
        let shard_size = match self.cfg.units {
            UnitScheduling::Sharded { shard_size } => shard_size.max(1),
            UnitScheduling::PerUnit => unreachable!("shard members only exist when sharded"),
        };
        let domain = ctx.domain;
        let (k, pool_len) = {
            let pool = &mut self.unit_pools[domain];
            let k = pool.members;
            pool.members += 1;
            (k, pool.shards.len())
        };
        let allowed = k / shard_size + 1;
        let hashed = (splitmix64(k as u64) % allowed as u64) as usize;
        let clk = ctx.hw_clk;
        ctx.demand.register(ctx.sim);
        let target = if hashed >= pool_len {
            let state = Rc::new(RefCell::new(ShardState::new()));
            let label = format!("unit_shard{}", self.unit_shards.len());
            Self::register_shard_process(
                ctx,
                Rc::clone(&state),
                Rc::clone(&self.park),
                self.cfg.park_blocked,
                label,
            );
            self.unit_shards.push(state);
            let global = self.unit_shards.len() - 1;
            self.unit_pools[domain].shards.push(global);
            global
        } else {
            self.unit_pools[domain].shards[hashed]
        };
        self.unit_shards[target]
            .borrow_mut()
            .push_member(ShardMember {
                body: MemberBody::Unit(handle),
                clk,
                seen_events: vec![0; wires.len()],
                watch: wires.clone(),
                wires,
            });
    }

    /// Places a module member into the open module shard (creation
    /// order — under immediate call application, module service calls
    /// mutate unit state in place, so the global step order must match
    /// the per-module path).
    fn add_module_member(&mut self, ctx: SchedCtx<'_>, idx: usize, clk: SignalId) {
        let shard_size = match self.cfg.modules {
            ModuleScheduling::Sharded { shard_size } => shard_size.max(1),
            ModuleScheduling::PerModule => unreachable!("shard members only exist when sharded"),
        };
        let domain = ctx.domain;
        ctx.demand.register(ctx.sim);
        let open = self.module_pools[domain]
            .last()
            .copied()
            .filter(|&gi| self.module_shards[gi].borrow().members.len() < shard_size);
        let state = match open {
            Some(gi) => Rc::clone(&self.module_shards[gi]),
            None => {
                let state = Rc::new(RefCell::new(ShardState::new()));
                let label = format!("module_shard{}", self.module_shards.len());
                Self::register_shard_process(
                    ctx,
                    Rc::clone(&state),
                    Rc::clone(&self.park),
                    self.cfg.park_blocked,
                    label,
                );
                self.module_shards.push(Rc::clone(&state));
                self.module_pools[domain].push(self.module_shards.len() - 1);
                state
            }
        };
        state.borrow_mut().push_member(ShardMember {
            body: MemberBody::Module(idx),
            clk,
            wires: vec![],
            seen_events: vec![],
            watch: vec![],
        });
    }

    /// Places a module into the two-phase driver
    /// ([`CallApplication::Deferred`]): hashed placement spreads module
    /// ids over the open shards exactly like unit placement (the commit
    /// phase restores the deterministic global order, so placement is
    /// free to balance load); creation-order placement is kept for
    /// ablation. The driver's single kernel process is registered on
    /// first use — at the same process-table position the immediate
    /// path's first module shard would occupy, so the delta-relative
    /// order against unit shard processes is preserved.
    fn add_deferred_module(&mut self, mut ctx: SchedCtx<'_>, idx: usize, clk: SignalId) {
        let shard_size = match self.cfg.modules {
            ModuleScheduling::Sharded { shard_size } => shard_size.max(1),
            ModuleScheduling::PerModule => unreachable!("deferred calls require sharded modules"),
        };
        ctx.demand.register(ctx.sim);
        let driver = match &self.driver {
            Some(d) => Rc::clone(d),
            None => {
                let state = Rc::new(RefCell::new(DriverState {
                    shards: vec![],
                    placed: 0,
                    halted: false,
                    step_chunk: STEP_CHUNK_INIT,
                    shell_ewma: 0,
                    runs: 0,
                    skipped: 0,
                    wire_wakeups: 0,
                    commit_calls: 0,
                    fallbacks: 0,
                    thread_runs: vec![],
                    scratch: ScratchStats::default(),
                    specs: vec![],
                    origins: vec![],
                    order: vec![],
                    items: vec![],
                    to_park: vec![],
                }));
                Self::register_driver_process(
                    &mut ctx,
                    Rc::clone(&state),
                    Rc::clone(&self.park),
                    self.cfg.park_blocked,
                    self.cfg.parallelism,
                    self.cfg.step_fanout_min,
                );
                self.driver = Some(Rc::clone(&state));
                state
            }
        };
        let domain = ctx.domain;
        let mut st = driver.borrow_mut();
        st.placed += 1;
        let k = self.driver_pools[domain].members;
        self.driver_pools[domain].members += 1;
        let open = st.shards.len();
        let pool = &self.driver_pools[domain];
        let target = match self.cfg.placement {
            ModulePlacement::Hashed => {
                let allowed = k / shard_size + 1;
                let hashed = (splitmix64(k as u64) % allowed as u64) as usize;
                if hashed >= pool.shards.len() {
                    open
                } else {
                    pool.shards[hashed]
                }
            }
            ModulePlacement::CreationOrder => match pool.shards.last() {
                Some(&gi) if st.shards[gi].members.len() < shard_size => gi,
                _ => open,
            },
        };
        if target == open {
            drop(st);
            let poke = ctx.sim.add_bit(format!("MODULE_SHARD{open}_POKE"));
            Self::register_driver_watcher(
                &mut ctx,
                Rc::clone(&driver),
                open,
                Rc::clone(&self.park),
            );
            st = driver.borrow_mut();
            st.shards.push(DriverShard {
                members: vec![],
                active: vec![],
                parked: vec![],
                demand: Rc::clone(ctx.demand),
                poke,
                watch_dirty: false,
                watcher_armed: false,
            });
            self.driver_pools[domain].shards.push(open);
        }
        let shard = &mut st.shards[target];
        let mi = shard.members.len() as u32;
        shard.members.push(DriverMember {
            module: idx,
            clk,
            watch: vec![],
        });
        shard.active.push(mi);
    }

    /// Registers the per-shard watcher: a kernel process owning the
    /// shard's parked-member wakeups. Its sensitivity is the shard's
    /// parked watch wires plus the shard's poke signal (toggled by the
    /// driver after parking members), so sensitivity churn stays local
    /// to the shard — the driver itself never re-registers sensitivity.
    fn register_driver_watcher(
        ctx: &mut SchedCtx<'_>,
        state: Rc<RefCell<DriverState>>,
        shard_idx: usize,
        park: Rc<ParkCounters>,
    ) {
        let error = Rc::clone(ctx.error);
        let demand = Rc::clone(ctx.demand);
        ctx.sim.add_process(
            format!("module_shard{shard_idx}_watch"),
            FnProcess::new(move |pctx| {
                if error.borrow().is_some() {
                    return Wait::Forever;
                }
                let mut st = state.borrow_mut();
                let st = &mut *st;
                let Some(shard) = st.shards.get_mut(shard_idx) else {
                    return Wait::Same;
                };
                if !shard.watcher_armed {
                    // First (elaboration) run: arm on the poke signal so
                    // the first park can hand over its watch set.
                    shard.watcher_armed = true;
                    shard.watch_dirty = false;
                    return Wait::Event(vec![shard.poke]);
                }
                let was_dormant = shard.active.is_empty();
                let mut resumed = 0usize;
                let mut i = 0;
                while i < shard.parked.len() {
                    let mi = shard.parked[i] as usize;
                    if shard.members[mi].watch.iter().any(|&w| pctx.event(w)) {
                        let idx = shard.parked.swap_remove(i);
                        let pos = shard.active.partition_point(|&a| a < idx);
                        shard.active.insert(pos, idx);
                        park.resumed.set(park.resumed.get() + 1);
                        park.parked_now.set(park.parked_now.get() - 1);
                        shard.watch_dirty = true;
                        resumed += 1;
                    } else {
                        i += 1;
                    }
                }
                if resumed > 0 {
                    demand.resume(resumed, pctx);
                    if was_dormant {
                        st.wire_wakeups += 1;
                    }
                }
                if !shard.watch_dirty {
                    return Wait::Same;
                }
                shard.watch_dirty = false;
                let mut sens = pctx.wait_buf();
                sens.push(shard.poke);
                for &pi in &shard.parked {
                    sens.extend_from_slice(&shard.members[pi as usize].watch);
                }
                sens.sort_unstable();
                sens.dedup();
                Wait::Event(sens)
            }),
        );
    }

    /// Registers the kernel process that owns every deferred module
    /// shard: on each clock event it runs the **step phase** (pure
    /// speculation, optionally fanned out over scoped worker threads)
    /// for every active member whose clock rose, then the single
    /// **commit phase**, applying all buffered call deltas in
    /// `(module id, call index)` order — the deterministic order that
    /// makes hashed placement and threading invisible.
    ///
    /// The driver's sensitivity is pinned to the two activation clocks;
    /// parked-member wakeups belong to the per-shard watcher processes
    /// ([`ActivationScheduler::register_driver_watcher`]). When every
    /// clocked body is parked the clock generators themselves stop
    /// ([`ClockDemand`]), so a fully-parked backplane still costs
    /// nothing.
    fn register_driver_process(
        ctx: &mut SchedCtx<'_>,
        state: Rc<RefCell<DriverState>>,
        park: Rc<ParkCounters>,
        park_blocked: bool,
        parallelism: Parallelism,
        step_fanout_min: usize,
    ) {
        let registry = Rc::clone(ctx.registry);
        let modules = Rc::clone(ctx.modules);
        let error = Rc::clone(ctx.error);
        let trace = Rc::clone(ctx.trace);
        // Every domain's activation clocks: the driver owns deferred
        // module shards of all domains, and each member still steps
        // only on rising edges of its own domain's clock.
        let clocks = ctx.clocks.to_vec();
        // Persistent worker pool: n-1 OS threads plus the kernel thread.
        let mut pool = match parallelism {
            Parallelism::Threads(n) if n >= 1 => Some(StepPool::new(n - 1)),
            _ => None,
        };
        let pool_width = match parallelism {
            Parallelism::Threads(n) => n,
            Parallelism::Off => 0,
        };
        let mut registered = false;
        // Pooled immediate-execution env for the inline (non-speculative)
        // path: pure scratch, owned by the process closure so it never
        // enters a snapshot.
        let mut imm = ImmScratch::default();
        ctx.sim.add_process(
            "module_phase_driver",
            FnProcess::new(move |pctx| {
                let wait = if registered {
                    Wait::Same
                } else {
                    registered = true;
                    // Members only ever step on a *rising* edge of their
                    // clock, so falling edges need not wake the driver
                    // at all — half the wake traffic gone.
                    Wait::Rising(clocks.clone())
                };
                if error.borrow().is_some() {
                    let mut st = state.borrow_mut();
                    if !st.halted {
                        st.halted = true;
                        for s in &st.shards {
                            s.demand.park(s.members.len() - s.parked.len());
                        }
                    }
                    return Wait::Forever;
                }
                let mut st = state.borrow_mut();
                let st = &mut *st;
                st.runs += 1;
                // Collect this cycle's stepping set into the pooled
                // buffer (capacity kept across runs).
                let mut items = std::mem::take(&mut st.items);
                items.clear();
                let mut parked_skipped = 0u64;
                for (si, shard) in st.shards.iter().enumerate() {
                    let mut edge_seen = false;
                    for &ai in &shard.active {
                        let m = &shard.members[ai as usize];
                        if pctx.rose(m.clk) {
                            edge_seen = true;
                            items.push((m.module, si, ai));
                        }
                    }
                    if edge_seen {
                        parked_skipped += shard.parked.len() as u64;
                    }
                }
                st.skipped += parked_skipped;
                if !items.is_empty() {
                    let mut to_park = std::mem::take(&mut st.to_park);
                    to_park.clear();
                    let mut fatal: Option<String> = None;
                    // The step/commit split exists to let the step phase
                    // fan out over worker threads; when this cycle's
                    // stepping set would run inline anyway (no pool, or
                    // below the fan-out threshold), speculation is pure
                    // overhead — the driver owns every module shard, so
                    // stepping the set directly in `(module id)` order
                    // IS the deterministic commit order, with immediate
                    // semantics and none of the buffering cost.
                    let speculative = pool.is_some() && items.len() >= step_fanout_min;
                    if !speculative {
                        items.sort_unstable_by_key(|&(mi, _, _)| mi);
                        for &(mi, si, ai) in &items {
                            match step_module(
                                &modules,
                                mi,
                                &registry,
                                &trace,
                                &park,
                                park_blocked,
                                pctx,
                                &mut imm,
                            ) {
                                Ok(Some(watch)) => to_park.push((si, ai, watch)),
                                Ok(None) => {}
                                Err(msg) => {
                                    fatal = Some(msg);
                                    break;
                                }
                            }
                        }
                    } else {
                        // STEP PHASE: pure speculation, snapshot-only
                        // reads, fanned out over the worker pool via the
                        // shared work-stealing cursor (the `speculative`
                        // gate guarantees the pool exists). Each worker
                        // fills recycled shells from its own scratch
                        // arena, so the steady state allocates nothing.
                        let (chunks_before, steals_before) = (st.scratch.chunks, st.scratch.steals);
                        {
                            let modules_ref = modules.borrow();
                            let reg_ref = registry.borrow();
                            let entries: &[ModuleEntry] = &modules_ref;
                            let reg: &Registry = &reg_ref;
                            let pool = pool.as_mut().expect("speculative implies a pool");
                            if st.thread_runs.len() < pool_width {
                                st.thread_runs.resize(pool_width, 0);
                            }
                            let job = StepJobCtx {
                                entries,
                                reg,
                                snapshot: &*pctx,
                                items: &items,
                                chunk: st.step_chunk,
                                cursor: std::sync::atomic::AtomicUsize::new(0),
                                fair: items.len().div_ceil(pool.workers.len() + 1),
                            };
                            pool.run(
                                &job,
                                &mut st.specs,
                                &mut st.origins,
                                &mut st.thread_runs,
                                &mut st.scratch,
                            );
                        }
                        // Adapt the chunk size to the observed cost
                        // spread: steals mean a worker had to rebalance
                        // past its fair share — shrink so the tail
                        // behind a heavy item stays short; a steal-free
                        // cycle with at least four chunks per worker
                        // can afford coarser grains (less cursor
                        // contention).
                        let cycle_chunks = st.scratch.chunks - chunks_before;
                        let cycle_steals = st.scratch.steals - steals_before;
                        if cycle_steals > 0 {
                            let next = (st.step_chunk / 2).max(STEP_CHUNK_MIN);
                            if next != st.step_chunk {
                                st.step_chunk = next;
                                st.scratch.chunk_shrinks += 1;
                            }
                        } else if cycle_chunks >= 4 * pool_width as u64 {
                            let next = (st.step_chunk * 2).min(STEP_CHUNK_MAX);
                            if next != st.step_chunk {
                                st.step_chunk = next;
                                st.scratch.chunk_grows += 1;
                            }
                        }
                        st.scratch.chunk_now = st.step_chunk as u64;
                        // COMMIT PHASE: deterministic creation order.
                        // Each committed shell is reset and pushed back
                        // to the arena that filled it.
                        let mut order = std::mem::take(&mut st.order);
                        order.clear();
                        order.extend(0..items.len());
                        order.sort_unstable_by_key(|&i| items[i].0);
                        let mut cycle_bytes = 0u64;
                        for &oi in &order {
                            let (mi, si, ai) = items[oi];
                            let mut spec = st.specs[oi].take().expect("spec consumed once");
                            let verdict = commit_module(
                                &modules,
                                mi,
                                &mut spec,
                                &registry,
                                &trace,
                                &park,
                                park_blocked,
                                pctx,
                                &mut st.commit_calls,
                                &mut st.fallbacks,
                            );
                            spec.reset();
                            let bytes = spec.approx_bytes() as u64;
                            // Track the typical per-shell working set
                            // (EWMA, alpha 1/8) and reclaim outliers: a
                            // shell retaining several times the average
                            // (a trace burst, one pathological
                            // activation) would otherwise pin that heap
                            // in the arena forever. The comparison uses
                            // the *pre-observation* average — folding
                            // the outlier's own bytes in first would
                            // raise the baseline by bytes/8 and let a
                            // large-enough outlier mask itself.
                            let typical = st.shell_ewma;
                            st.shell_ewma = if typical == 0 {
                                bytes
                            } else {
                                typical - typical / 8 + bytes / 8
                            };
                            if bytes > SHELL_SHRINK_FLOOR && typical > 0 && bytes / 4 > typical {
                                spec.shrink();
                                st.scratch.shells_shrunk += 1;
                            }
                            cycle_bytes += spec.approx_bytes() as u64;
                            if let Some(pool) = pool.as_mut() {
                                pool.scratches[st.origins[oi] as usize].shells.push(spec);
                            }
                            match verdict {
                                Ok(Some(watch)) => to_park.push((si, ai, watch)),
                                Ok(None) => {}
                                Err(msg) => {
                                    fatal = Some(msg);
                                    break;
                                }
                            }
                        }
                        st.order = order;
                        st.scratch.bytes_high_water = st.scratch.bytes_high_water.max(cycle_bytes);
                    }
                    if let Some(msg) = fatal {
                        *error.borrow_mut() = Some(msg);
                        if !st.halted {
                            st.halted = true;
                            for s in &st.shards {
                                s.demand.park(s.members.len() - s.parked.len());
                            }
                        }
                        return Wait::Forever;
                    }
                    if !to_park.is_empty() {
                        park.parked.set(park.parked.get() + to_park.len() as u64);
                        park.parked_now.set(park.parked_now.get() + to_park.len());
                        for (si, ai, watch) in to_park.drain(..) {
                            let shard = &mut st.shards[si];
                            shard.demand.park(1);
                            let member = &mut shard.members[ai as usize];
                            // Hand the displaced buffer back to the
                            // scratch pool so the next park's watch
                            // list builds in recycled capacity.
                            let mut displaced = std::mem::replace(&mut member.watch, watch);
                            if imm.watch.capacity() < displaced.capacity() {
                                displaced.clear();
                                imm.watch = displaced;
                            }
                            shard.active.retain(|&a| a != ai);
                            shard.parked.push(ai);
                            // Hand the new watch set to the shard's
                            // watcher process (event next delta).
                            if !shard.watch_dirty {
                                shard.watch_dirty = true;
                                let next = match pctx.read(shard.poke) {
                                    Value::Bit(cosma_core::Bit::One) => cosma_core::Bit::Zero,
                                    _ => cosma_core::Bit::One,
                                };
                                pctx.drive(shard.poke, Value::Bit(next));
                            }
                        }
                    }
                    st.to_park = to_park;
                }
                st.items = items;
                wait
            }),
        );
    }

    /// Registers the kernel process driving one shard. Each run it
    /// re-arms parked members whose watch wires evented, steps active
    /// members on their clock's rising edges (parking the ones that
    /// prove stable), and re-declares its sensitivity only when
    /// membership changed: the active members' clocks plus the parked
    /// members' watch wires — no clocks at all once everyone is parked,
    /// which is what makes a dormant shard free.
    fn register_shard_process(
        ctx: SchedCtx<'_>,
        state: Rc<RefCell<ShardState>>,
        park: Rc<ParkCounters>,
        park_blocked: bool,
        label: String,
    ) {
        let registry = Rc::clone(ctx.registry);
        let modules = Rc::clone(ctx.modules);
        let error = Rc::clone(ctx.error);
        let trace = Rc::clone(ctx.trace);
        let demand = Rc::clone(ctx.demand);
        // Pooled immediate-execution env for this shard's module
        // members, plus the per-run park list: pure scratch, owned by
        // the process closure so it never enters a snapshot.
        let mut imm = ImmScratch::default();
        let mut to_park: Vec<u32> = vec![];
        ctx.sim.add_process(
            label,
            FnProcess::new(move |pctx| {
                if error.borrow().is_some() {
                    let mut st = state.borrow_mut();
                    if !st.halted {
                        st.halted = true;
                        demand.park(st.members.len() - st.parked.len());
                    }
                    return Wait::Forever;
                }
                let mut st = state.borrow_mut();
                let st = &mut *st;
                st.runs += 1;
                let was_dormant = st.active.is_empty();
                // Re-arm parked members whose watch wires evented in
                // this delta.
                if !st.parked.is_empty() {
                    let mut resumed_any = 0usize;
                    let mut i = 0;
                    while i < st.parked.len() {
                        let mi = st.parked[i] as usize;
                        st.watch_probes += st.members[mi].watch.len() as u64;
                        if st.members[mi].watch.iter().any(|&w| pctx.event(w)) {
                            let idx = st.parked.swap_remove(i);
                            let pos = st.active.partition_point(|&a| a < idx);
                            st.active.insert(pos, idx);
                            park.resumed.set(park.resumed.get() + 1);
                            park.parked_now.set(park.parked_now.get() - 1);
                            st.wait_dirty = true;
                            resumed_any += 1;
                        } else {
                            i += 1;
                        }
                    }
                    demand.resume(resumed_any, pctx);
                    if was_dormant && resumed_any > 0 {
                        st.wire_wakeups += 1;
                    }
                }
                // Step active members whose clock rose.
                let ShardState {
                    members,
                    active,
                    parked,
                    wait_dirty,
                    halted,
                    units_stepped,
                    units_skipped,
                    ..
                } = st;
                let mut edge_seen = false;
                to_park.clear();
                for &ai in active.iter() {
                    let member = &mut members[ai as usize];
                    if !pctx.rose(member.clk) {
                        continue;
                    }
                    edge_seen = true;
                    let verdict = match member.body {
                        MemberBody::Unit(handle) => {
                            let changed =
                                wires_changed(pctx, &member.wires, &mut member.seen_events);
                            *units_stepped += 1;
                            let mut reg = registry.borrow_mut();
                            match step_unit_member(&mut reg, handle, pctx, changed) {
                                Ok(stable) => {
                                    if stable {
                                        // A stable unit watches its own
                                        // wires — refill the member's
                                        // buffer instead of cloning the
                                        // wire list on every park.
                                        member.watch.clear();
                                        member.watch.extend_from_slice(&member.wires);
                                        to_park.push(ai);
                                    }
                                    Ok(None)
                                }
                                Err(msg) => Err(msg),
                            }
                        }
                        MemberBody::Module(idx) => step_module(
                            &modules,
                            idx,
                            &registry,
                            &trace,
                            &park,
                            park_blocked,
                            pctx,
                            &mut imm,
                        ),
                    };
                    match verdict {
                        Ok(Some(watch)) => {
                            // Hand the displaced buffer back to the
                            // scratch the new watch list came from.
                            let mut displaced = std::mem::replace(&mut member.watch, watch);
                            if imm.watch.capacity() < displaced.capacity() {
                                displaced.clear();
                                imm.watch = displaced;
                            }
                            to_park.push(ai);
                        }
                        Ok(None) => {}
                        Err(msg) => {
                            *error.borrow_mut() = Some(msg);
                            if !*halted {
                                *halted = true;
                                demand.park(members.len() - parked.len());
                            }
                            return Wait::Forever;
                        }
                    }
                }
                if edge_seen {
                    *units_skipped += parked.len() as u64;
                }
                if !to_park.is_empty() {
                    demand.park(to_park.len());
                    active.retain(|a| !to_park.contains(a));
                    parked.extend_from_slice(&to_park);
                    park.parked.set(park.parked.get() + to_park.len() as u64);
                    park.parked_now.set(park.parked_now.get() + to_park.len());
                    *wait_dirty = true;
                }
                if !st.wait_dirty {
                    return Wait::Same;
                }
                st.wait_dirty = false;
                let mut sens = pctx.wait_buf();
                for &ai in &st.active {
                    sens.push(st.members[ai as usize].clk);
                }
                for &pi in &st.parked {
                    sens.extend_from_slice(&st.members[pi as usize].watch);
                }
                sens.sort_unstable();
                sens.dedup();
                if st.parked.is_empty() {
                    // Pure clock sensitivity: members only step on
                    // rising edges, so skip falling-edge wakes. With
                    // parked members the watch wires need any-edge
                    // wakes and the mixed list stays unfiltered.
                    Wait::Rising(sens)
                } else {
                    Wait::Event(sens)
                }
            }),
        );
    }

    /// Aggregate statistics across both shard pools, the two-phase
    /// driver and the shared park counters.
    fn stats(&self) -> ShardStats {
        let mut s = ShardStats {
            shards: self.unit_shards.len() + self.module_shards.len(),
            modules_stepped: self.park.modules_stepped.get(),
            members_parked: self.park.parked.get(),
            members_resumed: self.park.resumed.get(),
            parked_now: self.park.parked_now.get(),
            ..ShardStats::default()
        };
        for shard in self.unit_shards.iter().chain(&self.module_shards) {
            let st = shard.borrow();
            if st.active.is_empty() && !st.members.is_empty() {
                s.dormant_shards += 1;
            }
            s.shard_runs += st.runs;
            s.units_stepped += st.units_stepped;
            s.units_skipped += st.units_skipped;
            s.wire_wakeups += st.wire_wakeups;
            s.watch_probes += st.watch_probes;
        }
        if let Some(driver) = &self.driver {
            let st = driver.borrow();
            s.shards += st.shards.len();
            for shard in &st.shards {
                if shard.active.is_empty() && !shard.members.is_empty() {
                    s.dormant_shards += 1;
                }
            }
            s.shard_runs += st.runs;
            s.units_skipped += st.skipped;
            s.wire_wakeups += st.wire_wakeups;
            s.commit_calls = st.commit_calls;
            s.commit_fallbacks = st.fallbacks;
            s.step_thread_runs = st.thread_runs.clone();
            s.scratch = st.scratch.clone();
        }
        s
    }
}

/// One activation of a unit shard member at a rising clock edge.
/// Returns whether the member proved itself stable (parkable).
fn step_unit_member(
    reg: &mut Registry,
    handle: Handle,
    ctx: &mut ProcCtx<'_>,
    inputs_changed: bool,
) -> Result<bool, String> {
    match handle {
        Handle::Fsm(i) => {
            let FsmUnitEntry {
                name,
                runtime,
                wires,
                ..
            } = &mut reg.fsm[i];
            let mut ws = CtxWires {
                ctx,
                map: wires,
                cycle: Duration::ZERO,
            };
            runtime
                .step_controller_if_active(&mut ws, inputs_changed)
                .map_err(|e| format!("unit {name} controller: {e}"))?;
            Ok(runtime.controller_stable())
        }
        Handle::Native(i) => {
            let entry = &mut reg.native[i];
            entry.unit.step();
            sync_native_occ(entry, ctx);
            Ok(!entry.unit.needs_step())
        }
        Handle::Batched(i) => {
            let BatchedUnitEntry {
                name,
                link,
                wires,
                cycle,
                ..
            } = &mut reg.batched[i];
            let mut ws = CtxWires {
                ctx,
                map: wires,
                cycle: *cycle,
            };
            let active = link
                .pump(&mut ws, inputs_changed)
                .map_err(|e| format!("batched link {name}: {e}"))?;
            Ok(!active)
        }
    }
}

/// The co-simulation backplane.
///
/// # Examples
///
/// A software producer and a hardware consumer exchanging one value over
/// the library handshake unit:
///
/// ```
/// use cosma_cosim::{Cosim, CosimConfig};
/// use cosma_comm::handshake_unit;
/// use cosma_core::{ModuleBuilder, ModuleKind, Type, Value, Expr, Stmt, ServiceCall};
/// use cosma_sim::Duration;
///
/// let mut cosim = Cosim::new(CosimConfig::default());
/// let link = cosim.add_fsm_unit("link", handshake_unit("hs", Type::INT16));
///
/// let mut p = ModuleBuilder::new("producer", ModuleKind::Software);
/// let done = p.var("D", Type::Bool, Value::Bool(false));
/// let b = p.binding("iface", "hs");
/// let s_put = p.state("PUT");
/// let s_end = p.state("END");
/// p.actions(s_put, vec![Stmt::Call(ServiceCall {
///     binding: b, service: "put".into(), args: vec![Expr::int(42)],
///     done: Some(done), result: None,
/// })]);
/// p.transition(s_put, Some(Expr::var(done)), s_end);
/// p.transition(s_end, None, s_end);
/// p.initial(s_put);
///
/// let mut c = ModuleBuilder::new("consumer", ModuleKind::Hardware);
/// let got = c.var("GOT", Type::INT16, Value::Int(0));
/// let cdone = c.var("D", Type::Bool, Value::Bool(false));
/// let cb = c.binding("iface", "hs");
/// let s_get = c.state("GET");
/// let s_end2 = c.state("END");
/// c.actions(s_get, vec![Stmt::Call(ServiceCall {
///     binding: cb, service: "get".into(), args: vec![],
///     done: Some(cdone), result: Some(got),
/// })]);
/// c.transition(s_get, Some(Expr::var(cdone)), s_end2);
/// c.transition(s_end2, None, s_end2);
/// c.initial(s_get);
///
/// let pm = cosim.add_module(&p.build()?, &[("iface", link)])?;
/// let cm = cosim.add_module(&c.build()?, &[("iface", link)])?;
/// cosim.run_for(Duration::from_us(10))?;
/// assert_eq!(cosim.module_status(cm).state, "END");
/// assert_eq!(cosim.module_var(cm, "GOT"), Some(Value::Int(42)));
/// # let _ = pm;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Cosim {
    sim: Simulator,
    registry: Rc<RefCell<Registry>>,
    handles: Vec<Handle>,
    unit_names: HashMap<String, UnitId>,
    error: Rc<RefCell<Option<String>>>,
    trace: Rc<RefCell<TraceLog>>,
    modules: Rc<RefCell<Vec<ModuleEntry>>>,
    sched: ActivationScheduler,
    /// The clocking configuration this backplane was built with, kept so
    /// [`Cosim::fork`] can construct an identical twin.
    config: CosimConfig,
    /// Construction log: one entry per `add_*` call, in call order.
    /// [`Cosim::fork`] replays the recipe onto a fresh backplane, which
    /// deterministically rebuilds identical structure — same signal and
    /// process ids, same hashed shard placement — before restoring the
    /// snapshot's state onto it.
    recipe: Vec<RecipeOp>,
    /// Clock domains, base domain first. Each carries its activation
    /// clock pair and its clock-edge demand ledger: the domain's
    /// generators idle whenever its demand reaches zero — on an empty
    /// backplane, after every body halted, **and while every body is
    /// parked** — so a deadlocked or finished system truly goes
    /// quiescent ([`Cosim::run_to_quiescence`]) instead of toggling its
    /// activation clocks forever. A parked body re-armed by a wire
    /// event bumps the demand back and kicks the generators awake.
    domains: Vec<ClockDomainEntry>,
    /// Every domain's activation clocks in domain order
    /// (`[hw0, sw0, hw1, sw1, ...]`) — the two-phase driver's clock
    /// sensitivity.
    clock_list: Vec<SignalId>,
    /// Boundary half-links installed on this backplane (partitioned
    /// co-simulation). Boundary closures reach state the fork recipe
    /// cannot replay (queues shared with another backplane), so
    /// [`Cosim::fork`] is rejected while any exist.
    boundaries: usize,
}

impl fmt::Debug for Cosim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cosim")
            .field("modules", &self.modules.borrow().len())
            .field("units", &self.handles.len())
            .finish_non_exhaustive()
    }
}

impl Cosim {
    /// Creates a backplane with HW and SW activation clocks.
    #[must_use]
    pub fn new(config: CosimConfig) -> Self {
        let mut sim = Simulator::new();
        let hw_clk = sim.add_bit("HW_CLK");
        let sw_clk = sim.add_bit("SW_CLK");
        let kick = sim.add_bit("CLK_KICK");
        let demand = Rc::new(ClockDemand {
            demand: Cell::new(0),
            kick,
        });
        install_clock_generators(
            &mut sim,
            "",
            (hw_clk, config.hw_cycle),
            (sw_clk, config.sw_cycle),
            &demand,
        );
        Cosim {
            sim,
            registry: Rc::new(RefCell::new(Registry {
                fsm: vec![],
                native: vec![],
                batched: vec![],
            })),
            handles: vec![],
            unit_names: HashMap::new(),
            error: Rc::new(RefCell::new(None)),
            trace: Rc::new(RefCell::new(TraceLog::new())),
            modules: Rc::new(RefCell::new(vec![])),
            sched: ActivationScheduler::new(SchedulingConfig::sharded()),
            config,
            recipe: vec![],
            domains: vec![ClockDomainEntry {
                name: String::new(),
                ratio: ClockRatio::UNIT,
                hw_clk,
                sw_clk,
                demand,
            }],
            clock_list: vec![hw_clk, sw_clk],
            boundaries: 0,
        }
    }

    /// Creates a clock domain running at `num:den` times the base
    /// domain's *period* — `add_clock_domain("slow", 4, 1)` gives a
    /// domain whose members see one rising edge for every four base
    /// edges (a quarter-rate domain). All domains share the global
    /// femtosecond time axis; only the activation-clock periods differ.
    ///
    /// Domains must be created while the backplane is empty (before any
    /// unit or module), so the two-phase driver's clock sensitivity and
    /// the per-domain shard pools are complete before placement starts.
    ///
    /// # Errors
    ///
    /// Returns [`CosimError::Setup`] when units or modules were already
    /// added, when the configuration requests mixed-domain shards
    /// ([`DomainPlacement::Mixed`]), when either ratio component is
    /// zero, when the scaled period would truncate to zero, or when
    /// `name` is empty or already taken.
    pub fn add_clock_domain(
        &mut self,
        name: &str,
        num: u64,
        den: u64,
    ) -> Result<DomainId, CosimError> {
        if !self.handles.is_empty() || !self.modules.borrow().is_empty() {
            return Err(CosimError::Setup(
                "clock domains must be created before units or modules".to_string(),
            ));
        }
        if self.sched.cfg.domains == DomainPlacement::Mixed {
            return Err(CosimError::Setup(
                "mixed-domain shards are unsupported: a shard's park/demand accounting \
                 is keyed to one domain's clock generators (use DomainPlacement::Isolated)"
                    .to_string(),
            ));
        }
        let Some(ratio) = ClockRatio::try_new(num, den) else {
            return Err(CosimError::Setup(format!(
                "clock domain {name}: rate ratio components must be nonzero (got {num}:{den})"
            )));
        };
        let hw_cycle = ratio.scale(self.config.hw_cycle);
        let sw_cycle = ratio.scale(self.config.sw_cycle);
        if hw_cycle.halved() == Duration::ZERO || sw_cycle.halved() == Duration::ZERO {
            return Err(CosimError::Setup(format!(
                "clock domain {name}: ratio {ratio} scales the activation period to zero"
            )));
        }
        if name.is_empty() {
            return Err(CosimError::Setup(
                "clock domain name must be non-empty (the base domain is unnamed)".to_string(),
            ));
        }
        if self.domains.iter().any(|d| d.name == name) {
            return Err(CosimError::Setup(format!(
                "clock domain {name} already exists"
            )));
        }
        self.recipe.push(RecipeOp::ClockDomain {
            name: name.to_string(),
            num,
            den,
        });
        let hw_clk = self.sim.add_bit(format!("{name}.HW_CLK"));
        let sw_clk = self.sim.add_bit(format!("{name}.SW_CLK"));
        let kick = self.sim.add_bit(format!("{name}.CLK_KICK"));
        let demand = Rc::new(ClockDemand {
            demand: Cell::new(0),
            kick,
        });
        install_clock_generators(
            &mut self.sim,
            &format!("{name}."),
            (hw_clk, hw_cycle),
            (sw_clk, sw_cycle),
            &demand,
        );
        self.clock_list.push(hw_clk);
        self.clock_list.push(sw_clk);
        self.domains.push(ClockDomainEntry {
            name: name.to_string(),
            ratio,
            hw_clk,
            sw_clk,
            demand,
        });
        self.sched.add_domain_pool();
        Ok(DomainId(self.domains.len() - 1))
    }

    /// Looks up a clock domain by name (the base domain is unnamed —
    /// use [`DomainId::BASE`]).
    #[must_use]
    pub fn find_domain(&self, name: &str) -> Option<DomainId> {
        self.domains
            .iter()
            .position(|d| d.name == name)
            .map(DomainId)
    }

    /// Number of clock domains (at least one: the base domain).
    #[must_use]
    pub fn domain_count(&self) -> usize {
        self.domains.len()
    }

    /// Period ratio of a domain versus the base domain.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this backplane.
    #[must_use]
    pub fn domain_ratio(&self, d: DomainId) -> ClockRatio {
        self.domains[d.0].ratio
    }

    /// Pins every clock domain's activation-clock generators awake by
    /// registering one permanent unit of clock demand per domain.
    ///
    /// A pinned backplane's clock edges stay on the exact
    /// `k · period/2` grid forever — the generators never idle, so a
    /// resumed body always waits for the next grid edge instead of
    /// seeing a kick-aligned edge at its resume instant. Partitioned
    /// runs require this: every partition (and the monolithic oracle it
    /// is compared against) must produce the same edge grid regardless
    /// of how the cut distributes demand. The price is that a pinned
    /// backplane never goes quiescent on its own
    /// ([`Cosim::run_to_quiescence`] will always hit its limit).
    pub fn pin_clock_domains(&mut self) {
        for d in &self.domains {
            d.demand.register(&mut self.sim);
        }
    }

    /// Selects the full scheduling configuration (unit dispatch, module
    /// dispatch, parking). Must be called before any unit or module is
    /// added.
    ///
    /// # Errors
    ///
    /// Returns [`CosimError::Setup`] if units or modules were already
    /// added, or a shard size is zero.
    pub fn set_scheduling(&mut self, cfg: SchedulingConfig) -> Result<(), CosimError> {
        if !self.handles.is_empty() || !self.modules.borrow().is_empty() {
            return Err(CosimError::Setup(
                "scheduling must be chosen before adding units or modules".to_string(),
            ));
        }
        cfg.validate()?;
        if cfg.domains == DomainPlacement::Mixed && self.domains.len() > 1 {
            return Err(CosimError::Setup(
                "mixed-domain shards are unsupported: a shard's park/demand accounting \
                 is keyed to one domain's clock generators (use DomainPlacement::Isolated)"
                    .to_string(),
            ));
        }
        self.sched.cfg = cfg;
        Ok(())
    }

    /// Selects the unit-scheduling strategy, leaving module scheduling
    /// and parking unchanged. Must be called before any unit is added.
    ///
    /// # Errors
    ///
    /// Returns [`CosimError::Setup`] if units were already added.
    pub fn set_unit_scheduling(&mut self, s: UnitScheduling) -> Result<(), CosimError> {
        if !self.handles.is_empty() {
            return Err(CosimError::Setup(
                "unit scheduling must be chosen before adding units".to_string(),
            ));
        }
        if let UnitScheduling::Sharded { shard_size } = s {
            if shard_size == 0 {
                return Err(CosimError::Setup("shard size must be nonzero".to_string()));
            }
        }
        self.sched.cfg.units = s;
        Ok(())
    }

    /// The active scheduling configuration.
    #[must_use]
    pub fn scheduling(&self) -> SchedulingConfig {
        self.sched.cfg
    }

    /// The active unit-scheduling strategy.
    #[must_use]
    pub fn unit_scheduling(&self) -> UnitScheduling {
        self.sched.cfg.units
    }

    /// Aggregate activation-scheduler statistics (shard counters are
    /// zero under the per-unit/per-module paths; park counters cover
    /// both).
    #[must_use]
    pub fn shard_stats(&self) -> ShardStats {
        self.sched.stats()
    }

    fn sched_ctx(&mut self, domain: usize) -> (&mut ActivationScheduler, SchedCtx<'_>) {
        let d = &self.domains[domain];
        (
            &mut self.sched,
            SchedCtx {
                sim: &mut self.sim,
                registry: &self.registry,
                modules: &self.modules,
                error: &self.error,
                trace: &self.trace,
                demand: &d.demand,
                hw_clk: d.hw_clk,
                domain,
                clocks: &self.clock_list,
            },
        )
    }

    /// The underlying kernel (for signal pokes, VCD, stats).
    #[must_use]
    pub fn sim(&self) -> &Simulator {
        &self.sim
    }

    /// Mutable kernel access.
    pub fn sim_mut(&mut self) -> &mut Simulator {
        &mut self.sim
    }

    /// The base domain's hardware clock signal.
    #[must_use]
    pub fn hw_clk(&self) -> SignalId {
        self.domains[0].hw_clk
    }

    /// The base domain's software activation clock signal.
    #[must_use]
    pub fn sw_clk(&self) -> SignalId {
        self.domains[0].sw_clk
    }

    /// A domain's hardware clock signal.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this backplane.
    #[must_use]
    pub fn domain_hw_clk(&self, d: DomainId) -> SignalId {
        self.domains[d.0].hw_clk
    }

    /// Instantiates an FSM communication unit: one kernel signal per wire
    /// (`<name>.<WIRE>`), plus a clocked controller process.
    pub fn add_fsm_unit(&mut self, name: &str, spec: Arc<CommUnitSpec>) -> UnitId {
        self.add_fsm_unit_in(DomainId::BASE, name, spec)
            .expect("the base domain always exists")
    }

    /// Checks that a caller-supplied domain id belongs to this
    /// backplane.
    fn check_domain(&self, domain: DomainId, what: &str) -> Result<(), CosimError> {
        if domain.0 >= self.domains.len() {
            return Err(CosimError::Setup(format!(
                "{what}: clock domain #{} does not exist (this backplane has {})",
                domain.0,
                self.domains.len()
            )));
        }
        Ok(())
    }

    /// [`Cosim::add_fsm_unit`] into an explicit clock domain: the
    /// unit's controller steps on that domain's HW clock.
    ///
    /// # Errors
    ///
    /// Returns [`CosimError::Setup`] if the domain id does not belong
    /// to this backplane.
    pub fn add_fsm_unit_in(
        &mut self,
        domain: DomainId,
        name: &str,
        spec: Arc<CommUnitSpec>,
    ) -> Result<UnitId, CosimError> {
        self.check_domain(domain, name)?;
        self.recipe.push(RecipeOp::FsmUnit {
            name: name.to_string(),
            spec: Arc::clone(&spec),
            domain: domain.0,
        });
        let wires: Vec<SignalId> = spec
            .wires()
            .iter()
            .map(|w| {
                self.sim.add_signal(
                    format!("{name}.{}", w.name()),
                    w.ty().clone(),
                    w.init().clone(),
                )
            })
            .collect();
        let has_controller = spec.controller().is_some();
        let runtime = FsmUnitRuntime::new(spec);
        // Completion wires per service: the blocked protocol's read-set
        // mapped onto kernel signals (what a parked caller waits on).
        let completion: HashMap<String, Vec<SignalId>> = runtime
            .spec()
            .services()
            .iter()
            .map(|svc| {
                (
                    svc.name().to_string(),
                    runtime
                        .completion_signals(svc.name())
                        .iter()
                        .map(|p| wires[p.index()])
                        .collect(),
                )
            })
            .collect();
        let idx = {
            let mut reg = self.registry.borrow_mut();
            reg.fsm.push(FsmUnitEntry {
                name: name.to_string(),
                runtime,
                wires: wires.clone(),
                completion,
            });
            reg.fsm.len() - 1
        };
        if has_controller {
            match self.sched.cfg.units {
                UnitScheduling::Sharded { .. } => {
                    let (sched, ctx) = self.sched_ctx(domain.0);
                    sched.add_unit_member(ctx, Handle::Fsm(idx), wires);
                }
                UnitScheduling::PerUnit => {
                    let registry = Rc::clone(&self.registry);
                    let error = Rc::clone(&self.error);
                    let clk = self.domains[domain.0].hw_clk;
                    // The kernel's monotone per-signal event counts tell the
                    // controller whether any of its wires changed since its
                    // last activation; provably idle controllers are then
                    // skipped (see FsmUnitRuntime::step_controller_if_active).
                    let watched = wires;
                    // The gate state is shared with the scheduler so
                    // snapshots can capture and restore it.
                    let seen = Rc::new(RefCell::new(vec![0u64; watched.len()]));
                    self.sched.per_unit_seen.push(Rc::clone(&seen));
                    let demand = Rc::clone(&self.domains[domain.0].demand);
                    demand.register(&mut self.sim);
                    self.sim.add_clocked(
                        format!("{name}.controller"),
                        clk,
                        Edge::Rising,
                        move |ctx| {
                            if error.borrow().is_some() {
                                demand.park(1);
                                return ClockControl::Halt;
                            }
                            let inputs_changed =
                                wires_changed(ctx, &watched, &mut seen.borrow_mut());
                            let mut reg = registry.borrow_mut();
                            let FsmUnitEntry {
                                name,
                                runtime,
                                wires,
                                ..
                            } = &mut reg.fsm[idx];
                            let mut ws = CtxWires {
                                ctx,
                                map: wires,
                                cycle: Duration::ZERO,
                            };
                            if let Err(e) =
                                runtime.step_controller_if_active(&mut ws, inputs_changed)
                            {
                                *error.borrow_mut() = Some(format!("unit {name} controller: {e}"));
                                demand.park(1);
                                return ClockControl::Halt;
                            }
                            ClockControl::Continue
                        },
                    );
                }
            }
        }
        let id = UnitId(self.handles.len());
        self.handles.push(Handle::Fsm(idx));
        self.unit_names.insert(name.to_string(), id);
        Ok(id)
    }

    /// Installs a batched bus link ([`BatchedLink`]): producer `put`
    /// calls enqueue into a vec-backed payload queue, whole batches cross
    /// the unit's wire-level handshake in a *single* bus transaction, and
    /// consumer `get` calls pop delivered values. Modules bind to it like
    /// any other unit and call its `put`/`get` services. Batch size
    /// adapts to the observed queue depth, up to `max_batch`.
    ///
    /// `max_batch` bounds one bus transaction; `capacity` bounds total
    /// link occupancy (producer backpressure). The bus timing model is
    /// [`BusTiming::LengthOnly`]; use [`Cosim::add_batched_unit_with`]
    /// for cycle-accurate payload beats.
    ///
    /// # Errors
    ///
    /// Returns [`CosimError::Setup`] if `max_batch` or `capacity` is
    /// zero, or `max_batch` exceeds `i16::MAX` (the INT16 `DATA` wire's
    /// largest representable batch length — the ceiling is never
    /// silently shrunk).
    pub fn add_batched_unit(
        &mut self,
        name: &str,
        data_ty: Type,
        max_batch: usize,
        capacity: usize,
    ) -> Result<UnitId, CosimError> {
        self.add_batched_unit_with(name, data_ty, max_batch, capacity, BusTiming::LengthOnly)
    }

    /// Installs a batched bus link with an explicit [`BusTiming`] model:
    /// [`BusTiming::LengthOnly`] for the co-simulation fast path,
    /// [`BusTiming::PayloadBeats`] for cycle-accurate bus occupancy
    /// (one wire word per value per cycle on `DATA` after the
    /// arbitration handshake) — the calibration side of
    /// [`crate::annotate_batch_latency`].
    ///
    /// # Errors
    ///
    /// Same as [`Cosim::add_batched_unit`].
    pub fn add_batched_unit_with(
        &mut self,
        name: &str,
        data_ty: Type,
        max_batch: usize,
        capacity: usize,
        timing: BusTiming,
    ) -> Result<UnitId, CosimError> {
        self.add_batched_unit_in_with(DomainId::BASE, name, data_ty, max_batch, capacity, timing)
    }

    /// [`Cosim::add_batched_unit_with`] into an explicit clock domain:
    /// the link pumps on that domain's HW clock, and its pre-scheduled
    /// payload beats ride the domain's (ratio-scaled) cycle — a 4:1
    /// domain's bus moves one word every fourth base period.
    ///
    /// # Errors
    ///
    /// Same as [`Cosim::add_batched_unit`], plus [`CosimError::Setup`]
    /// if the domain id does not belong to this backplane.
    pub fn add_batched_unit_in_with(
        &mut self,
        domain: DomainId,
        name: &str,
        data_ty: Type,
        max_batch: usize,
        capacity: usize,
        timing: BusTiming,
    ) -> Result<UnitId, CosimError> {
        self.check_domain(domain, name)?;
        let link = BatchedLink::try_new(name, data_ty.clone(), max_batch, capacity)
            .map_err(|e| CosimError::Setup(e.to_string()))?
            .with_timing(timing);
        self.recipe.push(RecipeOp::BatchedUnit {
            name: name.to_string(),
            data_ty,
            max_batch,
            capacity,
            timing,
            domain: domain.0,
        });
        let wires: Vec<SignalId> = link
            .spec()
            .wires()
            .iter()
            .map(|w| {
                self.sim.add_signal(
                    format!("{name}.{}", w.name()),
                    w.ty().clone(),
                    w.init().clone(),
                )
            })
            .collect();
        let completion: HashMap<String, Vec<SignalId>> = ["put", "get"]
            .iter()
            .map(|svc| {
                (
                    (*svc).to_string(),
                    link.completion_signals(svc)
                        .iter()
                        .map(|p| wires[p.index()])
                        .collect(),
                )
            })
            .collect();
        // Activation gate and park watch: only the wires someone other
        // than the link's own pump can event (`PENDING`, raised by a
        // producer's `put`). Watching the full wire table would wake
        // the parked link — and re-arm its controller gate — once per
        // self-driven beat/handshake event for no behavioural gain.
        let wake: Vec<SignalId> = link
            .pump_wake_signals()
            .iter()
            .map(|p| wires[p.index()])
            .collect();
        let idx = {
            let mut reg = self.registry.borrow_mut();
            reg.batched.push(BatchedUnitEntry {
                name: name.to_string(),
                link,
                wires: wires.clone(),
                cycle: self.domains[domain.0].ratio.scale(self.config.hw_cycle),
                completion,
            });
            reg.batched.len() - 1
        };
        match self.sched.cfg.units {
            UnitScheduling::Sharded { .. } => {
                let (sched, ctx) = self.sched_ctx(domain.0);
                sched.add_unit_member(ctx, Handle::Batched(idx), wake);
            }
            UnitScheduling::PerUnit => {
                let registry = Rc::clone(&self.registry);
                let error = Rc::clone(&self.error);
                let clk = self.domains[domain.0].hw_clk;
                let watched = wake;
                let seen = Rc::new(RefCell::new(vec![0u64; watched.len()]));
                self.sched.per_unit_seen.push(Rc::clone(&seen));
                let demand = Rc::clone(&self.domains[domain.0].demand);
                demand.register(&mut self.sim);
                self.sim
                    .add_clocked(format!("{name}.pump"), clk, Edge::Rising, move |ctx| {
                        if error.borrow().is_some() {
                            demand.park(1);
                            return ClockControl::Halt;
                        }
                        let inputs_changed = wires_changed(ctx, &watched, &mut seen.borrow_mut());
                        let mut reg = registry.borrow_mut();
                        let BatchedUnitEntry {
                            name,
                            link,
                            wires,
                            cycle,
                            ..
                        } = &mut reg.batched[idx];
                        let mut ws = CtxWires {
                            ctx,
                            map: wires,
                            cycle: *cycle,
                        };
                        if let Err(e) = link.pump(&mut ws, inputs_changed) {
                            *error.borrow_mut() = Some(format!("batched link {name}: {e}"));
                            demand.park(1);
                            return ClockControl::Halt;
                        }
                        ClockControl::Continue
                    });
            }
        }
        let id = UnitId(self.handles.len());
        self.handles.push(Handle::Batched(idx));
        self.unit_names.insert(name.to_string(), id);
        Ok(id)
    }

    /// Installs the *sending* half of a boundary link: a regular batched
    /// unit whose delivered values are exported — stamped with
    /// `now + latency` — into the shared [`BoundaryQueue`] on every
    /// rising edge of the domain's HW clock. Producers in this
    /// partition `put` into it exactly as they would into a local
    /// [`BatchedLink`]; the matching *in* half
    /// ([`Cosim::add_boundary_in`]) on the other partition re-injects
    /// the values after the annotated latency.
    ///
    /// The exporter holds one permanent unit of clock demand (a
    /// boundary must keep observing its clock even when the rest of the
    /// partition is parked), and the backplane refuses [`Cosim::fork`]
    /// while boundary halves exist — their closures reach a queue the
    /// construction recipe cannot replay.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn add_boundary_out(
        &mut self,
        domain: DomainId,
        name: &str,
        data_ty: Type,
        max_batch: usize,
        capacity: usize,
        timing: BusTiming,
        latency: Duration,
        queue: Rc<RefCell<BoundaryQueue>>,
    ) -> Result<UnitId, CosimError> {
        if latency == Duration::ZERO {
            return Err(CosimError::Setup(format!(
                "boundary link {name}: latency must be positive (zero-latency coupling \
                 would need same-instant cross-partition delivery, which the optimistic \
                 sync cannot order deterministically)"
            )));
        }
        let id =
            self.add_batched_unit_in_with(domain, name, data_ty, max_batch, capacity, timing)?;
        let Handle::Batched(idx) = self.handles[id.0] else {
            unreachable!("add_batched_unit_in_with returns a batched handle");
        };
        let registry = Rc::clone(&self.registry);
        let error = Rc::clone(&self.error);
        let demand = Rc::clone(&self.domains[domain.0].demand);
        demand.register(&mut self.sim);
        let clk = self.domains[domain.0].hw_clk;
        self.sim
            .add_clocked(format!("{name}.export"), clk, Edge::Rising, move |ctx| {
                if error.borrow().is_some() {
                    demand.park(1);
                    return ClockControl::Halt;
                }
                let now = ctx.now();
                let mut reg = registry.borrow_mut();
                let BatchedUnitEntry {
                    name,
                    link,
                    wires,
                    cycle,
                    ..
                } = &mut reg.batched[idx];
                loop {
                    let mut ws = CtxWires {
                        ctx,
                        map: wires,
                        cycle: *cycle,
                    };
                    match link.get(BOUNDARY_CALLER, &mut ws) {
                        Ok(out) if out.done => {
                            let v = out.result.expect("done get always carries a value");
                            queue.borrow_mut().entries.push((now + latency, v));
                        }
                        Ok(_) => break,
                        Err(e) => {
                            *error.borrow_mut() = Some(format!("boundary link {name}: {e}"));
                            demand.park(1);
                            return ClockControl::Halt;
                        }
                    }
                }
                ClockControl::Continue
            });
        self.boundaries += 1;
        Ok(id)
    }

    /// Installs the *receiving* half of a boundary link: a regular
    /// batched unit into which queue entries whose arrival time has
    /// been reached are injected (`put`) on every rising edge of the
    /// domain's HW clock. Consumers in this partition `get` from it
    /// exactly as from a local [`BatchedLink`]. A `put` rejected by
    /// backpressure leaves the cursor in place and retries next edge.
    ///
    /// Holds one permanent unit of clock demand, like
    /// [`Cosim::add_boundary_out`].
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn add_boundary_in(
        &mut self,
        domain: DomainId,
        name: &str,
        data_ty: Type,
        max_batch: usize,
        capacity: usize,
        timing: BusTiming,
        queue: Rc<RefCell<BoundaryQueue>>,
    ) -> Result<UnitId, CosimError> {
        let id =
            self.add_batched_unit_in_with(domain, name, data_ty, max_batch, capacity, timing)?;
        let Handle::Batched(idx) = self.handles[id.0] else {
            unreachable!("add_batched_unit_in_with returns a batched handle");
        };
        let registry = Rc::clone(&self.registry);
        let error = Rc::clone(&self.error);
        let demand = Rc::clone(&self.domains[domain.0].demand);
        demand.register(&mut self.sim);
        let clk = self.domains[domain.0].hw_clk;
        self.sim
            .add_clocked(format!("{name}.inject"), clk, Edge::Rising, move |ctx| {
                if error.borrow().is_some() {
                    demand.park(1);
                    return ClockControl::Halt;
                }
                let now = ctx.now();
                let mut reg = registry.borrow_mut();
                let BatchedUnitEntry {
                    name,
                    link,
                    wires,
                    cycle,
                    ..
                } = &mut reg.batched[idx];
                loop {
                    let next = {
                        let q = queue.borrow();
                        q.entries.get(q.cursor).cloned()
                    };
                    let Some((t_arr, v)) = next else { break };
                    if t_arr > now {
                        break;
                    }
                    let mut ws = CtxWires {
                        ctx,
                        map: wires,
                        cycle: *cycle,
                    };
                    match link.put(BOUNDARY_CALLER, v, &mut ws) {
                        Ok(out) if out.done => queue.borrow_mut().cursor += 1,
                        Ok(_) => break,
                        Err(e) => {
                            *error.borrow_mut() = Some(format!("boundary link {name}: {e}"));
                            demand.park(1);
                            return ClockControl::Halt;
                        }
                    }
                }
                ClockControl::Continue
            });
        self.boundaries += 1;
        Ok(id)
    }

    /// Installs a native (platform) unit. Units with real background
    /// activity ([`NativeUnit::needs_step`]) are stepped once per HW
    /// cycle; purely call-driven units cost nothing per cycle under
    /// sharded scheduling.
    ///
    /// A unit exposing [`NativeUnit::occupancy`] gets a kernel `OCC`
    /// signal (`<name>.OCC`) mirroring its queue occupancy, driven after
    /// every call and step. That makes native state changes
    /// wire-visible: `completion_signals` become non-empty, so a caller
    /// blocked on the unit (e.g. `get` against an empty FIFO) *parks*
    /// on occupancy events instead of burning one no-op activation per
    /// clock edge.
    pub fn add_native_unit(&mut self, name: &str, unit: Box<dyn NativeUnit>) -> UnitId {
        self.add_native_unit_in(DomainId::BASE, name, unit)
            .expect("the base domain always exists")
    }

    /// [`Cosim::add_native_unit`] into an explicit clock domain: the
    /// unit's background steps run on that domain's HW clock.
    ///
    /// # Errors
    ///
    /// Returns [`CosimError::Setup`] if the domain id does not belong
    /// to this backplane.
    pub fn add_native_unit_in(
        &mut self,
        domain: DomainId,
        name: &str,
        unit: Box<dyn NativeUnit>,
    ) -> Result<UnitId, CosimError> {
        self.check_domain(domain, name)?;
        self.recipe.push(RecipeOp::NativeUnit {
            name: name.to_string(),
            domain: domain.0,
        });
        let occ_init = unit.occupancy();
        let occ = occ_init.map(|v| {
            self.sim
                .add_signal(format!("{name}.OCC"), Type::INT16, Value::Int(v))
        });
        let completion: Vec<SignalId> = occ.into_iter().collect();
        let idx = {
            let mut reg = self.registry.borrow_mut();
            reg.native.push(NativeEntry {
                name: name.to_string(),
                unit,
                occ,
                occ_driven: occ_init.unwrap_or(0),
                completion: completion.clone(),
            });
            reg.native.len() - 1
        };
        match self.sched.cfg.units {
            UnitScheduling::Sharded { .. } => {
                let (sched, ctx) = self.sched_ctx(domain.0);
                sched.add_unit_member(ctx, Handle::Native(idx), completion);
            }
            UnitScheduling::PerUnit => {
                let registry = Rc::clone(&self.registry);
                let clk = self.domains[domain.0].hw_clk;
                let demand = Rc::clone(&self.domains[domain.0].demand);
                demand.register(&mut self.sim);
                self.sim
                    .add_clocked(format!("{name}.step"), clk, Edge::Rising, move |ctx| {
                        let mut reg = registry.borrow_mut();
                        let entry = &mut reg.native[idx];
                        entry.unit.step();
                        sync_native_occ(entry, ctx);
                        ClockControl::Continue
                    });
            }
        }
        let id = UnitId(self.handles.len());
        self.handles.push(Handle::Native(idx));
        self.unit_names.insert(name.to_string(), id);
        Ok(id)
    }

    /// Looks up a unit by instance name.
    #[must_use]
    pub fn unit(&self, name: &str) -> Option<UnitId> {
        self.unit_names.get(name).copied()
    }

    /// Adds a module whose ports get fresh kernel signals named
    /// `<module>.<PORT>`. `bindings` maps binding names to unit ids.
    ///
    /// # Errors
    ///
    /// Returns [`CosimError::Setup`] if a binding name is unknown or left
    /// unbound.
    pub fn add_module(
        &mut self,
        module: &Module,
        bindings: &[(&str, UnitId)],
    ) -> Result<CosimModuleId, CosimError> {
        self.add_module_in(DomainId::BASE, module, bindings)
    }

    /// [`Cosim::add_module`] into an explicit clock domain: the module
    /// activates on that domain's HW or SW clock (by
    /// [`ModuleKind`]), so a 4:1 domain's module performs one FSM
    /// transition for every four base-domain activations.
    ///
    /// # Errors
    ///
    /// Same as [`Cosim::add_module`], plus [`CosimError::Setup`] if the
    /// domain id does not belong to this backplane.
    pub fn add_module_in(
        &mut self,
        domain: DomainId,
        module: &Module,
        bindings: &[(&str, UnitId)],
    ) -> Result<CosimModuleId, CosimError> {
        self.check_domain(domain, module.name())?;
        let ports: Vec<SignalId> = module
            .ports()
            .iter()
            .map(|p| {
                self.sim.add_signal(
                    format!("{}.{}", module.name(), p.name()),
                    p.ty().clone(),
                    p.ty().default_value(),
                )
            })
            .collect();
        let id = self.install_module(domain, module, bindings, ports)?;
        // Ports recorded as `None`: the fork replays by creating fresh
        // port signals, which — replayed in call order — get the same
        // ids the originals got.
        self.recipe.push(RecipeOp::Module {
            module: module.clone(),
            bindings: bindings
                .iter()
                .map(|(n, u)| ((*n).to_string(), *u))
                .collect(),
            ports: None,
            domain: domain.0,
        });
        Ok(id)
    }

    /// Adds a module with an explicit port→signal map (used to share nets
    /// between the processes of one VHDL entity). `ports[i]` carries the
    /// signal for the module's `PortId(i)`.
    ///
    /// # Errors
    ///
    /// Returns [`CosimError::Setup`] on arity mismatch or unresolved
    /// bindings.
    pub fn add_module_with_ports(
        &mut self,
        module: &Module,
        bindings: &[(&str, UnitId)],
        ports: Vec<SignalId>,
    ) -> Result<CosimModuleId, CosimError> {
        let id = self.install_module(DomainId::BASE, module, bindings, ports.clone())?;
        self.recipe.push(RecipeOp::Module {
            module: module.clone(),
            bindings: bindings
                .iter()
                .map(|(n, u)| ((*n).to_string(), *u))
                .collect(),
            ports: Some(ports),
            domain: 0,
        });
        Ok(id)
    }

    /// Shared installation body behind [`Cosim::add_module`] and
    /// [`Cosim::add_module_with_ports`], which differ only in port-signal
    /// provenance and in what they record on the fork recipe.
    fn install_module(
        &mut self,
        domain: DomainId,
        module: &Module,
        bindings: &[(&str, UnitId)],
        ports: Vec<SignalId>,
    ) -> Result<CosimModuleId, CosimError> {
        if ports.len() != module.ports().len() {
            return Err(CosimError::Setup(format!(
                "module {}: {} signals provided for {} ports",
                module.name(),
                ports.len(),
                module.ports().len()
            )));
        }
        let mut handle_by_binding: Vec<Option<Handle>> = vec![None; module.bindings().len()];
        for (bname, uid) in bindings {
            let Some(bid) = module.binding_id(bname) else {
                return Err(CosimError::Setup(format!(
                    "module {} has no binding named {bname}",
                    module.name()
                )));
            };
            handle_by_binding[bid.index()] = Some(self.handles[uid.0]);
        }
        let mut resolved = Vec::with_capacity(handle_by_binding.len());
        for (i, h) in handle_by_binding.into_iter().enumerate() {
            match h {
                Some(h) => resolved.push(h),
                None => {
                    return Err(CosimError::Setup(format!(
                        "module {}: binding {} left unbound",
                        module.name(),
                        module.bindings()[i].name()
                    )))
                }
            }
        }

        let idx = self.modules.borrow().len();
        let caller = CallerId(idx as u64);
        let clk = match module.kind() {
            ModuleKind::Hardware => self.domains[domain.0].hw_clk,
            ModuleKind::Software => self.domains[domain.0].sw_clk,
        };
        let exec = FsmExec::new(module.fsm());
        let status = ModuleStatus {
            state: module
                .fsm()
                .state(module.fsm().initial())
                .name()
                .to_string(),
            activations: 0,
            error: None,
        };
        self.modules.borrow_mut().push(ModuleEntry {
            name: module.name().to_string(),
            module: module.clone(),
            exec,
            ports,
            vars: module.vars().iter().map(|v| v.init().clone()).collect(),
            var_tys: module.vars().iter().map(|v| v.ty().clone()).collect(),
            bindings: resolved,
            caller,
            status,
        });
        match (self.sched.cfg.modules, self.sched.cfg.calls) {
            (ModuleScheduling::Sharded { .. }, CallApplication::Deferred) => {
                let (sched, ctx) = self.sched_ctx(domain.0);
                sched.add_deferred_module(ctx, idx, clk);
            }
            (ModuleScheduling::Sharded { .. }, CallApplication::Immediate) => {
                let (sched, ctx) = self.sched_ctx(domain.0);
                sched.add_module_member(ctx, idx, clk);
            }
            (ModuleScheduling::PerModule, _) => {
                let demand = Rc::clone(&self.domains[domain.0].demand);
                self.register_per_module_process(idx, clk, demand);
            }
        }
        Ok(CosimModuleId(idx))
    }

    /// Registers the classic one-process-per-module path. The process
    /// steps its module on every rising clock edge; when the module
    /// proves stable it *parks* — swapping its clock sensitivity for
    /// the module's watch wires — unless parking is disabled.
    fn register_per_module_process(&mut self, idx: usize, clk: SignalId, demand: Rc<ClockDemand>) {
        let modules = Rc::clone(&self.modules);
        let registry = Rc::clone(&self.registry);
        let error = Rc::clone(&self.error);
        let trace = Rc::clone(&self.trace);
        let park = Rc::clone(&self.sched.park);
        let park_blocked = self.sched.cfg.park_blocked;
        let name = modules.borrow()[idx].name.clone();
        demand.register(&mut self.sim);
        // The scheduling state lives behind an Rc shared with the
        // activation scheduler, so whole-backplane snapshots can
        // capture and restore it.
        let pstate = Rc::new(RefCell::new(PerModuleProcState {
            counted: true,
            parked: false,
            watch: vec![],
            wait_dirty: true,
        }));
        self.sched.per_module.push(Rc::clone(&pstate));
        // Pooled immediate-execution env for this module's activations:
        // pure scratch, owned by the process closure so it never enters
        // a snapshot.
        let mut imm = ImmScratch::default();
        self.sim.add_process(
            name,
            FnProcess::new(move |ctx| {
                let mut ps = pstate.borrow_mut();
                let ps = &mut *ps;
                if error.borrow().is_some() {
                    if ps.counted {
                        ps.counted = false;
                        demand.park(1);
                    }
                    return Wait::Forever;
                }
                if ps.parked {
                    if ps.watch.iter().any(|&w| ctx.event(w)) {
                        ps.parked = false;
                        ps.wait_dirty = true;
                        park.resumed.set(park.resumed.get() + 1);
                        park.parked_now.set(park.parked_now.get() - 1);
                        demand.resume(1, ctx);
                        ps.counted = true;
                    } else if !ps.wait_dirty {
                        return Wait::Same;
                    }
                }
                if !ps.parked && ctx.rose(clk) {
                    match step_module(
                        &modules,
                        idx,
                        &registry,
                        &trace,
                        &park,
                        park_blocked,
                        ctx,
                        &mut imm,
                    ) {
                        Ok(Some(w)) => {
                            ps.parked = true;
                            // Hand the displaced buffer back to the
                            // scratch pool so the next park's watch
                            // list builds in recycled capacity.
                            let mut displaced = std::mem::replace(&mut ps.watch, w);
                            if imm.watch.capacity() < displaced.capacity() {
                                displaced.clear();
                                imm.watch = displaced;
                            }
                            ps.wait_dirty = true;
                            park.parked.set(park.parked.get() + 1);
                            park.parked_now.set(park.parked_now.get() + 1);
                            demand.park(1);
                            ps.counted = false;
                        }
                        Ok(None) => {}
                        Err(msg) => {
                            *error.borrow_mut() = Some(msg);
                            if ps.counted {
                                ps.counted = false;
                                demand.park(1);
                            }
                            return Wait::Forever;
                        }
                    }
                }
                if !ps.wait_dirty {
                    return Wait::Same;
                }
                ps.wait_dirty = false;
                if ps.parked {
                    if ps.watch.is_empty() {
                        // A provably-halted module: nothing can ever
                        // re-arm it.
                        Wait::Forever
                    } else {
                        let mut sens = ctx.wait_buf();
                        sens.extend_from_slice(&ps.watch);
                        Wait::Event(sens)
                    }
                } else {
                    let mut sens = ctx.wait_buf();
                    sens.push(clk);
                    Wait::Event(sens)
                }
            }),
        );
    }

    /// Assembles a validated [`cosma_core::System`]: every unit instance
    /// and module is added, with bindings resolved as declared.
    ///
    /// # Errors
    ///
    /// Returns [`CosimError::Setup`] on assembly problems.
    pub fn add_system(
        &mut self,
        sys: &cosma_core::System,
    ) -> Result<Vec<CosimModuleId>, CosimError> {
        let unit_ids: Vec<UnitId> = sys
            .units()
            .iter()
            .map(|u| self.add_fsm_unit(u.name(), u.spec().clone()))
            .collect();
        let mut module_ids = vec![];
        for (mi, module) in sys.modules().iter().enumerate() {
            let mut binds: Vec<(&str, UnitId)> = vec![];
            for (bi, b) in module.bindings().iter().enumerate() {
                let Some(ui) = sys.unit_index_for(mi, cosma_core::ids::BindingId::new(bi as u32))
                else {
                    return Err(CosimError::Setup(format!(
                        "system {}: module {} binding {} unbound",
                        sys.name(),
                        module.name(),
                        b.name()
                    )));
                };
                binds.push((b.name(), unit_ids[ui]));
            }
            module_ids.push(self.add_module(module, &binds)?);
        }
        Ok(module_ids)
    }

    /// Runs the co-simulation for a span.
    ///
    /// # Errors
    ///
    /// Returns [`CosimError::Runtime`] if any module or controller hit an
    /// evaluation error, or [`CosimError::Sim`] on kernel errors.
    pub fn run_for(&mut self, d: Duration) -> Result<(), CosimError> {
        self.sim.run_for(d)?;
        if let Some(msg) = self.error.borrow().clone() {
            return Err(CosimError::Runtime(msg));
        }
        Ok(())
    }

    /// Runs until an absolute deadline.
    ///
    /// # Errors
    ///
    /// Same as [`Cosim::run_for`].
    pub fn run_until(&mut self, t: SimTime) -> Result<(), CosimError> {
        self.sim.run_until(t)?;
        if let Some(msg) = self.error.borrow().clone() {
            return Err(CosimError::Runtime(msg));
        }
        Ok(())
    }

    /// Whether any kernel activity is still scheduled
    /// ([`Simulator::pending_activity`]). Once false, further runs can
    /// never change a signal: the backplane is quiescent for good (all
    /// processes halted or waiting forever).
    #[must_use]
    pub fn pending_activity(&self) -> bool {
        self.sim.pending_activity()
    }

    /// Run-to-quiescence: advances until `limit` or until the kernel has
    /// nothing scheduled, whichever comes first. Returns `true` when
    /// quiescence was reached — the final state is then the system's
    /// forever state, and harness loops (e.g.
    /// `run_to_completion`-style chunked polling) can stop early.
    ///
    /// The activation clock generators park once every
    /// backplane-registered clocked body (module, unit controller,
    /// native step) has halted, so an empty or fully-halted backplane
    /// really does quiesce. Processes registered directly through
    /// [`Cosim::sim_mut`] are not counted: they see clock edges only
    /// while at least one backplane body keeps the clocks alive.
    ///
    /// # Errors
    ///
    /// Same as [`Cosim::run_for`].
    pub fn run_to_quiescence(&mut self, limit: SimTime) -> Result<bool, CosimError> {
        self.run_until(limit)?;
        Ok(!self.sim.pending_activity())
    }

    /// Live status of a module.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this backplane.
    #[must_use]
    pub fn module_status(&self, id: CosimModuleId) -> ModuleStatus {
        self.modules.borrow()[id.0].status.clone()
    }

    /// Finds a module id by name.
    #[must_use]
    pub fn find_module(&self, name: &str) -> Option<CosimModuleId> {
        self.modules
            .borrow()
            .iter()
            .position(|e| e.name == name)
            .map(CosimModuleId)
    }

    /// Current value of a module variable, by name.
    #[must_use]
    pub fn module_var(&self, id: CosimModuleId, var: &str) -> Option<Value> {
        let modules = self.modules.borrow();
        let e = &modules[id.0];
        let vid = e.module.var_id(var)?;
        e.vars.get(vid.index()).cloned()
    }

    /// Statistics of a unit instance.
    #[must_use]
    pub fn unit_stats(&self, name: &str) -> Option<UnitStats> {
        let id = self.unit_names.get(name)?;
        let reg = self.registry.borrow();
        match self.handles[id.0] {
            Handle::Fsm(i) => Some(reg.fsm[i].runtime.stats().clone()),
            Handle::Native(i) => Some(reg.native[i].unit.stats().clone()),
            Handle::Batched(i) => Some(reg.batched[i].link.stats()),
        }
    }

    /// Snapshot of the trace log.
    #[must_use]
    pub fn trace_log(&self) -> TraceLog {
        self.trace.borrow().clone()
    }

    /// Appends an external event to the trace log (used by testbench
    /// processes).
    pub fn trace_handle(&self) -> Rc<RefCell<TraceLog>> {
        Rc::clone(&self.trace)
    }
}

/// Installs one clock domain's demand-gated activation-clock generator
/// pair. Like `Simulator::add_clock`, but each generator idles while no
/// clocked body of its domain demands edges (all halted OR all parked)
/// and is re-armed through the domain's kick signal when a parked body
/// resumes.
///
/// Edges stay per-run *process* drives on purpose: a pre-scheduled
/// timed-drive train would make clock events visible in delta 0 of
/// their instant (a process drive lands in delta 1), merging
/// same-instant clock/completion interactions that the scheduler
/// variants resolve through different wake paths — which breaks their
/// delta-level equivalence.
fn install_clock_generators(
    sim: &mut Simulator,
    prefix: &str,
    hw: (SignalId, Duration),
    sw: (SignalId, Duration),
    demand: &Rc<ClockDemand>,
) {
    for (name, clk, period) in [
        (format!("{prefix}hw_clkgen"), hw.0, hw.1),
        (format!("{prefix}sw_clkgen"), sw.0, sw.1),
    ] {
        let demand = Rc::clone(demand);
        let half = period.halved();
        sim.add_process(
            name,
            FnProcess::new(move |ctx| {
                if demand.demand.get() <= 0 {
                    let mut sens = ctx.wait_buf();
                    sens.push(demand.kick);
                    return Wait::Event(sens);
                }
                let next = match ctx.read(clk) {
                    cosma_core::Value::Bit(cosma_core::Bit::One) => cosma_core::Bit::Zero,
                    _ => cosma_core::Bit::One,
                };
                ctx.drive(clk, cosma_core::Value::Bit(next));
                Wait::Timeout(half)
            }),
        );
    }
}

/// Diffs a wire set's monotone kernel event counts against the last
/// observation (updating it in place); `true` when any wire changed
/// since the previous call. This is the activation gate shared by the
/// per-unit clocked processes and the shard scheduler.
fn wires_changed(ctx: &ProcCtx<'_>, watched: &[SignalId], seen: &mut [u64]) -> bool {
    let mut changed = false;
    for (sig, last) in watched.iter().zip(seen.iter_mut()) {
        let n = ctx.event_count(*sig);
        changed |= n != *last;
        *last = n;
    }
    changed
}

/// One construction step of a backplane, recorded by the `add_*`
/// methods so [`Cosim::fork`] can replay it onto a fresh backplane.
/// Replay is deterministic: ids (signals, processes, units, modules)
/// and hashed shard placement depend only on call order, so the twin's
/// structure is bit-identical to the original's.
enum RecipeOp {
    /// [`Cosim::add_clock_domain`] — domains precede every unit and
    /// module, so replay rebuilds the same clock/kick signals and
    /// generator processes before placement starts.
    ClockDomain { name: String, num: u64, den: u64 },
    /// [`Cosim::add_fsm_unit`] — the spec is immutable and shared by
    /// `Arc`, so recording (and replaying) it is a refcount bump.
    FsmUnit {
        name: String,
        spec: Arc<CommUnitSpec>,
        domain: usize,
    },
    /// [`Cosim::add_batched_unit_with`] (and therefore also
    /// [`Cosim::add_batched_unit`], which delegates with
    /// [`BusTiming::LengthOnly`]).
    BatchedUnit {
        name: String,
        data_ty: Type,
        max_batch: usize,
        capacity: usize,
        timing: BusTiming,
        domain: usize,
    },
    /// [`Cosim::add_native_unit`]. The boxed unit itself cannot be
    /// cloned; replay asks the *original* unit for a structural twin
    /// via [`NativeUnit::fork_fresh`] and restores state on top.
    NativeUnit { name: String, domain: usize },
    /// [`Cosim::add_module`] (`ports: None` — replay creates fresh
    /// port signals) or [`Cosim::add_module_with_ports`]
    /// (`ports: Some` — replay reuses the recorded signal ids, which
    /// resolve identically on the twin).
    Module {
        module: Module,
        bindings: Vec<(String, UnitId)>,
        ports: Option<Vec<SignalId>>,
        domain: usize,
    },
}

/// Captured activation-gating state of one shard member.
#[derive(Clone)]
struct MemberSnap {
    seen_events: Vec<u64>,
    watch: Vec<SignalId>,
}

/// Captured state of one unit/module shard ([`ShardState`] minus its
/// immutable member bodies).
#[derive(Clone)]
struct ShardSnap {
    members: Vec<MemberSnap>,
    active: Vec<u32>,
    parked: Vec<u32>,
    wait_dirty: bool,
    halted: bool,
    runs: u64,
    units_stepped: u64,
    units_skipped: u64,
    wire_wakeups: u64,
    watch_probes: u64,
}

fn snap_shard(st: &ShardState) -> ShardSnap {
    ShardSnap {
        members: st
            .members
            .iter()
            .map(|m| MemberSnap {
                seen_events: m.seen_events.clone(),
                watch: m.watch.clone(),
            })
            .collect(),
        active: st.active.clone(),
        parked: st.parked.clone(),
        wait_dirty: st.wait_dirty,
        halted: st.halted,
        runs: st.runs,
        units_stepped: st.units_stepped,
        units_skipped: st.units_skipped,
        wire_wakeups: st.wire_wakeups,
        watch_probes: st.watch_probes,
    }
}

fn apply_shard(st: &mut ShardState, snap: &ShardSnap) {
    for (m, ms) in st.members.iter_mut().zip(&snap.members) {
        m.seen_events.clone_from(&ms.seen_events);
        m.watch.clone_from(&ms.watch);
    }
    st.active.clone_from(&snap.active);
    st.parked.clone_from(&snap.parked);
    st.wait_dirty = snap.wait_dirty;
    st.halted = snap.halted;
    st.runs = snap.runs;
    st.units_stepped = snap.units_stepped;
    st.units_skipped = snap.units_skipped;
    st.wire_wakeups = snap.wire_wakeups;
    st.watch_probes = snap.watch_probes;
}

/// Captured state of one two-phase driver shard.
#[derive(Clone)]
struct DriverShardSnap {
    /// Per-member park watch sets, in member order.
    watches: Vec<Vec<SignalId>>,
    active: Vec<u32>,
    parked: Vec<u32>,
    watch_dirty: bool,
    watcher_armed: bool,
}

/// Captured state of the two-phase driver ([`DriverState`] minus its
/// per-cycle commit scratch, which is rebuilt from scratch each cycle).
#[derive(Clone)]
struct DriverSnap {
    shards: Vec<DriverShardSnap>,
    halted: bool,
    step_chunk: usize,
    shell_ewma: u64,
    runs: u64,
    skipped: u64,
    wire_wakeups: u64,
    commit_calls: u64,
    fallbacks: u64,
    thread_runs: Vec<u64>,
    scratch: ScratchStats,
}

/// Captured park/resume accounting.
#[derive(Clone)]
struct ParkSnap {
    parked: u64,
    resumed: u64,
    parked_now: usize,
    modules_stepped: u64,
}

/// Captured execution state of one module.
#[derive(Clone)]
struct ModuleSnap {
    exec: FsmExec,
    vars: Vec<Value>,
    status: ModuleStatus,
}

/// A whole-backplane checkpoint: everything that changes as the
/// co-simulation runs, captured by [`Cosim::snapshot`].
///
/// Covers the kernel ([`cosma_sim::SimState`]: signal values, pending
/// drives, timers, process schedule state, stats), every communication
/// unit (FSM controller + protocol sessions, batched-link queues and
/// adaptive batch target, native unit internals), every module (FSM
/// state, variables, status), the activation scheduler (shard
/// active/parked splits, watch sets, event-count gates, two-phase
/// driver state including the adaptive step chunk and shell EWMA),
/// park/demand accounting, the global error latch, and the trace log.
///
/// **Stats are captured and restored verbatim** — a restored run's
/// counters continue from the snapshot's values, so its *deltas* match
/// the uninterrupted run's deltas exactly. The one exception is
/// allocation/load telemetry of the threaded step phase
/// ([`ScratchStats`]' arena counters and [`ShardStats`]'
/// `step_thread_runs`): these are restored too, but a *forked*
/// backplane's thread pool starts cold, so they may diverge between a
/// fork and its original afterwards. Functional state never does.
///
/// Not covered: VCD recording (a running waveform dump is an output
/// stream, not simulation state) and processes registered directly on
/// the kernel through [`Cosim::sim_mut`] — their closure-captured
/// state is invisible to the backplane. Kernel-level schedule state of
/// such processes *is* captured, and [`Cosim::restore`] rejects a
/// snapshot whose process table does not match the target's.
#[derive(Clone)]
pub struct Snapshot {
    sim: SimState,
    fsm: Vec<FsmUnitState>,
    batched: Vec<BatchedLinkState>,
    /// Native unit states, paired with the entry's `occ_driven` mirror.
    /// `None` when the unit does not implement
    /// [`NativeUnit::save_state`] — detected at restore/fork time so
    /// `snapshot()` itself stays infallible.
    native: Vec<(Option<NativeUnitState>, i64)>,
    modules: Vec<ModuleSnap>,
    unit_shards: Vec<ShardSnap>,
    module_shards: Vec<ShardSnap>,
    driver: Option<DriverSnap>,
    per_module: Vec<PerModuleProcState>,
    per_unit_seen: Vec<Vec<u64>>,
    park: ParkSnap,
    /// Per-domain clock-edge demand, in domain order.
    demand: Vec<i64>,
    error: Option<String>,
    trace: TraceLog,
}

impl fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Snapshot")
            .field("at", &self.sim.now())
            .field("signals", &self.sim.signal_count())
            .field("processes", &self.sim.process_count())
            .field("fsm_units", &self.fsm.len())
            .field("batched_units", &self.batched.len())
            .field("native_units", &self.native.len())
            .field("modules", &self.modules.len())
            .field("trace_entries", &self.trace.len())
            .finish_non_exhaustive()
    }
}

impl Snapshot {
    /// Simulation time at which the snapshot was taken.
    #[must_use]
    pub fn at(&self) -> SimTime {
        self.sim.now()
    }

    /// Number of module instances captured.
    #[must_use]
    pub fn module_count(&self) -> usize {
        self.modules.len()
    }
}

/// Checkpoint / restore / fork.
///
/// The state-ownership contract behind these: the kernel owns signal
/// values and the event schedule ([`Simulator::save_state`]); each
/// communication unit owns its protocol state
/// (`FsmUnitRuntime::capture_state`, `BatchedLink::capture_state`,
/// [`NativeUnit::save_state`]); the backplane owns module execution
/// state and *all* scheduler state. Scheduler state that process
/// closures would naturally capture as locals (park flags, event-count
/// gates, elaboration latches) is deliberately hoisted into shared
/// cells owned by the [`ActivationScheduler`], so a snapshot reaches
/// every bit that influences future behaviour — the precondition for
/// bit-identical replay.
impl Cosim {
    /// Captures the complete mutable state of the backplane.
    ///
    /// The snapshot is a plain value: clone it, keep several, restore
    /// them in any order. Capturing is non-destructive and the
    /// backplane can continue running afterwards.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let reg = self.registry.borrow();
        Snapshot {
            sim: self.sim.save_state(),
            fsm: reg.fsm.iter().map(|e| e.runtime.capture_state()).collect(),
            batched: reg.batched.iter().map(|e| e.link.capture_state()).collect(),
            native: reg
                .native
                .iter()
                .map(|e| (e.unit.save_state(), e.occ_driven))
                .collect(),
            modules: self
                .modules
                .borrow()
                .iter()
                .map(|e| ModuleSnap {
                    exec: e.exec.clone(),
                    vars: e.vars.clone(),
                    status: e.status.clone(),
                })
                .collect(),
            unit_shards: self
                .sched
                .unit_shards
                .iter()
                .map(|s| snap_shard(&s.borrow()))
                .collect(),
            module_shards: self
                .sched
                .module_shards
                .iter()
                .map(|s| snap_shard(&s.borrow()))
                .collect(),
            driver: self.sched.driver.as_ref().map(|d| {
                let st = d.borrow();
                DriverSnap {
                    shards: st
                        .shards
                        .iter()
                        .map(|sh| DriverShardSnap {
                            watches: sh.members.iter().map(|m| m.watch.clone()).collect(),
                            active: sh.active.clone(),
                            parked: sh.parked.clone(),
                            watch_dirty: sh.watch_dirty,
                            watcher_armed: sh.watcher_armed,
                        })
                        .collect(),
                    halted: st.halted,
                    step_chunk: st.step_chunk,
                    shell_ewma: st.shell_ewma,
                    runs: st.runs,
                    skipped: st.skipped,
                    wire_wakeups: st.wire_wakeups,
                    commit_calls: st.commit_calls,
                    fallbacks: st.fallbacks,
                    thread_runs: st.thread_runs.clone(),
                    scratch: st.scratch.clone(),
                }
            }),
            per_module: self
                .sched
                .per_module
                .iter()
                .map(|p| p.borrow().clone())
                .collect(),
            per_unit_seen: self
                .sched
                .per_unit_seen
                .iter()
                .map(|p| p.borrow().clone())
                .collect(),
            park: ParkSnap {
                parked: self.sched.park.parked.get(),
                resumed: self.sched.park.resumed.get(),
                parked_now: self.sched.park.parked_now.get(),
                modules_stepped: self.sched.park.modules_stepped.get(),
            },
            demand: self.domains.iter().map(|d| d.demand.demand.get()).collect(),
            error: self.error.borrow().clone(),
            trace: self.trace.borrow().clone(),
        }
    }

    /// Structural compatibility check between this backplane and a
    /// snapshot, run *before* any state is mutated.
    fn check_snapshot_shape(&self, snap: &Snapshot) -> Result<(), CosimError> {
        fn ensure(ok: bool, msg: impl FnOnce() -> String) -> Result<(), CosimError> {
            if ok {
                Ok(())
            } else {
                Err(CosimError::Setup(msg()))
            }
        }
        let reg = self.registry.borrow();
        ensure(reg.fsm.len() == snap.fsm.len(), || {
            format!(
                "snapshot has {} FSM units, backplane has {}",
                snap.fsm.len(),
                reg.fsm.len()
            )
        })?;
        ensure(reg.batched.len() == snap.batched.len(), || {
            format!(
                "snapshot has {} batched units, backplane has {}",
                snap.batched.len(),
                reg.batched.len()
            )
        })?;
        ensure(reg.native.len() == snap.native.len(), || {
            format!(
                "snapshot has {} native units, backplane has {}",
                snap.native.len(),
                reg.native.len()
            )
        })?;
        for (entry, (st, _)) in reg.native.iter().zip(&snap.native) {
            ensure(st.is_some(), || {
                format!(
                    "native unit {} was captured without state (no save_state support)",
                    entry.name
                )
            })?;
        }
        ensure(self.modules.borrow().len() == snap.modules.len(), || {
            format!(
                "snapshot has {} modules, backplane has {}",
                snap.modules.len(),
                self.modules.borrow().len()
            )
        })?;
        let shard_shape = |shards: &[Rc<RefCell<ShardState>>],
                           snaps: &[ShardSnap],
                           what: &str|
         -> Result<(), CosimError> {
            ensure(shards.len() == snaps.len(), || {
                format!(
                    "snapshot has {} {what} shards, backplane has {}",
                    snaps.len(),
                    shards.len()
                )
            })?;
            for (i, (sh, sn)) in shards.iter().zip(snaps).enumerate() {
                ensure(sh.borrow().members.len() == sn.members.len(), || {
                    format!("{what} shard {i} member count differs from snapshot")
                })?;
            }
            Ok(())
        };
        shard_shape(&self.sched.unit_shards, &snap.unit_shards, "unit")?;
        shard_shape(&self.sched.module_shards, &snap.module_shards, "module")?;
        ensure(self.sched.driver.is_some() == snap.driver.is_some(), || {
            "two-phase driver presence differs from snapshot".to_string()
        })?;
        if let (Some(d), Some(ds)) = (&self.sched.driver, &snap.driver) {
            let st = d.borrow();
            ensure(st.shards.len() == ds.shards.len(), || {
                format!(
                    "snapshot has {} driver shards, backplane has {}",
                    ds.shards.len(),
                    st.shards.len()
                )
            })?;
            for (i, (sh, sn)) in st.shards.iter().zip(&ds.shards).enumerate() {
                ensure(sh.members.len() == sn.watches.len(), || {
                    format!("driver shard {i} member count differs from snapshot")
                })?;
            }
            // thread_runs is not shape-checked: its width is sized
            // lazily on the first threaded cycle (mutable state, not
            // structure) and restore overwrites it wholesale.
        }
        ensure(self.domains.len() == snap.demand.len(), || {
            format!(
                "snapshot has {} clock domains, backplane has {}",
                snap.demand.len(),
                self.domains.len()
            )
        })?;
        ensure(self.sched.per_module.len() == snap.per_module.len(), || {
            "per-module process count differs from snapshot".to_string()
        })?;
        ensure(
            self.sched.per_unit_seen.len() == snap.per_unit_seen.len(),
            || "per-unit gate count differs from snapshot".to_string(),
        )?;
        for (i, (p, sn)) in self
            .sched
            .per_unit_seen
            .iter()
            .zip(&snap.per_unit_seen)
            .enumerate()
        {
            ensure(p.borrow().len() == sn.len(), || {
                format!("per-unit gate {i} wire count differs from snapshot")
            })?;
        }
        Ok(())
    }

    /// Restores the backplane to a previously captured [`Snapshot`].
    ///
    /// The snapshot must come from this backplane or a structurally
    /// identical one (same construction sequence — e.g. a
    /// [`Cosim::fork`] sibling). Restoring rewinds *everything*
    /// [`Cosim::snapshot`] captures; a subsequent run replays the
    /// original execution bit-identically — same traces, same module
    /// states, same stat deltas.
    ///
    /// # Errors
    ///
    /// Returns [`CosimError::Setup`] when the snapshot's structure does
    /// not match this backplane (unit/module/shard counts, driver
    /// shape, native units without state support), or
    /// [`CosimError::Sim`] when the kernel rejects the snapshot
    /// (signal/process table mismatch — e.g. processes added through
    /// [`Cosim::sim_mut`] after the snapshot was taken). All structural
    /// checks run before any mutation, so on these errors the
    /// backplane is left untouched. A failure *after* them (a unit
    /// rejecting state it once produced) cannot happen between
    /// structurally identical backplanes but would leave the state
    /// partially applied; the error is surfaced either way.
    pub fn restore(&mut self, snap: &Snapshot) -> Result<(), CosimError> {
        self.check_snapshot_shape(snap)?;
        // The kernel validates its own table (names and counts) and is
        // untouched on mismatch — it is the last fallible gate before
        // mutation starts.
        self.sim.load_state(&snap.sim)?;
        {
            let mut reg = self.registry.borrow_mut();
            for (e, st) in reg.fsm.iter_mut().zip(&snap.fsm) {
                e.runtime
                    .restore_state(st)
                    .map_err(|err| CosimError::Setup(format!("unit {}: {err}", e.name)))?;
            }
            for (e, st) in reg.batched.iter_mut().zip(&snap.batched) {
                e.link
                    .restore_state(st)
                    .map_err(|err| CosimError::Setup(format!("batched link {}: {err}", e.name)))?;
            }
            for (e, (st, occ_driven)) in reg.native.iter_mut().zip(&snap.native) {
                let st = st.as_ref().expect("checked by check_snapshot_shape");
                e.unit
                    .load_state(st)
                    .map_err(|err| CosimError::Setup(format!("native unit {}: {err}", e.name)))?;
                e.occ_driven = *occ_driven;
            }
        }
        {
            let mut modules = self.modules.borrow_mut();
            for (e, ms) in modules.iter_mut().zip(&snap.modules) {
                e.exec = ms.exec.clone();
                e.vars.clone_from(&ms.vars);
                e.status = ms.status.clone();
            }
        }
        for (sh, sn) in self.sched.unit_shards.iter().zip(&snap.unit_shards) {
            apply_shard(&mut sh.borrow_mut(), sn);
        }
        for (sh, sn) in self.sched.module_shards.iter().zip(&snap.module_shards) {
            apply_shard(&mut sh.borrow_mut(), sn);
        }
        if let (Some(d), Some(ds)) = (&self.sched.driver, &snap.driver) {
            let mut st = d.borrow_mut();
            for (sh, sn) in st.shards.iter_mut().zip(&ds.shards) {
                for (m, w) in sh.members.iter_mut().zip(&sn.watches) {
                    m.watch.clone_from(w);
                }
                sh.active.clone_from(&sn.active);
                sh.parked.clone_from(&sn.parked);
                sh.watch_dirty = sn.watch_dirty;
                sh.watcher_armed = sn.watcher_armed;
            }
            st.halted = ds.halted;
            st.step_chunk = ds.step_chunk;
            st.shell_ewma = ds.shell_ewma;
            st.runs = ds.runs;
            st.skipped = ds.skipped;
            st.wire_wakeups = ds.wire_wakeups;
            st.commit_calls = ds.commit_calls;
            st.fallbacks = ds.fallbacks;
            st.thread_runs.clone_from(&ds.thread_runs);
            st.scratch = ds.scratch.clone();
        }
        for (p, sn) in self.sched.per_module.iter().zip(&snap.per_module) {
            *p.borrow_mut() = sn.clone();
        }
        for (p, sn) in self.sched.per_unit_seen.iter().zip(&snap.per_unit_seen) {
            p.borrow_mut().clone_from(sn);
        }
        self.sched.park.parked.set(snap.park.parked);
        self.sched.park.resumed.set(snap.park.resumed);
        self.sched.park.parked_now.set(snap.park.parked_now);
        self.sched
            .park
            .modules_stepped
            .set(snap.park.modules_stepped);
        for (d, v) in self.domains.iter().zip(&snap.demand) {
            d.demand.demand.set(*v);
        }
        *self.error.borrow_mut() = snap.error.clone();
        *self.trace.borrow_mut() = snap.trace.clone();
        Ok(())
    }

    /// Forks an independent backplane resuming from `snap`.
    ///
    /// Construction is replayed from the recorded recipe — immutable
    /// specs ([`CommUnitSpec`], [`Module`] internals) are shared by
    /// refcount, everything mutable is rebuilt — and the snapshot is
    /// then restored onto the twin. The fork and the original share no
    /// mutable state: running one never affects the other, and both
    /// replay bit-identically from the snapshot point.
    ///
    /// `snap` may come from this backplane or any fork sibling. The
    /// original is not modified (`&self`).
    ///
    /// # Errors
    ///
    /// Returns [`CosimError::Setup`] when a native unit does not
    /// support forking ([`NativeUnit::fork_fresh`]), when processes
    /// were registered directly through [`Cosim::sim_mut`] (the recipe
    /// cannot replay them, so the kernel table mismatches), or any
    /// error [`Cosim::restore`] reports.
    pub fn fork(&self, snap: &Snapshot) -> Result<Cosim, CosimError> {
        if self.boundaries > 0 {
            return Err(CosimError::Setup(
                "forking is unsupported while boundary links are installed: boundary \
                 processes reach queues shared with another backplane, which the \
                 construction recipe cannot replay"
                    .to_string(),
            ));
        }
        let mut twin = Cosim::new(self.config);
        twin.set_scheduling(self.sched.cfg)?;
        let reg = self.registry.borrow();
        let mut native_i = 0;
        for op in &self.recipe {
            match op {
                RecipeOp::ClockDomain { name, num, den } => {
                    twin.add_clock_domain(name, *num, *den)?;
                }
                RecipeOp::FsmUnit { name, spec, domain } => {
                    twin.add_fsm_unit_in(DomainId(*domain), name, Arc::clone(spec))?;
                }
                RecipeOp::BatchedUnit {
                    name,
                    data_ty,
                    max_batch,
                    capacity,
                    timing,
                    domain,
                } => {
                    twin.add_batched_unit_in_with(
                        DomainId(*domain),
                        name,
                        data_ty.clone(),
                        *max_batch,
                        *capacity,
                        *timing,
                    )?;
                }
                RecipeOp::NativeUnit { name, domain } => {
                    let entry = &reg.native[native_i];
                    native_i += 1;
                    let fresh = entry.unit.fork_fresh().ok_or_else(|| {
                        CosimError::Setup(format!(
                            "native unit {} does not support forking",
                            entry.name
                        ))
                    })?;
                    twin.add_native_unit_in(DomainId(*domain), name, fresh)?;
                }
                RecipeOp::Module {
                    module,
                    bindings,
                    ports,
                    domain,
                } => {
                    let binds: Vec<(&str, UnitId)> =
                        bindings.iter().map(|(n, u)| (n.as_str(), *u)).collect();
                    match ports {
                        None => twin.add_module_in(DomainId(*domain), module, &binds)?,
                        Some(p) => twin.add_module_with_ports(module, &binds, p.clone())?,
                    };
                }
            }
        }
        drop(reg);
        twin.restore(snap)?;
        Ok(twin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosma_comm::{handshake_unit, FifoChannel};
    use cosma_core::{Expr, ModuleBuilder, Stmt};

    fn producer(values: &[i64]) -> Module {
        let mut p = ModuleBuilder::new("producer", ModuleKind::Software);
        let done = p.var("D", Type::Bool, Value::Bool(false));
        let idx = p.var("I", Type::INT16, Value::Int(0));
        let b = p.binding("iface", "hs");
        let put = p.state("PUT");
        let end = p.state("END");
        // Send values[I] until I == len; the helper requires an
        // arithmetic progression so the argument is base + I * step.
        let step = if values.len() > 1 {
            values[1] - values[0]
        } else {
            0
        };
        let arg = Expr::int(values[0]).add(Expr::var(idx).mul(Expr::int(step)));
        p.actions(
            put,
            vec![Stmt::Call(ServiceCall {
                binding: b,
                service: "put".into(),
                args: vec![arg],
                done: Some(done),
                result: None,
            })],
        );
        p.transition_with(
            put,
            Some(Expr::var(done).and(Expr::var(idx).ge(Expr::int(values.len() as i64 - 1)))),
            vec![],
            end,
        );
        p.transition_with(
            put,
            Some(Expr::var(done)),
            vec![Stmt::assign(idx, Expr::var(idx).add(Expr::int(1)))],
            put,
        );
        p.transition(end, None, end);
        p.initial(put);
        p.build().unwrap()
    }

    fn consumer(n: usize) -> Module {
        let mut c = ModuleBuilder::new("consumer", ModuleKind::Hardware);
        let done = c.var("D", Type::Bool, Value::Bool(false));
        let got = c.var("GOT", Type::INT16, Value::Int(0));
        let sum = c.var("SUM", Type::INT16, Value::Int(0));
        let count = c.var("N", Type::INT16, Value::Int(0));
        let b = c.binding("iface", "hs");
        let get = c.state("GET");
        let end = c.state("END");
        c.actions(
            get,
            vec![Stmt::Call(ServiceCall {
                binding: b,
                service: "get".into(),
                args: vec![],
                done: Some(done),
                result: Some(got),
            })],
        );
        c.transition_with(
            get,
            Some(Expr::var(done).and(Expr::var(count).ge(Expr::int(n as i64 - 1)))),
            vec![
                Stmt::assign(sum, Expr::var(sum).add(Expr::var(got))),
                Stmt::Trace("recv".into(), vec![Expr::var(got)]),
            ],
            end,
        );
        c.transition_with(
            get,
            Some(Expr::var(done)),
            vec![
                Stmt::assign(sum, Expr::var(sum).add(Expr::var(got))),
                Stmt::assign(count, Expr::var(count).add(Expr::int(1))),
                Stmt::Trace("recv".into(), vec![Expr::var(got)]),
            ],
            get,
        );
        c.transition(end, None, end);
        c.initial(get);
        c.build().unwrap()
    }

    #[test]
    fn sw_to_hw_exchange_over_handshake() {
        let mut cosim = Cosim::new(CosimConfig::default());
        let link = cosim.add_fsm_unit("link", handshake_unit("hs", Type::INT16));
        let p = producer(&[10, 20, 30]);
        let c = consumer(3);
        cosim.add_module(&p, &[("iface", link)]).unwrap();
        let cid = cosim.add_module(&c, &[("iface", link)]).unwrap();
        cosim.run_for(Duration::from_us(50)).unwrap();
        assert_eq!(cosim.module_status(cid).state, "END");
        assert_eq!(cosim.module_var(cid, "SUM"), Some(Value::Int(60)));
        // Trace captured all three receptions in order.
        let log = cosim.trace_log();
        let recvs: Vec<i64> = log
            .with_label("recv")
            .map(|e| e.values[0].as_int().unwrap())
            .collect();
        assert_eq!(recvs, vec![10, 20, 30]);
        // Stats flowed through.
        let stats = cosim.unit_stats("link").unwrap();
        assert_eq!(stats.services["put"].completions, 3);
        assert_eq!(stats.services["get"].completions, 3);
        assert!(stats.controller_steps > 0);
    }

    #[test]
    fn idle_controllers_are_gated_per_unit() {
        // Under the legacy per-unit scheduling: after the 3-value
        // exchange completes, the link's wires stop changing and its
        // controller self-loops without writes — from then on the
        // backplane skips its activations entirely.
        let mut cosim = Cosim::new(CosimConfig::default());
        cosim.set_scheduling(SchedulingConfig::legacy()).unwrap();
        let link = cosim.add_fsm_unit("link", handshake_unit("hs", Type::INT16));
        let p = producer(&[10, 20, 30]);
        let c = consumer(3);
        cosim.add_module(&p, &[("iface", link)]).unwrap();
        let cid = cosim.add_module(&c, &[("iface", link)]).unwrap();
        cosim.run_for(Duration::from_us(200)).unwrap();
        assert_eq!(cosim.module_status(cid).state, "END");
        assert_eq!(cosim.module_var(cid, "SUM"), Some(Value::Int(60)));
        let stats = cosim.unit_stats("link").unwrap();
        assert_eq!(stats.services["put"].completions, 3);
        assert!(
            stats.controller_steps > 0,
            "the exchange required real steps"
        );
        assert!(
            stats.controller_skips > stats.controller_steps,
            "a long idle tail must be dominated by skipped activations \
             (steps {}, skips {})",
            stats.controller_steps,
            stats.controller_skips
        );
    }

    #[test]
    fn idle_shards_go_dormant() {
        // Under sharded scheduling the idle tail is even cheaper: once
        // the link's controller proves itself stable its shard drops
        // clock sensitivity, and the END-parked modules park their
        // shard too. Controller steps stall AND the shard processes
        // stop being woken.
        let mut cosim = Cosim::new(CosimConfig::default());
        let link = cosim.add_fsm_unit("link", handshake_unit("hs", Type::INT16));
        let p = producer(&[10, 20, 30]);
        let c = consumer(3);
        cosim.add_module(&p, &[("iface", link)]).unwrap();
        let cid = cosim.add_module(&c, &[("iface", link)]).unwrap();
        cosim.run_for(Duration::from_us(20)).unwrap();
        assert_eq!(cosim.module_status(cid).state, "END");
        assert_eq!(cosim.module_var(cid, "SUM"), Some(Value::Int(60)));
        let steps_after_exchange = cosim.unit_stats("link").unwrap().controller_steps;
        assert!(steps_after_exchange > 0, "the exchange required steps");
        let shard_runs_after_exchange = cosim.shard_stats().shard_runs;

        // A long idle tail: ~2000 further HW cycles.
        cosim.run_for(Duration::from_us(200)).unwrap();
        let stats = cosim.unit_stats("link").unwrap();
        assert_eq!(
            stats.controller_steps, steps_after_exchange,
            "idle controller never steps again"
        );
        let shard = cosim.shard_stats();
        assert_eq!(shard.shards, 2, "one unit shard, one module shard");
        assert_eq!(shard.dormant_shards, 2, "both parked themselves");
        assert_eq!(
            shard.shard_runs, shard_runs_after_exchange,
            "a dormant shard is not even woken by clock edges"
        );
        assert_eq!(shard.parked_now, 3, "link + both END modules parked");
    }

    #[test]
    fn batched_unit_in_backplane() {
        // A producer/consumer pair over a batched bus link: values are
        // queued per activation but cross the bus in whole batches — far
        // fewer wire handshakes than values.
        let mut cosim = Cosim::new(CosimConfig::default());
        let link = cosim.add_batched_unit("bus", Type::INT16, 16, 64).unwrap();
        let p = producer(&[10, 20, 30, 40]);
        let c = consumer(4);
        cosim.add_module(&p, &[("iface", link)]).unwrap();
        let cid = cosim.add_module(&c, &[("iface", link)]).unwrap();
        cosim.run_for(Duration::from_us(50)).unwrap();
        assert_eq!(cosim.module_status(cid).state, "END");
        assert_eq!(cosim.module_var(cid, "SUM"), Some(Value::Int(100)));
        let stats = cosim.unit_stats("bus").unwrap();
        assert_eq!(stats.services["put"].completions, 4);
        assert_eq!(stats.services["get"].completions, 4);
        assert_eq!(stats.batched_values, 4);
        assert!(
            stats.batches < 4,
            "4 values must need fewer than 4 bus transactions (got {})",
            stats.batches
        );
        assert!(stats.max_batch_len >= 2);
        assert_eq!(
            stats.batch_len_hist.iter().sum::<u64>(),
            stats.batches,
            "histogram accounts for every bus transaction"
        );
    }

    #[test]
    fn batched_unit_agrees_across_schedulings() {
        // The same batched topology under the legacy and sharded paths
        // delivers identical values, states, traces and activations.
        fn run(scheduling: SchedulingConfig) -> (Option<Value>, ModuleStatus, Vec<i64>) {
            let mut cosim = Cosim::new(CosimConfig::default());
            cosim.set_scheduling(scheduling).unwrap();
            let link = cosim.add_batched_unit("bus", Type::INT16, 4, 32).unwrap();
            let p = producer(&[5, 6, 7]);
            let c = consumer(3);
            cosim.add_module(&p, &[("iface", link)]).unwrap();
            let cid = cosim.add_module(&c, &[("iface", link)]).unwrap();
            cosim.run_for(Duration::from_us(40)).unwrap();
            let recvs = cosim
                .trace_log()
                .with_label("recv")
                .map(|e| e.values[0].as_int().unwrap())
                .collect();
            (
                cosim.module_var(cid, "SUM"),
                cosim.module_status(cid),
                recvs,
            )
        }
        let sharded = run(SchedulingConfig::sharded());
        let per_unit = run(SchedulingConfig {
            park_blocked: true,
            ..SchedulingConfig::legacy()
        });
        assert_eq!(sharded, per_unit);
        assert_eq!(sharded.0, Some(Value::Int(18)));
        assert_eq!(sharded.1.state, "END");
        assert_eq!(sharded.2, vec![5, 6, 7]);
    }

    #[test]
    fn scheduling_locked_after_first_unit() {
        let mut cosim = Cosim::new(CosimConfig::default());
        cosim.add_fsm_unit("link", handshake_unit("hs", Type::INT16));
        let err = cosim
            .set_unit_scheduling(UnitScheduling::PerUnit)
            .unwrap_err();
        assert!(matches!(err, CosimError::Setup(_)));
    }

    #[test]
    fn scheduling_locked_after_first_module() {
        let mut b = ModuleBuilder::new("m", ModuleKind::Software);
        let s = b.state("S");
        b.transition(s, None, s);
        b.initial(s);
        let mut cosim = Cosim::new(CosimConfig::default());
        cosim.add_module(&b.build().unwrap(), &[]).unwrap();
        let err = cosim
            .set_scheduling(SchedulingConfig::legacy())
            .unwrap_err();
        assert!(matches!(err, CosimError::Setup(_)));
    }

    #[test]
    fn bad_batched_config_rejected() {
        let mut cosim = Cosim::new(CosimConfig::default());
        assert!(matches!(
            cosim.add_batched_unit("b", Type::INT16, 0, 4),
            Err(CosimError::Setup(_))
        ));
        assert!(matches!(
            cosim.add_batched_unit("b", Type::INT16, 4, 0),
            Err(CosimError::Setup(_))
        ));
        // A batch ceiling the INT16 DATA wire cannot carry is a typed
        // setup error, never a silent clamp.
        let err = cosim
            .add_batched_unit("b", Type::INT16, i16::MAX as usize + 1, 4)
            .unwrap_err();
        assert!(
            err.to_string().contains("exceeds"),
            "overflow error is descriptive: {err}"
        );
    }

    #[test]
    fn deferred_batched_commit_installs_queue_journal() {
        // A batched workload whose cycles carry a stepping set past the
        // fan-out threshold (the regime where speculation actually
        // runs): every speculated batched call must install through the
        // BatchedLink queue-op journal — zero sequential fallbacks —
        // while matching the immediate scheduler exactly. A Star of
        // STEP_FANOUT_MIN+ producers keeps the early cycles' stepping
        // sets above the threshold.
        use crate::scenario::{build_scenario, LinkKind, ScenarioSpec, Topology};
        fn run(scheduling: SchedulingConfig) -> (Vec<ModuleStatus>, ShardStats) {
            let mut s = build_scenario(&ScenarioSpec {
                units: STEP_FANOUT_MIN + 8,
                topology: Topology::Star,
                values_per_link: 4,
                link: LinkKind::Batched {
                    max_batch: 8,
                    capacity: 32,
                    timing: BusTiming::LengthOnly,
                },
                config: CosimConfig::default(),
                scheduling,
                trace: false,
                domains: Default::default(),
            })
            .expect("scenario builds");
            s.cosim.run_for(Duration::from_us(400)).expect("runs");
            s.verify().expect("all traffic arrived");
            let statuses = s
                .modules
                .iter()
                .map(|&m| s.cosim.module_status(m))
                .collect();
            (statuses, s.cosim.shard_stats())
        }
        let deferred = run(SchedulingConfig::sharded().with_threads(2));
        let immediate = run(SchedulingConfig::immediate());
        assert_eq!(deferred.0, immediate.0, "module statuses identical");
        assert!(
            deferred.1.commit_calls > 0,
            "large stepping sets flowed through commit phases: {:?}",
            deferred.1
        );
        assert_eq!(
            deferred.1.commit_fallbacks, 0,
            "batched speculation installs via the queue journal, never \
             the sequential fallback: {:?}",
            deferred.1
        );
    }

    #[test]
    fn payload_beats_batched_unit_matches_length_only_in_backplane() {
        // The timing knob end to end: a PayloadBeats link delivers the
        // same values/states as LengthOnly, pays one DATA beat per
        // value in UnitStats, and takes longer doing it.
        fn run(timing: BusTiming) -> (Option<Value>, String, UnitStats, u64) {
            let mut cosim = Cosim::new(CosimConfig::default());
            let link = cosim
                .add_batched_unit_with("bus", Type::INT16, 8, 64, timing)
                .unwrap();
            let p = producer(&[10, 20, 30, 40]);
            let c = consumer(4);
            cosim.add_module(&p, &[("iface", link)]).unwrap();
            let cid = cosim.add_module(&c, &[("iface", link)]).unwrap();
            cosim.run_for(Duration::from_us(50)).unwrap();
            let last_recv = cosim
                .trace_log()
                .with_label("recv")
                .last()
                .map(|e| e.at)
                .unwrap_or(0);
            (
                cosim.module_var(cid, "SUM"),
                cosim.module_status(cid).state,
                cosim.unit_stats("bus").unwrap(),
                last_recv,
            )
        }
        let (fast_sum, fast_state, fast_stats, fast_done) = run(BusTiming::LengthOnly);
        let (beat_sum, beat_state, beat_stats, beat_done) = run(BusTiming::PayloadBeats);
        assert_eq!(fast_sum, beat_sum);
        assert_eq!(fast_sum, Some(Value::Int(100)));
        assert_eq!(fast_state, "END");
        assert_eq!(beat_state, "END");
        assert_eq!(fast_stats.payload_beats, 0, "fast path streams nothing");
        assert_eq!(
            beat_stats.payload_beats, beat_stats.batched_values,
            "one beat per value: occupancy linear in batch length"
        );
        assert_eq!(beat_stats.batched_values, 4);
        assert!(
            beat_done >= fast_done,
            "payload beats never finish earlier ({beat_done} vs {fast_done})"
        );
    }

    #[test]
    fn batch_latency_back_annotation_end_to_end() {
        // A LengthOnly reference run re-timed from a PayloadBeats
        // calibration run: the derived scale folds the per-batch
        // payload latency into the hw cycle, and the per-link report
        // carries the calibration run's beat occupancy.
        use crate::annotate::annotate_batch_latency;
        fn run(timing: BusTiming) -> (TraceLog, UnitStats) {
            let mut cosim = Cosim::new(CosimConfig::default());
            let link = cosim
                .add_batched_unit_with("bus", Type::INT16, 8, 64, timing)
                .unwrap();
            let p = producer(&[1, 2, 3, 4, 5, 6]);
            let c = consumer(6);
            cosim.add_module(&p, &[("iface", link)]).unwrap();
            cosim.add_module(&c, &[("iface", link)]).unwrap();
            cosim.run_for(Duration::from_us(100)).unwrap();
            (cosim.trace_log(), cosim.unit_stats("bus").unwrap())
        }
        let (reference, _) = run(BusTiming::LengthOnly);
        let (calibration, cal_stats) = run(BusTiming::PayloadBeats);
        let nominal = CosimConfig::default().hw_cycle;
        let ann = annotate_batch_latency(
            &reference,
            &calibration,
            &["recv"],
            &[crate::annotate::LinkCalibration {
                link: "bus",
                stats: &cal_stats,
                labels: &["recv"],
                nominal_hw_cycle: nominal,
            }],
            nominal,
        )
        .expect("recv label spans both runs");
        assert!(
            ann.scale >= 1.0,
            "payload beats never make the bus faster (scale {})",
            ann.scale
        );
        assert!(ann.annotated_hw_cycle >= nominal);
        let link = ann.link("bus").expect("bus link reported");
        assert_eq!(link.beats, cal_stats.payload_beats);
        assert!(
            (link.beats_per_batch - link.values as f64 / link.batches as f64).abs() < 1e-9,
            "beats per batch == mean batch length (one beat per value)"
        );
    }

    #[test]
    fn many_idle_units_fill_multiple_dormant_shards() {
        let mut cosim = Cosim::new(CosimConfig::default());
        cosim
            .set_scheduling(SchedulingConfig {
                units: UnitScheduling::Sharded { shard_size: 8 },
                ..SchedulingConfig::sharded()
            })
            .unwrap();
        for k in 0..20 {
            cosim.add_fsm_unit(&format!("quiet{k}"), handshake_unit("hs", Type::INT16));
        }
        // One live module keeps the clocks running (it halt-parks, but
        // stays counted as a live clocked body).
        let mut b = ModuleBuilder::new("m", ModuleKind::Software);
        let s = b.state("S");
        b.transition(s, None, s);
        b.initial(s);
        cosim.add_module(&b.build().unwrap(), &[]).unwrap();
        cosim.run_for(Duration::from_us(100)).unwrap();
        let shard = cosim.shard_stats();
        // Hashed placement opens 2-3 unit shards for 20 units at shard
        // size 8, plus one module shard.
        assert!(
            (3..=4).contains(&shard.shards),
            "expected 2-3 unit shards + 1 module shard, got {}",
            shard.shards
        );
        assert_eq!(shard.dormant_shards, shard.shards, "all idle, all parked");
        // Dormant shards were woken at most a handful of times while the
        // clock toggled ~2000 times.
        assert!(
            shard.shard_runs < 40,
            "idle shards must not track the clock (runs {})",
            shard.shard_runs
        );
    }

    #[test]
    fn quiescence_reached_after_last_timer_cancelled() {
        // Regression: a lazily-cancelled timer (dead heap entry) must not
        // stall run_to_quiescence. A testbench process holds the only
        // live timer; an event wake cancels it and the process parks.
        let mut cosim = Cosim::new(CosimConfig::default());
        let kick = cosim.sim_mut().add_bit("KICK");
        let mut woken = false;
        cosim.sim_mut().add_process(
            "waiter",
            FnProcess::new(move |ctx| {
                if ctx.event(kick) {
                    woken = true;
                }
                if woken {
                    Wait::Forever
                } else {
                    Wait::EventOrTimeout(vec![kick], Duration::from_us(500))
                }
            }),
        );
        cosim.run_until(SimTime::ZERO).unwrap();
        assert!(cosim.pending_activity(), "the 500us timer is live");
        cosim.sim_mut().poke(kick, Value::Bit(cosma_core::Bit::One));
        let quiesced = cosim.run_to_quiescence(SimTime::from_ns(10_000)).unwrap();
        assert!(
            quiesced,
            "dead timer entry at 500us must not report phantom pending work"
        );
        assert!(!cosim.pending_activity());
        assert_eq!(
            cosim.sim().now(),
            SimTime::from_ns(10_000),
            "run advanced to the limit, not to the dead deadline"
        );
    }

    #[test]
    fn empty_backplane_quiesces_immediately() {
        // No clocked bodies: the activation clock generators park at
        // elaboration, so the kernel truly runs dry.
        let mut cosim = Cosim::new(CosimConfig::default());
        let quiesced = cosim.run_to_quiescence(SimTime::from_ns(1000)).unwrap();
        assert!(quiesced, "nothing is clocked, so nothing is pending");
        assert!(!cosim.pending_activity());
    }

    #[test]
    fn fully_parked_backplane_quiesces() {
        // Quiescence for fully-parked backplanes: a bare self-loop
        // module proves itself stable on its first activation and
        // parks with no wakeable watch wire — as final as a halt. The
        // activation clock generators then stop, so the kernel truly
        // runs dry instead of toggling clocks forever.
        let mut b = ModuleBuilder::new("m", ModuleKind::Software);
        let s = b.state("S");
        b.transition(s, None, s);
        b.initial(s);
        let mut cosim = Cosim::new(CosimConfig::default());
        let id = cosim.add_module(&b.build().unwrap(), &[]).unwrap();
        assert!(cosim.pending_activity(), "elaboration is owed");
        let quiesced = cosim.run_to_quiescence(SimTime::from_ns(1000)).unwrap();
        assert!(quiesced, "everything parked: nothing can ever change");
        assert!(!cosim.pending_activity());
        assert_eq!(cosim.module_status(id).state, "S");
        assert_eq!(cosim.shard_stats().parked_now, 1);
    }

    #[test]
    fn unparked_backplane_never_quiesces_but_reports_it() {
        // With parking disabled the same self-loop module re-activates
        // every cycle forever — the clocks must keep running and
        // run_to_quiescence must say so.
        let mut b = ModuleBuilder::new("m", ModuleKind::Software);
        let s = b.state("S");
        b.transition(s, None, s);
        b.initial(s);
        let mut cosim = Cosim::new(CosimConfig::default());
        cosim
            .set_scheduling(SchedulingConfig {
                park_blocked: false,
                ..SchedulingConfig::sharded()
            })
            .unwrap();
        cosim.add_module(&b.build().unwrap(), &[]).unwrap();
        let quiesced = cosim.run_to_quiescence(SimTime::from_ns(1000)).unwrap();
        assert!(
            !quiesced,
            "an unparked module keeps the activation clocks running"
        );
        assert!(
            cosim.pending_activity(),
            "activation clocks keep timers armed"
        );
        assert_eq!(cosim.sim().now(), SimTime::from_ns(1000));
    }

    #[test]
    fn native_unit_in_backplane() {
        let mut cosim = Cosim::new(CosimConfig::default());
        let link = cosim.add_native_unit("fifo", Box::new(FifoChannel::new("fifo", 8)));
        let p = producer(&[5, 6]);
        let c = consumer(2);
        cosim.add_module(&p, &[("iface", link)]).unwrap();
        let cid = cosim.add_module(&c, &[("iface", link)]).unwrap();
        cosim.run_for(Duration::from_us(20)).unwrap();
        assert_eq!(cosim.module_var(cid, "SUM"), Some(Value::Int(11)));
    }

    #[test]
    fn native_unit_snapshot_restore_and_fork() {
        // The scenario-level replay property covers FSM and batched
        // links; this pins the same contract for a native (platform)
        // unit: fifo contents, counters and stats all travel with the
        // snapshot, for both in-place restore and a forked twin.
        let mut cosim = Cosim::new(CosimConfig::default());
        let link = cosim.add_native_unit("fifo", Box::new(FifoChannel::new("fifo", 8)));
        let p = producer(&[5, 6, 7, 8]);
        let c = consumer(4);
        cosim.add_module(&p, &[("iface", link)]).unwrap();
        let cid = cosim.add_module(&c, &[("iface", link)]).unwrap();

        // Stop mid-exchange so the fifo queue is live in the snapshot.
        cosim.run_for(Duration::from_ns(150)).unwrap();
        let snap = cosim.snapshot();
        let mid_sum = cosim.module_var(cid, "SUM");
        let mid_stats = cosim.unit_stats("fifo").unwrap();

        cosim.run_for(Duration::from_us(20)).unwrap();
        let end_sum = cosim.module_var(cid, "SUM");
        let end_state = cosim.module_status(cid).state.clone();
        let end_trace = cosim.trace_log();
        let end_stats = cosim.unit_stats("fifo").unwrap();
        assert_eq!(end_sum, Some(Value::Int(26)));
        assert_eq!(end_state, "END");
        assert_ne!(mid_sum, end_sum, "the checkpoint really is mid-run");

        // A forked twin starts at the snapshot instant and replays the
        // tail bit-identically — including the unit's statistics.
        let mut twin = cosim.fork(&snap).unwrap();
        assert_eq!(twin.sim().now(), snap.at());
        assert_eq!(twin.module_var(cid, "SUM"), mid_sum);
        assert_eq!(twin.unit_stats("fifo").unwrap(), mid_stats);
        twin.run_for(Duration::from_us(20)).unwrap();
        assert_eq!(twin.module_var(cid, "SUM"), end_sum);
        assert_eq!(twin.module_status(cid).state, end_state);
        assert_eq!(twin.trace_log(), end_trace);
        assert_eq!(twin.unit_stats("fifo").unwrap(), end_stats);

        // The original rewinds in place and replays the same tail.
        cosim.restore(&snap).unwrap();
        assert_eq!(cosim.module_var(cid, "SUM"), mid_sum);
        cosim.run_for(Duration::from_us(20)).unwrap();
        assert_eq!(cosim.module_var(cid, "SUM"), end_sum);
        assert_eq!(cosim.trace_log(), end_trace);
        assert_eq!(cosim.unit_stats("fifo").unwrap(), end_stats);
    }

    #[test]
    fn uncheckpointable_native_unit_fails_restore_cleanly() {
        // A native unit that keeps the default save_state (None) still
        // snapshots — the hole is detected at restore/fork time, with a
        // named error instead of a silently skipped unit.
        #[derive(Debug)]
        struct Opaque(cosma_comm::UnitStats);
        impl NativeUnit for Opaque {
            fn name(&self) -> &str {
                "opaque"
            }
            fn services(&self) -> Vec<cosma_comm::NativeServiceDesc> {
                vec![]
            }
            fn call(
                &mut self,
                _caller: cosma_comm::CallerId,
                service: &str,
                _args: &[Value],
            ) -> Result<cosma_core::ServiceOutcome, cosma_core::EvalError> {
                Err(cosma_core::EvalError::Service(format!(
                    "opaque has no service {service}"
                )))
            }
            fn stats(&self) -> &cosma_comm::UnitStats {
                &self.0
            }
        }

        let mut cosim = Cosim::new(CosimConfig::default());
        cosim.add_native_unit("opaque", Box::new(Opaque(cosma_comm::UnitStats::default())));
        cosim.run_for(Duration::from_ns(300)).unwrap();
        let before = cosim.sim().now();
        let snap = cosim.snapshot();
        let err = cosim.restore(&snap).unwrap_err();
        assert!(err.to_string().contains("opaque"), "names the unit: {err}");
        assert!(err.to_string().contains("save_state"));
        assert_eq!(cosim.sim().now(), before, "refused restore is a no-op");
        let err = cosim.fork(&snap).unwrap_err();
        assert!(err.to_string().contains("opaque"));
        // The backplane itself keeps running fine.
        cosim.run_for(Duration::from_ns(300)).unwrap();
    }

    #[test]
    fn one_activation_per_sw_cycle() {
        // A 3-state chain takes exactly 3 SW cycles to reach END.
        let mut b = ModuleBuilder::new("chain", ModuleKind::Software);
        let s1 = b.state("S1");
        let s2 = b.state("S2");
        let s3 = b.state("S3");
        b.transition(s1, None, s2);
        b.transition(s2, None, s3);
        b.transition(s3, None, s3);
        b.initial(s1);
        let m = b.build().unwrap();
        let mut cosim = Cosim::new(CosimConfig {
            hw_cycle: Duration::from_ns(100),
            sw_cycle: Duration::from_ns(100),
        });
        let id = cosim.add_module(&m, &[]).unwrap();
        // Edges at 0, 100, 200: exactly 3 activations by t=250.
        cosim.run_for(Duration::from_ns(250)).unwrap();
        let st = cosim.module_status(id);
        assert_eq!(st.activations, 3);
        assert_eq!(st.state, "S3");
    }

    #[test]
    fn sw_slower_than_hw() {
        // Parking disabled: these bare self-loops would otherwise park
        // after proving stable, and the activation-rate comparison is
        // the whole point here.
        let mut b = ModuleBuilder::new("swm", ModuleKind::Software);
        let s = b.state("S");
        b.transition(s, None, s);
        b.initial(s);
        let sw = b.build().unwrap();
        let mut b = ModuleBuilder::new("hwm", ModuleKind::Hardware);
        let s = b.state("S");
        b.transition(s, None, s);
        b.initial(s);
        let hw = b.build().unwrap();
        let mut cosim = Cosim::new(CosimConfig {
            hw_cycle: Duration::from_ns(100),
            sw_cycle: Duration::from_ns(400),
        });
        cosim
            .set_scheduling(SchedulingConfig {
                park_blocked: false,
                ..SchedulingConfig::sharded()
            })
            .unwrap();
        let swid = cosim.add_module(&sw, &[]).unwrap();
        let hwid = cosim.add_module(&hw, &[]).unwrap();
        cosim.run_for(Duration::from_us(4)).unwrap();
        let sw_act = cosim.module_status(swid).activations;
        let hw_act = cosim.module_status(hwid).activations;
        assert!(hw_act >= 3 * sw_act, "hw {hw_act} vs sw {sw_act}");
    }

    #[test]
    fn runtime_errors_surface() {
        let mut b = ModuleBuilder::new("crash", ModuleKind::Software);
        let x = b.var("X", Type::INT16, Value::Int(1));
        let s = b.state("S");
        b.actions(s, vec![Stmt::assign(x, Expr::var(x).div(Expr::int(0)))]);
        b.transition(s, None, s);
        b.initial(s);
        let m = b.build().unwrap();
        let mut cosim = Cosim::new(CosimConfig::default());
        cosim.add_module(&m, &[]).unwrap();
        let err = cosim.run_for(Duration::from_us(1)).unwrap_err();
        assert!(matches!(err, CosimError::Runtime(_)));
        assert!(err.to_string().contains("crash"));
    }

    #[test]
    fn module_error_recorded_in_status() {
        // Regression: a module halting on an evaluation error must
        // record the halting state and the error on its own status, not
        // just in the backplane's global error slot — and under both
        // scheduler paths.
        for cfg in [SchedulingConfig::sharded(), SchedulingConfig::legacy()] {
            let mut b = ModuleBuilder::new("crash", ModuleKind::Software);
            let x = b.var("X", Type::INT16, Value::Int(1));
            let ok = b.state("OK");
            let boom = b.state("BOOM");
            b.transition(ok, None, boom);
            b.actions(boom, vec![Stmt::assign(x, Expr::var(x).div(Expr::int(0)))]);
            b.transition(boom, None, ok);
            b.initial(ok);
            let m = b.build().unwrap();
            let mut cosim = Cosim::new(CosimConfig::default());
            cosim.set_scheduling(cfg).unwrap();
            let id = cosim.add_module(&m, &[]).unwrap();
            let err = cosim.run_for(Duration::from_us(1)).unwrap_err();
            let st = cosim.module_status(id);
            assert_eq!(st.state, "BOOM", "halting state recorded ({cfg:?})");
            let msg = st.error.expect("per-module error recorded");
            assert!(msg.contains("crash"), "error names the module: {msg}");
            assert_eq!(msg, err.to_string(), "same error surfaced globally");
            assert_eq!(st.activations, 1, "halting activation not counted");
        }
    }

    #[test]
    fn blocked_consumer_parks_until_first_put() {
        // The headline regression: a consumer blocked on `get` against
        // an empty link records ZERO activations from the moment it
        // proves stable until the producer's first `put` lands.
        fn delayed_producer(delay: i64, value: i64) -> Module {
            let mut p = ModuleBuilder::new("latecomer", ModuleKind::Software);
            let done = p.var("D", Type::Bool, Value::Bool(false));
            let cnt = p.var("C", Type::INT16, Value::Int(0));
            let b = p.binding("iface", "hs");
            let wait = p.state("WAIT");
            let put = p.state("PUT");
            let end = p.state("END");
            p.actions(
                wait,
                vec![Stmt::assign(cnt, Expr::var(cnt).add(Expr::int(1)))],
            );
            p.transition(wait, Some(Expr::var(cnt).ge(Expr::int(delay))), put);
            p.transition(wait, None, wait);
            p.actions(
                put,
                vec![Stmt::Call(ServiceCall {
                    binding: b,
                    service: "put".into(),
                    args: vec![Expr::int(value)],
                    done: Some(done),
                    result: None,
                })],
            );
            p.transition(put, Some(Expr::var(done)), end);
            p.transition(end, None, end);
            p.initial(wait);
            p.build().unwrap()
        }
        for cfg in [
            SchedulingConfig::sharded(),
            SchedulingConfig::immediate(),
            SchedulingConfig {
                park_blocked: true,
                ..SchedulingConfig::legacy()
            },
        ] {
            let mut cosim = Cosim::new(CosimConfig::default());
            cosim.set_scheduling(cfg).unwrap();
            let link = cosim.add_fsm_unit("link", handshake_unit("hs", Type::INT16));
            // Producer counts ~400 cycles before its first put.
            let p = delayed_producer(400, 77);
            let c = consumer(1);
            cosim.add_module(&p, &[("iface", link)]).unwrap();
            let cid = cosim.add_module(&c, &[("iface", link)]).unwrap();
            // 10us = ~100 HW cycles: producer still counting.
            cosim.run_for(Duration::from_us(10)).unwrap();
            let blocked_at = cosim.module_status(cid).activations;
            assert!(
                blocked_at <= 3,
                "consumer proves stable within a couple of steps, got {blocked_at} ({cfg:?})"
            );
            let parked = cosim.shard_stats();
            assert!(parked.members_parked >= 1, "consumer parked ({cfg:?})");
            assert!(parked.parked_now >= 1);
            // Another ~100 cycles of empty link: ZERO further activations.
            cosim.run_for(Duration::from_us(10)).unwrap();
            assert_eq!(
                cosim.module_status(cid).activations,
                blocked_at,
                "parked consumer costs zero activations while blocked ({cfg:?})"
            );
            // The put lands around cycle 400; the wire events re-arm the
            // consumer and the exchange completes.
            cosim.run_for(Duration::from_us(40)).unwrap();
            let st = cosim.module_status(cid);
            assert_eq!(st.state, "END", "{cfg:?}");
            assert_eq!(cosim.module_var(cid, "SUM"), Some(Value::Int(77)));
            let stats = cosim.shard_stats();
            assert!(
                stats.members_resumed >= 1,
                "completion wires resumed the parked consumer ({cfg:?})"
            );
            assert!(
                st.activations > blocked_at,
                "real work resumed after the put ({cfg:?})"
            );
        }
    }

    #[test]
    fn parking_agrees_across_module_schedulings() {
        // Sharded modules and per-module processes park identically:
        // same states, same SUMs, same ACTIVATION COUNTS, same traces.
        fn run(cfg: SchedulingConfig) -> (Vec<ModuleStatus>, Vec<Option<Value>>, usize) {
            let mut cosim = Cosim::new(CosimConfig::default());
            cosim.set_scheduling(cfg).unwrap();
            let link = cosim.add_fsm_unit("link", handshake_unit("hs", Type::INT16));
            let p = producer(&[3, 4, 5]);
            let c = consumer(3);
            let pid = cosim.add_module(&p, &[("iface", link)]).unwrap();
            let cid = cosim.add_module(&c, &[("iface", link)]).unwrap();
            cosim.run_for(Duration::from_us(60)).unwrap();
            (
                vec![cosim.module_status(pid), cosim.module_status(cid)],
                vec![cosim.module_var(cid, "SUM")],
                cosim.trace_log().entries().len(),
            )
        }
        let sharded = run(SchedulingConfig::sharded());
        let immediate = run(SchedulingConfig::immediate());
        let per_module = run(SchedulingConfig {
            units: UnitScheduling::Sharded {
                shard_size: DEFAULT_SHARD_SIZE,
            },
            modules: ModuleScheduling::PerModule,
            park_blocked: true,
            ..SchedulingConfig::legacy()
        });
        assert_eq!(sharded, per_module);
        assert_eq!(sharded, immediate);
        assert_eq!(sharded.1[0], Some(Value::Int(12)));
    }

    #[test]
    fn unbound_binding_rejected() {
        let mut b = ModuleBuilder::new("m", ModuleKind::Software);
        b.binding("iface", "hs");
        let s = b.state("S");
        b.transition(s, None, s);
        b.initial(s);
        let m = b.build().unwrap();
        let mut cosim = Cosim::new(CosimConfig::default());
        let err = cosim.add_module(&m, &[]).unwrap_err();
        assert!(matches!(err, CosimError::Setup(_)));
    }

    #[test]
    fn add_system_end_to_end() {
        use cosma_core::SystemBuilder;
        let mut sysb = SystemBuilder::new("demo");
        let pm = sysb.module(producer(&[1, 2]));
        let cm = sysb.module(consumer(2));
        let u = sysb.unit("link", handshake_unit("hs", Type::INT16));
        sysb.bind(pm, "iface", u).unwrap();
        sysb.bind(cm, "iface", u).unwrap();
        let sys = sysb.build().unwrap();

        let mut cosim = Cosim::new(CosimConfig::default());
        let ids = cosim.add_system(&sys).unwrap();
        cosim.run_for(Duration::from_us(40)).unwrap();
        assert_eq!(cosim.module_var(ids[1], "SUM"), Some(Value::Int(3)));
    }

    #[test]
    fn module_port_signals_created() {
        let mut b = ModuleBuilder::new("pm", ModuleKind::Hardware);
        let port = b.port("LED", cosma_core::PortDir::Out, Type::Bit);
        let s = b.state("S");
        b.actions(s, vec![Stmt::drive(port, Expr::bit(cosma_core::Bit::One))]);
        b.transition(s, None, s);
        b.initial(s);
        let m = b.build().unwrap();
        let mut cosim = Cosim::new(CosimConfig::default());
        cosim.add_module(&m, &[]).unwrap();
        cosim.run_for(Duration::from_us(1)).unwrap();
        let sig = cosim.sim().find_signal("pm.LED").expect("signal exists");
        assert_eq!(cosim.sim().value(sig), &Value::Bit(cosma_core::Bit::One));
    }

    #[test]
    fn blocked_native_caller_parks_and_resumes_on_enqueue() {
        // Wire-visible native units: the FIFO's queue occupancy is
        // mirrored onto a kernel OCC signal, so a consumer blocked on
        // `get` against the empty FIFO parks — ZERO activations while
        // blocked — and resumes when the producer's enqueue lands.
        fn delayed_producer(delay: i64, value: i64) -> Module {
            let mut p = ModuleBuilder::new("latecomer", ModuleKind::Software);
            let done = p.var("D", Type::Bool, Value::Bool(false));
            let cnt = p.var("C", Type::INT16, Value::Int(0));
            let b = p.binding("iface", "fifo");
            let wait = p.state("WAIT");
            let put = p.state("PUT");
            let end = p.state("END");
            p.actions(
                wait,
                vec![Stmt::assign(cnt, Expr::var(cnt).add(Expr::int(1)))],
            );
            p.transition(wait, Some(Expr::var(cnt).ge(Expr::int(delay))), put);
            p.transition(wait, None, wait);
            p.actions(
                put,
                vec![Stmt::Call(ServiceCall {
                    binding: b,
                    service: "put".into(),
                    args: vec![Expr::int(value)],
                    done: Some(done),
                    result: None,
                })],
            );
            p.transition(put, Some(Expr::var(done)), end);
            p.transition(end, None, end);
            p.initial(wait);
            p.build().unwrap()
        }
        for cfg in [SchedulingConfig::sharded(), SchedulingConfig::immediate()] {
            let mut cosim = Cosim::new(CosimConfig::default());
            cosim.set_scheduling(cfg).unwrap();
            let link = cosim.add_native_unit("fifo", Box::new(FifoChannel::new("fifo", 8)));
            assert!(
                cosim.sim().find_signal("fifo.OCC").is_some(),
                "occupancy mirrored onto a kernel signal"
            );
            let p = delayed_producer(400, 55);
            let c = consumer(1);
            cosim.add_module(&p, &[("iface", link)]).unwrap();
            let cid = cosim.add_module(&c, &[("iface", link)]).unwrap();
            // ~100 HW cycles: producer still counting, consumer blocked.
            cosim.run_for(Duration::from_us(10)).unwrap();
            let blocked_at = cosim.module_status(cid).activations;
            assert!(
                blocked_at <= 3,
                "consumer proves stable within a couple of steps, got {blocked_at} ({cfg:?})"
            );
            assert!(cosim.shard_stats().members_parked >= 1, "{cfg:?}");
            // Another ~100 cycles: ZERO further activations while blocked.
            cosim.run_for(Duration::from_us(10)).unwrap();
            assert_eq!(
                cosim.module_status(cid).activations,
                blocked_at,
                "parked native caller costs zero activations while blocked ({cfg:?})"
            );
            // The enqueue lands around cycle 400; the OCC event re-arms
            // the consumer and the exchange completes.
            cosim.run_for(Duration::from_us(40)).unwrap();
            let st = cosim.module_status(cid);
            assert_eq!(st.state, "END", "{cfg:?}");
            assert_eq!(cosim.module_var(cid, "SUM"), Some(Value::Int(55)));
            assert!(
                cosim.shard_stats().members_resumed >= 1,
                "OCC event resumed the parked consumer ({cfg:?})"
            );
        }
    }

    #[test]
    fn native_occ_mirror_survives_same_delta_churn() {
        // Regression: the OCC drive decision must compare against the
        // last *driven* value, not the committed signal value. With a
        // put and a get landing in the same delta (occupancy 0 -> 1 ->
        // 0), the committed-value comparison skipped the correcting
        // drive, left OCC stuck at 1 with an empty queue, and a later
        // put back to occupancy 1 then produced no event — so a parked
        // consumer never resumed.
        fn one_shot_producer(name: &str, value: i64) -> Module {
            let mut p = ModuleBuilder::new(name, ModuleKind::Software);
            let done = p.var("D", Type::Bool, Value::Bool(false));
            let b = p.binding("iface", "fifo");
            let put = p.state("PUT");
            let end = p.state("END");
            p.actions(
                put,
                vec![Stmt::Call(ServiceCall {
                    binding: b,
                    service: "put".into(),
                    args: vec![Expr::int(value)],
                    done: Some(done),
                    result: None,
                })],
            );
            p.transition(put, Some(Expr::var(done)), end);
            p.transition(end, None, end);
            p.initial(put);
            p.build().unwrap()
        }
        fn delayed_producer(name: &str, delay: i64, value: i64) -> Module {
            let mut p = ModuleBuilder::new(name, ModuleKind::Software);
            let done = p.var("D", Type::Bool, Value::Bool(false));
            let cnt = p.var("C", Type::INT16, Value::Int(0));
            let b = p.binding("iface", "fifo");
            let wait = p.state("WAIT");
            let put = p.state("PUT");
            let end = p.state("END");
            p.actions(
                wait,
                vec![Stmt::assign(cnt, Expr::var(cnt).add(Expr::int(1)))],
            );
            p.transition(wait, Some(Expr::var(cnt).ge(Expr::int(delay))), put);
            p.transition(wait, None, wait);
            p.actions(
                put,
                vec![Stmt::Call(ServiceCall {
                    binding: b,
                    service: "put".into(),
                    args: vec![Expr::int(value)],
                    done: Some(done),
                    result: None,
                })],
            );
            p.transition(put, Some(Expr::var(done)), end);
            p.transition(end, None, end);
            p.initial(put);
            p.build().unwrap()
        }
        for cfg in [SchedulingConfig::sharded(), SchedulingConfig::immediate()] {
            let mut cosim = Cosim::new(CosimConfig::default());
            cosim.set_scheduling(cfg).unwrap();
            let link = cosim.add_native_unit("fifo", Box::new(FifoChannel::new("fifo", 8)));
            // Same-cycle put+get: occupancy goes 0 -> 1 -> 0 inside one
            // delta (producer before consumer in creation order).
            let p0 = one_shot_producer("p0", 7);
            let c0 = consumer(1);
            cosim.add_module(&p0, &[("iface", link)]).unwrap();
            let c0id = cosim.add_module(&c0, &[("iface", link)]).unwrap();
            // A second consumer blocks on the now-empty queue and parks
            // on OCC.
            let c1 = consumer(1);
            let c1id = cosim.add_module(&c1, &[("iface", link)]).unwrap();
            // A late producer re-raises occupancy to exactly 1 — the
            // stale mirror would produce no event here.
            let p1 = delayed_producer("p1", 300, 9);
            cosim.add_module(&p1, &[("iface", link)]).unwrap();
            cosim.run_for(Duration::from_us(100)).unwrap();
            assert_eq!(
                cosim.module_var(c0id, "SUM"),
                Some(Value::Int(7)),
                "{cfg:?}"
            );
            let st = cosim.module_status(c1id);
            assert_eq!(st.state, "END", "parked consumer resumed ({cfg:?})");
            assert_eq!(
                cosim.module_var(c1id, "SUM"),
                Some(Value::Int(9)),
                "{cfg:?}"
            );
        }
    }

    #[test]
    fn bodies_added_after_quiescence_get_clock_edges() {
        // Regression: registering a clocked body while the generators
        // are idle (everything parked after run_to_quiescence) must
        // kick them awake — otherwise the new body never activates.
        let mut b = ModuleBuilder::new("m", ModuleKind::Software);
        let s = b.state("S");
        b.transition(s, None, s);
        b.initial(s);
        let mut cosim = Cosim::new(CosimConfig::default());
        cosim.add_module(&b.build().unwrap(), &[]).unwrap();
        let quiesced = cosim.run_to_quiescence(SimTime::from_ns(1000)).unwrap();
        assert!(quiesced, "self-looper parks, clocks stop");
        // Add a spinner whose activations are observable.
        let mut b = ModuleBuilder::new("late", ModuleKind::Software);
        let n = b.var("N", Type::INT16, Value::Int(0));
        let s = b.state("S");
        b.actions(s, vec![Stmt::assign(n, Expr::var(n).add(Expr::int(1)))]);
        b.transition(s, None, s);
        b.initial(s);
        let id = cosim.add_module(&b.build().unwrap(), &[]).unwrap();
        cosim.run_for(Duration::from_us(2)).unwrap();
        let st = cosim.module_status(id);
        assert!(
            st.activations > 0,
            "late-added module must see clock edges (got {})",
            st.activations
        );
    }

    #[test]
    fn malformed_call_is_typed_module_error_not_panic() {
        // De-panicked call-application path: a module calling a service
        // its unit does not offer (or with a payload of the wrong kind)
        // halts with a typed error in ModuleStatus — identically under
        // immediate and deferred (fallback) application.
        fn bad_caller(service: &str, args: Vec<Expr>) -> Module {
            let mut b = ModuleBuilder::new("badcall", ModuleKind::Software);
            let done = b.var("D", Type::Bool, Value::Bool(false));
            let bind = b.binding("iface", "bus");
            let s = b.state("S");
            b.actions(
                s,
                vec![Stmt::Call(ServiceCall {
                    binding: bind,
                    service: service.into(),
                    args,
                    done: Some(done),
                    result: None,
                })],
            );
            b.transition(s, None, s);
            b.initial(s);
            b.build().unwrap()
        }
        for cfg in [SchedulingConfig::sharded(), SchedulingConfig::immediate()] {
            for (service, args) in [
                ("bogus", vec![]),
                ("put", vec![]),
                ("put", vec![Expr::bool(true)]),
            ] {
                let mut cosim = Cosim::new(CosimConfig::default());
                cosim.set_scheduling(cfg).unwrap();
                let link = cosim.add_batched_unit("bus", Type::INT16, 4, 16).unwrap();
                let m = bad_caller(service, args.clone());
                let id = cosim.add_module(&m, &[("iface", link)]).unwrap();
                let err = cosim.run_for(Duration::from_us(1)).unwrap_err();
                assert!(matches!(err, CosimError::Runtime(_)), "{cfg:?}/{service}");
                let st = cosim.module_status(id);
                let msg = st.error.expect("typed error recorded on the module");
                assert_eq!(msg, err.to_string(), "{cfg:?}/{service}/{args:?}");
            }
        }
    }

    #[test]
    fn deferred_commit_stats_and_hashed_placement() {
        // Modules spread over several shards under hashed placement,
        // and sub-threshold cycles run the direct path (the step/commit
        // machinery is reserved for stepping sets the worker pool can
        // actually parallelize — zero commit calls here is the
        // optimization working, not the scheduler idling).
        let mut cosim = Cosim::new(CosimConfig::default());
        cosim
            .set_scheduling(SchedulingConfig {
                modules: ModuleScheduling::Sharded { shard_size: 2 },
                ..SchedulingConfig::sharded()
            })
            .unwrap();
        let link = cosim.add_fsm_unit("link", handshake_unit("hs", Type::INT16));
        let p = producer(&[1, 2, 3]);
        let c = consumer(3);
        cosim.add_module(&p, &[("iface", link)]).unwrap();
        for k in 0..6 {
            let mut b = ModuleBuilder::new(format!("idle{k}"), ModuleKind::Software);
            let s = b.state("S");
            b.transition(s, None, s);
            b.initial(s);
            cosim.add_module(&b.build().unwrap(), &[]).unwrap();
        }
        let cid = cosim.add_module(&c, &[("iface", link)]).unwrap();
        cosim.run_for(Duration::from_us(50)).unwrap();
        assert_eq!(cosim.module_var(cid, "SUM"), Some(Value::Int(6)));
        let st = cosim.shard_stats();
        assert_eq!(
            st.commit_calls, 0,
            "small unthreaded cycles step directly — no speculation to \
             commit: {st:?}"
        );
        assert_eq!(st.commit_fallbacks, 0);
        assert!(
            st.modules_stepped > 0,
            "modules still stepped through the driver: {st:?}"
        );
        assert!(
            cosim.sched.driver.as_ref().unwrap().borrow().shards.len() >= 2,
            "8 modules at shard size 2 open several driver shards"
        );
    }

    #[test]
    fn threaded_step_phase_matches_and_reports_per_thread_runs() {
        // Threads(2) vs Off on a backplane whose cycles carry a large
        // stepping set (parking disabled, many modules — what the
        // fan-out threshold requires): identical results, and
        // ShardStats reports the per-worker stepped-activation split.
        fn run(cfg: SchedulingConfig) -> (Option<Value>, ModuleStatus, Vec<u64>, u64) {
            let mut cosim = Cosim::new(CosimConfig::default());
            cosim.set_scheduling(cfg).unwrap();
            let l0 = cosim.add_fsm_unit("l0", handshake_unit("hs", Type::INT16));
            let p0 = producer(&[1, 2, 3]);
            let c0 = consumer(3);
            cosim.add_module(&p0, &[("iface", l0)]).unwrap();
            let cid = cosim.add_module(&c0, &[("iface", l0)]).unwrap();
            // Enough unparked self-loopers to cross STEP_FANOUT_MIN.
            for k in 0..(2 * STEP_FANOUT_MIN) {
                let mut b = ModuleBuilder::new(format!("spin{k}"), ModuleKind::Software);
                let n = b.var("N", Type::INT16, Value::Int(0));
                let s = b.state("S");
                b.actions(s, vec![Stmt::assign(n, Expr::var(n).add(Expr::int(1)))]);
                b.transition(s, None, s);
                b.initial(s);
                cosim.add_module(&b.build().unwrap(), &[]).unwrap();
            }
            cosim.run_for(Duration::from_us(40)).unwrap();
            let st = cosim.shard_stats();
            (
                cosim.module_var(cid, "SUM"),
                cosim.module_status(cid),
                st.step_thread_runs.clone(),
                st.modules_stepped,
            )
        }
        let threaded = run(SchedulingConfig::sharded().with_threads(2));
        let sequential = run(SchedulingConfig::sharded());
        assert_eq!(threaded.0, sequential.0);
        assert_eq!(threaded.1, sequential.1);
        assert_eq!(threaded.3, sequential.3, "same activation counts");
        assert_eq!(threaded.0, Some(Value::Int(6)));
        assert_eq!(threaded.2.len(), 2, "one kernel-thread slot, one worker");
        assert!(
            threaded.2.iter().all(|&r| r > 0),
            "both workers stepped activations: {:?}",
            threaded.2
        );
        assert!(sequential.2.is_empty(), "no worker runs without threading");
    }

    #[test]
    fn invalid_scheduling_configs_rejected() {
        let mut cosim = Cosim::new(CosimConfig::default());
        // Hashed placement without deferred calls.
        assert!(matches!(
            cosim.set_scheduling(SchedulingConfig {
                calls: CallApplication::Immediate,
                ..SchedulingConfig::sharded()
            }),
            Err(CosimError::Setup(_))
        ));
        // Threading without deferred calls.
        assert!(matches!(
            cosim.set_scheduling(SchedulingConfig {
                parallelism: Parallelism::Threads(2),
                ..SchedulingConfig::immediate()
            }),
            Err(CosimError::Setup(_))
        ));
        // Zero threads.
        assert!(matches!(
            cosim.set_scheduling(SchedulingConfig::sharded().with_threads(0)),
            Err(CosimError::Setup(_))
        ));
        // Deferred calls on the per-module path.
        assert!(matches!(
            cosim.set_scheduling(SchedulingConfig {
                modules: ModuleScheduling::PerModule,
                placement: ModulePlacement::CreationOrder,
                ..SchedulingConfig::sharded()
            }),
            Err(CosimError::Setup(_))
        ));
    }

    #[test]
    fn invalid_clock_domain_configs_rejected() {
        // Zero ratio components.
        let mut cosim = Cosim::new(CosimConfig::default());
        assert!(matches!(
            cosim.add_clock_domain("z", 0, 1),
            Err(CosimError::Setup(_))
        ));
        assert!(matches!(
            cosim.add_clock_domain("z", 1, 0),
            Err(CosimError::Setup(_))
        ));
        // A ratio that scales the activation period to zero.
        assert!(matches!(
            cosim.add_clock_domain("z", 1, u64::MAX),
            Err(CosimError::Setup(_))
        ));
        // Empty and duplicate names.
        assert!(matches!(
            cosim.add_clock_domain("", 2, 1),
            Err(CosimError::Setup(_))
        ));
        cosim.add_clock_domain("slow", 2, 1).unwrap();
        assert!(matches!(
            cosim.add_clock_domain("slow", 4, 1),
            Err(CosimError::Setup(_))
        ));
        // Domains must precede units and modules.
        cosim.add_fsm_unit("u0", handshake_unit("hs", Type::INT16));
        assert!(matches!(
            cosim.add_clock_domain("late", 2, 1),
            Err(CosimError::Setup(_))
        ));
        // Mixed-domain shards are rejected from both directions: a
        // domain added under Mixed placement, and Mixed placement
        // selected once a second domain exists.
        let mut mixed = Cosim::new(CosimConfig::default());
        mixed
            .set_scheduling(SchedulingConfig {
                domains: DomainPlacement::Mixed,
                ..SchedulingConfig::sharded()
            })
            .unwrap();
        assert!(matches!(
            mixed.add_clock_domain("slow", 2, 1),
            Err(CosimError::Setup(_))
        ));
        let mut two = Cosim::new(CosimConfig::default());
        two.add_clock_domain("slow", 2, 1).unwrap();
        assert!(matches!(
            two.set_scheduling(SchedulingConfig {
                domains: DomainPlacement::Mixed,
                ..SchedulingConfig::sharded()
            }),
            Err(CosimError::Setup(_))
        ));
    }

    #[test]
    fn hashed_unit_placement_is_deterministic() {
        // Two identical builds place units into identical shards.
        fn shard_sizes() -> Vec<usize> {
            let mut cosim = Cosim::new(CosimConfig::default());
            cosim
                .set_scheduling(SchedulingConfig {
                    units: UnitScheduling::Sharded { shard_size: 4 },
                    ..SchedulingConfig::sharded()
                })
                .unwrap();
            for k in 0..17 {
                cosim.add_fsm_unit(&format!("u{k}"), handshake_unit("hs", Type::INT16));
            }
            cosim
                .sched
                .unit_shards
                .iter()
                .map(|s| s.borrow().members.len())
                .collect()
        }
        let a = shard_sizes();
        let b = shard_sizes();
        assert_eq!(a, b, "hashed placement is deterministic");
        assert_eq!(a.iter().sum::<usize>(), 17, "every unit placed");
        assert!(a.len() >= 2, "17 units at shard size 4 open several shards");
    }
}
