//! Partitioned co-simulation: several backplane instances coupled
//! through latency-annotated boundary links and synchronized
//! optimistically.
//!
//! A [`Partition`] wraps one [`Cosim`] backplane. The [`Orchestrator`]
//! advances all partitions in lockstep *quanta*: each partition
//! speculates one sync quantum ahead on its own, and cross-partition
//! traffic travels through [`BoundarySpec`]-described boundary links —
//! a pair of batched half-units sharing one latency-stamped message
//! queue across the cut. Because partitions run sequentially within a
//! quantum, a partition may consume a *stale* view of an inbound
//! queue; the orchestrator detects this after the fact and rolls the
//! partition back to the quantum start via the backplane's
//! [`Snapshot`](crate::Snapshot)/[`Cosim::restore`] path, then re-runs
//! it against the refreshed queue. With strictly positive boundary
//! latency the fixed point converges: every rescan round extends the
//! consistent horizon by at least one boundary latency.
//!
//! The result is bit-identical to running the same coupled structure
//! (including the boundary half-units) in a single backplane — the
//! property-test oracle — while opening the door to running partitions
//! on separate threads or processes.

use crate::backplane::{BoundaryQueue, Cosim, CosimError, DomainId, Snapshot, UnitId};
use cosma_comm::BusTiming;
use cosma_core::{Type, Value};
use cosma_sim::{Duration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// Identifies a partition registered with an [`Orchestrator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PartitionId(usize);

impl PartitionId {
    /// Index of this partition in the orchestrator's table.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

/// One end's description of a boundary link. Both ends must describe
/// the link identically — [`Orchestrator::add_boundary`] rejects
/// disagreeing ends with [`CosimError::Setup`], since a link whose
/// halves disagree on capacity or timing would silently desynchronize
/// the partitioned run from its monolithic oracle.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundarySpec {
    /// Element type carried by the link.
    pub data_ty: Type,
    /// Maximum batch size of the underlying batched link.
    pub max_batch: usize,
    /// Capacity (element queue depth) of each half.
    pub capacity: usize,
    /// Bus timing of each half.
    pub timing: BusTiming,
    /// Transport latency across the cut. Must be strictly positive:
    /// the optimistic sync relies on a nonzero horizon to order
    /// cross-partition delivery deterministically.
    pub latency: Duration,
}

/// Cumulative synchronization statistics of an [`Orchestrator`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OrchestratorStats {
    /// Quanta fully committed.
    pub quanta_committed: u64,
    /// Partition re-runs forced by a stale inbound-queue view.
    pub rollbacks: u64,
    /// Values transported across all boundary links.
    pub boundary_messages: u64,
    /// Consistency-scan rounds executed (one per quantum when no
    /// rollback occurs).
    pub rescan_rounds: u64,
}

/// One partition: a backplane plus its boundary bookkeeping.
#[derive(Debug)]
pub struct Partition {
    cosim: Cosim,
    /// Boundary indices whose *out* half lives here.
    outs: Vec<usize>,
    /// Boundary indices whose *in* half lives here.
    ins: Vec<usize>,
}

impl Partition {
    /// The wrapped backplane.
    #[must_use]
    pub fn cosim(&self) -> &Cosim {
        &self.cosim
    }

    /// The wrapped backplane, mutably.
    pub fn cosim_mut(&mut self) -> &mut Cosim {
        &mut self.cosim
    }
}

/// Couples partitions and advances them in optimistically-synchronized
/// quanta. See the [module docs](self) for the synchronization
/// contract. Which partitions a boundary's halves live on is recorded
/// in the partitions' `outs`/`ins` index lists.
pub struct Orchestrator {
    partitions: Vec<Partition>,
    boundaries: Vec<Rc<RefCell<BoundaryQueue>>>,
    stats: OrchestratorStats,
    now: SimTime,
    started: bool,
}

impl Default for Orchestrator {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Orchestrator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Orchestrator")
            .field("partitions", &self.partitions.len())
            .field("boundaries", &self.boundaries.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

/// Rescan rounds per quantum before the orchestrator gives up. The
/// fixed point converges in at most `quantum / min_latency + 1` rounds
/// (each round extends the consistent horizon by one boundary
/// latency); a run that exceeds this cap indicates a latency/quantum
/// configuration far outside anything sensible.
const MAX_RESCAN_ROUNDS: u32 = 10_000;

impl Orchestrator {
    /// An orchestrator with no partitions.
    #[must_use]
    pub fn new() -> Self {
        Orchestrator {
            partitions: vec![],
            boundaries: vec![],
            stats: OrchestratorStats::default(),
            now: SimTime::ZERO,
            started: false,
        }
    }

    /// Registers a backplane as a partition. The backplane's clock
    /// domains are *pinned* ([`Cosim::pin_clock_domains`]) so every
    /// partition produces the same activation-edge grid regardless of
    /// how the cut distributes clock demand — the property that makes
    /// partitioned runs bit-identical to the monolithic oracle.
    pub fn add_partition(&mut self, mut cosim: Cosim) -> PartitionId {
        cosim.pin_clock_domains();
        self.partitions.push(Partition {
            cosim,
            outs: vec![],
            ins: vec![],
        });
        PartitionId(self.partitions.len() - 1)
    }

    /// Installs a boundary link: the *out* half (producers `put` into
    /// it) on `from` in `from_domain`, the *in* half (consumers `get`
    /// from it) on `to` in `to_domain`. Each side passes its own
    /// [`BoundarySpec`]; both ends must agree.
    ///
    /// Returns the unit ids of the two halves (`out`, `in`) — bind
    /// producer modules to the first on `from`, consumer modules to
    /// the second on `to`.
    ///
    /// # Errors
    ///
    /// [`CosimError::Setup`] when the two specs disagree, the latency
    /// is zero, a partition id is stale, the quantum loop already
    /// started, or the halves collide with existing unit names.
    #[allow(clippy::too_many_arguments)]
    pub fn add_boundary(
        &mut self,
        name: &str,
        from: PartitionId,
        from_domain: DomainId,
        from_spec: &BoundarySpec,
        to: PartitionId,
        to_domain: DomainId,
        to_spec: &BoundarySpec,
    ) -> Result<(UnitId, UnitId), CosimError> {
        if self.started {
            return Err(CosimError::Setup(format!(
                "boundary link {name}: boundaries must be installed before the first quantum"
            )));
        }
        if from_spec != to_spec {
            return Err(CosimError::Setup(format!(
                "boundary link {name}: the two ends disagree on the link contract \
                 ({from_spec:?} vs {to_spec:?}); both partitions must describe the \
                 boundary identically"
            )));
        }
        if from.0 >= self.partitions.len() || to.0 >= self.partitions.len() {
            return Err(CosimError::Setup(format!(
                "boundary link {name}: unknown partition id (this orchestrator has {})",
                self.partitions.len()
            )));
        }
        let queue = Rc::new(RefCell::new(BoundaryQueue::default()));
        let spec = from_spec;
        let out_id = self.partitions[from.0].cosim.add_boundary_out(
            from_domain,
            name,
            spec.data_ty.clone(),
            spec.max_batch,
            spec.capacity,
            spec.timing,
            spec.latency,
            Rc::clone(&queue),
        )?;
        let in_id = self.partitions[to.0].cosim.add_boundary_in(
            to_domain,
            name,
            spec.data_ty.clone(),
            spec.max_batch,
            spec.capacity,
            spec.timing,
            Rc::clone(&queue),
        )?;
        let bi = self.boundaries.len();
        self.boundaries.push(queue);
        self.partitions[from.0].outs.push(bi);
        self.partitions[to.0].ins.push(bi);
        Ok((out_id, in_id))
    }

    /// A registered partition.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this orchestrator.
    #[must_use]
    pub fn partition(&self, p: PartitionId) -> &Partition {
        &self.partitions[p.0]
    }

    /// A registered partition, mutably. Mutating simulation state
    /// mid-quantum voids the bit-identical guarantee; use between
    /// quanta (e.g. to inspect traces or poke test stimuli).
    pub fn partition_mut(&mut self, p: PartitionId) -> &mut Partition {
        &mut self.partitions[p.0]
    }

    /// Number of registered partitions.
    #[must_use]
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Cumulative synchronization statistics.
    #[must_use]
    pub fn stats(&self) -> OrchestratorStats {
        self.stats
    }

    /// Global simulated time reached by the committed quanta.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances every partition by `total`, in sync quanta of
    /// `quantum` (the final quantum is clipped to the remainder).
    ///
    /// # Errors
    ///
    /// [`CosimError::Setup`] when `quantum` is zero; any error a
    /// partition run or snapshot/restore produces; and
    /// [`CosimError::Runtime`] if a quantum's consistency scan fails
    /// to converge.
    pub fn run_for(&mut self, total: Duration, quantum: Duration) -> Result<(), CosimError> {
        if quantum == Duration::ZERO {
            return Err(CosimError::Setup(
                "sync quantum must be positive".to_string(),
            ));
        }
        let deadline = self.now.saturating_add(total);
        while self.now < deadline {
            let t1 = self.now.saturating_add(quantum).min(deadline);
            self.run_quantum(t1)?;
        }
        Ok(())
    }

    /// Runs one optimistic quantum `[now, t1]`: speculate every
    /// partition to `t1`, then rescan until every partition's view of
    /// its inbound boundary queues matches the committed producer
    /// state, rolling stale partitions back and re-running them.
    fn run_quantum(&mut self, t1: SimTime) -> Result<(), CosimError> {
        if !self.started {
            self.started = true;
            // Elaborate every partition before the first checkpoint: a
            // snapshot of a never-elaborated kernel captures the empty
            // sensitivity sets that steady-state (`Wait::Same`)
            // processes only populate during their elaboration run, so
            // restoring one would strand them deaf. Settling the start
            // instant here is safe — boundary latency is strictly
            // positive, so no cross-partition message can influence
            // the instant it was sent at.
            for p in &mut self.partitions {
                p.cosim.run_until(self.now)?;
            }
        }
        let n = self.partitions.len();
        // Quantum-start checkpoint: backplane snapshots plus each
        // queue's (length, cursor).
        let snaps: Vec<Snapshot> = self.partitions.iter().map(|p| p.cosim.snapshot()).collect();
        let q0: Vec<(usize, usize)> = self
            .boundaries
            .iter()
            .map(|b| {
                let q = b.borrow();
                (q.entries.len(), q.cursor)
            })
            .collect();
        // views[p][k] = what partition p saw of its k-th inbound
        // queue's this-quantum suffix, recorded when p's run ended.
        let mut views: Vec<Vec<Vec<(SimTime, Value)>>> = vec![vec![]; n];
        // Initial speculation, in partition order.
        for (p, view) in views.iter_mut().enumerate() {
            self.partitions[p].cosim.run_until(t1)?;
            *view = self.record_view(p, &q0);
        }
        // Rescan to the fixed point. A partition is consistent when,
        // for every inbound queue, the suffix it ran against is a
        // prefix of the current suffix *by content* and everything
        // beyond that prefix arrives after t1 (so it could not have
        // been injected this quantum anyway). Content comparison — not
        // length — lets a producer that rolled back and regenerated
        // identical traffic leave its consumers undisturbed.
        //
        // A stale partition is rolled back and re-run IMMEDIATELY, so
        // the queues its rollback truncated are regenerated before any
        // other partition's staleness is judged against them. (Judging
        // the whole set first and re-running afterwards livelocks on
        // cyclic cuts: two mutually-stale partitions would each
        // truncate the other's input in the same pass, recreating the
        // exact pre-round state forever.) Convergence with immediate
        // re-runs follows from causality: traffic arriving within k
        // boundary latencies of the quantum start is fixed after k
        // rounds, so the consistent horizon outruns the quantum in
        // `quantum / min_latency` rounds.
        let mut rounds = 0u32;
        loop {
            rounds += 1;
            self.stats.rescan_rounds += 1;
            if rounds > MAX_RESCAN_ROUNDS {
                return Err(CosimError::Runtime(format!(
                    "optimistic sync did not converge within {MAX_RESCAN_ROUNDS} rescan \
                     rounds (quantum {:?}..{t1:?}); boundary latencies are implausibly \
                     small versus the sync quantum",
                    self.now
                )));
            }
            let mut any_stale = false;
            for (p, view) in views.iter_mut().enumerate() {
                let stale = self.partitions[p].ins.iter().enumerate().any(|(k, &bi)| {
                    let q = self.boundaries[bi].borrow();
                    let cur = &q.entries[q0[bi].0..];
                    let seen = &view[k];
                    cur.len() < seen.len()
                        || cur[..seen.len()] != seen[..]
                        || cur[seen.len()..].iter().any(|(t, _)| *t <= t1)
                });
                if stale {
                    any_stale = true;
                    self.stats.rollbacks += 1;
                    self.rollback(p, &snaps, &q0)?;
                    self.partitions[p].cosim.run_until(t1)?;
                    *view = self.record_view(p, &q0);
                }
            }
            if !any_stale {
                break;
            }
        }
        // Commit: count this quantum's traffic, then drop the consumed
        // prefix of every queue so memory stays bounded.
        for (bi, b) in self.boundaries.iter().enumerate() {
            let mut q = b.borrow_mut();
            self.stats.boundary_messages += (q.entries.len() - q0[bi].0) as u64;
            let consumed = q.cursor;
            q.entries.drain(..consumed);
            q.cursor = 0;
        }
        self.stats.quanta_committed += 1;
        self.now = t1;
        Ok(())
    }

    /// What partition `p` currently sees of each of its inbound
    /// queues' this-quantum suffix.
    fn record_view(&self, p: usize, q0: &[(usize, usize)]) -> Vec<Vec<(SimTime, Value)>> {
        self.partitions[p]
            .ins
            .iter()
            .map(|&bi| self.boundaries[bi].borrow().entries[q0[bi].0..].to_vec())
            .collect()
    }

    /// Rolls partition `p` back to the quantum start: restore its
    /// backplane snapshot, truncate its outbound queues to their
    /// quantum-start length (un-publishing its speculative traffic)
    /// and rewind its inbound cursors (un-consuming).
    fn rollback(
        &mut self,
        p: usize,
        snaps: &[Snapshot],
        q0: &[(usize, usize)],
    ) -> Result<(), CosimError> {
        let part = &mut self.partitions[p];
        part.cosim.restore(&snaps[p]).map_err(|e| {
            CosimError::Runtime(format!(
                "rollback of partition {p} failed ({e}); partitioned state is now \
                 inconsistent"
            ))
        })?;
        for &bi in &part.outs {
            // The consumer's cursor may transiently point past the
            // truncation point; its own staleness check will catch the
            // mismatch and rewind it before anything reads the queue.
            self.boundaries[bi].borrow_mut().entries.truncate(q0[bi].0);
        }
        for &bi in &part.ins {
            self.boundaries[bi].borrow_mut().cursor = q0[bi].1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backplane::CosimConfig;

    fn spec() -> BoundarySpec {
        BoundarySpec {
            data_ty: Type::INT16,
            max_batch: 4,
            capacity: 16,
            timing: BusTiming::LengthOnly,
            latency: Duration::from_ns(200),
        }
    }

    fn two_partitions() -> (Orchestrator, PartitionId, PartitionId) {
        let mut orch = Orchestrator::new();
        let a = orch.add_partition(Cosim::new(CosimConfig::default()));
        let b = orch.add_partition(Cosim::new(CosimConfig::default()));
        (orch, a, b)
    }

    #[test]
    fn boundary_ends_must_agree() {
        let (mut orch, a, b) = two_partitions();
        let disagree = BoundarySpec {
            capacity: 8,
            ..spec()
        };
        let err = orch
            .add_boundary(
                "cut",
                a,
                DomainId::BASE,
                &spec(),
                b,
                DomainId::BASE,
                &disagree,
            )
            .unwrap_err();
        assert!(matches!(err, CosimError::Setup(_)), "{err}");
        assert!(err.to_string().contains("disagree"), "{err}");
    }

    #[test]
    fn boundary_latency_must_be_positive() {
        let (mut orch, a, b) = two_partitions();
        let zero = BoundarySpec {
            latency: Duration::ZERO,
            ..spec()
        };
        let err = orch
            .add_boundary("cut", a, DomainId::BASE, &zero, b, DomainId::BASE, &zero)
            .unwrap_err();
        assert!(matches!(err, CosimError::Setup(_)), "{err}");
        assert!(err.to_string().contains("latency"), "{err}");
    }

    #[test]
    fn boundary_rejects_foreign_partition_id() {
        let (mut orch, a, _) = two_partitions();
        let stale = PartitionId(7);
        let err = orch
            .add_boundary(
                "cut",
                a,
                DomainId::BASE,
                &spec(),
                stale,
                DomainId::BASE,
                &spec(),
            )
            .unwrap_err();
        assert!(matches!(err, CosimError::Setup(_)), "{err}");
    }

    #[test]
    fn boundaries_frozen_after_first_quantum() {
        let (mut orch, a, b) = two_partitions();
        orch.run_for(Duration::from_us(1), Duration::from_us(1))
            .unwrap();
        let err = orch
            .add_boundary(
                "cut",
                a,
                DomainId::BASE,
                &spec(),
                b,
                DomainId::BASE,
                &spec(),
            )
            .unwrap_err();
        assert!(matches!(err, CosimError::Setup(_)), "{err}");
    }

    #[test]
    fn sync_quantum_must_be_positive() {
        let (mut orch, _, _) = two_partitions();
        let err = orch
            .run_for(Duration::from_us(1), Duration::ZERO)
            .unwrap_err();
        assert!(matches!(err, CosimError::Setup(_)), "{err}");
    }
}
