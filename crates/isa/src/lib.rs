//! # cosma-isa — the MC16 processor
//!
//! A 16-bit register machine with port I/O, its assembler, disassembler
//! and a cycle-counting instruction-set simulator.
//!
//! MC16 substitutes for the 386 PC-AT host of the paper's prototype
//! (Figure 8): what matters for the reproduction is that synthesized
//! software runs on a *real* sequential processor whose only window to the
//! hardware is `IN`/`OUT` port transactions over a timed bus — the exact
//! code path of the paper's SW synthesis view (`inport`/`outport` at
//! physical addresses, 0x300 in the prototype).
//!
//! ## Example
//!
//! ```
//! use cosma_isa::{assemble, Cpu, NullBus};
//!
//! let img = assemble("
//!     EQU  PORT, 0x300
//!     LDI  r0, 0
//!     LDI  r1, 10
//! loop:
//!     ADD  r0, r1
//!     ADDI r1, -1
//!     CMPI r1, 0
//!     JNZ  loop
//!     HLT
//! ")?;
//! let mut cpu = Cpu::new();
//! cpu.load_image(&img);
//! cpu.run(&mut NullBus, 10_000)?;
//! assert_eq!(cpu.reg(0), 55);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod asm;
mod cpu;
mod instr;

pub use asm::{assemble, disassemble, AsmError, Image};
pub use cpu::{Cpu, CpuError, Flags, NullBus, PortBus, StepInfo, MEM_WORDS, STACK_TOP};
pub use instr::{DecodeError, Instr, Reg};
