//! The MC16 instruction-set simulator: cycle-counting, with port I/O
//! delegated to a pluggable bus.

use crate::instr::{DecodeError, Instr, Reg};
use std::fmt;

/// Number of memory words (64 Ki x 16 bit).
pub const MEM_WORDS: usize = 1 << 16;

/// Where the stack pointer starts (grows downward).
pub const STACK_TOP: u16 = 0xFF00;

/// Port I/O bus attached to the CPU. Returns the value (for reads) and
/// the number of *extra* wait cycles the transaction consumed — this is
/// how the 10 MHz PC-AT extension bus's latency reaches the software
/// timeline.
pub trait PortBus {
    /// A bus read transaction (`IN`).
    fn port_in(&mut self, port: u16) -> (u16, u32);
    /// A bus write transaction (`OUT`).
    fn port_out(&mut self, port: u16, value: u16) -> u32;
}

/// A bus with nothing attached: reads return 0, no wait states.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullBus;

impl PortBus for NullBus {
    fn port_in(&mut self, _port: u16) -> (u16, u32) {
        (0, 0)
    }
    fn port_out(&mut self, _port: u16, _value: u16) -> u32 {
        0
    }
}

/// CPU condition flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Flags {
    /// Result was zero.
    pub z: bool,
    /// Result was negative (bit 15 set).
    pub n: bool,
    /// Unsigned carry / borrow out.
    pub c: bool,
}

/// Execution faults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CpuError {
    /// Undecodable instruction.
    Decode {
        /// Faulting program counter.
        pc: u16,
        /// Underlying decode error.
        source: DecodeError,
    },
    /// Integer division by zero.
    DivisionByZero {
        /// Faulting program counter.
        pc: u16,
    },
    /// Signed arithmetic overflow: `DIV`/`REM` of `i16::MIN` by `-1`,
    /// whose true quotient (32768) is unrepresentable. Reported as a
    /// fault rather than silently wrapping.
    Overflow {
        /// Faulting program counter.
        pc: u16,
    },
    /// Stack pointer underflowed/overflowed its region.
    StackFault {
        /// Faulting program counter.
        pc: u16,
    },
}

impl fmt::Display for CpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpuError::Decode { pc, source } => write!(f, "at {pc:#06x}: {source}"),
            CpuError::DivisionByZero { pc } => write!(f, "at {pc:#06x}: division by zero"),
            CpuError::Overflow { pc } => {
                write!(f, "at {pc:#06x}: signed overflow in division")
            }
            CpuError::StackFault { pc } => write!(f, "at {pc:#06x}: stack fault"),
        }
    }
}

impl std::error::Error for CpuError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CpuError::Decode { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Outcome of one executed instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepInfo {
    /// Cycles consumed (base + bus wait states).
    pub cycles: u32,
    /// Whether the CPU halted on this step.
    pub halted: bool,
}

/// The MC16 processor state.
///
/// # Examples
///
/// ```
/// use cosma_isa::{Cpu, NullBus, assemble};
///
/// let img = assemble("
///     LDI r0, 2
///     LDI r1, 3
///     MUL r0, r1
///     HLT
/// ")?;
/// let mut cpu = Cpu::new();
/// cpu.load_image(&img);
/// let mut bus = NullBus;
/// cpu.run(&mut bus, 1_000)?;
/// assert_eq!(cpu.reg(0), 6);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone)]
pub struct Cpu {
    regs: [u16; 8],
    pc: u16,
    sp: u16,
    flags: Flags,
    halted: bool,
    mem: Vec<u16>,
    /// Total cycles executed.
    cycles: u64,
    /// Total instructions retired.
    retired: u64,
}

impl fmt::Debug for Cpu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cpu")
            .field("pc", &self.pc)
            .field("regs", &self.regs)
            .field("halted", &self.halted)
            .field("cycles", &self.cycles)
            .finish_non_exhaustive()
    }
}

impl Default for Cpu {
    fn default() -> Self {
        Self::new()
    }
}

impl Cpu {
    /// A reset CPU with zeroed memory.
    #[must_use]
    pub fn new() -> Self {
        Cpu {
            regs: [0; 8],
            pc: 0,
            sp: STACK_TOP,
            flags: Flags::default(),
            halted: false,
            mem: vec![0; MEM_WORDS],
            cycles: 0,
            retired: 0,
        }
    }

    /// Loads a memory image (from the assembler) at its origin and resets
    /// the program counter to the image entry point.
    pub fn load_image(&mut self, image: &crate::asm::Image) {
        for (addr, word) in image.words() {
            self.mem[addr as usize] = word;
        }
        self.pc = image.entry();
    }

    /// Register value.
    ///
    /// # Panics
    ///
    /// Panics if `r > 7`.
    #[must_use]
    pub fn reg(&self, r: u8) -> u16 {
        self.regs[r as usize]
    }

    /// Sets a register.
    ///
    /// # Panics
    ///
    /// Panics if `r > 7`.
    pub fn set_reg(&mut self, r: u8, v: u16) {
        self.regs[r as usize] = v;
    }

    /// Memory word.
    #[must_use]
    pub fn mem(&self, addr: u16) -> u16 {
        self.mem[addr as usize]
    }

    /// Writes a memory word.
    pub fn set_mem(&mut self, addr: u16, v: u16) {
        self.mem[addr as usize] = v;
    }

    /// Program counter.
    #[must_use]
    pub fn pc(&self) -> u16 {
        self.pc
    }

    /// Whether the CPU has executed `HLT`.
    #[must_use]
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Total cycles executed.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Total instructions retired.
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Condition flags.
    #[must_use]
    pub fn flags(&self) -> Flags {
        self.flags
    }

    fn set_zn(&mut self, v: u16) {
        self.flags.z = v == 0;
        self.flags.n = v & 0x8000 != 0;
    }

    /// Executes one instruction against the bus.
    ///
    /// # Errors
    ///
    /// Returns [`CpuError`] on decode faults, division by zero or stack
    /// faults. A halted CPU returns 1-cycle no-op steps.
    pub fn step(&mut self, bus: &mut dyn PortBus) -> Result<StepInfo, CpuError> {
        if self.halted {
            return Ok(StepInfo {
                cycles: 1,
                halted: true,
            });
        }
        let pc0 = self.pc;
        let word = self.mem[self.pc as usize];
        let imm = self.mem[self.pc.wrapping_add(1) as usize];
        let instr =
            Instr::decode(word, imm).map_err(|source| CpuError::Decode { pc: pc0, source })?;
        self.pc = self.pc.wrapping_add(instr.size());
        let mut cycles = instr.cycles();
        match instr {
            Instr::Nop => {}
            Instr::Halt => self.halted = true,
            Instr::Ldi(rd, i) => {
                self.regs[rd.0 as usize] = i;
                self.set_zn(i);
            }
            Instr::Mov(rd, rs) => {
                let v = self.regs[rs.0 as usize];
                self.regs[rd.0 as usize] = v;
                self.set_zn(v);
            }
            Instr::Ld(rd, a) => {
                let v = self.mem[a as usize];
                self.regs[rd.0 as usize] = v;
                self.set_zn(v);
            }
            Instr::LdInd(rd, rs) => {
                let v = self.mem[self.regs[rs.0 as usize] as usize];
                self.regs[rd.0 as usize] = v;
                self.set_zn(v);
            }
            Instr::St(a, rs) => self.mem[a as usize] = self.regs[rs.0 as usize],
            Instr::StInd(rd, rs) => {
                self.mem[self.regs[rd.0 as usize] as usize] = self.regs[rs.0 as usize];
            }
            Instr::In(rd, p) => {
                let (v, wait) = bus.port_in(p);
                cycles += wait;
                self.regs[rd.0 as usize] = v;
                self.set_zn(v);
            }
            Instr::Out(p, rs) => {
                cycles += bus.port_out(p, self.regs[rs.0 as usize]);
            }
            Instr::Add(rd, rs) => self.alu(rd, rs, |a, b| a.overflowing_add(b)),
            Instr::Sub(rd, rs) => self.alu(rd, rs, |a, b| a.overflowing_sub(b)),
            Instr::And(rd, rs) => self.alu(rd, rs, |a, b| (a & b, false)),
            Instr::Or(rd, rs) => self.alu(rd, rs, |a, b| (a | b, false)),
            Instr::Xor(rd, rs) => self.alu(rd, rs, |a, b| (a ^ b, false)),
            Instr::Addi(rd, i) => {
                let (v, c) = self.regs[rd.0 as usize].overflowing_add(i);
                self.regs[rd.0 as usize] = v;
                self.flags.c = c;
                self.set_zn(v);
            }
            Instr::Mul(rd, rs) => self.alu(rd, rs, |a, b| (a.wrapping_mul(b), false)),
            Instr::Div(rd, rs) => {
                let b = self.regs[rs.0 as usize] as i16;
                if b == 0 {
                    return Err(CpuError::DivisionByZero { pc: pc0 });
                }
                let a = self.regs[rd.0 as usize] as i16;
                // i16::MIN / -1 has no representable quotient; checked_div
                // returns None exactly there (b == 0 was handled above).
                let v = a.checked_div(b).ok_or(CpuError::Overflow { pc: pc0 })? as u16;
                self.regs[rd.0 as usize] = v;
                self.set_zn(v);
            }
            Instr::Rem(rd, rs) => {
                let b = self.regs[rs.0 as usize] as i16;
                if b == 0 {
                    return Err(CpuError::DivisionByZero { pc: pc0 });
                }
                let a = self.regs[rd.0 as usize] as i16;
                // Same edge as Div: i16::MIN % -1 overflows the internal
                // division even though the remainder would be 0; fault for
                // consistency with Div.
                let v = a.checked_rem(b).ok_or(CpuError::Overflow { pc: pc0 })? as u16;
                self.regs[rd.0 as usize] = v;
                self.set_zn(v);
            }
            Instr::Shl(rd) => {
                let v = self.regs[rd.0 as usize];
                self.flags.c = v & 0x8000 != 0;
                let v = v << 1;
                self.regs[rd.0 as usize] = v;
                self.set_zn(v);
            }
            Instr::Sar(rd) => {
                let v = self.regs[rd.0 as usize] as i16;
                self.flags.c = v & 1 != 0;
                let v = (v >> 1) as u16;
                self.regs[rd.0 as usize] = v;
                self.set_zn(v);
            }
            Instr::Neg(rd) => {
                let v = (self.regs[rd.0 as usize] as i16).wrapping_neg() as u16;
                self.regs[rd.0 as usize] = v;
                self.set_zn(v);
            }
            Instr::Not(rd) => {
                let v = !self.regs[rd.0 as usize];
                self.regs[rd.0 as usize] = v;
                self.set_zn(v);
            }
            Instr::Cmp(rd, rs) => {
                let (v, c) = self.regs[rd.0 as usize].overflowing_sub(self.regs[rs.0 as usize]);
                self.flags.c = c;
                self.set_zn(v);
            }
            Instr::Cmpi(rd, i) => {
                let (v, c) = self.regs[rd.0 as usize].overflowing_sub(i);
                self.flags.c = c;
                self.set_zn(v);
            }
            Instr::Jmp(a) => self.pc = a,
            Instr::Jz(a) => {
                if self.flags.z {
                    self.pc = a;
                }
            }
            Instr::Jnz(a) => {
                if !self.flags.z {
                    self.pc = a;
                }
            }
            Instr::Jn(a) => {
                if self.flags.n {
                    self.pc = a;
                }
            }
            Instr::Jnn(a) => {
                if !self.flags.n {
                    self.pc = a;
                }
            }
            Instr::Jc(a) => {
                if self.flags.c {
                    self.pc = a;
                }
            }
            Instr::Jnc(a) => {
                if !self.flags.c {
                    self.pc = a;
                }
            }
            Instr::Push(rs) => {
                self.sp = self.sp.wrapping_sub(1);
                if self.sp == u16::MAX {
                    return Err(CpuError::StackFault { pc: pc0 });
                }
                self.mem[self.sp as usize] = self.regs[rs.0 as usize];
            }
            Instr::Pop(rd) => {
                if self.sp >= STACK_TOP {
                    return Err(CpuError::StackFault { pc: pc0 });
                }
                self.regs[rd.0 as usize] = self.mem[self.sp as usize];
                self.sp = self.sp.wrapping_add(1);
            }
            Instr::Call(a) => {
                self.sp = self.sp.wrapping_sub(1);
                if self.sp == u16::MAX {
                    return Err(CpuError::StackFault { pc: pc0 });
                }
                self.mem[self.sp as usize] = self.pc;
                self.pc = a;
            }
            Instr::Ret => {
                if self.sp >= STACK_TOP {
                    return Err(CpuError::StackFault { pc: pc0 });
                }
                self.pc = self.mem[self.sp as usize];
                self.sp = self.sp.wrapping_add(1);
            }
        }
        self.cycles += u64::from(cycles);
        self.retired += 1;
        Ok(StepInfo {
            cycles,
            halted: self.halted,
        })
    }

    fn alu(&mut self, rd: Reg, rs: Reg, f: impl Fn(u16, u16) -> (u16, bool)) {
        let (v, c) = f(self.regs[rd.0 as usize], self.regs[rs.0 as usize]);
        self.regs[rd.0 as usize] = v;
        self.flags.c = c;
        self.set_zn(v);
    }

    /// Runs until halt or until `max_cycles` have elapsed; returns the
    /// cycles actually consumed.
    ///
    /// # Errors
    ///
    /// Propagates [`CpuError`] faults.
    pub fn run(&mut self, bus: &mut dyn PortBus, max_cycles: u64) -> Result<u64, CpuError> {
        let start = self.cycles;
        while !self.halted && self.cycles - start < max_cycles {
            self.step(bus)?;
        }
        Ok(self.cycles - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn run_prog(src: &str) -> Cpu {
        let img = assemble(src).expect("assembles");
        let mut cpu = Cpu::new();
        cpu.load_image(&img);
        let mut bus = NullBus;
        cpu.run(&mut bus, 100_000).expect("runs");
        assert!(cpu.is_halted(), "program must halt");
        cpu
    }

    #[test]
    fn arithmetic_basics() {
        let cpu = run_prog("LDI r0, 10\nLDI r1, 3\nSUB r0, r1\nHLT\n");
        assert_eq!(cpu.reg(0), 7);
    }

    #[test]
    fn signed_division() {
        let cpu = run_prog("LDI r0, 65526\nLDI r1, 3\nDIV r0, r1\nHLT\n"); // -10 / 3
        assert_eq!(cpu.reg(0) as i16, -3);
    }

    #[test]
    fn division_by_zero_faults() {
        let img = assemble("LDI r0, 1\nLDI r1, 0\nDIV r0, r1\nHLT\n").unwrap();
        let mut cpu = Cpu::new();
        cpu.load_image(&img);
        let err = cpu.run(&mut NullBus, 1000).unwrap_err();
        assert!(matches!(err, CpuError::DivisionByZero { .. }));
    }

    #[test]
    fn div_min_by_minus_one_faults_as_overflow() {
        // i16::MIN (0x8000) / -1 (0xFFFF): the true quotient 32768 is
        // unrepresentable; the old wrapping semantics silently returned
        // i16::MIN again.
        let img = assemble("LDI r0, 0x8000\nLDI r1, 0xFFFF\nDIV r0, r1\nHLT\n").unwrap();
        let mut cpu = Cpu::new();
        cpu.load_image(&img);
        let err = cpu.run(&mut NullBus, 1000).unwrap_err();
        assert!(matches!(err, CpuError::Overflow { .. }), "{err}");
        assert!(err.to_string().contains("overflow"));
        assert_eq!(cpu.reg(0), 0x8000, "destination left untouched");
    }

    #[test]
    fn rem_min_by_minus_one_faults_as_overflow() {
        let img = assemble("LDI r0, 0x8000\nLDI r1, 0xFFFF\nREM r0, r1\nHLT\n").unwrap();
        let mut cpu = Cpu::new();
        cpu.load_image(&img);
        let err = cpu.run(&mut NullBus, 1000).unwrap_err();
        assert!(matches!(err, CpuError::Overflow { .. }), "{err}");
    }

    #[test]
    fn div_and_rem_edge_cases_without_overflow() {
        // MIN / 1 and MIN % 1 are fine; -1 / MIN too.
        let cpu = run_prog("LDI r0, 0x8000\nLDI r1, 1\nDIV r0, r1\nHLT\n");
        assert_eq!(cpu.reg(0) as i16, i16::MIN);
        let cpu = run_prog("LDI r0, 0x8000\nLDI r1, 1\nREM r0, r1\nHLT\n");
        assert_eq!(cpu.reg(0), 0);
        let cpu = run_prog("LDI r0, 0xFFFF\nLDI r1, 0x8000\nDIV r0, r1\nHLT\n");
        assert_eq!(cpu.reg(0), 0);
    }

    #[test]
    fn loop_with_counter() {
        // Sum 1..=5 into r0.
        let cpu = run_prog(
            "LDI r0, 0\nLDI r1, 5\nloop: ADD r0, r1\nADDI r1, 65535\nCMPI r1, 0\nJNZ loop\nHLT\n",
        );
        assert_eq!(cpu.reg(0), 15);
    }

    #[test]
    fn memory_load_store() {
        let cpu = run_prog("LDI r0, 1234\nST [0x2000], r0\nLD r1, [0x2000]\nHLT\n");
        assert_eq!(cpu.reg(1), 1234);
    }

    #[test]
    fn indirect_addressing() {
        let cpu = run_prog("LDI r0, 0x2000\nLDI r1, 77\nST [r0], r1\nLD r2, [r0]\nHLT\n");
        assert_eq!(cpu.reg(2), 77);
    }

    #[test]
    fn call_ret_stack() {
        let cpu = run_prog("LDI r0, 1\nCALL fn\nADDI r0, 100\nHLT\nfn: ADDI r0, 10\nRET\n");
        assert_eq!(cpu.reg(0), 111);
    }

    #[test]
    fn push_pop() {
        let cpu = run_prog("LDI r0, 5\nPUSH r0\nLDI r0, 9\nPOP r1\nHLT\n");
        assert_eq!(cpu.reg(1), 5);
        assert_eq!(cpu.reg(0), 9);
    }

    #[test]
    fn stack_underflow_faults() {
        let img = assemble("POP r0\nHLT\n").unwrap();
        let mut cpu = Cpu::new();
        cpu.load_image(&img);
        let err = cpu.run(&mut NullBus, 100).unwrap_err();
        assert!(matches!(err, CpuError::StackFault { .. }));
    }

    #[test]
    fn port_io_reaches_bus() {
        struct Recorder {
            wrote: Vec<(u16, u16)>,
        }
        impl PortBus for Recorder {
            fn port_in(&mut self, port: u16) -> (u16, u32) {
                (port.wrapping_add(1), 3)
            }
            fn port_out(&mut self, port: u16, value: u16) -> u32 {
                self.wrote.push((port, value));
                2
            }
        }
        let img = assemble("IN r0, 0x300\nOUT 0x301, r0\nHLT\n").unwrap();
        let mut cpu = Cpu::new();
        cpu.load_image(&img);
        let mut bus = Recorder { wrote: vec![] };
        cpu.run(&mut bus, 1000).unwrap();
        assert_eq!(cpu.reg(0), 0x301);
        assert_eq!(bus.wrote, vec![(0x301, 0x301)]);
        // 4 (IN base) + 3 (wait) + 4 (OUT base) + 2 (wait) + 1 (HLT).
        assert_eq!(cpu.cycles(), 14);
    }

    #[test]
    fn conditional_jumps() {
        let cpu = run_prog("LDI r0, 5\nCMPI r0, 5\nJZ eq\nLDI r1, 0\nHLT\neq: LDI r1, 1\nHLT\n");
        assert_eq!(cpu.reg(1), 1);
    }

    #[test]
    fn negative_flag_jump() {
        let cpu = run_prog(
            "LDI r0, 3\nLDI r1, 5\nSUB r0, r1\nJN neg\nLDI r2, 0\nHLT\nneg: LDI r2, 1\nHLT\n",
        );
        assert_eq!(cpu.reg(2), 1);
    }

    #[test]
    fn halted_cpu_idles() {
        let mut cpu = Cpu::new();
        let img = assemble("HLT\n").unwrap();
        cpu.load_image(&img);
        cpu.run(&mut NullBus, 10).unwrap();
        let before = cpu.retired();
        cpu.step(&mut NullBus).unwrap();
        assert_eq!(cpu.retired(), before, "halted steps retire nothing");
    }

    #[test]
    fn cycle_accounting() {
        let cpu = run_prog("NOP\nNOP\nHLT\n");
        assert_eq!(cpu.cycles(), 3);
        assert_eq!(cpu.retired(), 3);
    }
}
