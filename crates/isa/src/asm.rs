//! Two-pass MC16 assembler.
//!
//! Accepts a conventional assembly dialect:
//!
//! ```text
//!         ORG  0x0000        ; load origin / entry point
//! COUNT:  EQU  5             ; symbolic constant
//!         LDI  r1, COUNT
//! loop:   ADDI r1, -1        ; negative immediates are two's complement
//!         CMPI r1, 0
//!         JNZ  loop
//!         HLT
//! buffer: WORD 0, 1, 2       ; data words
//! ```
//!
//! Comments start with `;` or `//`. Labels are case-sensitive; mnemonics
//! and registers are case-insensitive.

use crate::instr::{Instr, Reg};
use std::collections::HashMap;
use std::fmt;

/// An assembled memory image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    words: Vec<(u16, u16)>,
    entry: u16,
    labels: HashMap<String, u16>,
}

impl Image {
    /// `(address, word)` pairs to load.
    pub fn words(&self) -> impl Iterator<Item = (u16, u16)> + '_ {
        self.words.iter().copied()
    }

    /// Entry point (the first `ORG`, or 0).
    #[must_use]
    pub fn entry(&self) -> u16 {
        self.entry
    }

    /// Number of words in the image.
    #[must_use]
    pub fn len_words(&self) -> usize {
        self.words.len()
    }

    /// Resolved address of a label.
    #[must_use]
    pub fn label(&self, name: &str) -> Option<u16> {
        self.labels.get(name).copied()
    }
}

/// Assembly errors, with 1-based line numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// Problem description.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

/// A not-yet-resolved address operand.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Operand {
    Num(u16),
    Label(String),
}

#[derive(Debug, Clone)]
enum Item {
    /// Fully resolved instruction.
    Ready(Instr),
    /// Instruction whose immediate word references a label/constant.
    Pending {
        build: fn(Reg, Reg, u16) -> Instr,
        rd: Reg,
        rs: Reg,
        operand: Operand,
        line: usize,
    },
    Data(Vec<Operand>, usize),
}

impl Item {
    fn size(&self) -> u16 {
        match self {
            Item::Ready(i) => i.size(),
            Item::Pending { .. } => 2,
            Item::Data(ws, _) => ws.len() as u16,
        }
    }
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, AsmError> {
    let t = tok.to_ascii_lowercase();
    if let Some(n) = t.strip_prefix('r') {
        if let Ok(n) = n.parse::<u8>() {
            if n < 8 {
                return Ok(Reg(n));
            }
        }
    }
    Err(err(line, format!("expected register r0..r7, got {tok:?}")))
}

fn parse_num(tok: &str, line: usize) -> Result<u16, AsmError> {
    let t = tok.trim();
    let (neg, t) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t),
    };
    let v: Result<i64, _> = if let Some(h) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        i64::from_str_radix(h, 16)
    } else if let Some(b) = t.strip_prefix("0b").or_else(|| t.strip_prefix("0B")) {
        i64::from_str_radix(b, 2)
    } else {
        t.parse()
    };
    match v {
        Ok(v) => {
            let v = if neg { -v } else { v };
            if !(-32768..=65535).contains(&v) {
                return Err(err(line, format!("number {v} out of 16-bit range")));
            }
            Ok(v as u16)
        }
        Err(_) => Err(err(line, format!("invalid number {tok:?}"))),
    }
}

fn parse_operand(
    tok: &str,
    consts: &HashMap<String, u16>,
    line: usize,
) -> Result<Operand, AsmError> {
    let t = tok.trim();
    if t.is_empty() {
        return Err(err(line, "missing operand"));
    }
    if let Some(&v) = consts.get(t) {
        return Ok(Operand::Num(v));
    }
    let first = t.chars().next().expect("nonempty");
    if first.is_ascii_digit() || first == '-' {
        Ok(Operand::Num(parse_num(t, line)?))
    } else {
        Ok(Operand::Label(t.to_string()))
    }
}

/// Assembles MC16 source text.
///
/// # Errors
///
/// Returns [`AsmError`] with the offending line on syntax errors, unknown
/// mnemonics, bad registers, range errors or undefined/duplicate labels.
pub fn assemble(src: &str) -> Result<Image, AsmError> {
    let mut items: Vec<(u16, Item)> = vec![];
    let mut labels: HashMap<String, u16> = HashMap::new();
    let mut consts: HashMap<String, u16> = HashMap::new();
    let mut pc: u16 = 0;
    let mut entry: Option<u16> = None;

    for (idx, raw) in src.lines().enumerate() {
        let line_no = idx + 1;
        let mut line = raw;
        if let Some(p) = line.find(';') {
            line = &line[..p];
        }
        if let Some(p) = line.find("//") {
            line = &line[..p];
        }
        let mut rest = line.trim();
        // Leading labels (possibly several).
        while let Some(colon) = rest.find(':') {
            let (name, tail) = rest.split_at(colon);
            let name = name.trim();
            if name.is_empty() || name.contains(char::is_whitespace) {
                break;
            }
            // EQU lines look like "NAME: EQU v"? No — EQU uses no colon.
            if labels.insert(name.to_string(), pc).is_some() {
                return Err(err(line_no, format!("duplicate label {name}")));
            }
            rest = tail[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }
        let (mnemonic, args) = match rest.find(char::is_whitespace) {
            Some(p) => (&rest[..p], rest[p..].trim()),
            None => (rest, ""),
        };
        let mn = mnemonic.trim_start_matches('.').to_ascii_uppercase();
        let argv: Vec<&str> = if args.is_empty() {
            vec![]
        } else {
            args.split(',').map(str::trim).collect()
        };
        let need = |n: usize| -> Result<(), AsmError> {
            if argv.len() == n {
                Ok(())
            } else {
                Err(err(
                    line_no,
                    format!("{mn} expects {n} operand(s), got {}", argv.len()),
                ))
            }
        };

        let item: Option<Item> = match mn.as_str() {
            "ORG" => {
                need(1)?;
                pc = parse_num(argv[0], line_no)?;
                if entry.is_none() {
                    entry = Some(pc);
                }
                None
            }
            "EQU" => {
                need(2)?;
                let v = parse_num(argv[1], line_no)?;
                consts.insert(argv[0].to_string(), v);
                None
            }
            "WORD" => {
                if argv.is_empty() {
                    return Err(err(line_no, "WORD expects at least one value"));
                }
                let ws = argv
                    .iter()
                    .map(|a| parse_operand(a, &consts, line_no))
                    .collect::<Result<Vec<_>, _>>()?;
                Some(Item::Data(ws, line_no))
            }
            "NOP" => Some(Item::Ready(Instr::Nop)),
            "HLT" | "HALT" => Some(Item::Ready(Instr::Halt)),
            "RET" => Some(Item::Ready(Instr::Ret)),
            "MOV" => {
                need(2)?;
                Some(Item::Ready(Instr::Mov(
                    parse_reg(argv[0], line_no)?,
                    parse_reg(argv[1], line_no)?,
                )))
            }
            "LDI" | "ADDI" | "CMPI" => {
                need(2)?;
                let rd = parse_reg(argv[0], line_no)?;
                let op = parse_operand(argv[1], &consts, line_no)?;
                let build: fn(Reg, Reg, u16) -> Instr = match mn.as_str() {
                    "LDI" => |rd, _, i| Instr::Ldi(rd, i),
                    "ADDI" => |rd, _, i| Instr::Addi(rd, i),
                    _ => |rd, _, i| Instr::Cmpi(rd, i),
                };
                match op {
                    Operand::Num(i) => Some(Item::Ready(build(rd, Reg(0), i))),
                    operand => Some(Item::Pending {
                        build,
                        rd,
                        rs: Reg(0),
                        operand,
                        line: line_no,
                    }),
                }
            }
            "LD" => {
                need(2)?;
                let rd = parse_reg(argv[0], line_no)?;
                let a = argv[1];
                let inner = a
                    .strip_prefix('[')
                    .and_then(|s| s.strip_suffix(']'))
                    .ok_or_else(|| err(line_no, "LD expects [addr] or [reg]"))?
                    .trim();
                if inner.to_ascii_lowercase().starts_with('r') && parse_reg(inner, line_no).is_ok()
                {
                    Some(Item::Ready(Instr::LdInd(rd, parse_reg(inner, line_no)?)))
                } else {
                    match parse_operand(inner, &consts, line_no)? {
                        Operand::Num(a) => Some(Item::Ready(Instr::Ld(rd, a))),
                        operand => Some(Item::Pending {
                            build: |rd, _, a| Instr::Ld(rd, a),
                            rd,
                            rs: Reg(0),
                            operand,
                            line: line_no,
                        }),
                    }
                }
            }
            "ST" => {
                need(2)?;
                let inner = argv[0]
                    .strip_prefix('[')
                    .and_then(|s| s.strip_suffix(']'))
                    .ok_or_else(|| err(line_no, "ST expects [addr] or [reg] destination"))?
                    .trim();
                let rs = parse_reg(argv[1], line_no)?;
                if inner.to_ascii_lowercase().starts_with('r') && parse_reg(inner, line_no).is_ok()
                {
                    Some(Item::Ready(Instr::StInd(parse_reg(inner, line_no)?, rs)))
                } else {
                    match parse_operand(inner, &consts, line_no)? {
                        Operand::Num(a) => Some(Item::Ready(Instr::St(a, rs))),
                        operand => Some(Item::Pending {
                            build: |_, rs, a| Instr::St(a, rs),
                            rd: Reg(0),
                            rs,
                            operand,
                            line: line_no,
                        }),
                    }
                }
            }
            "IN" => {
                need(2)?;
                let rd = parse_reg(argv[0], line_no)?;
                match parse_operand(argv[1], &consts, line_no)? {
                    Operand::Num(p) => Some(Item::Ready(Instr::In(rd, p))),
                    operand => Some(Item::Pending {
                        build: |rd, _, p| Instr::In(rd, p),
                        rd,
                        rs: Reg(0),
                        operand,
                        line: line_no,
                    }),
                }
            }
            "OUT" => {
                need(2)?;
                let rs = parse_reg(argv[1], line_no)?;
                match parse_operand(argv[0], &consts, line_no)? {
                    Operand::Num(p) => Some(Item::Ready(Instr::Out(p, rs))),
                    operand => Some(Item::Pending {
                        build: |_, rs, p| Instr::Out(p, rs),
                        rd: Reg(0),
                        rs,
                        operand,
                        line: line_no,
                    }),
                }
            }
            "ADD" | "SUB" | "AND" | "OR" | "XOR" | "MUL" | "DIV" | "REM" | "CMP" => {
                need(2)?;
                let rd = parse_reg(argv[0], line_no)?;
                let rs = parse_reg(argv[1], line_no)?;
                Some(Item::Ready(match mn.as_str() {
                    "ADD" => Instr::Add(rd, rs),
                    "SUB" => Instr::Sub(rd, rs),
                    "AND" => Instr::And(rd, rs),
                    "OR" => Instr::Or(rd, rs),
                    "XOR" => Instr::Xor(rd, rs),
                    "MUL" => Instr::Mul(rd, rs),
                    "DIV" => Instr::Div(rd, rs),
                    "REM" => Instr::Rem(rd, rs),
                    _ => Instr::Cmp(rd, rs),
                }))
            }
            "SHL" | "SAR" | "NEG" | "NOT" | "PUSH" | "POP" => {
                need(1)?;
                let r = parse_reg(argv[0], line_no)?;
                Some(Item::Ready(match mn.as_str() {
                    "SHL" => Instr::Shl(r),
                    "SAR" => Instr::Sar(r),
                    "NEG" => Instr::Neg(r),
                    "NOT" => Instr::Not(r),
                    "PUSH" => Instr::Push(r),
                    _ => Instr::Pop(r),
                }))
            }
            "JMP" | "JZ" | "JNZ" | "JN" | "JNN" | "JC" | "JNC" | "CALL" => {
                need(1)?;
                let build: fn(Reg, Reg, u16) -> Instr = match mn.as_str() {
                    "JMP" => |_, _, a| Instr::Jmp(a),
                    "JZ" => |_, _, a| Instr::Jz(a),
                    "JNZ" => |_, _, a| Instr::Jnz(a),
                    "JN" => |_, _, a| Instr::Jn(a),
                    "JNN" => |_, _, a| Instr::Jnn(a),
                    "JC" => |_, _, a| Instr::Jc(a),
                    "JNC" => |_, _, a| Instr::Jnc(a),
                    _ => |_, _, a| Instr::Call(a),
                };
                match parse_operand(argv[0], &consts, line_no)? {
                    Operand::Num(a) => Some(Item::Ready(build(Reg(0), Reg(0), a))),
                    operand => Some(Item::Pending {
                        build,
                        rd: Reg(0),
                        rs: Reg(0),
                        operand,
                        line: line_no,
                    }),
                }
            }
            other => return Err(err(line_no, format!("unknown mnemonic {other}"))),
        };
        if let Some(item) = item {
            let size = item.size();
            items.push((pc, item));
            pc = pc.wrapping_add(size);
        }
    }

    // Pass 2: resolve labels and emit words.
    let resolve = |operand: &Operand, line: usize| -> Result<u16, AsmError> {
        match operand {
            Operand::Num(v) => Ok(*v),
            Operand::Label(name) => labels
                .get(name)
                .copied()
                .ok_or_else(|| err(line, format!("undefined label {name}"))),
        }
    };
    let mut words = vec![];
    for (addr, item) in &items {
        match item {
            Item::Ready(i) => emit(&mut words, *addr, *i),
            Item::Pending {
                build,
                rd,
                rs,
                operand,
                line,
            } => {
                let v = resolve(operand, *line)?;
                emit(&mut words, *addr, build(*rd, *rs, v));
            }
            Item::Data(ws, line) => {
                for (k, w) in ws.iter().enumerate() {
                    words.push((addr.wrapping_add(k as u16), resolve(w, *line)?));
                }
            }
        }
    }
    Ok(Image {
        words,
        entry: entry.unwrap_or(0),
        labels,
    })
}

fn emit(words: &mut Vec<(u16, u16)>, addr: u16, i: Instr) {
    let (w, imm) = i.encode();
    words.push((addr, w));
    if let Some(imm) = imm {
        words.push((addr.wrapping_add(1), imm));
    }
}

/// Disassembles a memory image into `(address, instruction)` pairs,
/// stopping at the first decode failure or after `max` instructions.
#[must_use]
pub fn disassemble(mem: &[u16], start: u16, max: usize) -> Vec<(u16, Instr)> {
    let mut out = vec![];
    let mut pc = start;
    for _ in 0..max {
        let word = match mem.get(pc as usize) {
            Some(w) => *w,
            None => break,
        };
        let imm = mem.get(pc.wrapping_add(1) as usize).copied().unwrap_or(0);
        match Instr::decode(word, imm) {
            Ok(i) => {
                let size = i.size();
                out.push((pc, i));
                if i == Instr::Halt {
                    break;
                }
                pc = pc.wrapping_add(size);
            }
            Err(_) => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_forward_and_back() {
        let img = assemble("start: LDI r0, 1\nJMP end\nmid: NOP\nend: JMP start\n").unwrap();
        assert_eq!(img.label("start"), Some(0));
        assert_eq!(img.label("mid"), Some(4));
        assert_eq!(img.label("end"), Some(5));
    }

    #[test]
    fn org_sets_entry_and_addresses() {
        let img = assemble("ORG 0x100\nstart: NOP\nHLT\n").unwrap();
        assert_eq!(img.entry(), 0x100);
        assert_eq!(img.label("start"), Some(0x100));
        let words: Vec<_> = img.words().collect();
        assert_eq!(words[0].0, 0x100);
    }

    #[test]
    fn equ_constants() {
        let img = assemble("EQU PORT, 0x300\nIN r0, PORT\nHLT\n").unwrap();
        let words: Vec<_> = img.words().collect();
        assert_eq!(words[1].1, 0x300, "immediate word carries the constant");
    }

    #[test]
    fn word_directive_with_labels() {
        let img = assemble("JMP code\ntable: WORD 1, 2, 3\ncode: HLT\n").unwrap();
        assert_eq!(img.label("table"), Some(2));
        let words: Vec<_> = img.words().collect();
        assert_eq!(words[1].1, 5, "jump target resolves past the data");
        assert_eq!(&words[2..5], &[(2, 1), (3, 2), (4, 3)]);
    }

    #[test]
    fn negative_immediates_wrap() {
        let img = assemble("LDI r0, -1\nHLT\n").unwrap();
        let words: Vec<_> = img.words().collect();
        assert_eq!(words[1].1, 0xFFFF);
    }

    #[test]
    fn comments_ignored() {
        let img = assemble("NOP ; trailing\n// full line\nHLT\n").unwrap();
        assert_eq!(img.len_words(), 2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("NOP\nBOGUS r0\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("BOGUS"));
    }

    #[test]
    fn duplicate_label_rejected() {
        let e = assemble("a: NOP\na: NOP\n").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn undefined_label_rejected() {
        let e = assemble("JMP nowhere\n").unwrap_err();
        assert!(e.message.contains("undefined"));
    }

    #[test]
    fn bad_register_rejected() {
        assert!(assemble("MOV r9, r0\n").is_err());
        assert!(assemble("MOV x1, r0\n").is_err());
    }

    #[test]
    fn operand_count_checked() {
        let e = assemble("ADD r0\n").unwrap_err();
        assert!(e.message.contains("expects 2"));
    }

    #[test]
    fn disassembler_round_trips() {
        let src = "LDI r0, 7\nADD r0, r1\nOUT 0x300, r0\nHLT\n";
        let img = assemble(src).unwrap();
        let mut mem = vec![0u16; 64];
        for (a, w) in img.words() {
            mem[a as usize] = w;
        }
        let listing = disassemble(&mem, 0, 10);
        assert_eq!(listing.len(), 4);
        assert_eq!(listing[0].1, Instr::Ldi(Reg(0), 7));
        assert_eq!(listing[3].1, Instr::Halt);
    }

    #[test]
    fn binary_literals() {
        let img = assemble("LDI r0, 0b1010\nHLT\n").unwrap();
        let words: Vec<_> = img.words().collect();
        assert_eq!(words[1].1, 10);
    }

    #[test]
    fn out_of_range_number_rejected() {
        assert!(assemble("LDI r0, 70000\n").is_err());
        assert!(assemble("LDI r0, -40000\n").is_err());
    }
}
