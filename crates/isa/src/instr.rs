//! The MC16 instruction set: a small 16-bit register machine with port
//! I/O, standing in for the paper's 386 PC-AT host processor.
//!
//! Instructions are one or two 16-bit words: `[opcode:8 | rd:4 | rs:4]`
//! plus an optional immediate/address word. Port I/O (`IN`/`OUT`) is the
//! code path the paper's SW synthesis view compiles to (`inport` /
//! `outport` at physical addresses).

use std::fmt;

/// A register index (`r0`..`r7`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Reg(pub u8);

impl Reg {
    /// Validates and wraps a register number.
    ///
    /// # Panics
    ///
    /// Panics if `n > 7`.
    #[must_use]
    pub fn new(n: u8) -> Reg {
        assert!(n < 8, "MC16 has registers r0..r7");
        Reg(n)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// One MC16 instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// No operation.
    Nop,
    /// Stop the processor.
    Halt,
    /// `rd := imm`.
    Ldi(Reg, u16),
    /// `rd := rs`.
    Mov(Reg, Reg),
    /// `rd := mem[addr]`.
    Ld(Reg, u16),
    /// `rd := mem[rs]`.
    LdInd(Reg, Reg),
    /// `mem[addr] := rs`.
    St(u16, Reg),
    /// `mem[rd] := rs`.
    StInd(Reg, Reg),
    /// `rd := io[port]` — a bus read transaction.
    In(Reg, u16),
    /// `io[port] := rs` — a bus write transaction.
    Out(u16, Reg),
    /// `rd := rd + rs` (sets Z/N/C flags).
    Add(Reg, Reg),
    /// `rd := rd - rs`.
    Sub(Reg, Reg),
    /// `rd := rd & rs`.
    And(Reg, Reg),
    /// `rd := rd | rs`.
    Or(Reg, Reg),
    /// `rd := rd ^ rs`.
    Xor(Reg, Reg),
    /// `rd := rd + imm`.
    Addi(Reg, u16),
    /// `rd := rd * rs` (low 16 bits).
    Mul(Reg, Reg),
    /// `rd := rd / rs` signed; traps on division by zero.
    Div(Reg, Reg),
    /// `rd := rd % rs` signed; traps on division by zero.
    Rem(Reg, Reg),
    /// Logical shift left by one.
    Shl(Reg),
    /// Arithmetic shift right by one.
    Sar(Reg),
    /// `rd := -rd`.
    Neg(Reg),
    /// `rd := !rd` (bitwise complement).
    Not(Reg),
    /// Compare `rd - rs`, set flags only.
    Cmp(Reg, Reg),
    /// Compare `rd - imm`, set flags only.
    Cmpi(Reg, u16),
    /// Unconditional jump.
    Jmp(u16),
    /// Jump if zero flag.
    Jz(u16),
    /// Jump if not zero.
    Jnz(u16),
    /// Jump if negative flag.
    Jn(u16),
    /// Jump if not negative (>= 0).
    Jnn(u16),
    /// Jump if carry (unsigned borrow) set.
    Jc(u16),
    /// Jump if carry clear.
    Jnc(u16),
    /// Push register on the stack.
    Push(Reg),
    /// Pop from the stack.
    Pop(Reg),
    /// Call subroutine (pushes return address).
    Call(u16),
    /// Return from subroutine.
    Ret,
}

impl Instr {
    /// Size in memory words (1 or 2).
    #[must_use]
    pub fn size(&self) -> u16 {
        match self {
            Instr::Nop
            | Instr::Halt
            | Instr::Mov(_, _)
            | Instr::LdInd(_, _)
            | Instr::StInd(_, _)
            | Instr::Add(_, _)
            | Instr::Sub(_, _)
            | Instr::And(_, _)
            | Instr::Or(_, _)
            | Instr::Xor(_, _)
            | Instr::Mul(_, _)
            | Instr::Div(_, _)
            | Instr::Rem(_, _)
            | Instr::Shl(_)
            | Instr::Sar(_)
            | Instr::Neg(_)
            | Instr::Not(_)
            | Instr::Cmp(_, _)
            | Instr::Push(_)
            | Instr::Pop(_)
            | Instr::Ret => 1,
            _ => 2,
        }
    }

    /// Base cycle cost (bus wait states are added by the platform).
    #[must_use]
    pub fn cycles(&self) -> u32 {
        match self {
            Instr::Nop | Instr::Halt => 1,
            Instr::Mov(_, _)
            | Instr::Add(_, _)
            | Instr::Sub(_, _)
            | Instr::And(_, _)
            | Instr::Or(_, _)
            | Instr::Xor(_, _)
            | Instr::Shl(_)
            | Instr::Sar(_)
            | Instr::Neg(_)
            | Instr::Not(_)
            | Instr::Cmp(_, _) => 1,
            Instr::Ldi(_, _) | Instr::Addi(_, _) | Instr::Cmpi(_, _) => 2,
            Instr::Jmp(_)
            | Instr::Jz(_)
            | Instr::Jnz(_)
            | Instr::Jn(_)
            | Instr::Jnn(_)
            | Instr::Jc(_)
            | Instr::Jnc(_) => 2,
            Instr::Ld(_, _) | Instr::St(_, _) | Instr::LdInd(_, _) | Instr::StInd(_, _) => 3,
            Instr::Push(_) | Instr::Pop(_) => 3,
            Instr::In(_, _) | Instr::Out(_, _) => 4,
            Instr::Call(_) | Instr::Ret => 4,
            Instr::Mul(_, _) => 8,
            Instr::Div(_, _) | Instr::Rem(_, _) => 16,
        }
    }

    /// Encodes to one or two memory words.
    #[must_use]
    pub fn encode(&self) -> (u16, Option<u16>) {
        fn w(op: u8, rd: u8, rs: u8) -> u16 {
            (u16::from(op) << 8) | (u16::from(rd) << 4) | u16::from(rs)
        }
        match *self {
            Instr::Nop => (w(0x00, 0, 0), None),
            Instr::Halt => (w(0x01, 0, 0), None),
            Instr::Ldi(rd, imm) => (w(0x02, rd.0, 0), Some(imm)),
            Instr::Mov(rd, rs) => (w(0x03, rd.0, rs.0), None),
            Instr::Ld(rd, a) => (w(0x04, rd.0, 0), Some(a)),
            Instr::LdInd(rd, rs) => (w(0x05, rd.0, rs.0), None),
            Instr::St(a, rs) => (w(0x06, 0, rs.0), Some(a)),
            Instr::StInd(rd, rs) => (w(0x07, rd.0, rs.0), None),
            Instr::In(rd, p) => (w(0x08, rd.0, 0), Some(p)),
            Instr::Out(p, rs) => (w(0x09, 0, rs.0), Some(p)),
            Instr::Add(rd, rs) => (w(0x0A, rd.0, rs.0), None),
            Instr::Sub(rd, rs) => (w(0x0B, rd.0, rs.0), None),
            Instr::And(rd, rs) => (w(0x0C, rd.0, rs.0), None),
            Instr::Or(rd, rs) => (w(0x0D, rd.0, rs.0), None),
            Instr::Xor(rd, rs) => (w(0x0E, rd.0, rs.0), None),
            Instr::Addi(rd, imm) => (w(0x0F, rd.0, 0), Some(imm)),
            Instr::Mul(rd, rs) => (w(0x10, rd.0, rs.0), None),
            Instr::Div(rd, rs) => (w(0x11, rd.0, rs.0), None),
            Instr::Rem(rd, rs) => (w(0x12, rd.0, rs.0), None),
            Instr::Shl(rd) => (w(0x13, rd.0, 0), None),
            Instr::Sar(rd) => (w(0x14, rd.0, 0), None),
            Instr::Neg(rd) => (w(0x15, rd.0, 0), None),
            Instr::Not(rd) => (w(0x16, rd.0, 0), None),
            Instr::Cmp(rd, rs) => (w(0x17, rd.0, rs.0), None),
            Instr::Cmpi(rd, imm) => (w(0x18, rd.0, 0), Some(imm)),
            Instr::Jmp(a) => (w(0x19, 0, 0), Some(a)),
            Instr::Jz(a) => (w(0x1A, 0, 0), Some(a)),
            Instr::Jnz(a) => (w(0x1B, 0, 0), Some(a)),
            Instr::Jn(a) => (w(0x1C, 0, 0), Some(a)),
            Instr::Jnn(a) => (w(0x1D, 0, 0), Some(a)),
            Instr::Push(rs) => (w(0x1E, 0, rs.0), None),
            Instr::Pop(rd) => (w(0x1F, rd.0, 0), None),
            Instr::Call(a) => (w(0x20, 0, 0), Some(a)),
            Instr::Ret => (w(0x21, 0, 0), None),
            Instr::Jc(a) => (w(0x22, 0, 0), Some(a)),
            Instr::Jnc(a) => (w(0x23, 0, 0), Some(a)),
        }
    }

    /// Decodes an instruction from its first word and (lazily fetched)
    /// immediate word.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] for unknown opcodes.
    pub fn decode(word: u16, imm: u16) -> Result<Instr, DecodeError> {
        let op = (word >> 8) as u8;
        let rd = Reg(((word >> 4) & 0xF) as u8 & 7);
        let rs = Reg((word & 0xF) as u8 & 7);
        Ok(match op {
            0x00 => Instr::Nop,
            0x01 => Instr::Halt,
            0x02 => Instr::Ldi(rd, imm),
            0x03 => Instr::Mov(rd, rs),
            0x04 => Instr::Ld(rd, imm),
            0x05 => Instr::LdInd(rd, rs),
            0x06 => Instr::St(imm, rs),
            0x07 => Instr::StInd(rd, rs),
            0x08 => Instr::In(rd, imm),
            0x09 => Instr::Out(imm, rs),
            0x0A => Instr::Add(rd, rs),
            0x0B => Instr::Sub(rd, rs),
            0x0C => Instr::And(rd, rs),
            0x0D => Instr::Or(rd, rs),
            0x0E => Instr::Xor(rd, rs),
            0x0F => Instr::Addi(rd, imm),
            0x10 => Instr::Mul(rd, rs),
            0x11 => Instr::Div(rd, rs),
            0x12 => Instr::Rem(rd, rs),
            0x13 => Instr::Shl(rd),
            0x14 => Instr::Sar(rd),
            0x15 => Instr::Neg(rd),
            0x16 => Instr::Not(rd),
            0x17 => Instr::Cmp(rd, rs),
            0x18 => Instr::Cmpi(rd, imm),
            0x19 => Instr::Jmp(imm),
            0x1A => Instr::Jz(imm),
            0x1B => Instr::Jnz(imm),
            0x1C => Instr::Jn(imm),
            0x1D => Instr::Jnn(imm),
            0x1E => Instr::Push(rs),
            0x1F => Instr::Pop(rd),
            0x20 => Instr::Call(imm),
            0x21 => Instr::Ret,
            0x22 => Instr::Jc(imm),
            0x23 => Instr::Jnc(imm),
            other => return Err(DecodeError { opcode: other }),
        })
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Nop => write!(f, "NOP"),
            Instr::Halt => write!(f, "HLT"),
            Instr::Ldi(rd, i) => write!(f, "LDI {rd}, {i}"),
            Instr::Mov(rd, rs) => write!(f, "MOV {rd}, {rs}"),
            Instr::Ld(rd, a) => write!(f, "LD {rd}, [{a:#06x}]"),
            Instr::LdInd(rd, rs) => write!(f, "LD {rd}, [{rs}]"),
            Instr::St(a, rs) => write!(f, "ST [{a:#06x}], {rs}"),
            Instr::StInd(rd, rs) => write!(f, "ST [{rd}], {rs}"),
            Instr::In(rd, p) => write!(f, "IN {rd}, {p:#06x}"),
            Instr::Out(p, rs) => write!(f, "OUT {p:#06x}, {rs}"),
            Instr::Add(rd, rs) => write!(f, "ADD {rd}, {rs}"),
            Instr::Sub(rd, rs) => write!(f, "SUB {rd}, {rs}"),
            Instr::And(rd, rs) => write!(f, "AND {rd}, {rs}"),
            Instr::Or(rd, rs) => write!(f, "OR {rd}, {rs}"),
            Instr::Xor(rd, rs) => write!(f, "XOR {rd}, {rs}"),
            Instr::Addi(rd, i) => write!(f, "ADDI {rd}, {i}"),
            Instr::Mul(rd, rs) => write!(f, "MUL {rd}, {rs}"),
            Instr::Div(rd, rs) => write!(f, "DIV {rd}, {rs}"),
            Instr::Rem(rd, rs) => write!(f, "REM {rd}, {rs}"),
            Instr::Shl(rd) => write!(f, "SHL {rd}"),
            Instr::Sar(rd) => write!(f, "SAR {rd}"),
            Instr::Neg(rd) => write!(f, "NEG {rd}"),
            Instr::Not(rd) => write!(f, "NOT {rd}"),
            Instr::Cmp(rd, rs) => write!(f, "CMP {rd}, {rs}"),
            Instr::Cmpi(rd, i) => write!(f, "CMPI {rd}, {i}"),
            Instr::Jmp(a) => write!(f, "JMP {a:#06x}"),
            Instr::Jz(a) => write!(f, "JZ {a:#06x}"),
            Instr::Jnz(a) => write!(f, "JNZ {a:#06x}"),
            Instr::Jn(a) => write!(f, "JN {a:#06x}"),
            Instr::Jnn(a) => write!(f, "JNN {a:#06x}"),
            Instr::Jc(a) => write!(f, "JC {a:#06x}"),
            Instr::Jnc(a) => write!(f, "JNC {a:#06x}"),
            Instr::Push(rs) => write!(f, "PUSH {rs}"),
            Instr::Pop(rd) => write!(f, "POP {rd}"),
            Instr::Call(a) => write!(f, "CALL {a:#06x}"),
            Instr::Ret => write!(f, "RET"),
        }
    }
}

/// Unknown opcode during decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The offending opcode byte.
    pub opcode: u8,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown MC16 opcode {:#04x}", self.opcode)
    }
}

impl std::error::Error for DecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_instrs() -> Vec<Instr> {
        let r1 = Reg(1);
        let r2 = Reg(2);
        vec![
            Instr::Nop,
            Instr::Halt,
            Instr::Ldi(r1, 300),
            Instr::Mov(r1, r2),
            Instr::Ld(r1, 0x100),
            Instr::LdInd(r1, r2),
            Instr::St(0x100, r2),
            Instr::StInd(r1, r2),
            Instr::In(r1, 0x300),
            Instr::Out(0x300, r2),
            Instr::Add(r1, r2),
            Instr::Sub(r1, r2),
            Instr::And(r1, r2),
            Instr::Or(r1, r2),
            Instr::Xor(r1, r2),
            Instr::Addi(r1, 5),
            Instr::Mul(r1, r2),
            Instr::Div(r1, r2),
            Instr::Rem(r1, r2),
            Instr::Shl(r1),
            Instr::Sar(r1),
            Instr::Neg(r1),
            Instr::Not(r1),
            Instr::Cmp(r1, r2),
            Instr::Cmpi(r1, 7),
            Instr::Jmp(10),
            Instr::Jz(10),
            Instr::Jnz(10),
            Instr::Jn(10),
            Instr::Jnn(10),
            Instr::Jc(10),
            Instr::Jnc(10),
            Instr::Push(r2),
            Instr::Pop(r1),
            Instr::Call(20),
            Instr::Ret,
        ]
    }

    #[test]
    fn encode_decode_round_trip() {
        for i in all_instrs() {
            let (w, imm) = i.encode();
            let decoded = Instr::decode(w, imm.unwrap_or(0)).unwrap();
            assert_eq!(decoded, i, "round-trip failed for {i}");
        }
    }

    #[test]
    fn sizes_match_immediates() {
        for i in all_instrs() {
            let (_, imm) = i.encode();
            assert_eq!(i.size(), if imm.is_some() { 2 } else { 1 }, "{i}");
        }
    }

    #[test]
    fn unknown_opcode_rejected() {
        let err = Instr::decode(0xFF00, 0).unwrap_err();
        assert_eq!(err.opcode, 0xFF);
        assert!(err.to_string().contains("0xff"));
    }

    #[test]
    fn io_costs_more_than_alu() {
        assert!(Instr::In(Reg(0), 0).cycles() > Instr::Add(Reg(0), Reg(1)).cycles());
        assert!(Instr::Div(Reg(0), Reg(1)).cycles() > Instr::Mul(Reg(0), Reg(1)).cycles());
    }

    #[test]
    #[should_panic(expected = "r0..r7")]
    fn bad_register_panics() {
        let _ = Reg::new(8);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Instr::Ldi(Reg(3), 42).to_string(), "LDI r3, 42");
        assert_eq!(Instr::In(Reg(1), 0x300).to_string(), "IN r1, 0x0300");
        assert_eq!(Instr::Halt.to_string(), "HLT");
    }
}
