//! Future work, reproduced — evaluation and back-annotation with the
//! results of co-synthesis.
//!
//! 1. Co-simulate the motor system at nominal clocks; record event times.
//! 2. Run the co-synthesized prototype; record the same events.
//! 3. Derive the timing scale and re-run the co-simulation with the
//!    annotated software activation period.
//! 4. Report the prototype-timing prediction error before and after
//!    annotation.

use cosma_board::BoardConfig;
use cosma_cosim::{back_annotate, timing_error, CosimConfig};
use cosma_motor::{build_board, build_cosim, MotorConfig};
use cosma_sim::Duration;
use cosma_synth::Encoding;

const LABELS: [&str; 3] = ["send_pos", "motor_state", "pulse"];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Back-annotation (the paper's future work) ===\n");
    let cfg = MotorConfig::default();

    // 1. Nominal co-simulation.
    let nominal = CosimConfig::default();
    let mut cs = build_cosim(&cfg, nominal)?;
    assert!(cs.run_to_completion(Duration::from_us(100), 300)?);
    let sim_log = cs.cosim.trace_log();

    // 2. The prototype.
    let mut bs = build_board(&cfg, BoardConfig::default(), Encoding::Binary)?;
    assert!(bs.run_to_completion(1_000_000, 400)?);
    let board_log = bs.board.trace_log();

    // 3. Annotate iteratively: the event spans are only partly paced by
    // the software activation period, so a single whole-span scale
    // under-corrects; iterating the scale converges to a fixed point.
    let before = timing_error(&sim_log, &board_log, &LABELS).unwrap_or(f64::NAN);
    println!("iterative annotation of the SW activation period:");
    let mut sw_cycle = nominal.sw_cycle;
    let mut last_log = sim_log;
    let mut cs2 = cs;
    for round in 1..=8 {
        let Some(ann) = back_annotate(&last_log, &board_log, &LABELS, sw_cycle) else {
            break;
        };
        println!(
            "  round {round}: scale x{:.3}, sw cycle {} -> {}",
            ann.scale, sw_cycle, ann.annotated_sw_cycle
        );
        if (ann.scale - 1.0).abs() < 0.02 {
            break;
        }
        sw_cycle = ann.annotated_sw_cycle;
        let annotated_cfg = CosimConfig {
            sw_cycle,
            ..nominal
        };
        cs2 = build_cosim(&cfg, annotated_cfg)?;
        assert!(cs2.run_to_completion(Duration::from_us(500), 800)?);
        last_log = cs2.cosim.trace_log();
    }
    let after = timing_error(&last_log, &board_log, &LABELS).unwrap_or(f64::NAN);

    println!("\nprototype-timing prediction error (mean |rel. error| over labels):");
    println!("  nominal co-simulation:   {:>6.1}%", before * 100.0);
    println!("  annotated co-simulation: {:>6.1}%", after * 100.0);
    println!(
        "\nback-annotation {} the timing prediction (functionality unchanged: \
         both runs complete the trajectory)",
        if after < before {
            "improves"
        } else {
            "does not improve"
        }
    );
    // Functionality must be unaffected by the annotation.
    for label in LABELS {
        let a = board_log.filtered(|e| e.label == label);
        let b = cs2.cosim.trace_log().filtered(|e| e.label == label);
        assert!(
            a.compare(&b).is_match(),
            "annotation changed functional behaviour for {label}"
        );
    }
    Ok(())
}
