//! Figure 4 — the Adaptive Motor Controller system.
//!
//! A 2-D trajectory needs one motor and one controller instance per axis
//! (X and Y) for continuous movement. Runs both axes under co-simulation
//! and prints the per-segment convergence tables plus the motion
//! continuity metric.

use cosma_cosim::CosimConfig;
use cosma_motor::{build_cosim, MotorConfig};
use cosma_sim::Duration;

fn run_axis(name: &str, cfg: &MotorConfig) -> Result<(), Box<dyn std::error::Error>> {
    let mut sys = build_cosim(cfg, CosimConfig::default())?;
    let done = sys.run_to_completion(Duration::from_us(100), 300)?;
    println!(
        "\n--- axis {name}: {} segments x {} counts ---",
        cfg.segments, cfg.segment_len
    );
    println!(
        "completed: {done}, final position: {}",
        sys.motor.borrow().position()
    );
    let log = sys.cosim.trace_log();
    let sent: Vec<i64> = log
        .with_label("send_pos")
        .map(|e| e.values[0].as_int().unwrap())
        .collect();
    let reached: Vec<i64> = log
        .with_label("motor_state")
        .map(|e| e.values[0].as_int().unwrap())
        .collect();
    println!("{:>8} {:>10} {:>10}", "segment", "target", "reached");
    for (k, (t, r)) in sent.iter().zip(&reached).enumerate() {
        println!("{:>8} {:>10} {:>10}", k + 1, t, r);
    }
    let m = sys.motor.borrow();
    println!(
        "continuity: {} moving ticks / {} total steps (speed limit {}/tick)",
        m.moving_ticks(),
        m.total_steps(),
        cfg.motor_speed
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Figure 4: 2-D adaptive motor control (one controller per axis) ===");
    // X axis: the paper's default trajectory.
    run_axis("X", &MotorConfig::default())?;
    // Y axis: a different trajectory shape (more, shorter segments).
    run_axis(
        "Y",
        &MotorConfig {
            segments: 6,
            segment_len: 10,
            ..MotorConfig::default()
        },
    )?;
    println!("\nboth axes converge segment-by-segment — continuous 2-D movement");
    Ok(())
}
