//! Figure 1 — the unified methodology flow.
//!
//! Starts from a mixed C (software) + VHDL (hardware) description, runs
//! the complete flow — front-ends → unified IR → co-simulation →
//! co-synthesis → board execution — and prints the artifact produced at
//! each stage, demonstrating that both flows consume the same description.

use cosma_comm::handshake_unit;
use cosma_core::{ModuleKind, Type};
use cosma_cosim::{Cosim, CosimConfig};
use cosma_sim::Duration;
use cosma_synth::{compile_sw, flatten_module, synthesize_hw, Encoding, IoMap};
use std::collections::HashMap;

const C_SRC: &str = r#"
typedef enum { Start, PutCall, Bump, Finished } ST;
ST NextState = Start;
int SAMPLE = 0;
int SENT = 0;
int SENDER()
{
    switch (NextState) {
    case Start:   { SAMPLE = 3; NextState = PutCall; } break;
    case PutCall: { if (put(SAMPLE)) { NextState = Bump; } } break;
    case Bump:
    {
        SENT = SENT + 1;
        SAMPLE = SAMPLE * 3;
        if (SENT < 4) { NextState = PutCall; } else { NextState = Finished; }
    } break;
    case Finished: { } break;
    default: { NextState = Start; }
    }
    return 1;
}
"#;

const VHDL_SRC: &str = r#"
entity SINK is
  port ( TOTAL : out integer );
end entity;
architecture fsm of SINK is
  signal ACC : integer := 0;
begin
  RX : process
    variable V : integer := 0;
  begin
    get;
    if GET_DONE then
      V := GET_RESULT;
      ACC <= ACC + V;
      TOTAL <= ACC + V;
    end if;
    wait for CYCLE;
  end process;
end architecture;
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Figure 1: the unified co-simulation / co-synthesis flow ===\n");

    // Stage 1: front-ends.
    println!("[stage 1] front-ends (mixed C, VHDL description)");
    let sender = cosma_cfront::compile_module(
        C_SRC,
        "SENDER",
        ModuleKind::Software,
        &cosma_cfront::ElabOptions {
            bindings: vec![cosma_cfront::ServiceBinding::new("iface", "hs", &["put"])],
        },
    )?;
    println!(
        "  C  -> module `{}`: {} states, {} vars",
        sender.name(),
        sender.fsm().state_count(),
        sender.vars().len()
    );
    let hw = cosma_vhdl::compile_entity(
        VHDL_SRC,
        "SINK",
        &cosma_vhdl::ElabOptions {
            bindings: vec![cosma_vhdl::ServiceBinding::new("iface", "hs", &["GET"])],
        },
    )?;
    println!(
        "  VHDL -> entity `{}`: {} process(es), {} net(s)",
        hw.name,
        hw.modules.len(),
        hw.nets.len()
    );
    let unit = handshake_unit("hs", Type::INT16);
    println!(
        "  communication unit `{}` from the library: {} wires, {} services, controller: yes",
        unit.name(),
        unit.wires().len(),
        unit.services().len()
    );

    // Stage 2: co-simulation.
    println!("\n[stage 2] co-simulation (VHDL-semantics kernel)");
    let mut cosim = Cosim::new(CosimConfig::default());
    let link = cosim.add_fsm_unit("link", unit.clone());
    cosim.add_module(&sender, &[("iface", link)])?;
    let nets: Vec<_> = hw
        .nets
        .iter()
        .map(|n| {
            cosim
                .sim_mut()
                .add_signal(format!("SINK.{}", n.name), n.ty.clone(), n.init.clone())
        })
        .collect();
    for m in &hw.modules {
        cosim.add_module_with_ports(m, &[("iface", link)], nets.clone())?;
    }
    cosim.run_for(Duration::from_us(60))?;
    let total_sig = cosim.sim().find_signal("SINK.TOTAL").expect("net exists");
    println!(
        "  SINK.TOTAL after run: {:?} (expect 3+9+27+81 = 120)",
        cosim.sim().value(total_sig)
    );
    let ks = cosim.sim().stats();
    println!(
        "  kernel: {} process runs, {} events, {} deltas",
        ks.process_runs, ks.events, ks.deltas
    );

    // Stage 3: co-synthesis — same descriptions, views swapped.
    println!("\n[stage 3] co-synthesis (same description, target views)");
    let mut units = HashMap::new();
    units.insert("iface".to_string(), unit.clone());
    let sender_flat = flatten_module(&sender, &units)?;
    let io = IoMap::for_module(0x300, &sender_flat);
    let prog = compile_sw(&sender_flat, &io)?;
    println!(
        "  SW synthesis: {} -> MC16, {} image words, ports at {:#05x}..{:#05x}",
        sender.name(),
        prog.image.len_words(),
        io.base(),
        io.base() + io.entries().len() as u16 - 1
    );
    for m in &hw.modules {
        let flat = flatten_module(m, &units)?;
        let (_, report) = synthesize_hw(&flat, Encoding::Binary)?;
        println!("  HW synthesis: {report}");
    }
    let ctrl = cosma_synth::controller_module(&unit, "iface")?;
    let (_, creport) = synthesize_hw(&ctrl, Encoding::Binary)?;
    println!("  IF synthesis: {creport}");

    println!("\nflow complete — one description, two coherent implementations");
    Ok(())
}
