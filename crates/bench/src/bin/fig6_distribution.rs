//! Figure 6 — the Distribution sub-system from its C source.
//!
//! Feeds the paper's Figure 6b C code (completed where the figure elides
//! arms) through the C front-end and executes it with stub services,
//! printing the state trace — exactly one transition per activation, the
//! paper's software synchronization rule.

use cosma_cfront::{compile_module, ElabOptions, ServiceBinding};
use cosma_core::ids::VarId;
use cosma_core::{
    Env, EvalError, FsmExec, MapEnv, ModuleKind, ReadEnv, ServiceCall, ServiceOutcome, Value,
};

const DISTRIBUTION_SRC: &str = r#"
typedef enum { Start, SetupControlCall, Step, MotorPositionCall, Next, ReadStateCall, NextStep } DIST_STATES;
DIST_STATES NextState = Start;
int POSITION = 0;
int MOTORSTATE = 0;

int DISTRIBUTION()
{
    switch (NextState) {
    case Start:            { POSITION = 0; NextState = SetupControlCall; } break;
    case SetupControlCall: { if (SetupControl()) { NextState = Step; } } break;
    case Step:             { POSITION = POSITION + 25; NextState = MotorPositionCall; } break;
    case MotorPositionCall:{ if (MotorPosition(POSITION)) { NextState = Next; } } break;
    case Next:             { NextState = ReadStateCall; } break;
    case ReadStateCall:
    {
        if (ReadMotorState()) {
            MOTORSTATE = ReadMotorState_RESULT();
            NextState = NextStep;
        }
    } break;
    case NextStep:         { if (POSITION < 100) { NextState = Step; } } break;
    default:               { NextState = Start; }
    }
    return 1;
}
"#;

/// Stub services: each completes on its second call, returning the last
/// MotorPosition argument as the motor state.
struct Stubs {
    inner: MapEnv,
    tries: std::collections::HashMap<String, u32>,
    last_pos: i64,
    calls: Vec<String>,
}

impl ReadEnv for Stubs {
    fn read_var(&self, v: VarId) -> Result<Value, EvalError> {
        self.inner.read_var(v)
    }
    fn read_port(&self, p: cosma_core::ids::PortId) -> Result<Value, EvalError> {
        self.inner.read_port(p)
    }
}

impl Env for Stubs {
    fn write_var(&mut self, v: VarId, value: Value) -> Result<(), EvalError> {
        self.inner.write_var(v, value)
    }
    fn drive_port(&mut self, p: cosma_core::ids::PortId, value: Value) -> Result<(), EvalError> {
        self.inner.drive_port(p, value)
    }
    fn call_service(
        &mut self,
        call: &ServiceCall,
        args: &[Value],
    ) -> Result<ServiceOutcome, EvalError> {
        self.calls.push(call.service.to_string());
        if &*call.service == "MotorPosition" {
            if let Some(Value::Int(p)) = args.first() {
                self.last_pos = *p;
            }
        }
        let n = self.tries.entry(call.service.to_string()).or_insert(0);
        *n += 1;
        if n.is_multiple_of(2) {
            Ok(ServiceOutcome::done_with(Value::Int(self.last_pos)))
        } else {
            Ok(ServiceOutcome::pending())
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Figure 6: the Distribution sub-system, from C source ===\n");
    let opts = ElabOptions {
        bindings: vec![ServiceBinding::new(
            "Distribution_Interface",
            "swhw_link",
            &["SetupControl", "MotorPosition", "ReadMotorState"],
        )],
    };
    let module = compile_module(
        DISTRIBUTION_SRC,
        "DISTRIBUTION",
        ModuleKind::Software,
        &opts,
    )?;
    println!(
        "elaborated: {} states, {} variables, binding `{}`",
        module.fsm().state_count(),
        module.vars().len(),
        module.bindings()[0].name()
    );

    let mut env = Stubs {
        inner: MapEnv::new(),
        tries: Default::default(),
        last_pos: 0,
        calls: vec![],
    };
    for v in module.vars() {
        env.inner.add_var(v.ty().clone(), v.init().clone());
    }
    let fsm = module.fsm();
    let mut exec = FsmExec::new(fsm);
    let pos = module.var_id("POSITION").expect("var exists");

    println!("\nactivation trace (one transition per activation):");
    println!(
        "{:>5} {:>20} -> {:<20} {:>9}",
        "act", "from", "to", "POSITION"
    );
    for act in 1..=60 {
        let from = fsm.state(exec.current()).name().to_string();
        exec.step(fsm, &mut env)?;
        let to = fsm.state(exec.current()).name().to_string();
        let p = env.inner.var(pos).as_int().unwrap_or(0);
        if from != to || act <= 6 {
            println!("{act:>5} {from:>20} -> {to:<20} {p:>9}");
        }
        if to == "NextStep" && p >= 100 {
            // One more step proves it parks.
            exec.step(fsm, &mut env)?;
            break;
        }
    }
    println!(
        "\nservice call sequence (first 12): {:?}",
        &env.calls[..env.calls.len().min(12)]
    );
    println!("total service calls: {}", env.calls.len());

    // Render the module back to C — the same shape as the figure.
    let c_text = cosma_core::render_module(&module, cosma_core::View::SwSim);
    println!("\nregenerated C view (excerpt):");
    for line in c_text.lines().take(14) {
        println!("  {line}");
    }
    Ok(())
}
