//! Claim C3 — "meeting the real-time constraints".
//!
//! The paper's analysis of the prototype reports that the synthesized
//! system meets its real-time constraints. We make the constraints
//! explicit and measure them on the board model:
//!
//! * **pulse cadence** — while a segment is in motion, consecutive pulse
//!   batches must arrive within the cadence deadline (a starving motor
//!   means discontinuous motion, exactly what the controller exists to
//!   avoid);
//! * **segment turnaround** — the software side must learn of segment
//!   completion within the turnaround deadline.

use cosma_board::BoardConfig;
use cosma_motor::{build_board, MotorConfig};
use cosma_synth::Encoding;

const PULSE_DEADLINE_US: f64 = 10.0;
const TURNAROUND_DEADLINE_MS: f64 = 2.0;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Claim C3: real-time constraints on the prototype ===\n");
    let cfg = MotorConfig::default();
    let mut sys = build_board(&cfg, BoardConfig::default(), Encoding::Binary)?;
    let done = sys.run_to_completion(1_000_000, 400)?;
    assert!(done, "prototype must complete the trajectory");
    let log = sys.board.trace_log();

    // Pulse cadence: gaps between consecutive pulse events *within* a
    // segment (reset across segment boundaries, detected via send_pos).
    let mut pulse_times: Vec<u64> = log.with_label("pulse").map(|e| e.at).collect();
    pulse_times.sort_unstable();
    let seg_times: Vec<u64> = log.with_label("send_pos").map(|e| e.at).collect();
    let mut gaps_us: Vec<f64> = vec![];
    for w in pulse_times.windows(2) {
        let crosses_segment = seg_times.iter().any(|&t| w[0] < t && t <= w[1]);
        if !crosses_segment {
            gaps_us.push((w[1] - w[0]) as f64 / 1e9);
        }
    }
    let max_gap = gaps_us.iter().copied().fold(0.0f64, f64::max);
    let avg_gap = gaps_us.iter().sum::<f64>() / gaps_us.len().max(1) as f64;
    println!("pulse cadence ({} in-segment gaps):", gaps_us.len());
    println!("  average gap: {avg_gap:.2} us, worst gap: {max_gap:.2} us");
    println!(
        "  deadline {PULSE_DEADLINE_US:.1} us -> {} (margin {:.1}%)",
        if max_gap <= PULSE_DEADLINE_US {
            "MET"
        } else {
            "MISSED"
        },
        100.0 * (PULSE_DEADLINE_US - max_gap) / PULSE_DEADLINE_US
    );

    // Segment turnaround: send_pos(k) -> motor_state(k) latency.
    let state_times: Vec<u64> = log.with_label("motor_state").map(|e| e.at).collect();
    let mut turnarounds_ms: Vec<f64> = vec![];
    for (s, e) in seg_times.iter().zip(&state_times) {
        turnarounds_ms.push((e.saturating_sub(*s)) as f64 / 1e12);
    }
    let worst_ta = turnarounds_ms.iter().copied().fold(0.0f64, f64::max);
    println!("\nsegment turnaround ({} segments):", turnarounds_ms.len());
    for (k, t) in turnarounds_ms.iter().enumerate() {
        println!("  segment {}: {t:.3} ms", k + 1);
    }
    println!(
        "  deadline {TURNAROUND_DEADLINE_MS:.1} ms -> {} (worst {worst_ta:.3} ms, margin {:.1}%)",
        if worst_ta <= TURNAROUND_DEADLINE_MS {
            "MET"
        } else {
            "MISSED"
        },
        100.0 * (TURNAROUND_DEADLINE_MS - worst_ta) / TURNAROUND_DEADLINE_MS
    );

    // Bus headroom: how much of the CPU's time went to bus waits.
    let stats = sys.board.bus_stats(sys.cpu);
    let bus_cycles =
        (stats.reads + stats.writes) * u64::from(BoardConfig::default().bus_wait_cycles + 4);
    let total_cycles = sys.board.cpu_cycles(sys.cpu);
    println!(
        "\nbus occupancy: {} transactions, ~{:.1}% of {} CPU cycles",
        stats.reads + stats.writes,
        100.0 * bus_cycles as f64 / total_cycles as f64,
        total_cycles
    );

    let met = max_gap <= PULSE_DEADLINE_US && worst_ta <= TURNAROUND_DEADLINE_MS;
    println!(
        "\nclaim C3 ({}) — the prototype meets its real-time constraints with margin",
        if met { "REPRODUCED" } else { "NOT reproduced" }
    );
    Ok(())
}
