//! Figure 7 — the Speed Control sub-system from its VHDL source.
//!
//! Feeds a Figure-7-style VHDL entity (three parallel units: POSITION,
//! CORE, TIMER over shared signals) through the VHDL front-end, then
//! co-simulates it against the real communication units and the motor
//! plant, showing the unit interleaving and the generated pulse train.

use cosma_cosim::{Cosim, CosimConfig};
use cosma_motor::{motor_link_unit, shared_motor, swhw_link_unit, MotorCosim};
use cosma_sim::Duration;
use cosma_vhdl::{compile_entity, ElabOptions, ServiceBinding};

const SPEED_CONTROL_SRC: &str = r#"
entity SPEED_CONTROL is
  port ( DONE_LED : out std_logic );
end entity;

architecture fsm of SPEED_CONTROL is
  type POS_STATES is (SETUP, WAITPOS, SETTLE, MOVING, SERVE);
  signal TARGET   : integer := 0;
  signal RESIDUAL : integer := 0;
  signal SAMPLED  : integer := 0;
begin
  POSITION : process
    variable NEXT_STATE : POS_STATES := SETUP;
    variable P : integer := 0;
    variable W : integer := 0;
  begin
    case NEXT_STATE is
      when SETUP =>
        ReadMotorConstraints;
        if READMOTORCONSTRAINTS_DONE then NEXT_STATE := WAITPOS; end if;
      when WAITPOS =>
        ReadMotorPosition;
        if READMOTORPOSITION_DONE then
          P := READMOTORPOSITION_RESULT;
          TARGET <= P;
          W := 6;
          NEXT_STATE := SETTLE;
        end if;
      when SETTLE =>
        W := W - 1;
        if W <= 0 then NEXT_STATE := MOVING; end if;
      when MOVING =>
        if RESIDUAL = 0 then NEXT_STATE := SERVE; end if;
      when SERVE =>
        ReturnMotorState(SAMPLED);
        if RETURNMOTORSTATE_DONE then NEXT_STATE := WAITPOS; end if;
      when others =>
        NEXT_STATE := SETUP;
    end case;
    wait for CYCLE;
  end process;

  CORE : process
    variable S : integer := 0;
  begin
    ReadSampledData;
    if READSAMPLEDDATA_DONE then
      S := READSAMPLEDDATA_RESULT;
      SAMPLED <= S;
      RESIDUAL <= TARGET - S;
    end if;
    wait for CYCLE;
  end process;

  TIMER : process
    variable PLS : integer := 0;
    variable C : integer := 0;
  begin
    if C > 0 then
      C := C - 1;
    elsif RESIDUAL /= 0 then
      if RESIDUAL > 2 then PLS := 2;
      elsif RESIDUAL < -2 then PLS := -2;
      else PLS := RESIDUAL;
      end if;
      SendMotorPulses(PLS);
      if SENDMOTORPULSES_DONE then
        C := 8;
        DONE_LED <= '1';
      end if;
    end if;
    wait for CYCLE;
  end process;
end architecture;
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Figure 7: Speed Control (VHDL) — three parallel units ===\n");
    let opts = ElabOptions {
        bindings: vec![
            ServiceBinding::new(
                "Control_Interface",
                "swhw_link",
                &[
                    "READMOTORCONSTRAINTS",
                    "READMOTORPOSITION",
                    "RETURNMOTORSTATE",
                ],
            ),
            ServiceBinding::new(
                "Motor_Interface",
                "motor_link",
                &["READSAMPLEDDATA", "SENDMOTORPULSES"],
            ),
        ],
    };
    let hw = compile_entity(SPEED_CONTROL_SRC, "SPEED_CONTROL", &opts)?;
    println!("elaborated entity `{}`:", hw.name);
    for m in &hw.modules {
        println!("  process {} -> {} states", m.name(), m.fsm().state_count());
    }

    // Assemble against the real units and motor plant; drive the SW side
    // of the swhw unit by hand (the testbench plays Distribution).
    let mut cosim = Cosim::new(CosimConfig::default());
    let swhw = cosim.add_fsm_unit("swhw", swhw_link_unit());
    let mlink = cosim.add_fsm_unit("mlink", motor_link_unit());
    let nets: Vec<_> = hw
        .nets
        .iter()
        .map(|n| {
            cosim
                .sim_mut()
                .add_signal(format!("SC.{}", n.name), n.ty.clone(), n.init.clone())
        })
        .collect();
    let mut ids = vec![];
    for m in &hw.modules {
        ids.push(cosim.add_module_with_ports(
            m,
            &[("Control_Interface", swhw), ("Motor_Interface", mlink)],
            nets.clone(),
        )?);
    }
    let motor = shared_motor(2);
    let sig = |cosim: &Cosim, n: &str| cosim.sim().find_signal(&format!("mlink.{n}")).unwrap();
    let adapter = MotorCosim::new(
        motor.clone(),
        cosim.hw_clk(),
        sig(&cosim, "PULSE_CMD"),
        sig(&cosim, "PULSE_STROBE"),
        sig(&cosim, "PULSE_ACK"),
        sig(&cosim, "SAMPLED_POS"),
        cosim.trace_handle(),
    );
    adapter.attach(cosim.sim_mut());

    // Testbench: poke the SW-side mailboxes directly (constraints, then a
    // target position of 30).
    let ctl_reg = cosim.sim().find_signal("swhw.CTL_REG").unwrap();
    let ctl_full = cosim.sim().find_signal("swhw.CTL_FULL").unwrap();
    let pos_reg = cosim.sim().find_signal("swhw.POS_REG").unwrap();
    let pos_full = cosim.sim().find_signal("swhw.POS_FULL").unwrap();
    cosim.sim_mut().poke(ctl_reg, cosma_core::Value::Int(100));
    cosim
        .sim_mut()
        .poke(ctl_full, cosma_core::Value::Bit(cosma_core::Bit::One));
    cosim.run_for(Duration::from_us(2))?;
    cosim.sim_mut().poke(pos_reg, cosma_core::Value::Int(30));
    cosim
        .sim_mut()
        .poke(pos_full, cosma_core::Value::Bit(cosma_core::Bit::One));
    cosim.run_for(Duration::from_us(60))?;

    println!("\nafter the run:");
    println!(
        "  motor position: {} (target 30)",
        motor.borrow().position()
    );
    for (m, id) in hw.modules.iter().zip(&ids) {
        let st = cosim.module_status(*id);
        println!(
            "  {} in state {} after {} activations",
            m.name(),
            st.state,
            st.activations
        );
    }
    let pulses: Vec<i64> = cosim
        .trace_log()
        .with_label("pulse")
        .map(|e| e.values[0].as_int().unwrap())
        .collect();
    println!("  pulse train: {pulses:?}");
    let total: i64 = pulses.iter().sum();
    println!("  pulse sum = {total} (moves the motor exactly to the target)");
    assert_eq!(motor.borrow().position(), 30);
    Ok(())
}
