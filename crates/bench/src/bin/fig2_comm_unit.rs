//! Figure 2 — the communication unit concept.
//!
//! A Host and a Server linked by a communication unit offering `put` and
//! `get`, with a controller guarding the shared state. Prints the
//! message ledger and the controller-state occupancy, showing the
//! procedure-call abstraction in action.

use cosma_comm::{handshake_unit, CallerId, FsmUnitRuntime, LocalWires};
use cosma_core::{Type, Value};

fn main() {
    println!("=== Figure 2: HOST --put--> [communication unit] --get--> SERVER ===\n");
    let spec = handshake_unit("unit", Type::INT16);
    println!("unit `{}`:", spec.name());
    for w in spec.wires() {
        println!("  wire {:<8} : {}", w.name(), w.ty());
    }
    for s in spec.services() {
        let args: Vec<String> = s.args().iter().map(|(n, t)| format!("{n}: {t}")).collect();
        let ret = s.returns().map(|t| format!(" -> {t}")).unwrap_or_default();
        println!(
            "  service {}({}){} [{} protocol states]",
            s.name(),
            args.join(", "),
            ret,
            s.fsm().state_count()
        );
    }

    let mut unit = FsmUnitRuntime::new(spec.clone());
    let mut wires = LocalWires::new(&spec);
    let host = CallerId(1);
    let server = CallerId(2);

    println!("\nactivation ledger (HOST puts 5 messages, SERVER gets them):");
    println!(
        "{:>5} {:>12} {:>12} {:>14}",
        "step", "host", "server", "controller"
    );
    let mut to_send = vec![10i64, 20, 30, 40, 50];
    let mut received = vec![];
    let mut step = 0;
    while received.len() < 5 && step < 200 {
        step += 1;
        let host_evt = if !to_send.is_empty() {
            let v = to_send[0];
            let out = unit
                .call(host, "put", &[Value::Int(v)], &mut wires)
                .expect("put");
            if out.done {
                to_send.remove(0);
                format!("put({v})=DONE")
            } else {
                "put pending".to_string()
            }
        } else {
            "-".to_string()
        };
        let srv_evt = {
            let out = unit.call(server, "get", &[], &mut wires).expect("get");
            if let (true, Some(Value::Int(v))) = (out.done, out.result) {
                received.push(v);
                format!("get()={v}")
            } else {
                "get pending".to_string()
            }
        };
        unit.step_controller(&mut wires).expect("controller");
        let ctrl = unit.controller_state().unwrap_or("-");
        if host_evt.contains("DONE") || srv_evt.contains('=') || step <= 6 {
            println!("{step:>5} {host_evt:>12} {srv_evt:>12} {ctrl:>14}");
        }
    }
    println!("\nreceived, in order: {received:?}");
    let stats = unit.stats();
    println!(
        "stats: put {}/{} completions/calls, get {}/{}, controller {} activations",
        stats.services["put"].completions,
        stats.services["put"].calls,
        stats.services["get"].completions,
        stats.services["get"].calls,
        stats.controller_steps
    );
    assert_eq!(received, vec![10, 20, 30, 40, 50]);
    println!("message stream intact: no loss, duplication or reorder");
}
