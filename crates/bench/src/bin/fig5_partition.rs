//! Figure 5 — the partitioned HW/SW system with its communication units.
//!
//! Shows the system inventory (which module talks through which unit) and
//! measures per-service traffic through the SW/HW and HW/HW units during
//! a co-simulated run — the communication structure of the partitioned
//! Adaptive Motor Controller.

use cosma_cosim::CosimConfig;
use cosma_motor::{
    build_cosim, core_module, distribution_module, motor_link_unit, position_module,
    swhw_link_unit, timer_module, MotorConfig,
};
use cosma_sim::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = MotorConfig::default();
    println!("=== Figure 5: partitioned system and its communication units ===\n");

    println!("system inventory:");
    for m in [
        distribution_module(&cfg),
        position_module(&cfg),
        core_module(),
        timer_module(&cfg),
    ] {
        let binds: Vec<String> = m
            .bindings()
            .iter()
            .map(|b| format!("{} -> {}", b.name(), b.unit_type()))
            .collect();
        println!(
            "  {:<14} ({:<8}) {} states, uses [{}]",
            m.name(),
            format!("{}", m.kind()),
            m.fsm().state_count(),
            binds.join(", ")
        );
    }
    for u in [swhw_link_unit(), motor_link_unit()] {
        let svcs: Vec<&str> = u.services().iter().map(|s| s.name()).collect();
        println!(
            "  unit {:<12} wires: {}, services: [{}]",
            u.name(),
            u.wires().len(),
            svcs.join(", ")
        );
    }

    let mut sys = build_cosim(&cfg, CosimConfig::default())?;
    let done = sys.run_to_completion(Duration::from_us(100), 300)?;
    println!("\nco-simulated run complete: {done}");

    for unit in ["swhw", "mlink"] {
        let stats = sys.cosim.unit_stats(unit).expect("unit exists");
        println!("\nunit `{unit}` service traffic:");
        println!(
            "{:>22} {:>10} {:>12} {:>10}",
            "service", "calls", "completions", "util%"
        );
        let mut names: Vec<&String> = stats.services.keys().collect();
        names.sort();
        for name in names {
            let s = stats.services[name];
            let util = if s.calls > 0 {
                100.0 * s.completions as f64 / s.calls as f64
            } else {
                0.0
            };
            println!(
                "{name:>22} {:>10} {:>12} {util:>9.1}%",
                s.calls, s.completions
            );
        }
        println!("{:>22} {:>10}", "controller steps", stats.controller_steps);
    }
    println!(
        "\nsub-systems never touch each other's wires — all interaction is\n\
         procedure calls on the two communication units (Fig. 5's structure)"
    );
    Ok(())
}
