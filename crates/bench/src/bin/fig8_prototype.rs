//! Figure 8 — the prototype: PC-AT + FPGA board running the
//! co-synthesized Adaptive Motor Controller.
//!
//! Prints the complete prototype inventory the paper's "analysis of the
//! prototype system" refers to: software image size and memory map,
//! per-unit FPGA resources and timing, bus traffic, and the functional
//! outcome of the run.

use cosma_board::BoardConfig;
use cosma_motor::{build_board, MotorConfig};
use cosma_synth::Encoding;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = MotorConfig::default();
    let bcfg = BoardConfig::default();
    println!("=== Figure 8: the Adaptive Motor Controller prototype ===\n");
    println!(
        "board: CPU {} MHz, extension bus {} MHz ({} wait cycles/transfer), FPGA {} MHz",
        bcfg.cpu_hz / 1_000_000,
        bcfg.bus_hz / 1_000_000,
        bcfg.bus_wait_cycles,
        bcfg.fpga_hz / 1_000_000
    );

    let mut sys = build_board(&cfg, bcfg, Encoding::Binary)?;

    println!("\nsoftware part (Distribution on the CPU):");
    println!(
        "  image: {} words ({} bytes of EPROM)",
        sys.program.image.len_words(),
        sys.program.image.len_words() * 2
    );
    println!("  bus window at {:#05x}:", sys.program.io.base());
    for (name, addr) in sys.program.io.entries() {
        println!("    {addr:#06x}  {name}");
    }

    println!("\nhardware part (Speed Control in the FPGA):");
    println!(
        "  {:<14} {:>7} {:>6} {:>6} {:>6} {:>7} {:>9}",
        "unit", "states", "LUTs", "FFs", "CLBs", "depth", "fmax"
    );
    let mut luts = 0;
    let mut ffs = 0;
    let mut clbs = 0;
    let mut worst_fmax = f64::INFINITY;
    for r in &sys.reports {
        println!(
            "  {:<14} {:>7} {:>6} {:>6} {:>6} {:>7} {:>7.1}MHz",
            r.module, r.states, r.tech.luts, r.tech.ffs, r.tech.clbs, r.tech.depth, r.tech.fmax_mhz
        );
        luts += r.tech.luts;
        ffs += r.tech.ffs;
        clbs += r.tech.clbs;
        worst_fmax = worst_fmax.min(r.tech.fmax_mhz);
    }
    println!(
        "  {:<14} {:>7} {:>6} {:>6} {:>6} {:>7} {:>7.1}MHz",
        "TOTAL", "-", luts, ffs, clbs, "-", worst_fmax
    );
    println!(
        "  timing closure at the 10 MHz fabric clock: {}",
        if worst_fmax > 10.0 { "YES" } else { "NO" }
    );
    println!("  (an XC4005 carries ~196 CLBs, an XC4010 ~400 — the paper's 4000 series)");

    println!("\nrunning the prototype...");
    let done = sys.run_to_completion(1_000_000, 400)?;
    let elapsed_ms = sys.board.now_fs() as f64 / 1e12;
    println!("  trajectory complete: {done} after {elapsed_ms:.2} ms of board time");
    println!(
        "  motor position: {} / {}",
        sys.motor.borrow().position(),
        cfg.total_distance()
    );
    let stats = sys.board.bus_stats(sys.cpu);
    println!(
        "  cpu: {} cycles; bus: {} reads, {} writes, {} unmapped",
        sys.board.cpu_cycles(sys.cpu),
        stats.reads,
        stats.writes,
        stats.unmapped
    );
    println!("  fabric: {} clock ticks", sys.board.fabric_ticks());
    let log = sys.board.trace_log();
    println!(
        "  events: {} send_pos, {} motor_state, {} pulse batches",
        log.with_label("send_pos").count(),
        log.with_label("motor_state").count(),
        log.with_label("pulse").count()
    );
    println!(
        "\nthe prototype correctly implements the system functionality\n\
         (functional outcome identical to co-simulation; see claim_coherence)"
    );
    Ok(())
}
