//! Claim C1 — coherence between co-simulation and co-synthesis.
//!
//! Runs the same motor-controller description through both flows and
//! compares the externally visible event sequences label by label,
//! reporting the match rate (the paper's claim: the two never diverge,
//! because both consume the same description).

use cosma_board::BoardConfig;
use cosma_cosim::CosimConfig;
use cosma_motor::{build_board, build_cosim, MotorConfig};
use cosma_sim::Duration;
use cosma_synth::Encoding;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Claim C1: co-simulation / co-synthesis coherence ===\n");
    let mut rows = vec![];
    for (name, cfg) in [
        ("default (4x25)", MotorConfig::default()),
        (
            "short (2x10)",
            MotorConfig {
                segments: 2,
                segment_len: 10,
                ..MotorConfig::default()
            },
        ),
        (
            "long (6x15)",
            MotorConfig {
                segments: 6,
                segment_len: 15,
                ..MotorConfig::default()
            },
        ),
        (
            "fast motor",
            MotorConfig {
                motor_speed: 5,
                max_pulse: 4,
                ..MotorConfig::default()
            },
        ),
    ] {
        let mut cs = build_cosim(&cfg, CosimConfig::default())?;
        let cdone = cs.run_to_completion(Duration::from_us(100), 400)?;
        let mut bs = build_board(&cfg, BoardConfig::default(), Encoding::Binary)?;
        let bdone = bs.run_to_completion(1_000_000, 600)?;
        let mut total_events = 0usize;
        let mut matched_events = 0usize;
        let mut all = true;
        for label in ["send_pos", "motor_state", "pulse", "done"] {
            let a = cs.cosim.trace_log().filtered(|e| e.label == label);
            let b = bs.board.trace_log().filtered(|e| e.label == label);
            let cmp = a.compare(&b);
            total_events += cmp.left_len.max(cmp.right_len);
            matched_events += cmp.matched;
            all &= cmp.is_match();
        }
        rows.push((name, cdone && bdone, total_events, matched_events, all));
    }

    println!(
        "{:<16} {:>9} {:>8} {:>8} {:>11} {:>9}",
        "scenario", "completed", "events", "matched", "match rate", "coherent"
    );
    let mut overall = true;
    for (name, done, total, matched, all) in rows {
        println!(
            "{name:<16} {:>9} {total:>8} {matched:>8} {:>10.1}% {:>9}",
            done,
            100.0 * matched as f64 / total.max(1) as f64,
            if all { "YES" } else { "NO" }
        );
        overall &= all && done;
    }
    println!(
        "\nclaim C1 ({}) — the same description produces the same behaviour\n\
         under joint simulation and on the synthesized prototype",
        if overall {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
    Ok(())
}
