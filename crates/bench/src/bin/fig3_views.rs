//! Figure 3 — the three views of the `put` communication procedure.
//!
//! Renders the SW synthesis view (per target), the SW simulation view and
//! the HW view from the *single* protocol FSM, then verifies that every C
//! view shares the identical FSM skeleton — the multi-view library
//! guarantee that makes co-simulation and co-synthesis coherent.

use cosma_comm::handshake_unit;
use cosma_core::{render_service_views, SwTarget, Type, View};

fn skeleton(text: &str) -> Vec<String> {
    text.lines()
        .filter(|l| l.contains("case ") || l.contains("NEXTSTATE ="))
        .map(|l| l.trim().to_string())
        .collect()
}

fn main() {
    let unit = handshake_unit("hs", Type::INT16);
    let put = unit.service("put").expect("put exists");
    let views = render_service_views(&unit, put, &SwTarget::ALL);

    println!("=== Figure 3a: SW synthesis views (one per target architecture) ===");
    for target in SwTarget::ALL {
        println!("\n--- target: {target} ---");
        println!("{}", views.sw_synth[&target]);
    }
    println!("=== Figure 3b: SW simulation view ===\n{}", views.sw_sim);
    println!("=== Figure 3c: HW view (VHDL) ===\n{}", views.hw_vhdl);

    // Equivalence: the C views differ only in their port-access
    // primitives.
    let sim_skel = skeleton(&views.sw_sim);
    let mut all_equal = true;
    for target in SwTarget::ALL {
        let skel = skeleton(&views.sw_synth[&target]);
        let equal = skel == sim_skel;
        all_equal &= equal;
        println!(
            "skeleton(sw-sim) == skeleton(sw-synth {target}): {}",
            if equal { "YES" } else { "NO" }
        );
    }
    // And each view names its own access primitives.
    assert!(views.sw_sim.contains("cliGetPortValue"));
    assert!(views.sw_synth[&SwTarget::PcAtBus].contains("inport"));
    assert!(views.sw_synth[&SwTarget::UnixIpc].contains("ipc_read"));
    assert!(views.sw_synth[&SwTarget::Microcode].contains("mc_read"));
    assert!(views
        .view(View::Hw)
        .expect("hw view")
        .contains("procedure PUT"));
    assert!(all_equal, "C views must share one FSM skeleton");
    println!("\nall views derive from one protocol FSM — equivalence by construction");
}
