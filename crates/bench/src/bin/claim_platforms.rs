//! Claim C2 — multi-platform support.
//!
//! The same producer/consumer module pair is mapped onto three target
//! architectures by exchanging only the communication unit / views; the
//! functional result must be identical everywhere.

use cosma_board::{Board, BoardConfig, IpcPlatform};
use cosma_comm::{handshake_unit, FifoChannel, Mailbox, StandaloneUnit};
use cosma_core::{Expr, Module, ModuleBuilder, ModuleKind, ServiceCall, Stmt, Type, Value};
use cosma_cosim::{Cosim, CosimConfig};
use cosma_sim::Duration;
use cosma_synth::{compile_sw, controller_module, flatten_module, synthesize_hw, Encoding, IoMap};
use std::collections::HashMap;

const N: i64 = 5;

fn producer(service: &str) -> Module {
    let mut p = ModuleBuilder::new("producer", ModuleKind::Software);
    let done = p.var("D", Type::Bool, Value::Bool(false));
    let i = p.var("I", Type::INT16, Value::Int(0));
    let b = p.binding("chan", "hs");
    let put = p.state("PUT");
    let end = p.state("END");
    p.actions(
        put,
        vec![Stmt::Call(ServiceCall {
            binding: b,
            service: service.into(),
            args: vec![Expr::int(7).add(Expr::var(i).mul(Expr::int(7)))],
            done: Some(done),
            result: None,
        })],
    );
    p.transition_with(
        put,
        Some(Expr::var(done).and(Expr::var(i).ge(Expr::int(N - 1)))),
        vec![],
        end,
    );
    p.transition_with(
        put,
        Some(Expr::var(done)),
        vec![Stmt::assign(i, Expr::var(i).add(Expr::int(1)))],
        put,
    );
    p.transition(end, None, end);
    p.initial(put);
    p.build().expect("well-formed")
}

fn consumer(service: &str) -> Module {
    let mut c = ModuleBuilder::new("consumer", ModuleKind::Hardware);
    let done = c.var("D", Type::Bool, Value::Bool(false));
    let got = c.var("GOT", Type::INT16, Value::Int(0));
    let sum = c.var("SUM", Type::INT16, Value::Int(0));
    let n = c.var("N", Type::INT16, Value::Int(0));
    let b = c.binding("chan", "hs");
    let get = c.state("GET");
    let end = c.state("END");
    c.actions(
        get,
        vec![Stmt::Call(ServiceCall {
            binding: b,
            service: service.into(),
            args: vec![],
            done: Some(done),
            result: Some(got),
        })],
    );
    c.transition_with(
        get,
        Some(Expr::var(done).and(Expr::var(n).ge(Expr::int(N - 1)))),
        vec![Stmt::assign(sum, Expr::var(sum).add(Expr::var(got)))],
        end,
    );
    c.transition_with(
        get,
        Some(Expr::var(done)),
        vec![
            Stmt::assign(sum, Expr::var(sum).add(Expr::var(got))),
            Stmt::assign(n, Expr::var(n).add(Expr::int(1))),
        ],
        get,
    );
    c.transition(end, None, end);
    c.initial(get);
    c.build().expect("well-formed")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let expected: i64 = (0..N).map(|i| 7 + 7 * i).sum();
    println!("=== Claim C2: one description, many platforms (expect SUM = {expected}) ===\n");
    let mut results: Vec<(String, i64)> = vec![];

    // 1. Co-simulation over the library handshake unit.
    {
        let mut cosim = Cosim::new(CosimConfig::default());
        let link = cosim.add_fsm_unit("chan", handshake_unit("hs", Type::INT16));
        cosim.add_module(&producer("put"), &[("chan", link)])?;
        let cid = cosim.add_module(&consumer("get"), &[("chan", link)])?;
        cosim.run_for(Duration::from_us(80))?;
        let sum = cosim
            .module_var(cid, "SUM")
            .and_then(|v| v.as_int().ok())
            .unwrap_or(-1);
        results.push(("co-simulation / FSM handshake unit".into(), sum));
    }

    // 2a. Software-only platform over an OS FIFO.
    {
        let mut ipc = IpcPlatform::new();
        let ch = ipc.add_unit(StandaloneUnit::from_native(Box::new(FifoChannel::new(
            "pipe", 4,
        ))));
        ipc.add_module(&producer("put"), &[("chan", ch)])?;
        let cid = ipc.add_module(&consumer("get"), &[("chan", ch)])?;
        ipc.run(100)?;
        let sum = ipc
            .module_var(cid, "SUM")
            .and_then(|v| v.as_int().ok())
            .unwrap_or(-1);
        results.push(("software-only / UNIX-IPC FIFO".into(), sum));
    }

    // 2b. Software-only platform over a mailbox (different native unit,
    // same modules — only service names rebound).
    {
        let mut ipc = IpcPlatform::new();
        let mb = ipc.add_unit(StandaloneUnit::from_native(Box::new(Mailbox::new("mb", 4))));
        ipc.add_module(&producer("send_a"), &[("chan", mb)])?;
        let cid = ipc.add_module(&consumer("recv_b"), &[("chan", mb)])?;
        ipc.run(100)?;
        let sum = ipc
            .module_var(cid, "SUM")
            .and_then(|v| v.as_int().ok())
            .unwrap_or(-1);
        results.push(("software-only / UNIX-IPC mailbox".into(), sum));
    }

    // 3. The PC-AT + FPGA board.
    {
        let mut units = HashMap::new();
        units.insert("chan".to_string(), handshake_unit("hs", Type::INT16));
        let prod_flat = flatten_module(&producer("put"), &units)?;
        let prog = compile_sw(&prod_flat, &IoMap::for_module(0x300, &prod_flat))?;
        let cons_flat = flatten_module(&consumer("get"), &units)?;
        let (cons_nl, _) = synthesize_hw(&cons_flat, Encoding::Binary)?;
        let ctrl = controller_module(&handshake_unit("hs", Type::INT16), "chan")?;
        let (ctrl_nl, _) = synthesize_hw(&ctrl, Encoding::Binary)?;
        let mut board = Board::new(BoardConfig::default());
        board.add_cpu("producer", &prog).unwrap();
        board.place_netlist(&cons_nl);
        board.place_netlist(&ctrl_nl);
        board.run_for_ns(4_000_000)?;
        let sum = board
            .fabric()
            .reg_value("consumer", "SUM")
            .map(|w| i64::from(w as u16 as i16))
            .unwrap_or(-1);
        results.push(("co-synthesis / PC-AT + FPGA board".into(), sum));
    }

    println!("{:<38} {:>8} {:>8}", "platform", "SUM", "correct");
    let mut all = true;
    for (name, sum) in &results {
        let ok = *sum == expected;
        all &= ok;
        println!("{name:<38} {sum:>8} {:>8}", if ok { "YES" } else { "NO" });
    }
    println!(
        "\nclaim C2 ({}) — the modules never changed; only the communication\n\
         unit / view selection did",
        if all { "REPRODUCED" } else { "NOT reproduced" }
    );
    Ok(())
}
