//! `cosim_bench` — the machine-readable co-simulation benchmark runner.
//!
//! Runs the `cosim_step` many-unit scenarios (pipeline and starved
//! topologies, legacy vs sharded scheduling, sequential vs threaded
//! step phase, length-only vs payload-beat bus timing) and writes
//! per-scenario timings to `BENCH_cosim.json` as a flat array of
//! `{scenario, n, parallelism, threads, bus_timing, ns_per_run, p50_ns,
//! p99_ns, runs}` records, so CI can track the backplane's performance
//! trajectory across PRs. The `step_scaling` rows sweep the worker
//! count over a wide unparked pipeline (the allocation-free step
//! phase's target regime) and assert nonzero scratch-arena reuse.
//!
//! The `parallelism` column compares [`Parallelism::Off`] against
//! `Threads(4)` on the same scenario. NOTE: the threaded step phase
//! needs real cores to win — on a single-CPU host (CI containers) the
//! workers time-slice one core and the row documents the overhead
//! instead. The host's available parallelism is printed alongside.
//!
//! The `bus_timing` column tracks the cost of cycle-accurate payload
//! beats (`payload_beats` rows) against the length-only fast path, and
//! the `batched_heavy` rows pit the deferred scheduler's `BatchedLink`
//! queue-op journal against immediate call application on a
//! batched-heavy workload — the journal must hold parity or better.
//!
//! The `beat_storm` rows are the timer-wheel stress case: every unit of
//! a ring streams `PayloadBeats` bursts concurrently, so the kernel's
//! time queues absorb one pre-scheduled beat train per link per
//! transaction. Each size is measured twice — `queue = "wheel"` (the
//! shipping hierarchical timer wheel) and `queue = "heap"` (the retired
//! binary-heap backend, swapped in via the kernel's ablation hook) —
//! and the full (non-quick) run asserts the wheel beats the heap
//! baseline at the largest N.
//!
//! The `multi_rate` rows compare a uniform-clock batched ring against
//! the same ring with half its links (and their modules) in a 1:4
//! clock domain — the full run asserts the rate split is measurably
//! cheaper. The `partitioned` rows compare the collapsed
//! single-backplane elaboration of a cut scenario against the same cut
//! run as two optimistically-synchronized partitions
//! (`cosim::partition::Orchestrator`), with a `rollback_rate` column
//! (rollbacks per committed sync quantum) tracking how often
//! speculation loses; the `variant` column names each side of both
//! comparisons.
//!
//! Every row carries provenance for cross-machine trajectory
//! comparisons: a `schema` version, the `git_rev` the binary was run
//! against, the host's `cpus`, and a `timestamp` string passed in by
//! the harness via `--timestamp` (never computed ad hoc in the loop;
//! `null` when the harness does not pass one).
//!
//! Usage: `cosim_bench [--quick] [--out PATH] [--timestamp TS]`
//!
//! `--quick` shrinks the size sweep and sample count for CI smoke runs;
//! the default sweep matches the criterion bench (N = 16/64/256).

use cosma_cosim::scenario::{build_scenario, LinkKind, Scenario, ScenarioSpec, Topology};
use cosma_cosim::{BusTiming, CosimConfig, Parallelism, SchedulingConfig};
use cosma_sim::Duration;
use std::time::Instant;

/// Bump when row fields change meaning or shape.
const SCHEMA_VERSION: u32 = 3;

struct Record {
    scenario: &'static str,
    n: usize,
    parallelism: &'static str,
    /// Explicit worker count for the `step_scaling` sweep rows; `None`
    /// for the scenarios where `parallelism` already says it all.
    threads: Option<usize>,
    bus_timing: &'static str,
    /// Time-queue backend under test: `Some("wheel" | "heap")` for the
    /// `beat_storm` ablation rows, `None` elsewhere (implicitly the
    /// shipping wheel).
    queue: Option<&'static str>,
    /// Within-scenario variant for the `multi_rate` (uniform vs
    /// quarter-rate domain) and `partitioned` (collapsed vs split)
    /// comparison rows; `None` elsewhere.
    variant: Option<&'static str>,
    /// Rollbacks per committed sync quantum — only meaningful for the
    /// `partitioned` orchestrator row.
    rollback_rate: Option<f64>,
    ns_per_run: u128,
    p50_ns: u128,
    p99_ns: u128,
    runs: u32,
}

/// Short git revision of the working tree, for row provenance.
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn timing_label(link: &LinkKind) -> &'static str {
    match link {
        LinkKind::Handshake => "handshake",
        LinkKind::Batched {
            timing: BusTiming::LengthOnly,
            ..
        } => "length_only",
        LinkKind::Batched {
            timing: BusTiming::PayloadBeats,
            ..
        } => "payload_beats",
    }
}

/// Splits a scheduling config into the JSON `parallelism` label and the
/// explicit `threads` count, so every threaded row names its worker
/// count the same way the `step_scaling` sweep does ("threads" +
/// `threads: N`) instead of baking the count into the label.
fn parallelism_fields(cfg: &SchedulingConfig) -> (&'static str, Option<usize>) {
    match cfg.parallelism {
        Parallelism::Off => ("off", None),
        Parallelism::Threads(n) => ("threads", Some(n)),
    }
}

fn scenario(
    n: usize,
    topology: Topology,
    scheduling: SchedulingConfig,
    link: LinkKind,
) -> Scenario {
    build_scenario(&ScenarioSpec {
        units: n,
        topology,
        values_per_link: 4,
        link,
        config: CosimConfig::default(),
        scheduling,
        trace: false,
        domains: Default::default(),
    })
    .expect("scenario builds")
}

/// Times `runs` fresh builds of one scenario, excluding setup, and
/// returns the mean/p50/p99 wall-clock nanoseconds per `sim_us` µs
/// simulated run.
#[allow(clippy::too_many_arguments)]
fn measure(
    name: &'static str,
    n: usize,
    parallelism: &'static str,
    threads: Option<usize>,
    bus_timing: &'static str,
    runs: u32,
    sim_us: u64,
    build: impl Fn() -> Scenario,
) -> Record {
    // Warm-up.
    let mut s = build();
    s.cosim.run_for(Duration::from_us(sim_us)).expect("runs");
    let mut samples: Vec<u128> = Vec::with_capacity(runs as usize);
    for _ in 0..runs {
        let mut s = build();
        let start = Instant::now();
        s.cosim.run_for(Duration::from_us(sim_us)).expect("runs");
        samples.push(start.elapsed().as_nanos());
    }
    samples.sort_unstable();
    let ns_per_run = samples.iter().sum::<u128>() / u128::from(runs.max(1));
    let p50_ns = samples[samples.len() / 2];
    let p99_ns = samples[(samples.len() * 99 / 100).min(samples.len() - 1)];
    println!(
        "{name:<24} N={n:<4} par={parallelism:<8} bus={bus_timing:<13} {ns_per_run:>12} ns/run  \
         p50={p50_ns} p99={p99_ns}  ({runs} runs)"
    );
    Record {
        scenario: name,
        n,
        parallelism,
        threads,
        bus_timing,
        queue: None,
        variant: None,
        rollback_rate: None,
        ns_per_run,
        p50_ns,
        p99_ns,
        runs,
    }
}

/// Mean/p50/p99 of sorted-in-place samples.
fn summarize3(mut samples: Vec<u128>) -> (u128, u128, u128) {
    samples.sort_unstable();
    let mean = samples.iter().sum::<u128>() / samples.len() as u128;
    let p50 = samples[samples.len() / 2];
    let p99 = samples[(samples.len() * 99 / 100).min(samples.len() - 1)];
    (mean, p50, p99)
}

/// One 100 µs beat-storm run: `n` generator processes each keep a
/// 63-beat drive train in flight on a private signal (8 phase groups,
/// 64 ns beat stride) and re-arm on drain — the kernel-level
/// distillation of `n` PayloadBeats links streaming concurrently.
/// Returns wall-clock nanoseconds for the run, setup excluded.
fn beat_storm(n: usize, heap: bool) -> u128 {
    use cosma_core::{Bit, Value};
    use cosma_sim::{FnProcess, SimTime, Simulator, Wait};
    const BEATS: usize = 63;
    let mut sim = Simulator::new();
    if heap {
        sim.use_heap_queues();
    }
    let stride = Duration::from_ns(64);
    for i in 0..n {
        let sig = sim.add_bit(format!("beat{i}"));
        let phase = Duration::from_ns(8 * (i as u64 % 8));
        let values: Vec<Value> = (0..BEATS)
            .map(|k| Value::Bit(if k % 2 == 0 { Bit::One } else { Bit::Zero }))
            .collect();
        sim.add_process(
            format!("gen{i}"),
            FnProcess::new(move |ctx: &mut cosma_sim::ProcCtx| {
                ctx.drive_train(sig, phase + stride, stride, &values);
                Wait::Timeout(stride.times(values.len() as u64 + 1))
            }),
        );
    }
    let start = Instant::now();
    sim.run_until(SimTime::from_ns(100_000)).expect("runs");
    start.elapsed().as_nanos()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_cosim.json", |s| s.as_str());
    // Row provenance: harness-supplied timestamp (never computed here),
    // git revision and host cpu count.
    let timestamp = args
        .iter()
        .position(|a| a == "--timestamp")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let rev = git_rev();
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let (sizes, runs): (&[usize], u32) = if quick {
        (&[16, 64], 2)
    } else {
        (&[16, 64, 256], 10)
    };

    let batched = LinkKind::Batched {
        max_batch: 8,
        capacity: 32,
        timing: BusTiming::LengthOnly,
    };
    let beats = LinkKind::Batched {
        max_batch: 8,
        capacity: 32,
        timing: BusTiming::PayloadBeats,
    };
    println!("host available parallelism: {cpus} (rev {rev})");
    let mut records = vec![];
    for &n in sizes {
        records.push(measure(
            "many_units_per_unit",
            n,
            "off",
            None,
            timing_label(&LinkKind::Handshake),
            runs,
            200,
            || {
                scenario(
                    n,
                    Topology::Pipeline,
                    SchedulingConfig::legacy(),
                    LinkKind::Handshake,
                )
            },
        ));
        records.push(measure(
            "many_units_immediate",
            n,
            "off",
            None,
            timing_label(&batched),
            runs,
            200,
            || {
                scenario(
                    n,
                    Topology::Pipeline,
                    SchedulingConfig::immediate(),
                    batched,
                )
            },
        ));
        records.push(measure(
            "many_units_sharded",
            n,
            "off",
            None,
            timing_label(&batched),
            runs,
            200,
            || scenario(n, Topology::Pipeline, SchedulingConfig::sharded(), batched),
        ));
        // Cycle-accurate payload beats on the same scenario: the cost
        // of timing fidelity, trackable against the length-only row.
        records.push(measure(
            "many_units_sharded",
            n,
            "off",
            None,
            timing_label(&beats),
            runs,
            200,
            || scenario(n, Topology::Pipeline, SchedulingConfig::sharded(), beats),
        ));
        // The threaded step phase on the same scenario. On multi-core
        // hosts large stepping sets fan out across the persistent
        // worker pool; on a single-CPU host this row documents the
        // coordination overhead instead (workers time-slice one core).
        let threaded = SchedulingConfig::sharded().with_threads(4);
        let (par, threads) = parallelism_fields(&threaded);
        records.push(measure(
            "many_units_sharded",
            n,
            par,
            threads,
            timing_label(&batched),
            runs,
            200,
            move || scenario(n, Topology::Pipeline, threaded, batched),
        ));
        records.push(measure(
            "blocked_per_unit",
            n,
            "off",
            None,
            timing_label(&LinkKind::Handshake),
            runs,
            200,
            || {
                scenario(
                    n,
                    Topology::Starved,
                    SchedulingConfig::legacy(),
                    LinkKind::Handshake,
                )
            },
        ));
        records.push(measure(
            "blocked_sharded",
            n,
            "off",
            None,
            timing_label(&LinkKind::Handshake),
            runs,
            200,
            || {
                scenario(
                    n,
                    Topology::Starved,
                    SchedulingConfig::sharded(),
                    LinkKind::Handshake,
                )
            },
        ));
    }

    // Batched-heavy journal parity: a star of producers funneling a
    // deep value stream into one hub over batched links — the workload
    // where commit-phase batched calls dominate. The deferred
    // scheduler's queue-op journal must hold parity or better against
    // immediate call application.
    {
        let heavy = LinkKind::Batched {
            max_batch: 16,
            capacity: 64,
            timing: BusTiming::LengthOnly,
        };
        let n = if quick { 8 } else { 16 };
        let build = move |scheduling| {
            build_scenario(&ScenarioSpec {
                units: n,
                topology: Topology::Star,
                values_per_link: 16,
                link: heavy,
                config: CosimConfig::default(),
                scheduling,
                trace: false,
                domains: Default::default(),
            })
            .expect("scenario builds")
        };
        records.push(measure(
            "batched_heavy_immediate",
            n,
            "off",
            None,
            timing_label(&heavy),
            runs,
            200,
            move || build(SchedulingConfig::immediate()),
        ));
        records.push(measure(
            "batched_heavy_deferred",
            n,
            "off",
            None,
            timing_label(&heavy),
            runs,
            200,
            move || build(SchedulingConfig::sharded()),
        ));
    }

    // Beat storm: N PayloadBeats links all streaming concurrently,
    // distilled to the bus traffic the link units emit — every link
    // keeps a full pre-scheduled DATA beat train in flight (exactly the
    // timed drives `complete_stream` lands per winning batch) and
    // re-arms the moment it drains. The steady state holds N × 63 live
    // entries, the worst case for the retired binary heaps (O(log H)
    // sifts over a spilled-out-of-cache arena) and the timer wheel's
    // target regime (O(1) slot filings, whole-slot drains). Module
    // bodies are deliberately trivial so queue operations dominate the
    // wall clock and the backend ablation is signal, not noise. Each
    // size runs on both queue backends; the ablation swaps the kernel's
    // backend through the canonical-capture migration hook, so the two
    // rows simulate the identical schedule.
    for &n in sizes {
        let mut largest: Option<(u128, u128)> = None;
        let mut pair = vec![];
        for queue in ["wheel", "heap"] {
            let heap = queue == "heap";
            // Warm-up.
            beat_storm(n, heap);
            let mut samples: Vec<u128> = (0..runs).map(|_| beat_storm(n, heap)).collect();
            samples.sort_unstable();
            let ns_per_run = samples.iter().sum::<u128>() / u128::from(runs.max(1));
            let p50_ns = samples[samples.len() / 2];
            let p99_ns = samples[(samples.len() * 99 / 100).min(samples.len() - 1)];
            println!(
                "{:<24} N={n:<4} par={:<8} bus={:<13} {ns_per_run:>12} ns/run  \
                 p50={p50_ns} p99={p99_ns}  ({runs} runs, {queue})",
                "beat_storm", "off", "payload_beats",
            );
            pair.push(p50_ns);
            records.push(Record {
                scenario: "beat_storm",
                n,
                parallelism: "off",
                threads: None,
                bus_timing: "payload_beats",
                queue: Some(queue),
                variant: None,
                rollback_rate: None,
                ns_per_run,
                p50_ns,
                p99_ns,
                runs,
            });
        }
        if n == sizes[sizes.len() - 1] {
            largest = Some((pair[0], pair[1]));
        }
        if let Some((wheel_p50, heap_p50)) = largest {
            println!(
                "beat_storm N={n}: wheel p50 {wheel_p50} ns vs heap p50 {heap_p50} ns ({:+.1}%)",
                (wheel_p50 as f64 / heap_p50 as f64 - 1.0) * 100.0
            );
            // Quick CI smoke runs on tiny sizes where noise can
            // dominate; the full sweep gates the wheel's win at the
            // largest N.
            if !quick {
                assert!(
                    wheel_p50 < heap_p50,
                    "the timer wheel must beat the heap baseline at the largest beat_storm \
                     size: wheel p50 {wheel_p50} ns vs heap p50 {heap_p50} ns"
                );
            }
        }
    }

    // Trace-heavy ring: every module records an interned trace entry
    // per activation (so nothing ever parks) and the columnar log
    // spills full segments to a sink — the steady-state cost of the
    // trace subsystem rides this row. Mirrors the counting-allocator
    // gate's scenario (`tests/alloc.rs`), which pins the same regime
    // to zero heap allocations per warm cycle.
    {
        let n = if quick { 8 } else { 16 };
        records.push(measure(
            "trace_heavy",
            n,
            "off",
            None,
            timing_label(&batched),
            runs,
            200,
            move || {
                let s = build_scenario(&ScenarioSpec {
                    units: n,
                    topology: Topology::Ring,
                    values_per_link: 1_000_000,
                    link: batched,
                    config: CosimConfig::default(),
                    scheduling: SchedulingConfig::sharded(),
                    trace: true,
                    domains: Default::default(),
                })
                .expect("scenario builds");
                s.cosim
                    .trace_handle()
                    .borrow_mut()
                    .set_spill(Box::new(std::io::sink()));
                s
            },
        ));
    }

    // Thread-scaling sweep: a wide pipeline with parking off, so the
    // whole module set speculates every cycle — the allocation-free
    // step phase's target regime. `threads = 1` is the direct
    // (non-speculative) baseline; on multi-core hosts the higher rows
    // should beat it, on a single-CPU host they document the
    // work-stealing overhead. The first threads >= 2 run doubles as the
    // scratch-arena smoke gate: ScratchStats must report shell reuse,
    // or speculation has silently fallen back to allocating.
    {
        let (sn, thread_counts, sruns): (usize, &[usize], u32) = if quick {
            (256, &[1, 2], 2)
        } else {
            (1024, &[1, 2, 4, 8], 3)
        };
        let mut reuse_checked = false;
        for &t in thread_counts {
            let cfg = SchedulingConfig {
                park_blocked: false,
                ..SchedulingConfig::sharded().with_threads(t)
            };
            records.push(measure(
                "step_scaling",
                sn,
                if t == 1 { "off" } else { "threads" },
                Some(t),
                timing_label(&batched),
                sruns,
                50,
                move || scenario(sn, Topology::Pipeline, cfg, batched),
            ));
            if t >= 2 && !reuse_checked {
                reuse_checked = true;
                let mut s = scenario(sn, Topology::Pipeline, cfg, batched);
                s.cosim.run_for(Duration::from_us(50)).expect("runs");
                let stats = s.cosim.shard_stats();
                assert!(
                    stats.scratch.arena_reuses > 0,
                    "speculative step phase must recycle scratch shells: {:?}",
                    stats.scratch
                );
                println!(
                    "arena check: {} acquires, {} reuses, {} chunks, {} steals, {} B high water",
                    stats.scratch.arena_acquires,
                    stats.scratch.arena_reuses,
                    stats.scratch.chunks,
                    stats.scratch.steals,
                    stats.scratch.bytes_high_water
                );
            }
        }
    }

    // Checkpoint/restore vs re-run-from-zero: branching a what-if off a
    // warm backplane must beat rebuilding it and replaying the prefix.
    // One backplane is checkpointed mid-run; the `snapshot_restore`
    // rows time restore + tail, the `snapshot_rerun` rows time the
    // equivalent prefix + tail from a cold start. Each restored run is
    // also checked trace-identical to the original continuation, so the
    // speed-up is of a *bit-identical* replay, not an approximation.
    {
        let n = if quick { 64 } else { 256 };
        let (mid_us, tail_us) = (150u64, 50u64);
        let build = move || scenario(n, Topology::Pipeline, SchedulingConfig::sharded(), batched);
        let mut warm = build();
        warm.cosim.run_for(Duration::from_us(mid_us)).expect("runs");
        let capture_start = Instant::now();
        let snap = warm.cosim.snapshot();
        let capture_ns = capture_start.elapsed().as_nanos();
        warm.cosim
            .run_for(Duration::from_us(tail_us))
            .expect("runs");
        let want_trace = warm.cosim.trace_log();
        println!(
            "snapshot capture: {capture_ns} ns for {} modules at t={:?}",
            snap.module_count(),
            snap.at()
        );

        let mut restore_samples = Vec::with_capacity(runs as usize);
        for _ in 0..runs {
            let start = Instant::now();
            warm.cosim.restore(&snap).expect("restore");
            warm.cosim
                .run_for(Duration::from_us(tail_us))
                .expect("runs");
            restore_samples.push(start.elapsed().as_nanos());
            assert_eq!(
                warm.cosim.trace_log(),
                want_trace,
                "restored replay must be bit-identical to the original run"
            );
        }
        let mut rerun_samples = Vec::with_capacity(runs as usize);
        for _ in 0..runs {
            let mut s = build();
            let start = Instant::now();
            s.cosim
                .run_for(Duration::from_us(mid_us + tail_us))
                .expect("runs");
            rerun_samples.push(start.elapsed().as_nanos());
        }
        let (restore_mean, restore_p50, restore_p99) = summarize3(restore_samples);
        let (rerun_mean, rerun_p50, rerun_p99) = summarize3(rerun_samples);
        for (name, mean, p50, p99) in [
            ("snapshot_restore", restore_mean, restore_p50, restore_p99),
            ("snapshot_rerun", rerun_mean, rerun_p50, rerun_p99),
        ] {
            println!(
                "{name:<24} N={n:<4} par=off      bus={:<13} {mean:>12} ns/run  \
                 p50={p50} p99={p99}  ({runs} runs)",
                timing_label(&batched)
            );
            records.push(Record {
                scenario: name,
                n,
                parallelism: "off",
                threads: None,
                bus_timing: timing_label(&batched),
                queue: None,
                variant: None,
                rollback_rate: None,
                ns_per_run: mean,
                p50_ns: p50,
                p99_ns: p99,
                runs,
            });
        }
        assert!(
            restore_p50 < rerun_p50,
            "restore + {tail_us}us tail ({restore_p50} ns p50) must beat re-running \
             {}us from zero ({rerun_p50} ns p50)",
            mid_us + tail_us
        );
    }

    // Multi-rate clock domains: the same batched ring, uniform vs half
    // of it in a quarter-rate domain. Slow-domain members take one
    // activation edge per four base edges (and the units they feed
    // pump accordingly), so the rate split must be measurably cheaper
    // than the uniform run — the whole point of domain-aware clocking.
    {
        use cosma_cosim::scenario::DomainsSpec;
        let n = if quick { 8 } else { 16 };
        let build = move |domains| {
            build_scenario(&ScenarioSpec {
                units: n,
                topology: Topology::Ring,
                values_per_link: 1_000_000,
                link: batched,
                config: CosimConfig::default(),
                scheduling: SchedulingConfig::sharded(),
                trace: false,
                domains,
            })
            .expect("scenario builds")
        };
        let mut pair = vec![];
        for (variant, domains) in [
            ("uniform", DomainsSpec::default()),
            (
                "slow_1_4",
                DomainsSpec {
                    ratio: (4, 1),
                    slow_links: n / 2,
                },
            ),
        ] {
            let mut warm = build(domains);
            warm.cosim.run_for(Duration::from_us(200)).expect("runs");
            let samples: Vec<u128> = (0..runs)
                .map(|_| {
                    let mut s = build(domains);
                    let start = Instant::now();
                    s.cosim.run_for(Duration::from_us(200)).expect("runs");
                    start.elapsed().as_nanos()
                })
                .collect();
            let (mean, p50, p99) = summarize3(samples);
            println!(
                "{:<24} N={n:<4} par=off      bus={:<13} {mean:>12} ns/run  \
                 p50={p50} p99={p99}  ({runs} runs, {variant})",
                "multi_rate",
                timing_label(&batched)
            );
            pair.push(p50);
            records.push(Record {
                scenario: "multi_rate",
                n,
                parallelism: "off",
                threads: None,
                bus_timing: timing_label(&batched),
                queue: None,
                variant: Some(variant),
                rollback_rate: None,
                ns_per_run: mean,
                p50_ns: p50,
                p99_ns: p99,
                runs,
            });
        }
        let (uniform_p50, slow_p50) = (pair[0], pair[1]);
        println!(
            "multi_rate N={n}: uniform p50 {uniform_p50} ns vs slow_1_4 p50 {slow_p50} ns \
             ({:+.1}%)",
            (slow_p50 as f64 / uniform_p50 as f64 - 1.0) * 100.0
        );
        // Quick CI smoke runs on tiny sizes where noise can dominate;
        // the full sweep gates the rate split's win.
        if !quick {
            assert!(
                slow_p50 < uniform_p50,
                "a quarter-rate half of the ring must be measurably cheaper than the \
                 uniform run: slow p50 {slow_p50} ns vs uniform p50 {uniform_p50} ns"
            );
        }
    }

    // Partitioned co-simulation: the same scenario run collapsed in one
    // backplane vs cut into two optimistically-synchronized partitions.
    // The split row pays snapshotting, staleness scans and occasional
    // rollbacks per quantum; its `rollback_rate` column (rollbacks per
    // committed quantum) tracks how often speculation loses.
    {
        use cosma_cosim::scenario::{build_collapsed, build_partitioned, PartitionsSpec};
        let n = if quick { 8 } else { 16 };
        let spec = ScenarioSpec {
            units: n,
            topology: Topology::Ring,
            values_per_link: 1_000_000,
            link: batched,
            config: CosimConfig::default(),
            scheduling: SchedulingConfig::sharded(),
            trace: false,
            domains: Default::default(),
        };
        let pspec = PartitionsSpec {
            count: 2,
            latency: Duration::from_ns(200),
        };
        let quantum = Duration::from_us(2);
        let sim_us = 200u64;
        let collapsed: Vec<u128> = {
            let mut warm = build_collapsed(&spec, &pspec).expect("collapsed builds");
            warm.cosim.run_for(Duration::from_us(sim_us)).expect("runs");
            (0..runs)
                .map(|_| {
                    let mut s = build_collapsed(&spec, &pspec).expect("collapsed builds");
                    let start = Instant::now();
                    s.cosim.run_for(Duration::from_us(sim_us)).expect("runs");
                    start.elapsed().as_nanos()
                })
                .collect()
        };
        let mut rollback_rate = 0.0;
        let split: Vec<u128> = {
            let mut warm = build_partitioned(&spec, &pspec).expect("partitioned builds");
            warm.run_for(Duration::from_us(sim_us), quantum)
                .expect("runs");
            (0..runs)
                .map(|_| {
                    let mut s = build_partitioned(&spec, &pspec).expect("partitioned builds");
                    let start = Instant::now();
                    s.run_for(Duration::from_us(sim_us), quantum).expect("runs");
                    let ns = start.elapsed().as_nanos();
                    let stats = s.orch.stats();
                    rollback_rate = stats.rollbacks as f64 / stats.quanta_committed.max(1) as f64;
                    ns
                })
                .collect()
        };
        for (variant, samples, rate) in [
            ("collapsed", collapsed, None),
            ("split_2", split, Some(rollback_rate)),
        ] {
            let (mean, p50, p99) = summarize3(samples);
            println!(
                "{:<24} N={n:<4} par=off      bus={:<13} {mean:>12} ns/run  \
                 p50={p50} p99={p99}  ({runs} runs, {variant}, rollback rate {:.3})",
                "partitioned",
                timing_label(&batched),
                rate.unwrap_or(0.0)
            );
            records.push(Record {
                scenario: "partitioned",
                n,
                parallelism: "off",
                threads: None,
                bus_timing: timing_label(&batched),
                queue: None,
                variant: Some(variant),
                rollback_rate: rate,
                ns_per_run: mean,
                p50_ns: p50,
                p99_ns: p99,
                runs,
            });
        }
    }

    // Sanity gate for CI: parked consumers must contribute ~zero
    // activations in the starved scenario.
    let mut s = scenario(
        sizes[sizes.len() - 1],
        Topology::Starved,
        SchedulingConfig::sharded(),
        LinkKind::Handshake,
    );
    s.cosim.run_for(Duration::from_us(200)).expect("runs");
    let stats = s.cosim.shard_stats();
    assert!(
        stats.members_parked as usize >= s.modules.len() - 3,
        "starved consumers must park: {stats:?}"
    );
    println!(
        "parking check: {} members parked, {} resumed, {} parked now",
        stats.members_parked, stats.members_resumed, stats.parked_now
    );

    let mut json = String::from("[\n");
    let timestamp_json = timestamp
        .as_deref()
        .map_or_else(|| "null".to_string(), |t| format!("\"{t}\""));
    for (i, r) in records.iter().enumerate() {
        let threads = r
            .threads
            .map_or_else(|| "null".to_string(), |t| t.to_string());
        let queue = r
            .queue
            .map_or_else(|| "null".to_string(), |q| format!("\"{q}\""));
        let variant = r
            .variant
            .map_or_else(|| "null".to_string(), |v| format!("\"{v}\""));
        let rollback_rate = r
            .rollback_rate
            .map_or_else(|| "null".to_string(), |x| format!("{x:.6}"));
        json.push_str(&format!(
            "  {{\"schema\": {}, \"scenario\": \"{}\", \"n\": {}, \"parallelism\": \"{}\", \
             \"threads\": {}, \"bus_timing\": \"{}\", \"queue\": {}, \"variant\": {}, \
             \"rollback_rate\": {}, \"ns_per_run\": {}, \
             \"p50_ns\": {}, \"p99_ns\": {}, \"runs\": {}, \"git_rev\": \"{}\", \"cpus\": {}, \
             \"timestamp\": {}}}{}\n",
            SCHEMA_VERSION,
            r.scenario,
            r.n,
            r.parallelism,
            threads,
            r.bus_timing,
            queue,
            variant,
            rollback_rate,
            r.ns_per_run,
            r.p50_ns,
            r.p99_ns,
            r.runs,
            rev,
            cpus,
            timestamp_json,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    json.push_str("]\n");
    std::fs::write(out, json).expect("write benchmark results");
    println!("wrote {out}");
}
