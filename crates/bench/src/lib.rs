//! Shared helpers for the COSMA experiment harnesses live in the
//! binaries themselves; this library crate only anchors the bench
//! targets.
