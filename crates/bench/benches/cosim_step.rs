//! Co-simulation backplane throughput: module activations per second,
//! and the many-unit scaling story (sharded+batched vs per-unit).

use cosma_comm::handshake_unit;
use cosma_core::{Expr, ModuleBuilder, ModuleKind, ServiceCall, Stmt, Type, Value};
use cosma_cosim::scenario::{build_scenario, LinkKind, Scenario, ScenarioSpec, Topology};
use cosma_cosim::{BusTiming, Cosim, CosimConfig, SchedulingConfig};
use cosma_sim::Duration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn ping_pong_cosim(pairs: usize) -> Cosim {
    let mut cosim = Cosim::new(CosimConfig::default());
    for k in 0..pairs {
        let link = cosim.add_fsm_unit(&format!("link{k}"), handshake_unit("hs", Type::INT16));
        let mut p = ModuleBuilder::new(format!("p{k}"), ModuleKind::Software);
        let done = p.var("D", Type::Bool, Value::Bool(false));
        let b = p.binding("chan", "hs");
        let s = p.state("S");
        p.actions(
            s,
            vec![Stmt::Call(ServiceCall {
                binding: b,
                service: "put".into(),
                args: vec![Expr::int(1)],
                done: Some(done),
                result: None,
            })],
        );
        p.transition(s, None, s);
        p.initial(s);
        cosim
            .add_module(&p.build().expect("ok"), &[("chan", link)])
            .expect("added");

        let mut q = ModuleBuilder::new(format!("c{k}"), ModuleKind::Hardware);
        let done = q.var("D", Type::Bool, Value::Bool(false));
        let got = q.var("G", Type::INT16, Value::Int(0));
        let b = q.binding("chan", "hs");
        let s = q.state("S");
        q.actions(
            s,
            vec![Stmt::Call(ServiceCall {
                binding: b,
                service: "get".into(),
                args: vec![],
                done: Some(done),
                result: Some(got),
            })],
        );
        q.transition(s, None, s);
        q.initial(s);
        cosim
            .add_module(&q.build().expect("ok"), &[("chan", link)])
            .expect("added");
    }
    cosim
}

/// Units instantiated but never called: with controller gating their
/// clocked steps are skipped once the protocol proves itself idle.
fn idle_units_cosim(units: usize) -> Cosim {
    let mut cosim = Cosim::new(CosimConfig::default());
    for k in 0..units {
        cosim.add_fsm_unit(&format!("quiet{k}"), handshake_unit("hs", Type::INT16));
    }
    cosim
}

fn bench_cosim(c: &mut Criterion) {
    let mut group = c.benchmark_group("cosim_step");
    for pairs in [1usize, 4, 16] {
        group.bench_with_input(
            BenchmarkId::new("ping_pong_pairs", pairs),
            &pairs,
            |b, &n| {
                b.iter_batched(
                    || ping_pong_cosim(n),
                    |mut cosim| cosim.run_for(Duration::from_us(50)).expect("runs"),
                    criterion::BatchSize::SmallInput,
                );
            },
        );
    }
    for units in [16usize, 64] {
        group.bench_with_input(BenchmarkId::new("idle_units", units), &units, |b, &n| {
            b.iter_batched(
                || idle_units_cosim(n),
                |mut cosim| cosim.run_for(Duration::from_us(50)).expect("runs"),
                criterion::BatchSize::SmallInput,
            );
        });
    }

    // The many-unit headline: an N-unit pipeline carrying a burst of
    // traffic then idling — the realistic many-unit regime. `per_unit`
    // is the PR-2-era baseline (one clocked process per unit AND per
    // module, stepped every edge, classic per-value handshakes, no
    // parking); `sharded` adds the unified activation scheduler —
    // sharded module+unit dispatch, blocked-FSM parking on completion
    // wires — plus batched bus transactions.
    fn many_units(
        n: usize,
        topology: Topology,
        scheduling: SchedulingConfig,
        link: LinkKind,
    ) -> Scenario {
        build_scenario(&ScenarioSpec {
            units: n,
            topology,
            values_per_link: 4,
            link,
            config: CosimConfig::default(),
            scheduling,
            trace: false,
            domains: Default::default(),
        })
        .expect("scenario builds")
    }
    for n in [16usize, 64, 256] {
        group.bench_with_input(BenchmarkId::new("many_units_per_unit", n), &n, |b, &n| {
            b.iter_batched(
                || {
                    many_units(
                        n,
                        Topology::Pipeline,
                        SchedulingConfig::legacy(),
                        LinkKind::Handshake,
                    )
                },
                |mut s| s.cosim.run_for(Duration::from_us(200)).expect("runs"),
                criterion::BatchSize::SmallInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("many_units_sharded", n), &n, |b, &n| {
            b.iter_batched(
                || {
                    many_units(
                        n,
                        Topology::Pipeline,
                        SchedulingConfig::sharded(),
                        LinkKind::Batched {
                            max_batch: 8,
                            capacity: 32,
                            timing: BusTiming::LengthOnly,
                        },
                    )
                },
                |mut s| s.cosim.run_for(Duration::from_us(200)).expect("runs"),
                criterion::BatchSize::SmallInput,
            );
        });
        // Cycle-accurate payload beats on the same scenario: every
        // batch additionally occupies the bus for one DATA beat per
        // value, so this row tracks the cost of timing fidelity
        // against the length-only fast path above.
        group.bench_with_input(BenchmarkId::new("payload_beats", n), &n, |b, &n| {
            b.iter_batched(
                || {
                    many_units(
                        n,
                        Topology::Pipeline,
                        SchedulingConfig::sharded(),
                        LinkKind::Batched {
                            max_batch: 8,
                            capacity: 32,
                            timing: BusTiming::PayloadBeats,
                        },
                    )
                },
                |mut s| s.cosim.run_for(Duration::from_us(200)).expect("runs"),
                criterion::BatchSize::SmallInput,
            );
        });
        // Same scenario with the step phase fanned out over the
        // persistent worker pool (wins need real cores + large active
        // sets; on a single-CPU host this tracks the overhead).
        group.bench_with_input(BenchmarkId::new("many_units_threads4", n), &n, |b, &n| {
            b.iter_batched(
                || {
                    many_units(
                        n,
                        Topology::Pipeline,
                        SchedulingConfig::sharded().with_threads(4),
                        LinkKind::Batched {
                            max_batch: 8,
                            capacity: 32,
                            timing: BusTiming::LengthOnly,
                        },
                    )
                },
                |mut s| s.cosim.run_for(Duration::from_us(200)).expect("runs"),
                criterion::BatchSize::SmallInput,
            );
        });
    }

    // Mostly-blocked consumers: N links with a consumer each but a
    // producer only on link 0 — N-1 consumers are service-blocked the
    // whole run. With parking they cost zero activations; the legacy
    // path pays one no-op wakeup per consumer per edge.
    for n in [16usize, 64, 256] {
        group.bench_with_input(BenchmarkId::new("blocked_per_unit", n), &n, |b, &n| {
            b.iter_batched(
                || {
                    many_units(
                        n,
                        Topology::Starved,
                        SchedulingConfig::legacy(),
                        LinkKind::Handshake,
                    )
                },
                |mut s| s.cosim.run_for(Duration::from_us(200)).expect("runs"),
                criterion::BatchSize::SmallInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("blocked_sharded", n), &n, |b, &n| {
            b.iter_batched(
                || {
                    many_units(
                        n,
                        Topology::Starved,
                        SchedulingConfig::sharded(),
                        LinkKind::Handshake,
                    )
                },
                // Parking itself is asserted by the scenario test
                // starved_consumers_park_at_zero_activation_cost; the
                // timed routine matches blocked_per_unit exactly.
                |mut s| s.cosim.run_for(Duration::from_us(200)).expect("runs"),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_cosim
}
criterion_main!(benches);
