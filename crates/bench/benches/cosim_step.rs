//! Co-simulation backplane throughput: module activations per second,
//! and the many-unit scaling story (sharded+batched vs per-unit).

use cosma_comm::handshake_unit;
use cosma_core::{Expr, ModuleBuilder, ModuleKind, ServiceCall, Stmt, Type, Value};
use cosma_cosim::scenario::{build_scenario, LinkKind, Scenario, ScenarioSpec, Topology};
use cosma_cosim::{Cosim, CosimConfig, UnitScheduling};
use cosma_sim::Duration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn ping_pong_cosim(pairs: usize) -> Cosim {
    let mut cosim = Cosim::new(CosimConfig::default());
    for k in 0..pairs {
        let link = cosim.add_fsm_unit(&format!("link{k}"), handshake_unit("hs", Type::INT16));
        let mut p = ModuleBuilder::new(format!("p{k}"), ModuleKind::Software);
        let done = p.var("D", Type::Bool, Value::Bool(false));
        let b = p.binding("chan", "hs");
        let s = p.state("S");
        p.actions(
            s,
            vec![Stmt::Call(ServiceCall {
                binding: b,
                service: "put".into(),
                args: vec![Expr::int(1)],
                done: Some(done),
                result: None,
            })],
        );
        p.transition(s, None, s);
        p.initial(s);
        cosim
            .add_module(&p.build().expect("ok"), &[("chan", link)])
            .expect("added");

        let mut q = ModuleBuilder::new(format!("c{k}"), ModuleKind::Hardware);
        let done = q.var("D", Type::Bool, Value::Bool(false));
        let got = q.var("G", Type::INT16, Value::Int(0));
        let b = q.binding("chan", "hs");
        let s = q.state("S");
        q.actions(
            s,
            vec![Stmt::Call(ServiceCall {
                binding: b,
                service: "get".into(),
                args: vec![],
                done: Some(done),
                result: Some(got),
            })],
        );
        q.transition(s, None, s);
        q.initial(s);
        cosim
            .add_module(&q.build().expect("ok"), &[("chan", link)])
            .expect("added");
    }
    cosim
}

/// Units instantiated but never called: with controller gating their
/// clocked steps are skipped once the protocol proves itself idle.
fn idle_units_cosim(units: usize) -> Cosim {
    let mut cosim = Cosim::new(CosimConfig::default());
    for k in 0..units {
        cosim.add_fsm_unit(&format!("quiet{k}"), handshake_unit("hs", Type::INT16));
    }
    cosim
}

fn bench_cosim(c: &mut Criterion) {
    let mut group = c.benchmark_group("cosim_step");
    for pairs in [1usize, 4, 16] {
        group.bench_with_input(
            BenchmarkId::new("ping_pong_pairs", pairs),
            &pairs,
            |b, &n| {
                b.iter_batched(
                    || ping_pong_cosim(n),
                    |mut cosim| cosim.run_for(Duration::from_us(50)).expect("runs"),
                    criterion::BatchSize::SmallInput,
                );
            },
        );
    }
    for units in [16usize, 64] {
        group.bench_with_input(BenchmarkId::new("idle_units", units), &units, |b, &n| {
            b.iter_batched(
                || idle_units_cosim(n),
                |mut cosim| cosim.run_for(Duration::from_us(50)).expect("runs"),
                criterion::BatchSize::SmallInput,
            );
        });
    }

    // The PR 2 headline: an N-unit pipeline carrying a burst of traffic
    // then idling — the realistic many-unit regime. `per_unit` is the
    // old stepping path (one clocked process per unit, classic per-value
    // handshakes); `sharded` adds per-shard activation sets with
    // dormancy plus batched bus transactions.
    fn many_units(n: usize, scheduling: UnitScheduling, link: LinkKind) -> Scenario {
        build_scenario(&ScenarioSpec {
            units: n,
            topology: Topology::Pipeline,
            values_per_link: 4,
            link,
            config: CosimConfig::default(),
            scheduling,
        })
        .expect("scenario builds")
    }
    for n in [16usize, 64, 256] {
        group.bench_with_input(BenchmarkId::new("many_units_per_unit", n), &n, |b, &n| {
            b.iter_batched(
                || many_units(n, UnitScheduling::PerUnit, LinkKind::Handshake),
                |mut s| s.cosim.run_for(Duration::from_us(200)).expect("runs"),
                criterion::BatchSize::SmallInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("many_units_sharded", n), &n, |b, &n| {
            b.iter_batched(
                || {
                    many_units(
                        n,
                        UnitScheduling::Sharded { shard_size: 16 },
                        LinkKind::Batched {
                            max_batch: 8,
                            capacity: 32,
                        },
                    )
                },
                |mut s| s.cosim.run_for(Duration::from_us(200)).expect("runs"),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_cosim
}
criterion_main!(benches);
