//! Co-synthesis runtimes and the state-encoding ablation (area/speed
//! trade-off across binary, one-hot and gray encodings).

use cosma_motor::{
    core_module, distribution_module, motor_link_unit, position_module, swhw_link_unit,
    timer_module, MotorConfig,
};
use cosma_synth::{compile_sw, flatten_module, synthesize_hw, Encoding, IoMap};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::HashMap;

fn units() -> HashMap<String, std::sync::Arc<cosma_core::comm::CommUnitSpec>> {
    let mut m = HashMap::new();
    m.insert("swhw".to_string(), swhw_link_unit());
    m.insert("mlink".to_string(), motor_link_unit());
    m
}

fn bench_synthesis(c: &mut Criterion) {
    let cfg = MotorConfig::default();
    let mut group = c.benchmark_group("synthesis");

    group.bench_function("flatten_distribution", |b| {
        let m = distribution_module(&cfg);
        let u = units();
        b.iter(|| flatten_module(&m, &u).expect("flattens"));
    });
    group.bench_function("hw_synth_position", |b| {
        let flat = flatten_module(&position_module(&cfg), &units()).expect("flattens");
        b.iter(|| synthesize_hw(&flat, Encoding::Binary).expect("synthesizes"));
    });
    group.bench_function("sw_synth_distribution", |b| {
        let flat = flatten_module(&distribution_module(&cfg), &units()).expect("flattens");
        let io = IoMap::for_module(0x300, &flat);
        b.iter(|| compile_sw(&flat, &io).expect("compiles"));
    });
    for enc in Encoding::ALL {
        group.bench_with_input(
            BenchmarkId::new("encoding_sweep_timer", enc.to_string()),
            &enc,
            |b, &enc| {
                let flat = flatten_module(&timer_module(&cfg), &units()).expect("flattens");
                b.iter(|| synthesize_hw(&flat, enc).expect("synthesizes"));
            },
        );
    }
    group.finish();

    // Print the encoding ablation table (area/depth/fmax per encoding).
    println!("\nencoding ablation (Speed Control units, flattened):");
    println!(
        "{:<14} {:>9} {:>7} {:>6} {:>7} {:>9}",
        "module", "encoding", "LUTs", "FFs", "depth", "fmax"
    );
    for module in [position_module(&cfg), core_module(), timer_module(&cfg)] {
        let flat = flatten_module(&module, &units()).expect("flattens");
        for enc in Encoding::ALL {
            let (_, r) = synthesize_hw(&flat, enc).expect("synthesizes");
            println!(
                "{:<14} {:>9} {:>7} {:>6} {:>7} {:>7.1}MHz",
                r.module,
                enc.to_string(),
                r.tech.luts,
                r.tech.ffs,
                r.tech.depth,
                r.tech.fmax_mhz
            );
        }
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_synthesis
}
criterion_main!(benches);
