//! MC16 instruction-set simulator throughput.

use cosma_isa::{assemble, Cpu, NullBus};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_iss(c: &mut Criterion) {
    let mut group = c.benchmark_group("isa_iss");

    // A pure-ALU loop.
    let alu = assemble(
        "LDI r0, 0\nLDI r1, 1000\nloop: ADD r0, r1\nXOR r0, r1\nADDI r1, -1\nCMPI r1, 0\nJNZ loop\nHLT\n",
    )
    .expect("assembles");
    group.bench_function("alu_loop_1k", |b| {
        b.iter_batched(
            || {
                let mut cpu = Cpu::new();
                cpu.load_image(&alu);
                cpu
            },
            |mut cpu| cpu.run(&mut NullBus, 1_000_000).expect("runs"),
            criterion::BatchSize::SmallInput,
        );
    });

    // A memory-heavy loop.
    let mem = assemble(
        "LDI r2, 0x4000\nLDI r1, 500\nloop: LD r0, [0x4000]\nADDI r0, 1\nST [0x4000], r0\nADDI r1, -1\nCMPI r1, 0\nJNZ loop\nHLT\n",
    )
    .expect("assembles");
    group.bench_function("mem_loop_500", |b| {
        b.iter_batched(
            || {
                let mut cpu = Cpu::new();
                cpu.load_image(&mem);
                cpu
            },
            |mut cpu| cpu.run(&mut NullBus, 1_000_000).expect("runs"),
            criterion::BatchSize::SmallInput,
        );
    });

    // Port-I/O polling (the synthesized communication pattern).
    let io = assemble(
        "LDI r1, 300\nloop: IN r0, 0x300\nOUT 0x301, r0\nADDI r1, -1\nCMPI r1, 0\nJNZ loop\nHLT\n",
    )
    .expect("assembles");
    group.bench_function("io_loop_300", |b| {
        b.iter_batched(
            || {
                let mut cpu = Cpu::new();
                cpu.load_image(&io);
                cpu
            },
            |mut cpu| cpu.run(&mut NullBus, 1_000_000).expect("runs"),
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_iss
}
criterion_main!(benches);
