//! Discrete-event kernel throughput: events/second as the design scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cosma_core::{Type, Value};
use cosma_sim::{Duration, FnProcess, Simulator, Wait};

/// Builds a simulator with `n` clocked counter processes on one clock.
fn build(n: usize) -> Simulator {
    let mut sim = Simulator::new();
    let clk = sim.add_bit("CLK");
    sim.add_clock("gen", clk, Duration::from_ns(100));
    for i in 0..n {
        let q = sim.add_signal(format!("Q{i}"), Type::INT16, Value::Int(0));
        sim.add_process(
            format!("ctr{i}"),
            FnProcess::new(move |ctx| {
                if ctx.rose(clk) {
                    let v = ctx.read_int(q);
                    ctx.drive(q, Value::Int(v + 1));
                }
                Wait::Event(vec![clk])
            }),
        );
    }
    sim
}

fn bench_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_kernel");
    for n in [4usize, 16, 64] {
        group.bench_with_input(BenchmarkId::new("counters", n), &n, |b, &n| {
            b.iter_batched(
                || build(n),
                |mut sim| sim.run_for(Duration::from_us(100)).expect("runs"),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    // Delta-cycle chains: combinational depth inside one instant.
    for depth in [8usize, 64] {
        group.bench_with_input(BenchmarkId::new("delta_chain", depth), &depth, |b, &depth| {
            b.iter_batched(
                || {
                    let mut sim = Simulator::new();
                    let sigs: Vec<_> =
                        (0..=depth).map(|i| sim.add_bit(format!("S{i}"))).collect();
                    for i in 0..depth {
                        let a = sigs[i];
                        let z = sigs[i + 1];
                        sim.add_process(
                            format!("inv{i}"),
                            FnProcess::new(move |ctx| {
                                let v = ctx.read_bit(a);
                                ctx.drive(z, Value::Bit(!v));
                                Wait::Event(vec![a])
                            }),
                        );
                    }
                    let head = sigs[0];
                    sim.add_clock("gen", head, Duration::from_ns(100));
                    sim
                },
                |mut sim| sim.run_for(Duration::from_us(10)).expect("runs"),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_kernel
}
criterion_main!(benches);
