//! Discrete-event kernel throughput: events/second as the design scales.

use cosma_core::{Type, Value};
use cosma_sim::{Duration, FnProcess, Simulator, Wait};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Builds a simulator with `n` clocked counter processes on one clock.
fn build(n: usize) -> Simulator {
    let mut sim = Simulator::new();
    let clk = sim.add_bit("CLK");
    sim.add_clock("gen", clk, Duration::from_ns(100));
    for i in 0..n {
        let q = sim.add_signal(format!("Q{i}"), Type::INT16, Value::Int(0));
        sim.add_process(
            format!("ctr{i}"),
            FnProcess::new(move |ctx| {
                if ctx.rose(clk) {
                    let v = ctx.read_int(q);
                    ctx.drive(q, Value::Int(v + 1));
                }
                Wait::Event(vec![clk])
            }),
        );
    }
    sim
}

fn bench_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_kernel");
    for n in [4usize, 16, 64] {
        group.bench_with_input(BenchmarkId::new("counters", n), &n, |b, &n| {
            b.iter_batched(
                || build(n),
                |mut sim| sim.run_for(Duration::from_us(100)).expect("runs"),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    // Sparse wakeups: many processes, one active signal. The inverted
    // sensitivity index makes per-delta cost proportional to the active
    // signal's watchers, not the process count.
    for n in [256usize, 1024, 4096] {
        group.bench_with_input(BenchmarkId::new("sparse_wakeup", n), &n, |b, &n| {
            b.iter_batched(
                || {
                    let mut sim = Simulator::new();
                    let clk = sim.add_bit("CLK");
                    sim.add_clock("gen", clk, Duration::from_ns(100));
                    let q = sim.add_signal("Q", Type::INT16, Value::Int(0));
                    sim.add_process(
                        "ctr",
                        FnProcess::new(move |ctx| {
                            if ctx.rose(clk) {
                                let v = ctx.read_int(q);
                                ctx.drive(q, Value::Int(v + 1));
                            }
                            Wait::Event(vec![clk])
                        }),
                    );
                    for i in 0..n {
                        let quiet = sim.add_bit(format!("QUIET{i}"));
                        sim.add_process(
                            format!("idle{i}"),
                            FnProcess::new(move |_ctx| Wait::Event(vec![quiet])),
                        );
                    }
                    sim
                },
                |mut sim| sim.run_for(Duration::from_us(100)).expect("runs"),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    // Ablation: the identical sparse workload on the pre-index full-scan
    // reference kernel (the seed's scheduling core), for before/after
    // comparison in the same harness.
    for n in [256usize, 1024, 4096] {
        group.bench_with_input(
            BenchmarkId::new("sparse_wakeup_fullscan_ref", n),
            &n,
            |b, &n| {
                b.iter_batched(
                    || {
                        use cosma_sim::reference::RefSimulator;
                        let mut sim = RefSimulator::new();
                        let clk = sim.add_bit("CLK");
                        sim.add_clock(clk, Duration::from_ns(100));
                        let q = sim.add_signal("Q", Type::INT16, Value::Int(0));
                        sim.add_process(FnProcess::new(move |ctx| {
                            if ctx.rose(clk) {
                                let v = ctx.read_int(q);
                                ctx.drive(q, Value::Int(v + 1));
                            }
                            Wait::Event(vec![clk])
                        }));
                        for i in 0..n {
                            let quiet = sim.add_bit(format!("QUIET{i}"));
                            sim.add_process(FnProcess::new(move |_ctx| Wait::Event(vec![quiet])));
                        }
                        sim
                    },
                    |mut sim| sim.run_for(Duration::from_us(100)).expect("runs"),
                    criterion::BatchSize::SmallInput,
                );
            },
        );
    }
    // Timer storms: many independent `wait for` processes exercising the
    // heap-based timer queue with lazy cancellation.
    for n in [64usize, 512] {
        group.bench_with_input(BenchmarkId::new("timer_storm", n), &n, |b, &n| {
            b.iter_batched(
                || {
                    let mut sim = Simulator::new();
                    for i in 0..n {
                        let t = sim.add_signal(format!("T{i}"), Type::INT16, Value::Int(0));
                        let period = Duration::from_ns(7 + (i as u64 % 13) * 3);
                        sim.add_process(
                            format!("tick{i}"),
                            FnProcess::new(move |ctx| {
                                let v = ctx.read_int(t);
                                ctx.drive(t, Value::Int(v + 1));
                                Wait::Timeout(period)
                            }),
                        );
                    }
                    sim
                },
                |mut sim| sim.run_for(Duration::from_us(10)).expect("runs"),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    // Delta-cycle chains: combinational depth inside one instant.
    for depth in [8usize, 64] {
        group.bench_with_input(
            BenchmarkId::new("delta_chain", depth),
            &depth,
            |b, &depth| {
                b.iter_batched(
                    || {
                        let mut sim = Simulator::new();
                        let sigs: Vec<_> =
                            (0..=depth).map(|i| sim.add_bit(format!("S{i}"))).collect();
                        for i in 0..depth {
                            let a = sigs[i];
                            let z = sigs[i + 1];
                            sim.add_process(
                                format!("inv{i}"),
                                FnProcess::new(move |ctx| {
                                    let v = ctx.read_bit(a);
                                    ctx.drive(z, Value::Bit(!v));
                                    Wait::Event(vec![a])
                                }),
                            );
                        }
                        let head = sigs[0];
                        sim.add_clock("gen", head, Duration::from_ns(100));
                        sim
                    },
                    |mut sim| sim.run_for(Duration::from_us(10)).expect("runs"),
                    criterion::BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_kernel
}
criterion_main!(benches);
