//! Communication-scheme comparison: activations per delivered message and
//! wall-clock throughput of the library's units — the quantitative face
//! of the paper's "wide range of communication schemes".

use cosma_comm::{
    handshake_unit, shared_reg_unit, BatchedLink, CallerId, FifoChannel, LocalWires, Mailbox,
    StandaloneUnit,
};
use cosma_core::{Type, Value};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Pushes `n` messages through a unit with a `put`-like and a `get`-like
/// service, returning the number of activations used.
fn transfer(unit: &mut StandaloneUnit, put: &str, get: &str, n: i64) -> u64 {
    let p = CallerId(1);
    let c = CallerId(2);
    let mut sent = 0;
    let mut recv = 0;
    let mut activations = 0;
    while recv < n {
        activations += 1;
        if sent < n && unit.call(p, put, &[Value::Int(sent)]).expect("put").done {
            sent += 1;
        }
        if unit.call(c, get, &[]).expect("get").done {
            recv += 1;
        }
        unit.step().expect("step");
        assert!(activations < 100_000, "transfer stuck");
    }
    activations
}

/// Pushes `n` messages through a [`BatchedLink`]: producer puts, link
/// pumps, consumer gets — one wire handshake per batch instead of one
/// per value. Returns activations used.
fn transfer_batched(link: &mut BatchedLink, wires: &mut LocalWires, n: i64) -> u64 {
    let p = CallerId(1);
    let c = CallerId(2);
    let mut sent = 0;
    let mut recv = 0;
    let mut activations = 0;
    while recv < n {
        activations += 1;
        if sent < n && link.put(p, Value::Int(sent), wires).expect("put").done {
            sent += 1;
        }
        if link.get(c, wires).expect("get").done {
            recv += 1;
        }
        link.pump(wires, false).expect("pump");
        assert!(activations < 100_000, "batched transfer stuck");
    }
    activations
}

fn bench_protocols(c: &mut Criterion) {
    let mut group = c.benchmark_group("comm_protocols");
    const N: i64 = 100;

    for max_batch in [4usize, 16] {
        group.bench_function(BenchmarkId::new("batched", max_batch), |b| {
            b.iter_batched(
                || {
                    let link = BatchedLink::new("bus", Type::INT16, max_batch, 256);
                    let wires = LocalWires::new(link.spec());
                    (link, wires)
                },
                |(mut link, mut wires)| transfer_batched(&mut link, &mut wires, N),
                criterion::BatchSize::SmallInput,
            );
        });
    }

    group.bench_function(BenchmarkId::new("handshake", N), |b| {
        b.iter_batched(
            || StandaloneUnit::from_spec(handshake_unit("hs", Type::INT16)),
            |mut u| transfer(&mut u, "put", "get", N),
            criterion::BatchSize::SmallInput,
        );
    });
    for cap in [4usize, 16] {
        group.bench_function(BenchmarkId::new("fifo", cap), |b| {
            b.iter_batched(
                || StandaloneUnit::from_native(Box::new(FifoChannel::new("q", cap))),
                |mut u| transfer(&mut u, "put", "get", N),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.bench_function(BenchmarkId::new("mailbox", 4), |b| {
        b.iter_batched(
            || StandaloneUnit::from_native(Box::new(Mailbox::new("mb", 4))),
            |mut u| transfer(&mut u, "send_a", "recv_b", N),
            criterion::BatchSize::SmallInput,
        );
    });
    group.bench_function(BenchmarkId::new("shared_reg", N), |b| {
        // Lock/write/read/unlock round trips.
        b.iter_batched(
            || StandaloneUnit::from_spec(shared_reg_unit("mem", Type::INT16)),
            |mut u| {
                let a = CallerId(1);
                for i in 0..N {
                    assert!(u.call(a, "acquire", &[]).unwrap().done);
                    assert!(u.call(a, "write", &[Value::Int(i)]).unwrap().done);
                    assert!(u.call(a, "read", &[]).unwrap().done);
                    assert!(u.call(a, "release", &[]).unwrap().done);
                }
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();

    // Print the per-message activation cost table once (shape data for
    // EXPERIMENTS.md).
    let mut hs = StandaloneUnit::from_spec(handshake_unit("hs", Type::INT16));
    let a_hs = transfer(&mut hs, "put", "get", N);
    let mut f4 = StandaloneUnit::from_native(Box::new(FifoChannel::new("q", 4)));
    let a_f4 = transfer(&mut f4, "put", "get", N);
    let mut mb = StandaloneUnit::from_native(Box::new(Mailbox::new("mb", 4)));
    let a_mb = transfer(&mut mb, "send_a", "recv_b", N);
    let mut bl = BatchedLink::new("bus", Type::INT16, 16, 256);
    let mut bw = LocalWires::new(bl.spec());
    let a_bl = transfer_batched(&mut bl, &mut bw, N);
    let bs = bl.stats();
    println!("\nactivations per message (N = {N}):");
    println!("  handshake    {:.2}", a_hs as f64 / N as f64);
    println!("  fifo(4)      {:.2}", a_f4 as f64 / N as f64);
    println!("  mailbox(4)   {:.2}", a_mb as f64 / N as f64);
    println!(
        "  batched(16)  {:.2}  ({} values over {} bus transactions, max batch {})",
        a_bl as f64 / N as f64,
        bs.batched_values,
        bs.batches,
        bs.max_batch_len
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_protocols
}
criterion_main!(benches);
