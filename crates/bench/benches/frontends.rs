//! Front-end throughput: parse + elaborate the paper's module sources.

use cosma_core::ModuleKind;
use criterion::{criterion_group, criterion_main, Criterion};

const C_SRC: &str = r#"
typedef enum { Start, SetupControlCall, Step, MotorPositionCall, Next, ReadStateCall, NextStep } DIST_STATES;
DIST_STATES NextState = Start;
int POSITION = 0;
int MOTORSTATE = 0;
int DISTRIBUTION()
{
    switch (NextState) {
    case Start:            { POSITION = 0; NextState = SetupControlCall; } break;
    case SetupControlCall: { if (SetupControl()) { NextState = Step; } } break;
    case Step:             { POSITION = POSITION + 25; NextState = MotorPositionCall; } break;
    case MotorPositionCall:{ if (MotorPosition(POSITION)) { NextState = Next; } } break;
    case Next:             { NextState = ReadStateCall; } break;
    case ReadStateCall:
    { if (ReadMotorState()) { MOTORSTATE = ReadMotorState_RESULT(); NextState = NextStep; } } break;
    case NextStep:         { if (POSITION < 100) { NextState = Step; } } break;
    default:               { NextState = Start; }
    }
    return 1;
}
"#;

const VHDL_SRC: &str = r#"
entity SPEED_CONTROL is
  port ( PULSE : out std_logic );
end entity;
architecture fsm of SPEED_CONTROL is
  type POS_STATES is (SETUP, WAITPOS, SERVE);
  signal RESIDUAL : integer := 0;
  signal TARGET   : integer := 0;
begin
  POSITION : process
    variable NEXT_STATE : POS_STATES := SETUP;
    variable P : integer := 0;
  begin
    case NEXT_STATE is
      when SETUP =>
        ReadMotorConstraints;
        if READMOTORCONSTRAINTS_DONE then NEXT_STATE := WAITPOS; end if;
      when WAITPOS =>
        ReadMotorPosition;
        if READMOTORPOSITION_DONE then
          P := READMOTORPOSITION_RESULT;
          TARGET <= P;
          NEXT_STATE := SERVE;
        end if;
      when SERVE =>
        ReturnMotorState(RESIDUAL);
        if RETURNMOTORSTATE_DONE then NEXT_STATE := WAITPOS; end if;
      when others => NEXT_STATE := SETUP;
    end case;
    wait for CYCLE;
  end process;
  TIMER : process
  begin
    if RESIDUAL > 0 then
      SendMotorPulses(1);
      PULSE <= '1';
    else
      PULSE <= '0';
    end if;
    wait for CYCLE;
  end process;
end architecture;
"#;

fn bench_frontends(c: &mut Criterion) {
    let mut group = c.benchmark_group("frontends");
    let c_opts = cosma_cfront::ElabOptions {
        bindings: vec![cosma_cfront::ServiceBinding::new(
            "Distribution_Interface",
            "swhw_link",
            &["SetupControl", "MotorPosition", "ReadMotorState"],
        )],
    };
    group.bench_function("c_parse", |b| {
        b.iter(|| cosma_cfront::parse(C_SRC).expect("parses"));
    });
    group.bench_function("c_parse_elaborate", |b| {
        b.iter(|| {
            cosma_cfront::compile_module(C_SRC, "DISTRIBUTION", ModuleKind::Software, &c_opts)
                .expect("elaborates")
        });
    });
    let v_opts = cosma_vhdl::ElabOptions {
        bindings: vec![
            cosma_vhdl::ServiceBinding::new(
                "Control_Interface",
                "swhw_link",
                &[
                    "READMOTORCONSTRAINTS",
                    "READMOTORPOSITION",
                    "RETURNMOTORSTATE",
                ],
            ),
            cosma_vhdl::ServiceBinding::new(
                "Motor_Interface",
                "motor_link",
                &["READSAMPLEDDATA", "SENDMOTORPULSES"],
            ),
        ],
    };
    group.bench_function("vhdl_parse", |b| {
        b.iter(|| cosma_vhdl::parse(VHDL_SRC).expect("parses"));
    });
    group.bench_function("vhdl_parse_elaborate", |b| {
        b.iter(|| {
            cosma_vhdl::compile_entity(VHDL_SRC, "SPEED_CONTROL", &v_opts).expect("elaborates")
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_frontends
}
criterion_main!(benches);
