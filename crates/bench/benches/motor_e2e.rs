//! End-to-end motor-controller runs: wall-clock cost of completing the
//! trajectory under co-simulation vs on the synthesized board.

use cosma_board::BoardConfig;
use cosma_cosim::CosimConfig;
use cosma_motor::{build_board, build_cosim, MotorConfig};
use cosma_sim::Duration;
use cosma_synth::Encoding;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_motor(c: &mut Criterion) {
    let cfg = MotorConfig {
        segments: 2,
        segment_len: 10,
        ..MotorConfig::default()
    };
    let mut group = c.benchmark_group("motor_e2e");

    group.bench_function("cosim_trajectory", |b| {
        b.iter_batched(
            || build_cosim(&cfg, CosimConfig::default()).expect("assembles"),
            |mut sys| {
                let done = sys
                    .run_to_completion(Duration::from_us(100), 300)
                    .expect("runs");
                assert!(done);
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.bench_function("board_trajectory", |b| {
        b.iter_batched(
            || build_board(&cfg, BoardConfig::default(), Encoding::Binary).expect("assembles"),
            |mut sys| {
                let done = sys.run_to_completion(1_000_000, 400).expect("runs");
                assert!(done);
            },
            criterion::BatchSize::SmallInput,
        );
    });
    // A longer trajectory stressing the rewritten scheduling core: more
    // segments means more handshake traffic through the gated unit
    // controllers and more timer-heap churn from the activation clocks.
    let deep = MotorConfig {
        segments: 8,
        segment_len: 10,
        ..MotorConfig::default()
    };
    group.bench_function("cosim_trajectory_deep", |b| {
        b.iter_batched(
            || build_cosim(&deep, CosimConfig::default()).expect("assembles"),
            |mut sys| {
                let done = sys
                    .run_to_completion(Duration::from_us(100), 1200)
                    .expect("runs");
                assert!(done);
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.bench_function("board_assembly_only", |b| {
        b.iter(|| build_board(&cfg, BoardConfig::default(), Encoding::Binary).expect("assembles"));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_motor
}
criterion_main!(benches);
