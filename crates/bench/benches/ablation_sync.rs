//! Ablation: the paper's one-transition-per-activation synchronization
//! rule. We sweep the software activation period relative to the hardware
//! clock and measure how long the motor trajectory takes to complete in
//! *simulated* time — showing that the protocols keep the system correct
//! at any ratio (coherence) while activation rate trades simulation work
//! for reaction latency.

use cosma_cosim::CosimConfig;
use cosma_motor::{build_cosim, MotorConfig};
use cosma_sim::Duration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_sync(c: &mut Criterion) {
    let cfg = MotorConfig {
        segments: 2,
        segment_len: 10,
        ..MotorConfig::default()
    };
    let mut group = c.benchmark_group("ablation_sync");
    for ratio in [1u64, 2, 8] {
        let ccfg = CosimConfig {
            hw_cycle: Duration::from_ns(100),
            sw_cycle: Duration::from_ns(100 * ratio),
        };
        group.bench_with_input(
            BenchmarkId::new("sw_activation_ratio", ratio),
            &ccfg,
            |b, &ccfg| {
                b.iter_batched(
                    || build_cosim(&cfg, ccfg).expect("assembles"),
                    |mut sys| {
                        let done = sys
                            .run_to_completion(Duration::from_us(100), 400)
                            .expect("runs");
                        assert!(done, "must complete at any activation ratio");
                    },
                    criterion::BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();

    // Print the simulated-time table (correctness at any ratio + latency
    // cost of slower activation).
    println!("\nsw-activation ablation (simulated time to trajectory completion):");
    println!(
        "{:>8} {:>16} {:>14} {:>12}",
        "ratio", "sw activations", "sim time (us)", "events ok"
    );
    for ratio in [1u64, 2, 4, 8, 16] {
        let ccfg = CosimConfig {
            hw_cycle: Duration::from_ns(100),
            sw_cycle: Duration::from_ns(100 * ratio),
        };
        let mut sys = build_cosim(&cfg, ccfg).expect("assembles");
        let mut elapsed_us = 0u64;
        let done = loop {
            sys.cosim.run_for(Duration::from_us(20)).expect("runs");
            elapsed_us += 20;
            if sys.cosim.module_status(sys.distribution).state == "Done" {
                break true;
            }
            if elapsed_us > 4000 {
                break false;
            }
        };
        let acts = sys.cosim.module_status(sys.distribution).activations;
        let sends = sys.cosim.trace_log().with_label("send_pos").count();
        println!(
            "{ratio:>8} {acts:>16} {elapsed_us:>14} {:>12}",
            if done && sends == cfg.segments as usize {
                "YES"
            } else {
                "NO"
            }
        );
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sync
}
criterion_main!(benches);
