//! Motor adapters: bind the plant model to each platform's wire world.
//!
//! Both adapters implement the same contract at the `motor_link` unit's
//! wires — consume a pulse batch per strobe/ack handshake, execute motion
//! at the speed limit, continuously drive the sampled coordinate — and
//! both record identical `pulse` trace events, which is what makes
//! co-simulation and board runs comparable.

use crate::plant::MotorModel;
use cosma_board::{Peripheral, WireBank};
use cosma_core::{Bit, Value};
use cosma_cosim::TraceLog;
use cosma_sim::{ClockControl, Edge, ProcessId, SignalId, Simulator};
use std::cell::RefCell;
use std::rc::Rc;

/// Shared handle to a motor axis, so harnesses can inspect the plant
/// while an adapter owns the interaction.
pub type SharedMotor = Rc<RefCell<MotorModel>>;

/// Creates a shared motor axis.
#[must_use]
pub fn shared_motor(max_steps_per_tick: i64) -> SharedMotor {
    Rc::new(RefCell::new(MotorModel::new(max_steps_per_tick)))
}

/// The co-simulation adapter: a clocked kernel process on the HW clock,
/// attached to the `motor_link` unit instance's wire signals. Registers
/// through [`Simulator::add_clocked`], the same activation API the
/// backplane's own clocked bodies use.
pub struct MotorCosim {
    motor: SharedMotor,
    clk: SignalId,
    cmd: SignalId,
    strobe: SignalId,
    ack: SignalId,
    sampled: SignalId,
    trace: Rc<RefCell<TraceLog>>,
}

impl std::fmt::Debug for MotorCosim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MotorCosim")
    }
}

impl MotorCosim {
    /// Creates the adapter over the given signals (typically found by
    /// name: `<instance>.PULSE_CMD` etc.).
    #[must_use]
    pub fn new(
        motor: SharedMotor,
        clk: SignalId,
        cmd: SignalId,
        strobe: SignalId,
        ack: SignalId,
        sampled: SignalId,
        trace: Rc<RefCell<TraceLog>>,
    ) -> Self {
        MotorCosim {
            motor,
            clk,
            cmd,
            strobe,
            ack,
            sampled,
            trace,
        }
    }

    /// Registers the adapter as a rising-edge clocked process named
    /// `"motor"` and returns its id.
    pub fn attach(self, sim: &mut Simulator) -> ProcessId {
        let MotorCosim {
            motor,
            clk,
            cmd,
            strobe,
            ack,
            sampled,
            trace,
        } = self;
        sim.add_clocked("motor", clk, Edge::Rising, move |ctx| {
            let strobe_v = ctx.read_bit(strobe);
            let ack_v = ctx.read_bit(ack);
            let mut motor = motor.borrow_mut();
            if strobe_v == Bit::One && ack_v == Bit::Zero {
                let n = ctx.read_int(cmd);
                motor.command_pulses(n);
                ctx.drive(ack, Value::Bit(Bit::One));
                trace
                    .borrow_mut()
                    .record(ctx.now().as_fs(), "motor", "pulse", vec![Value::Int(n)]);
            } else if strobe_v == Bit::Zero && ack_v == Bit::One {
                ctx.drive(ack, Value::Bit(Bit::Zero));
            }
            motor.tick();
            ctx.drive(sampled, Value::Int(motor.sampled()));
            ClockControl::Continue
        })
    }
}

/// The board adapter: a fabric peripheral over wire-bank slots named
/// `<instance>_PULSE_CMD`, `<instance>_PULSE_STROBE`,
/// `<instance>_PULSE_ACK` and `<instance>_SAMPLED_POS`.
pub struct MotorPeripheral {
    motor: SharedMotor,
    prefix: String,
}

impl std::fmt::Debug for MotorPeripheral {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MotorPeripheral({})", self.prefix)
    }
}

impl MotorPeripheral {
    /// Creates the peripheral for the given unit-instance prefix (e.g.
    /// `"mlink"`).
    #[must_use]
    pub fn new(motor: SharedMotor, prefix: impl Into<String>) -> Self {
        MotorPeripheral {
            motor,
            prefix: prefix.into(),
        }
    }
}

impl Peripheral for MotorPeripheral {
    fn tick(&mut self, bank: &mut WireBank, trace: &mut TraceLog, now_fs: u64) {
        let name = |w: &str| format!("{}_{w}", self.prefix);
        let strobe = bank.read_named(&name("PULSE_STROBE")).unwrap_or(0) & 1;
        let ack = bank.read_named(&name("PULSE_ACK")).unwrap_or(0) & 1;
        let mut motor = self.motor.borrow_mut();
        if strobe == 1 && ack == 0 {
            let raw = bank.read_named(&name("PULSE_CMD")).unwrap_or(0);
            let n = i64::from(raw as u16 as i16);
            motor.command_pulses(n);
            bank.write_named(&name("PULSE_ACK"), 1);
            trace.record(now_fs, "motor", "pulse", vec![Value::Int(n)]);
        } else if strobe == 0 && ack == 1 {
            bank.write_named(&name("PULSE_ACK"), 0);
        }
        motor.tick();
        bank.write_named(&name("SAMPLED_POS"), motor.sampled() as u64 & 0xFFFF);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peripheral_handshake_and_sampling() {
        let motor = shared_motor(2);
        let mut p = MotorPeripheral::new(motor.clone(), "mlink");
        let mut bank = WireBank::new();
        bank.add("mlink_PULSE_CMD", 16, 0);
        bank.add("mlink_PULSE_STROBE", 1, 0);
        bank.add("mlink_PULSE_ACK", 1, 0);
        bank.add("mlink_SAMPLED_POS", 16, 0);
        let mut trace = TraceLog::new();

        // Present a batch of 3 with strobe.
        bank.write_named("mlink_PULSE_CMD", 3);
        bank.write_named("mlink_PULSE_STROBE", 1);
        p.tick(&mut bank, &mut trace, 0);
        assert_eq!(bank.read_named("mlink_PULSE_ACK"), Some(1));
        assert_eq!(trace.with_label("pulse").count(), 1);
        // Strobe held: no double consumption.
        p.tick(&mut bank, &mut trace, 1);
        assert_eq!(trace.with_label("pulse").count(), 1);
        // Drop strobe: ack clears; motion completes over ticks.
        bank.write_named("mlink_PULSE_STROBE", 0);
        p.tick(&mut bank, &mut trace, 2);
        assert_eq!(bank.read_named("mlink_PULSE_ACK"), Some(0));
        for t in 3..6 {
            p.tick(&mut bank, &mut trace, t);
        }
        assert_eq!(motor.borrow().position(), 3);
        assert_eq!(bank.read_named("mlink_SAMPLED_POS"), Some(3));
    }

    #[test]
    fn peripheral_negative_pulses() {
        let motor = shared_motor(5);
        let mut p = MotorPeripheral::new(motor.clone(), "mlink");
        let mut bank = WireBank::new();
        bank.add("mlink_PULSE_CMD", 16, 0);
        bank.add("mlink_PULSE_STROBE", 1, 0);
        bank.add("mlink_PULSE_ACK", 1, 0);
        bank.add("mlink_SAMPLED_POS", 16, 0);
        let mut trace = TraceLog::new();
        bank.write_named("mlink_PULSE_CMD", (-4i16 as u16).into());
        bank.write_named("mlink_PULSE_STROBE", 1);
        p.tick(&mut bank, &mut trace, 0);
        p.tick(&mut bank, &mut trace, 1);
        assert_eq!(motor.borrow().position(), -4);
        assert_eq!(
            bank.read_named("mlink_SAMPLED_POS"),
            Some((-4i16 as u16).into()),
            "two's complement on the wire"
        );
    }
}
