//! # cosma-motor — the Adaptive Motor Controller
//!
//! The paper's case study (Figures 4–8): a software *Distribution*
//! subsystem segments a travel trajectory and hands position bundles to a
//! hardware *Speed Control* subsystem (three parallel units: Position,
//! Core, Timer), which drives a motor through pulse trains.
//!
//! All inter-subsystem interaction goes through two communication units —
//! [`swhw_link_unit`] (SW/HW) and [`motor_link_unit`] (HW/HW) — so the
//! identical module descriptions assemble for co-simulation
//! ([`build_cosim`]) and co-synthesis onto the PC-AT + FPGA board
//! ([`build_board`]).
//!
//! ## Example
//!
//! ```
//! use cosma_motor::{build_cosim, MotorConfig};
//! use cosma_cosim::CosimConfig;
//! use cosma_sim::Duration;
//!
//! let cfg = MotorConfig { segments: 2, ..MotorConfig::default() };
//! let mut sys = build_cosim(&cfg, CosimConfig::default())?;
//! sys.run_to_completion(Duration::from_us(100), 100)?;
//! assert_eq!(sys.motor.borrow().position(), cfg.total_distance());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod adapters;
mod assembly;
mod modules;
mod plant;
mod units;

pub use adapters::{shared_motor, MotorCosim, MotorPeripheral, SharedMotor};
pub use assembly::{build_board, build_cosim, BoardMotorSystem, CosimMotorSystem};
pub use modules::{core_module, distribution_module, position_module, timer_module, MotorConfig};
pub use plant::MotorModel;
pub use units::{motor_link_unit, swhw_link_unit};
