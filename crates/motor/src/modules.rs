//! The Adaptive Motor Controller's behavioural modules.
//!
//! * [`distribution_module`] — the software Distribution subsystem
//!   (Figure 6): segments the travel distance and hands position bundles
//!   to the Speed Control side, one per completed motion.
//! * [`position_module`], [`core_module`], [`timer_module`] — the three
//!   parallel units of the hardware Speed Control subsystem (Figure 7),
//!   communicating through the shared signals `SC_TARGET`, `SC_RESIDUAL`
//!   and `SC_SAMPLED`.

use cosma_core::{
    BinOp, Expr, Module, ModuleBuilder, ModuleKind, PortDir, ServiceCall, Stmt, Type, Value,
};

/// Parameters of the controller and its plant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MotorConfig {
    /// Number of travel segments (the paper's "bundles of data").
    pub segments: i64,
    /// Length of each segment in position counts.
    pub segment_len: i64,
    /// Largest pulse batch per Motor_Interface handshake.
    pub max_pulse: i64,
    /// Timer cool-down cycles between batches (lets the sampled
    /// coordinate catch up; prevents overshoot oscillation).
    pub cooldown: i64,
    /// Position-unit settle cycles after posting a new target.
    pub wait_start: i64,
    /// Motor speed limit in steps per control tick.
    pub motor_speed: i64,
    /// Position tolerance for declaring a segment reached.
    pub tolerance: i64,
}

impl Default for MotorConfig {
    fn default() -> Self {
        MotorConfig {
            segments: 4,
            segment_len: 25,
            max_pulse: 2,
            cooldown: 8,
            wait_start: 6,
            motor_speed: 2,
            tolerance: 0,
        }
    }
}

impl MotorConfig {
    /// Total travel distance.
    #[must_use]
    pub fn total_distance(&self) -> i64 {
        self.segments * self.segment_len
    }
}

fn call(
    binding: cosma_core::ids::BindingId,
    service: &str,
    args: Vec<Expr>,
    done: cosma_core::ids::VarId,
    result: Option<cosma_core::ids::VarId>,
) -> Stmt {
    Stmt::Call(ServiceCall {
        binding,
        service: service.into(),
        args,
        done: Some(done),
        result,
    })
}

/// Builds the software Distribution subsystem (Figure 6b).
///
/// Binding: `swhw` (unit type `swhw_link`). Traces: `send_pos` for each
/// segment target posted, `motor_state` for each returned motor state and
/// `done` once the trajectory completes.
#[must_use]
pub fn distribution_module(cfg: &MotorConfig) -> Module {
    let mut b = ModuleBuilder::new("distribution", ModuleKind::Software);
    let position = b.var("POSITION", Type::INT16, Value::Int(0));
    let motorstate = b.var("MOTORSTATE", Type::INT16, Value::Int(0));
    let done = b.var("D", Type::Bool, Value::Bool(false));
    let swhw = b.binding("swhw", "swhw_link");

    let start = b.state("Start");
    let setup = b.state("SetupControlCall");
    let step = b.state("Step");
    let motor_pos = b.state("MotorPositionCall");
    let next = b.state("Next");
    let read_state = b.state("ReadStateCall");
    let next_step = b.state("NextStep");
    let done_st = b.state("Done");

    // Start: LoadMotorConstraints.
    b.actions(start, vec![Stmt::assign(position, Expr::int(0))]);
    b.transition(start, None, setup);
    // SetupControlCall: post the motion constraints (total distance).
    b.actions(
        setup,
        vec![call(
            swhw,
            "SetupControl",
            vec![Expr::int(cfg.total_distance())],
            done,
            None,
        )],
    );
    b.transition(setup, Some(Expr::var(done)), step);
    // Step: PositionDefinition — next segment target.
    b.actions(
        step,
        vec![
            Stmt::assign(
                position,
                Expr::var(position).add(Expr::int(cfg.segment_len)),
            ),
            Stmt::Trace("send_pos".into(), vec![Expr::var(position)]),
        ],
    );
    b.transition(step, None, motor_pos);
    // MotorPositionCall.
    b.actions(
        motor_pos,
        vec![call(
            swhw,
            "MotorPosition",
            vec![Expr::var(position)],
            done,
            None,
        )],
    );
    b.transition(motor_pos, Some(Expr::var(done)), next);
    // Next.
    b.transition(next, None, read_state);
    // ReadStateCall: wait for the Speed Control side to confirm arrival.
    b.actions(
        read_state,
        vec![call(swhw, "ReadMotorState", vec![], done, Some(motorstate))],
    );
    b.transition_with(
        read_state,
        Some(Expr::var(done)),
        vec![Stmt::Trace(
            "motor_state".into(),
            vec![Expr::var(motorstate)],
        )],
        next_step,
    );
    // NextStep: more segments?
    b.transition(
        next_step,
        Some(Expr::var(position).lt(Expr::int(cfg.total_distance()))),
        step,
    );
    b.transition_with(
        next_step,
        None,
        vec![Stmt::Trace("done".into(), vec![Expr::var(position)])],
        done_st,
    );
    b.transition(done_st, None, done_st);
    b.initial(start);
    b.build().expect("distribution module is well-formed")
}

/// Builds the Position unit of the Speed Control subsystem.
///
/// Ports (shared Speed Control signals): `SC_TARGET` (out),
/// `SC_RESIDUAL` (in), `SC_SAMPLED` (in). Binding: `swhw`.
#[must_use]
pub fn position_module(cfg: &MotorConfig) -> Module {
    let mut b = ModuleBuilder::new("sc_position", ModuleKind::Hardware);
    let target = b.port("SC_TARGET", PortDir::Out, Type::INT16);
    let residual = b.port("SC_RESIDUAL", PortDir::In, Type::INT16);
    let sampled = b.port("SC_SAMPLED", PortDir::In, Type::INT16);
    let done = b.var("D", Type::Bool, Value::Bool(false));
    let p = b.var("P", Type::INT16, Value::Int(0));
    let maxpos = b.var("MAXPOS", Type::INT16, Value::Int(0));
    let settle = b.var("W", Type::INT16, Value::Int(0));
    let swhw = b.binding("swhw", "swhw_link");

    let setup = b.state("SETUP");
    let waitpos = b.state("WAITPOS");
    let wait_start = b.state("WAIT_START");
    let moving = b.state("MOVING");
    let serve = b.state("SERVE");

    b.actions(
        setup,
        vec![call(
            swhw,
            "ReadMotorConstraints",
            vec![],
            done,
            Some(maxpos),
        )],
    );
    b.transition(setup, Some(Expr::var(done)), waitpos);

    b.actions(
        waitpos,
        vec![call(swhw, "ReadMotorPosition", vec![], done, Some(p))],
    );
    b.transition_with(
        waitpos,
        Some(Expr::var(done)),
        vec![
            Stmt::drive(target, Expr::var(p)),
            Stmt::assign(settle, Expr::int(cfg.wait_start)),
        ],
        wait_start,
    );

    b.actions(
        wait_start,
        vec![Stmt::assign(settle, Expr::var(settle).sub(Expr::int(1)))],
    );
    b.transition(wait_start, Some(Expr::var(settle).le(Expr::int(0))), moving);

    // MOVING: endposition check — |residual| <= tolerance.
    let tol = cfg.tolerance;
    b.transition(
        moving,
        Some(
            Expr::port(residual)
                .le(Expr::int(tol))
                .and(Expr::port(residual).ge(Expr::int(-tol))),
        ),
        serve,
    );

    b.actions(
        serve,
        vec![call(
            swhw,
            "ReturnMotorState",
            vec![Expr::port(sampled)],
            done,
            None,
        )],
    );
    b.transition(serve, Some(Expr::var(done)), waitpos);
    b.initial(setup);
    b.build().expect("position module is well-formed")
}

/// Builds the Core unit: samples the motor coordinate each cycle and
/// computes the residual position.
///
/// Ports: `SC_TARGET` (in), `SC_RESIDUAL` (out), `SC_SAMPLED` (out).
/// Binding: `mlink`.
#[must_use]
pub fn core_module() -> Module {
    let mut b = ModuleBuilder::new("sc_core", ModuleKind::Hardware);
    let target = b.port("SC_TARGET", PortDir::In, Type::INT16);
    let residual = b.port("SC_RESIDUAL", PortDir::Out, Type::INT16);
    let sampled_out = b.port("SC_SAMPLED", PortDir::Out, Type::INT16);
    let done = b.var("D", Type::Bool, Value::Bool(false));
    let s = b.var("S", Type::INT16, Value::Int(0));
    let mlink = b.binding("mlink", "motor_link");

    let run = b.state("RUN");
    b.actions(
        run,
        vec![
            call(mlink, "ReadSampledData", vec![], done, Some(s)),
            Stmt::if_then(
                Expr::var(done),
                vec![
                    Stmt::drive(sampled_out, Expr::var(s)),
                    Stmt::drive(residual, Expr::port(target).sub(Expr::var(s))),
                ],
            ),
        ],
    );
    b.transition(run, None, run);
    b.initial(run);
    b.build().expect("core module is well-formed")
}

/// Builds the Timer unit: converts the residual into bounded pulse
/// batches over the Motor_Interface handshake, with a cool-down so the
/// sampled coordinate catches up between batches.
///
/// Ports: `SC_RESIDUAL` (in). Binding: `mlink`.
#[must_use]
pub fn timer_module(cfg: &MotorConfig) -> Module {
    let mut b = ModuleBuilder::new("sc_timer", ModuleKind::Hardware);
    let residual = b.port("SC_RESIDUAL", PortDir::In, Type::INT16);
    let done = b.var("D", Type::Bool, Value::Bool(false));
    let pls = b.var("PLS", Type::INT16, Value::Int(0));
    let cool = b.var("C", Type::INT16, Value::Int(0));
    let mlink = b.binding("mlink", "motor_link");

    let idle = b.state("IDLE");
    let sending = b.state("SENDING");
    let cooldown = b.state("COOLDOWN");

    // IDLE: compute the clamped batch when residual is nonzero.
    let clamped = Expr::Binary(
        BinOp::Min,
        Box::new(Expr::Binary(
            BinOp::Max,
            Box::new(Expr::port(residual)),
            Box::new(Expr::int(-cfg.max_pulse)),
        )),
        Box::new(Expr::int(cfg.max_pulse)),
    );
    b.transition_with(
        idle,
        Some(Expr::port(residual).ne(Expr::int(0))),
        vec![Stmt::assign(pls, clamped)],
        sending,
    );

    b.actions(
        sending,
        vec![call(
            mlink,
            "SendMotorPulses",
            vec![Expr::var(pls)],
            done,
            None,
        )],
    );
    b.transition_with(
        sending,
        Some(Expr::var(done)),
        vec![Stmt::assign(cool, Expr::int(cfg.cooldown))],
        cooldown,
    );

    b.actions(
        cooldown,
        vec![Stmt::assign(cool, Expr::var(cool).sub(Expr::int(1)))],
    );
    b.transition(cooldown, Some(Expr::var(cool).le(Expr::int(0))), idle);
    b.initial(idle);
    b.build().expect("timer module is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modules_have_expected_shapes() {
        let cfg = MotorConfig::default();
        let d = distribution_module(&cfg);
        assert_eq!(d.kind(), ModuleKind::Software);
        assert_eq!(d.fsm().state_count(), 8);
        assert!(d.fsm().find_state("MotorPositionCall").is_some());
        assert_eq!(d.bindings().len(), 1);

        let p = position_module(&cfg);
        assert_eq!(p.kind(), ModuleKind::Hardware);
        assert_eq!(p.fsm().state_count(), 5);
        assert_eq!(p.ports().len(), 3);

        let c = core_module();
        assert_eq!(c.fsm().state_count(), 1);
        assert_eq!(c.ports().len(), 3);

        let t = timer_module(&cfg);
        assert_eq!(t.fsm().state_count(), 3);
        assert_eq!(t.ports().len(), 1);
    }

    #[test]
    fn config_totals() {
        let cfg = MotorConfig {
            segments: 3,
            segment_len: 10,
            ..MotorConfig::default()
        };
        assert_eq!(cfg.total_distance(), 30);
    }

    #[test]
    fn modules_render_to_views() {
        // Fig. 6 shape: the distribution module renders to switch-based C.
        let cfg = MotorConfig::default();
        let d = distribution_module(&cfg);
        let c_text = cosma_core::render_module(&d, cosma_core::View::SwSim);
        assert!(c_text.contains("case SetupControlCall"), "{c_text}");
        assert!(c_text.contains("int DISTRIBUTION(void)"), "{c_text}");
        // Fig. 7 shape: hardware units render to VHDL.
        let p = position_module(&cfg);
        let vhdl = cosma_core::render_module(&p, cosma_core::View::Hw);
        assert!(vhdl.contains("entity SC_POSITION"), "{vhdl}");
        assert!(vhdl.contains("case NEXT_STATE is"), "{vhdl}");
    }
}
