//! Full-system assembly of the Adaptive Motor Controller on each
//! platform — the same module and unit descriptions, mapped three ways:
//!
//! * [`build_cosim`] — VHDL-style co-simulation (validation step),
//! * [`build_board`] — co-synthesis onto the PC-AT + FPGA prototype,
//! * [`build_ipc`] is intentionally absent: the motor system needs the
//!   HW/HW link; the software-only platform is exercised by the
//!   producer/consumer examples instead.

use crate::adapters::{shared_motor, MotorCosim, MotorPeripheral, SharedMotor};
use crate::modules::{
    core_module, distribution_module, position_module, timer_module, MotorConfig,
};
use crate::units::{motor_link_unit, swhw_link_unit};
use cosma_board::{Board, BoardConfig, CpuId};
use cosma_core::{Type, Value};
use cosma_cosim::{Cosim, CosimConfig, CosimError, CosimModuleId};
use cosma_sim::Duration;
use cosma_synth::{
    compile_sw, flatten_module, synthesize_hw, Encoding, HwSynthReport, IoMap, SwProgram,
    SynthError,
};
use std::collections::HashMap;

/// The co-simulated motor system.
pub struct CosimMotorSystem {
    /// The backplane, ready to run.
    pub cosim: Cosim,
    /// The Distribution module instance.
    pub distribution: CosimModuleId,
    /// The Position unit instance.
    pub position: CosimModuleId,
    /// The Core unit instance.
    pub core: CosimModuleId,
    /// The Timer unit instance.
    pub timer: CosimModuleId,
    /// The shared plant.
    pub motor: SharedMotor,
}

impl std::fmt::Debug for CosimMotorSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CosimMotorSystem")
    }
}

impl CosimMotorSystem {
    /// Runs until the Distribution FSM reaches `Done`, in chunks of
    /// `chunk`; gives up after `max_chunks`.
    ///
    /// # Errors
    ///
    /// Propagates backplane errors.
    pub fn run_to_completion(
        &mut self,
        chunk: Duration,
        max_chunks: u32,
    ) -> Result<bool, CosimError> {
        for _ in 0..max_chunks {
            self.cosim.run_for(chunk)?;
            if self.cosim.module_status(self.distribution).state == "Done" {
                return Ok(true);
            }
            // Quiescent kernel: nothing can ever change again, so more
            // chunks cannot reach Done either.
            if !self.cosim.pending_activity() {
                return Ok(false);
            }
        }
        Ok(false)
    }
}

/// Assembles the motor system for co-simulation.
///
/// # Errors
///
/// Returns backplane setup errors.
pub fn build_cosim(cfg: &MotorConfig, ccfg: CosimConfig) -> Result<CosimMotorSystem, CosimError> {
    let mut cosim = Cosim::new(ccfg);
    let swhw = cosim.add_fsm_unit("swhw", swhw_link_unit());
    let mlink = cosim.add_fsm_unit("mlink", motor_link_unit());

    // Shared Speed Control signals.
    let sc_target = cosim
        .sim_mut()
        .add_signal("SC_TARGET", Type::INT16, Value::Int(0));
    let sc_residual = cosim
        .sim_mut()
        .add_signal("SC_RESIDUAL", Type::INT16, Value::Int(0));
    let sc_sampled = cosim
        .sim_mut()
        .add_signal("SC_SAMPLED", Type::INT16, Value::Int(0));

    let distribution = cosim.add_module(&distribution_module(cfg), &[("swhw", swhw)])?;
    let position = cosim.add_module_with_ports(
        &position_module(cfg),
        &[("swhw", swhw)],
        vec![sc_target, sc_residual, sc_sampled],
    )?;
    let core = cosim.add_module_with_ports(
        &core_module(),
        &[("mlink", mlink)],
        vec![sc_target, sc_residual, sc_sampled],
    )?;
    let timer =
        cosim.add_module_with_ports(&timer_module(cfg), &[("mlink", mlink)], vec![sc_residual])?;

    // The plant, attached to the motor_link wires.
    let motor = shared_motor(cfg.motor_speed);
    let sig = |n: &str| {
        cosim
            .sim()
            .find_signal(&format!("mlink.{n}"))
            .expect("motor_link wires were created above")
    };
    let adapter = MotorCosim::new(
        motor.clone(),
        cosim.hw_clk(),
        sig("PULSE_CMD"),
        sig("PULSE_STROBE"),
        sig("PULSE_ACK"),
        sig("SAMPLED_POS"),
        cosim.trace_handle(),
    );
    adapter.attach(cosim.sim_mut());

    Ok(CosimMotorSystem {
        cosim,
        distribution,
        position,
        core,
        timer,
        motor,
    })
}

/// The co-synthesized motor system on the PC-AT + FPGA board.
pub struct BoardMotorSystem {
    /// The board, ready to run.
    pub board: Board,
    /// The CPU running the synthesized Distribution program.
    pub cpu: CpuId,
    /// The compiled software.
    pub program: SwProgram,
    /// Hardware synthesis reports (position, core, timer).
    pub reports: Vec<HwSynthReport>,
    /// The shared plant.
    pub motor: SharedMotor,
    /// Index of the Distribution FSM's `Done` state.
    pub done_state: u16,
}

impl std::fmt::Debug for BoardMotorSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BoardMotorSystem")
    }
}

impl BoardMotorSystem {
    /// Whether the Distribution program has reached its `Done` state.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.board.cpu_mem(self.cpu, self.program.state_addr) == self.done_state
    }

    /// Runs in chunks of `chunk_ns` until done or `max_chunks` elapse.
    ///
    /// # Errors
    ///
    /// Propagates board errors.
    pub fn run_to_completion(
        &mut self,
        chunk_ns: u64,
        max_chunks: u32,
    ) -> Result<bool, cosma_board::BoardError> {
        for _ in 0..max_chunks {
            self.board.run_for_ns(chunk_ns)?;
            if self.is_done() {
                return Ok(true);
            }
            // A board with every CPU halted and no hardware to clock can
            // never reach Done; stop polling.
            if !self.board.pending_activity() {
                return Ok(false);
            }
        }
        Ok(false)
    }
}

/// Co-synthesizes the motor system onto the board: Distribution →
/// MC16 program at bus base 0x300, Speed Control units → netlists in the
/// FPGA fabric, motor → peripheral.
///
/// # Errors
///
/// Returns synthesis errors ([`SynthError`]).
pub fn build_board(
    cfg: &MotorConfig,
    bcfg: BoardConfig,
    encoding: Encoding,
) -> Result<BoardMotorSystem, SynthError> {
    let mut units = HashMap::new();
    units.insert("swhw".to_string(), swhw_link_unit());
    units.insert("mlink".to_string(), motor_link_unit());

    // Software side.
    let dist_flat = flatten_module(&distribution_module(cfg), &units)?;
    let io = IoMap::for_module(0x300, &dist_flat);
    let program = compile_sw(&dist_flat, &io)?;
    let done_state = dist_flat
        .fsm()
        .find_state("Done")
        .expect("distribution has a Done state")
        .raw() as u16;

    // Hardware side.
    let mut reports = vec![];
    let mut netlists = vec![];
    for module in [position_module(cfg), core_module(), timer_module(cfg)] {
        let flat = flatten_module(&module, &units)?;
        let (nl, report) = synthesize_hw(&flat, encoding)?;
        reports.push(report);
        netlists.push(nl);
    }

    let mut board = Board::new(bcfg);
    let cpu = board
        .add_cpu("distribution", &program)
        .expect("fresh board accepts its first CPU");
    for nl in &netlists {
        board.place_netlist(nl);
    }
    let motor = shared_motor(cfg.motor_speed);
    board.attach(Box::new(MotorPeripheral::new(motor.clone(), "mlink")));

    Ok(BoardMotorSystem {
        board,
        cpu,
        program,
        reports,
        motor,
        done_state,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosim_system_reaches_target() {
        let cfg = MotorConfig::default();
        let mut sys = build_cosim(&cfg, CosimConfig::default()).unwrap();
        let done = sys.run_to_completion(Duration::from_us(100), 200).unwrap();
        assert!(done, "distribution must finish the trajectory");
        assert_eq!(sys.motor.borrow().position(), cfg.total_distance());
        // One send_pos + one motor_state per segment.
        let log = sys.cosim.trace_log();
        assert_eq!(log.with_label("send_pos").count(), cfg.segments as usize);
        assert_eq!(log.with_label("motor_state").count(), cfg.segments as usize);
        assert_eq!(log.with_label("done").count(), 1);
        // Pulses were consumed through the handshake.
        assert!(log.with_label("pulse").count() > 0);
        // The unit saw the expected service traffic.
        let stats = sys.cosim.unit_stats("swhw").unwrap();
        assert_eq!(
            stats.services["MotorPosition"].completions,
            cfg.segments as u64
        );
        assert_eq!(
            stats.services["ReadMotorState"].completions,
            cfg.segments as u64
        );
    }

    #[test]
    fn board_system_reaches_target() {
        let cfg = MotorConfig::default();
        let mut sys = build_board(&cfg, BoardConfig::default(), Encoding::Binary).unwrap();
        let done = sys.run_to_completion(1_000_000, 400).unwrap();
        assert!(done, "synthesized system must finish the trajectory");
        assert_eq!(sys.motor.borrow().position(), cfg.total_distance());
        let log = sys.board.trace_log();
        assert_eq!(log.with_label("send_pos").count(), cfg.segments as usize);
        assert_eq!(log.with_label("done").count(), 1);
        assert!(!sys.reports.is_empty());
    }

    #[test]
    fn coherence_between_cosim_and_board() {
        // The paper's claim: the same description through co-simulation
        // and co-synthesis produces the same behaviour. Compare the
        // motor-visible and software-visible event sequences.
        let cfg = MotorConfig::default();
        let mut cs = build_cosim(&cfg, CosimConfig::default()).unwrap();
        assert!(cs.run_to_completion(Duration::from_us(100), 200).unwrap());
        let mut bs = build_board(&cfg, BoardConfig::default(), Encoding::Binary).unwrap();
        assert!(bs.run_to_completion(1_000_000, 400).unwrap());

        for label in ["send_pos", "motor_state", "pulse", "done"] {
            let a = cs.cosim.trace_log().filtered(|e| e.label == label);
            let b = bs.board.trace_log().filtered(|e| e.label == label);
            let cmp = a.compare(&b);
            assert!(cmp.is_match(), "label {label}: {cmp}");
        }
    }
}
