//! The motor plant: a deterministic stepper-style DC motor model.
//!
//! The paper's physical motor receives pulse trains and exposes sampled
//! coordinates. We model exactly that contract: commanded pulses queue in
//! a backlog, each control tick executes at most `max_steps_per_tick` of
//! them (the motor's speed limit), and the sampled position is the
//! quantized shaft coordinate. Determinism matters — the coherence claim
//! compares co-simulation against board execution event-for-event.

use std::fmt;

/// A single motion axis.
///
/// # Examples
///
/// ```
/// use cosma_motor::MotorModel;
///
/// let mut m = MotorModel::new(2); // at most 2 steps per tick
/// m.command_pulses(5);
/// assert_eq!(m.tick(), 2);
/// assert_eq!(m.tick(), 2);
/// assert_eq!(m.tick(), 1);
/// assert_eq!(m.position(), 5);
/// assert_eq!(m.tick(), 0, "backlog drained");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MotorModel {
    position: i64,
    backlog: i64,
    max_steps_per_tick: i64,
    total_steps: u64,
    ticks: u64,
    moving_ticks: u64,
}

impl MotorModel {
    /// Creates an axis able to execute `max_steps_per_tick` steps per
    /// control tick.
    ///
    /// # Panics
    ///
    /// Panics if `max_steps_per_tick` is zero.
    #[must_use]
    pub fn new(max_steps_per_tick: i64) -> Self {
        assert!(max_steps_per_tick > 0, "motor speed limit must be positive");
        MotorModel {
            position: 0,
            backlog: 0,
            max_steps_per_tick,
            total_steps: 0,
            ticks: 0,
            moving_ticks: 0,
        }
    }

    /// Queues signed pulses (positive = forward).
    pub fn command_pulses(&mut self, n: i64) {
        self.backlog += n;
    }

    /// One control tick: executes up to the speed limit from the backlog;
    /// returns the signed steps actually taken.
    pub fn tick(&mut self) -> i64 {
        self.ticks += 1;
        let steps = self
            .backlog
            .clamp(-self.max_steps_per_tick, self.max_steps_per_tick);
        self.backlog -= steps;
        self.position += steps;
        self.total_steps += steps.unsigned_abs();
        if steps != 0 {
            self.moving_ticks += 1;
        }
        steps
    }

    /// Current shaft position (counts).
    #[must_use]
    pub fn position(&self) -> i64 {
        self.position
    }

    /// Sampled coordinate, as the sensor reports it (16-bit saturating).
    #[must_use]
    pub fn sampled(&self) -> i64 {
        self.position
            .clamp(i64::from(i16::MIN), i64::from(i16::MAX))
    }

    /// Pulses queued but not yet executed.
    #[must_use]
    pub fn backlog(&self) -> i64 {
        self.backlog
    }

    /// Whether the axis has pending motion.
    #[must_use]
    pub fn is_moving(&self) -> bool {
        self.backlog != 0
    }

    /// Total |steps| executed.
    #[must_use]
    pub fn total_steps(&self) -> u64 {
        self.total_steps
    }

    /// Control ticks elapsed.
    #[must_use]
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Ticks during which the motor actually moved (continuity metric:
    /// the paper's controller exists to avoid discontinuous operation).
    #[must_use]
    pub fn moving_ticks(&self) -> u64 {
        self.moving_ticks
    }
}

impl fmt::Display for MotorModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pos={} backlog={} steps={}",
            self.position, self.backlog, self.total_steps
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backlog_executes_at_speed_limit() {
        let mut m = MotorModel::new(3);
        m.command_pulses(10);
        let steps: Vec<i64> = (0..5).map(|_| m.tick()).collect();
        assert_eq!(steps, vec![3, 3, 3, 1, 0]);
        assert_eq!(m.position(), 10);
        assert_eq!(m.total_steps(), 10);
    }

    #[test]
    fn reverse_motion() {
        let mut m = MotorModel::new(2);
        m.command_pulses(-5);
        while m.is_moving() {
            m.tick();
        }
        assert_eq!(m.position(), -5);
        assert_eq!(m.total_steps(), 5);
    }

    #[test]
    fn mixed_commands_cancel() {
        let mut m = MotorModel::new(10);
        m.command_pulses(4);
        m.command_pulses(-4);
        assert_eq!(m.tick(), 0);
        assert_eq!(m.position(), 0);
    }

    #[test]
    fn sampled_saturates_to_sensor_range() {
        let mut m = MotorModel::new(1_000_000);
        m.command_pulses(100_000);
        m.tick();
        assert_eq!(m.position(), 100_000);
        assert_eq!(m.sampled(), i64::from(i16::MAX));
    }

    #[test]
    fn moving_ticks_counts_motion_only() {
        let mut m = MotorModel::new(1);
        m.command_pulses(2);
        m.tick();
        m.tick();
        m.tick(); // idle
        assert_eq!(m.ticks(), 3);
        assert_eq!(m.moving_ticks(), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_speed_limit_panics() {
        let _ = MotorModel::new(0);
    }
}
