//! The Adaptive Motor Controller's two communication units (Figure 5).
//!
//! * [`swhw_link_unit`] — the SW/HW unit between Distribution and Speed
//!   Control, offering the Distribution_Interface access procedures
//!   (`SetupControl`, `MotorPosition`, `ReadMotorState`) and the
//!   Control_Interface procedures (`ReadMotorConstraints`,
//!   `ReadMotorPosition`, `ReturnMotorState`). Implemented as three
//!   flag-guarded mailboxes over shared wires.
//! * [`motor_link_unit`] — the HW/HW unit between Speed Control and the
//!   motor (`SendMotorPulses`, `ReadSampledData`), a strobe/ack pulse
//!   channel plus a continuously sampled coordinate wire.

use cosma_core::comm::{
    CommUnitBuilder, CommUnitSpec, ServiceSpecBuilder, SERVICE_DONE_VAR, SERVICE_RESULT_VAR,
};
use cosma_core::{Bit, Expr, Stmt, Type, Value};
use std::sync::Arc;

/// Builds a one-slot mailbox `put`-style service: completes when the flag
/// is clear, latching data and raising the flag.
fn mailbox_put(
    name: &str,
    data: cosma_core::ids::PortId,
    flag: cosma_core::ids::PortId,
) -> ServiceSpecBuilder {
    let mut s = ServiceSpecBuilder::new(name);
    s.arg("VAL", Type::INT16);
    let st = s.state("TRY");
    s.transition_with(
        st,
        Some(Expr::port(flag).eq(Expr::bit(Bit::Zero))),
        vec![
            Stmt::drive(data, Expr::arg(0)),
            Stmt::drive(flag, Expr::bit(Bit::One)),
            Stmt::assign(SERVICE_DONE_VAR, Expr::bool(true)),
        ],
        st,
    );
    s.initial(st);
    s
}

/// Builds the matching `get`-style service: completes when the flag is
/// set, reading data and clearing the flag.
fn mailbox_get(
    name: &str,
    data: cosma_core::ids::PortId,
    flag: cosma_core::ids::PortId,
) -> ServiceSpecBuilder {
    let mut s = ServiceSpecBuilder::new(name);
    s.returns(Type::INT16);
    let st = s.state("TRY");
    s.transition_with(
        st,
        Some(Expr::port(flag).eq(Expr::bit(Bit::One))),
        vec![
            Stmt::assign(SERVICE_RESULT_VAR, Expr::port(data)),
            Stmt::drive(flag, Expr::bit(Bit::Zero)),
            Stmt::assign(SERVICE_DONE_VAR, Expr::bool(true)),
        ],
        st,
    );
    s.initial(st);
    s
}

/// The SW/HW communication unit of Figure 5.
///
/// Wires: `CTL_REG`/`CTL_FULL` (constraints mailbox, SW→HW),
/// `POS_REG`/`POS_FULL` (position mailbox, SW→HW) and
/// `STATE_REG`/`STATE_FULL` (motor-state mailbox, HW→SW).
#[must_use]
pub fn swhw_link_unit() -> Arc<CommUnitSpec> {
    let mut u = CommUnitBuilder::new("swhw_link");
    let ctl_reg = u.wire("CTL_REG", Type::INT16, Value::Int(0));
    let ctl_full = u.wire("CTL_FULL", Type::Bit, Value::Bit(Bit::Zero));
    let pos_reg = u.wire("POS_REG", Type::INT16, Value::Int(0));
    let pos_full = u.wire("POS_FULL", Type::Bit, Value::Bit(Bit::Zero));
    let state_reg = u.wire("STATE_REG", Type::INT16, Value::Int(0));
    let state_full = u.wire("STATE_FULL", Type::Bit, Value::Bit(Bit::Zero));

    // Distribution_Interface (software side).
    u.service(
        mailbox_put("SetupControl", ctl_reg, ctl_full)
            .build()
            .expect("valid"),
    );
    u.service(
        mailbox_put("MotorPosition", pos_reg, pos_full)
            .build()
            .expect("valid"),
    );
    u.service(
        mailbox_get("ReadMotorState", state_reg, state_full)
            .build()
            .expect("valid"),
    );
    // Control_Interface (hardware side).
    u.service(
        mailbox_get("ReadMotorConstraints", ctl_reg, ctl_full)
            .build()
            .expect("valid"),
    );
    u.service(
        mailbox_get("ReadMotorPosition", pos_reg, pos_full)
            .build()
            .expect("valid"),
    );
    u.service(
        mailbox_put("ReturnMotorState", state_reg, state_full)
            .build()
            .expect("valid"),
    );
    u.build().expect("swhw link unit is well-formed")
}

/// The HW/HW communication unit driving the motor (Figure 5's
/// Motor_Interface).
///
/// Wires: `PULSE_CMD` (signed pulse batch), `PULSE_STROBE`/`PULSE_ACK`
/// (handshake with the motor's power stage), `SAMPLED_POS` (the sensor
/// coordinate, continuously driven by the motor adapter).
#[must_use]
pub fn motor_link_unit() -> Arc<CommUnitSpec> {
    let mut u = CommUnitBuilder::new("motor_link");
    let cmd = u.wire("PULSE_CMD", Type::INT16, Value::Int(0));
    let strobe = u.wire("PULSE_STROBE", Type::Bit, Value::Bit(Bit::Zero));
    let ack = u.wire("PULSE_ACK", Type::Bit, Value::Bit(Bit::Zero));
    let sampled = u.wire("SAMPLED_POS", Type::INT16, Value::Int(0));

    // SendMotorPulses(n): strobe/ack 4-phase handshake.
    let mut send = ServiceSpecBuilder::new("SendMotorPulses");
    send.arg("N", Type::INT16);
    let init = send.state("INIT");
    let wait_ack = send.state("WAIT_ACK");
    send.transition_with(
        init,
        Some(Expr::port(ack).eq(Expr::bit(Bit::Zero))),
        vec![
            Stmt::drive(cmd, Expr::arg(0)),
            Stmt::drive(strobe, Expr::bit(Bit::One)),
        ],
        wait_ack,
    );
    send.transition_with(
        wait_ack,
        Some(Expr::port(ack).eq(Expr::bit(Bit::One))),
        vec![
            Stmt::drive(strobe, Expr::bit(Bit::Zero)),
            Stmt::assign(SERVICE_DONE_VAR, Expr::bool(true)),
        ],
        init,
    );
    send.initial(init);
    u.service(send.build().expect("valid"));

    // ReadSampledData() -> coordinate: single-activation sample.
    let mut read = ServiceSpecBuilder::new("ReadSampledData");
    read.returns(Type::INT16);
    let st = read.state("SAMPLE");
    read.actions(
        st,
        vec![
            Stmt::assign(SERVICE_RESULT_VAR, Expr::port(sampled)),
            Stmt::assign(SERVICE_DONE_VAR, Expr::bool(true)),
        ],
    );
    read.transition(st, None, st);
    read.initial(st);
    u.service(read.build().expect("valid"));

    u.build().expect("motor link unit is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosma_comm::{CallerId, FsmUnitRuntime, LocalWires, WireStore};

    #[test]
    fn swhw_mailboxes_hand_off_in_order() {
        let spec = swhw_link_unit();
        let mut unit = FsmUnitRuntime::new(spec.clone());
        let mut wires = LocalWires::new(&spec);
        let sw = CallerId(1);
        let hw = CallerId(2);

        // HW read stalls until SW writes.
        assert!(
            !unit
                .call(hw, "ReadMotorPosition", &[], &mut wires)
                .unwrap()
                .done
        );
        assert!(
            unit.call(sw, "MotorPosition", &[Value::Int(25)], &mut wires)
                .unwrap()
                .done
        );
        // Second SW write stalls (mailbox full).
        assert!(
            !unit
                .call(sw, "MotorPosition", &[Value::Int(50)], &mut wires)
                .unwrap()
                .done
        );
        let got = unit.call(hw, "ReadMotorPosition", &[], &mut wires).unwrap();
        assert!(got.done);
        assert_eq!(got.result, Some(Value::Int(25)));
        // Now the second write proceeds.
        assert!(
            unit.call(sw, "MotorPosition", &[Value::Int(50)], &mut wires)
                .unwrap()
                .done
        );
    }

    #[test]
    fn state_mailbox_flows_hw_to_sw() {
        let spec = swhw_link_unit();
        let mut unit = FsmUnitRuntime::new(spec.clone());
        let mut wires = LocalWires::new(&spec);
        let sw = CallerId(1);
        let hw = CallerId(2);
        assert!(
            !unit
                .call(sw, "ReadMotorState", &[], &mut wires)
                .unwrap()
                .done
        );
        assert!(
            unit.call(hw, "ReturnMotorState", &[Value::Int(99)], &mut wires)
                .unwrap()
                .done
        );
        let got = unit.call(sw, "ReadMotorState", &[], &mut wires).unwrap();
        assert_eq!(got.result, Some(Value::Int(99)));
    }

    #[test]
    fn motor_link_handshake_shape() {
        let spec = motor_link_unit();
        let mut unit = FsmUnitRuntime::new(spec.clone());
        let mut wires = LocalWires::new(&spec);
        let hw = CallerId(1);
        // First activation: presents pulses, raises strobe, not done.
        assert!(
            !unit
                .call(hw, "SendMotorPulses", &[Value::Int(3)], &mut wires)
                .unwrap()
                .done
        );
        let strobe = spec.wire_id("PULSE_STROBE").unwrap();
        let cmd = spec.wire_id("PULSE_CMD").unwrap();
        assert_eq!(wires.value(strobe), &Value::Bit(Bit::One));
        assert_eq!(wires.value(cmd), &Value::Int(3));
        // Motor acks.
        let ack = spec.wire_id("PULSE_ACK").unwrap();
        wires.write_wire(ack, Value::Bit(Bit::One)).unwrap();
        assert!(
            unit.call(hw, "SendMotorPulses", &[Value::Int(3)], &mut wires)
                .unwrap()
                .done
        );
        assert_eq!(wires.value(strobe), &Value::Bit(Bit::Zero));
    }

    #[test]
    fn sampled_data_read_is_single_step() {
        let spec = motor_link_unit();
        let mut unit = FsmUnitRuntime::new(spec.clone());
        let mut wires = LocalWires::new(&spec);
        let pos = spec.wire_id("SAMPLED_POS").unwrap();
        wires.write_wire(pos, Value::Int(-17)).unwrap();
        let got = unit
            .call(CallerId(1), "ReadSampledData", &[], &mut wires)
            .unwrap();
        assert!(got.done);
        assert_eq!(got.result, Some(Value::Int(-17)));
    }

    #[test]
    fn units_render_in_all_views() {
        for spec in [swhw_link_unit(), motor_link_unit()] {
            for svc in spec.services() {
                let views =
                    cosma_core::render_service_views(&spec, svc, &cosma_core::SwTarget::ALL);
                assert!(views.hw_vhdl.contains("procedure"));
                assert!(views.sw_sim.contains("cli"));
            }
        }
    }
}
